//! Cache-semantics tests through the live service: template sharing,
//! non-collision, exact counters, eviction, and the batch-parity
//! contract (stats identical across `max_batch`).

use preqr::{PreqrConfig, SqlBert, ValueBuckets};
use preqr_schema::{Column, ColumnType, ForeignKey, Schema, Table};
use preqr_serve::{ServeConfig, ServeStats, Service};
use preqr_sql::normalize::template_text;
use preqr_sql::parser::parse;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_table(Table::new(
        "title",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("production_year", ColumnType::Int),
            Column::new("kind_id", ColumnType::Int),
        ],
    ));
    s.add_table(Table::new(
        "movie_companies",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("movie_id", ColumnType::Int),
            Column::new("company_id", ColumnType::Int),
        ],
    ));
    s.add_foreign_key(ForeignKey {
        from_table: "movie_companies".into(),
        from_column: "movie_id".into(),
        to_table: "title".into(),
        to_column: "id".into(),
    });
    s
}

/// Builds the worker's model replica. Runs on the worker thread
/// (`SqlBert` is `!Send`); construction is deterministic, so every
/// replica encodes identically.
fn test_model() -> SqlBert {
    let corpus: Vec<_> = [
        "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990",
        "SELECT COUNT(*) FROM title t, movie_companies mc \
         WHERE t.id = mc.movie_id AND t.production_year > 1990",
        "SELECT * FROM title t WHERE t.kind_id IN (1, 3, 5)",
    ]
    .iter()
    .map(|s| parse(s).unwrap())
    .collect();
    let mut buckets = ValueBuckets::new(4);
    buckets.insert("title", "production_year", (1930..2020).map(f64::from).collect());
    buckets.insert("title", "kind_id", (1..8).map(f64::from).collect());
    SqlBert::new(&corpus, &schema(), buckets, PreqrConfig::test())
}

fn spawn(config: ServeConfig) -> Service {
    Service::spawn(config, |_| test_model())
}

fn bits(m: &preqr_nn::Matrix) -> Vec<u32> {
    m.data().iter().map(|x| x.to_bits()).collect()
}

#[test]
fn normalization_equivalent_queries_share_one_cache_entry() {
    // Same template, different literals / whitespace / keyword case.
    let base = "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990";
    let variants = [
        "SELECT COUNT(*) FROM title t WHERE t.production_year > 2005",
        "select   count(*) from title t where t.production_year > 1975",
        "SELECT COUNT(*)  FROM  title  t  WHERE  t.production_year  >  1990",
    ];
    for v in variants {
        assert_eq!(
            template_text(&parse(base).unwrap()),
            template_text(&parse(v).unwrap()),
            "precondition: {v:?} must normalize to the base template"
        );
    }

    let svc = spawn(ServeConfig::default());
    let first = svc.encode_blocking(base).unwrap();
    assert!(!first.cache_hit, "first occurrence must be a miss");
    for v in variants {
        let e = svc.encode_blocking(v).unwrap();
        assert!(e.cache_hit, "template-equivalent request must hit: {v:?}");
        assert_eq!(bits(&e.matrix), bits(&first.matrix), "cached entry must be shared");
    }
    let stats = svc.shutdown();
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, variants.len() as u64);
    assert_eq!(stats.encoded, 1, "one forward pass serves the whole template class");
}

#[test]
fn unicode_literals_share_one_cache_entry_end_to_end() {
    // Multi-byte literals exercise the full lex → template → cache-key
    // path: 'café' (2-byte char), '北京市' (3-byte chars), and an escaped
    // quote next to an emoji must all collapse into one `<STR>` template
    // and therefore one cache entry. A lexer that decoded literals
    // byte-at-a-time would corrupt the key (or split the class).
    let base = "SELECT COUNT(*) FROM title t WHERE t.note = 'café'";
    let variants = [
        "SELECT COUNT(*) FROM title t WHERE t.note = '北京市'",
        "SELECT COUNT(*) FROM title t WHERE t.note = 'plain ascii'",
        "SELECT COUNT(*) FROM title t WHERE t.note = 'O''Brien ☕'",
    ];
    for v in variants {
        assert_eq!(
            template_text(&parse(base).unwrap()),
            template_text(&parse(v).unwrap()),
            "precondition: {v:?} must share the base template"
        );
    }
    let svc = spawn(ServeConfig::default());
    let first = svc.encode_blocking(base).unwrap();
    assert!(!first.cache_hit, "first occurrence must be a miss");
    for v in variants {
        let e = svc.encode_blocking(v).unwrap();
        assert!(e.cache_hit, "unicode-literal variant must hit: {v:?}");
        assert_eq!(bits(&e.matrix), bits(&first.matrix), "cached entry must be shared");
    }
    let stats = svc.shutdown();
    assert_eq!((stats.cache_misses, stats.cache_hits, stats.encoded), (1, 3, 1));
}

#[test]
fn structurally_distinct_queries_never_collide() {
    let a = "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990";
    let b = "SELECT COUNT(*) FROM title t, movie_companies mc \
             WHERE t.id = mc.movie_id AND t.production_year > 1990";
    assert_ne!(template_text(&parse(a).unwrap()), template_text(&parse(b).unwrap()));

    let svc = spawn(ServeConfig::default());
    let ea = svc.encode_blocking(a).unwrap();
    let eb = svc.encode_blocking(b).unwrap();
    assert!(!ea.cache_hit && !eb.cache_hit);
    assert_ne!(bits(&ea.matrix), bits(&eb.matrix), "distinct queries must not share an entry");
    // Re-requests hit, and each template returns its *own* embedding.
    let ra = svc.encode_blocking(a).unwrap();
    let rb = svc.encode_blocking(b).unwrap();
    assert!(ra.cache_hit && rb.cache_hit);
    assert_eq!(bits(&ra.matrix), bits(&ea.matrix));
    assert_eq!(bits(&rb.matrix), bits(&eb.matrix));
    let stats = svc.shutdown();
    assert_eq!((stats.cache_hits, stats.cache_misses), (2, 2));
}

#[test]
fn hits_plus_misses_account_for_every_parseable_request() {
    let script = [
        "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990",
        "SELECT COUNT(*) FROM title t WHERE t.production_year > 2005",
        "SELECT * FROM title t WHERE t.kind_id IN (1, 3)",
        "SELECT COUNT(*) FROM title t WHERE t.production_year > 1930",
        "SELECT * FROM title t WHERE t.kind_id IN (2, 4)",
        "THIS IS NOT SQL",
    ];
    let svc = spawn(ServeConfig::default());
    let mut parseable = 0u64;
    for sql in script {
        if svc.encode_blocking(sql).is_ok() {
            parseable += 1;
        }
    }
    let stats = svc.shutdown();
    assert_eq!(stats.processed, script.len() as u64);
    assert_eq!(stats.parse_errors, 1);
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        parseable,
        "every parseable request performs exactly one counted lookup"
    );
}

#[test]
fn tiny_cache_evicts_in_lru_order_and_recomputes_identically() {
    let config = ServeConfig { cache_capacity: 1, ..ServeConfig::default() };
    let a = "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990";
    let b = "SELECT * FROM title t WHERE t.kind_id IN (1, 3)";
    let svc = spawn(config);
    let first_a = svc.encode_blocking(a).unwrap();
    let _ = svc.encode_blocking(b).unwrap(); // evicts a
    let again_a = svc.encode_blocking(a).unwrap(); // recomputed, evicts b
    let _ = svc.encode_blocking(b).unwrap(); // recomputed, evicts a
    assert!(!again_a.cache_hit, "evicted template must recompute");
    assert_eq!(bits(&again_a.matrix), bits(&first_a.matrix), "recompute must be bit-identical");
    let stats = svc.shutdown();
    assert_eq!(stats.cache_misses, 4);
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_evictions, 3);
    assert_eq!(stats.encoded, 4);
}

#[test]
fn cache_off_mode_recomputes_every_request_bit_identically() {
    let config = ServeConfig { cache_capacity: 0, ..ServeConfig::default() };
    let sql = "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990";
    let svc = spawn(config);
    let first = svc.encode_blocking(sql).unwrap();
    let second = svc.encode_blocking(sql).unwrap();
    assert!(!first.cache_hit && !second.cache_hit);
    assert_eq!(bits(&first.matrix), bits(&second.matrix));
    let stats = svc.shutdown();
    assert_eq!(stats.encoded, 2);
    assert_eq!((stats.cache_hits, stats.cache_misses, stats.cache_evictions), (0, 0, 0));
}

/// The batch-parity contract: because the worker replays cache
/// operations in FIFO order, every statistic except the batch count is
/// identical whether requests ride in micro-batches or one at a time.
#[test]
fn stats_are_invariant_across_max_batch() {
    let script = [
        "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990",
        "SELECT COUNT(*) FROM title t WHERE t.production_year > 2005",
        "SELECT * FROM title t WHERE t.kind_id IN (1, 3)",
        "SELECT COUNT(*) FROM title t WHERE t.production_year > 1975",
        "not sql at all",
        "SELECT * FROM title t WHERE t.kind_id IN (9, 9)",
        "SELECT COUNT(*) FROM title t WHERE t.production_year > 1930",
        "SELECT * FROM title t WHERE t.kind_id IN (1, 3)",
    ];
    let run = |max_batch: usize| -> (ServeStats, Vec<Option<Vec<u32>>>) {
        let config = ServeConfig {
            max_batch,
            batch_timeout: 1_000, // batches close on fullness or drain, not ticks
            cache_capacity: 2,    // small enough to exercise eviction replay
            ..ServeConfig::default()
        };
        let svc = spawn(config);
        let tickets: Vec<_> = script.iter().map(|sql| svc.submit(sql).unwrap()).collect();
        let stats = svc.shutdown(); // drains every accepted ticket
        let outs =
            tickets.into_iter().map(|t| t.wait().ok().map(|e| bits(&e.matrix))).collect::<Vec<_>>();
        (stats, outs)
    };
    let (base_stats, base_out) = run(1);
    for max_batch in [4, 16] {
        let (stats, out) = run(max_batch);
        assert_eq!(out, base_out, "embeddings diverged at max_batch={max_batch}");
        let neutral = |s: ServeStats| ServeStats { batches: 0, ..s }; // batch geometry may differ
        assert_eq!(neutral(stats), neutral(base_stats), "stats diverged at max_batch={max_batch}");
    }
    assert_eq!(base_stats.accepted, script.len() as u64);
    assert_eq!(base_stats.parse_errors, 1);
}
