//! Table 12 — ablation over model composition: BERT (no automaton, no
//! Trm_g), PreQRNT (no Trm_g), PreQRNA (no automaton), full PreQR;
//! cardinality and cost mean q-errors on all four workloads.
//!
//! Expected shape (paper): BERT < PreQRNT < PreQRNA < PreQR, i.e. the
//! schema module matters more than the automaton.

use preqr::PreqrConfig;
use preqr_bench::Ctx;
use preqr_tasks::estimation::{evaluate, train_preqr, Target};

fn main() {
    let ctx = Ctx::build();
    let variants: Vec<(&str, PreqrConfig)> = vec![
        ("BERT", PreqrConfig::small().bert_only()),
        ("PreQRNT", PreqrConfig::small().without_schema()),
        ("PreQRNA", PreqrConfig::small().without_automaton()),
        ("PreQR", PreqrConfig::small()),
    ];
    let (train, valid) = ctx.estimation_train();
    let (jtrain, jvalid) = ctx.job_train();
    let mut tests = ctx.test_workloads();
    tests.push(("JOB", ctx.job_workload()));
    for target in [Target::Cardinality, Target::Cost] {
        println!("\n=== Table 12 ({target:?}): mean q-error ===");
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>10}",
            "method", "JOB-light", "Synthetic", "Scale", "JOB"
        );
        for (name, config) in &variants {
            let model = ctx.pretrained(&format!("abl_{name}"), *config);
            let pred = train_preqr(
                &ctx.db,
                &model,
                Some(&ctx.sampler),
                &train,
                &valid,
                target,
                ctx.sizes.est_epochs,
                7,
                name,
            );
            let jpred = train_preqr(
                &ctx.db,
                &model,
                Some(&ctx.sampler),
                &jtrain,
                &jvalid,
                target,
                ctx.sizes.est_epochs,
                7,
                name,
            );
            let means: Vec<f64> = tests
                .iter()
                .map(|(wname, w)| {
                    if *wname == "JOB" {
                        evaluate(&jpred, target, w).mean
                    } else {
                        evaluate(&pred, target, w).mean
                    }
                })
                .collect();
            println!(
                "{:<10} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                name, means[0], means[1], means[2], means[3]
            );
        }
    }
    println!("\npaper (card means): BERT 36.5/3.53/39.2/58.4, PreQRNT 28.2/3.25/35.4/53.1,");
    println!("                    PreQRNA 20.3/2.95/29.8/50.8, PreQR 11.5/2.85/25.8/48.3");
}
