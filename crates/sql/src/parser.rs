//! Recursive-descent parser for the SQL subset ([`crate::ast`]).

use std::fmt;

use crate::ast::*;
use crate::token::{lex, Keyword, LexError, Token};

/// Parsing error.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Token index where the error occurred.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { position: 0, message: e.to_string() }
    }
}

/// Parses a SQL string into a [`Query`].
///
/// # Errors
/// Returns [`ParseError`] on lexing failures or grammar violations.
pub fn parse(sql: &str) -> Result<Query, ParseError> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    // Allow a trailing semicolon.
    if p.peek() == Some(&Token::Symbol(";")) {
        p.pos += 1;
    }
    if p.pos != p.tokens.len() {
        return Err(p.err("unexpected trailing tokens"));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { position: self.pos, message: msg.into() }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek() == Some(&Token::Keyword(k)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<(), ParseError> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(self.err(format!("expected {}", k.as_str())))
        }
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(sym)) if *sym == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, got {other:?}"))),
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        let body = self.select()?;
        let mut unions = Vec::new();
        while self.eat_keyword(Keyword::Union) {
            // UNION ALL is accepted and treated as UNION.
            let _ = self.eat_keyword(Keyword::All);
            unions.push(self.select()?);
        }
        Ok(Query { body, unions })
    }

    fn select(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_keyword(Keyword::Select)?;
        let mut projections = vec![self.select_item()?];
        while self.eat_symbol(",") {
            projections.push(self.select_item()?);
        }
        let mut stmt = SelectStmt { projections, ..Default::default() };
        if self.eat_keyword(Keyword::From) {
            stmt.from.push(self.table_ref()?);
            while self.eat_symbol(",") {
                stmt.from.push(self.table_ref()?);
            }
            loop {
                let inner = self.peek() == Some(&Token::Keyword(Keyword::Inner));
                if inner || self.peek() == Some(&Token::Keyword(Keyword::Join)) {
                    if inner {
                        self.pos += 1;
                    }
                    self.expect_keyword(Keyword::Join)?;
                    let table = self.table_ref()?;
                    self.expect_keyword(Keyword::On)?;
                    let on = self.expr()?;
                    stmt.joins.push(JoinClause { table, on });
                } else {
                    break;
                }
            }
        }
        if self.eat_keyword(Keyword::Where) {
            stmt.where_clause = Some(self.expr()?);
        }
        if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            stmt.group_by.push(self.column_ref()?);
            while self.eat_symbol(",") {
                stmt.group_by.push(self.column_ref()?);
            }
        }
        if self.eat_keyword(Keyword::Having) {
            stmt.having = Some(self.expr()?);
        }
        if self.eat_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            loop {
                let col = self.column_ref()?;
                let desc = if self.eat_keyword(Keyword::Desc) {
                    true
                } else {
                    let _ = self.eat_keyword(Keyword::Asc);
                    false
                };
                stmt.order_by.push((col, desc));
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        if self.eat_keyword(Keyword::Limit) {
            match self.next() {
                Some(Token::Int(v)) if v >= 0 => stmt.limit = Some(v as u64),
                _ => return Err(self.err("expected non-negative integer after LIMIT")),
            }
        }
        Ok(stmt)
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Star);
        }
        let agg = match self.peek() {
            Some(Token::Keyword(Keyword::Count)) => Some(AggFunc::Count),
            Some(Token::Keyword(Keyword::Sum)) => Some(AggFunc::Sum),
            Some(Token::Keyword(Keyword::Avg)) => Some(AggFunc::Avg),
            Some(Token::Keyword(Keyword::Min)) => Some(AggFunc::Min),
            Some(Token::Keyword(Keyword::Max)) => Some(AggFunc::Max),
            _ => None,
        };
        if let Some(func) = agg {
            self.pos += 1;
            self.expect_symbol("(")?;
            let distinct = self.eat_keyword(Keyword::Distinct);
            let arg = if self.eat_symbol("*") {
                if func != AggFunc::Count {
                    return Err(self.err("only COUNT accepts *"));
                }
                None
            } else {
                Some(self.column_ref()?)
            };
            self.expect_symbol(")")?;
            return Ok(SelectItem::Aggregate { func, arg, distinct });
        }
        Ok(SelectItem::Column(self.column_ref()?))
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let table = self.ident()?;
        if self.eat_keyword(Keyword::As) {
            let alias = self.ident()?;
            return Ok(TableRef::aliased(table, alias));
        }
        if let Some(Token::Ident(_)) = self.peek() {
            let alias = self.ident()?;
            return Ok(TableRef::aliased(table, alias));
        }
        Ok(TableRef::new(table))
    }

    fn column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        let first = self.ident()?;
        if self.peek() == Some(&Token::Symbol(".")) && matches!(self.peek2(), Some(Token::Ident(_)))
        {
            self.pos += 1;
            let column = self.ident()?;
            Ok(ColumnRef::qualified(first, column))
        } else {
            Ok(ColumnRef::bare(first))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Value::Int(v)),
            Some(Token::Float(v)) => Ok(Value::Float(v)),
            Some(Token::Str(s)) => Ok(Value::Str(s)),
            other => Err(self.err(format!("expected literal, got {other:?}"))),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword(Keyword::Or) {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        while self.eat_keyword(Keyword::And) {
            let right = self.unary_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_keyword(Keyword::Not) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        if self.peek() == Some(&Token::Symbol("(")) {
            // Parenthesized boolean expression (never a bare subquery here:
            // subqueries only appear after IN).
            self.pos += 1;
            let inner = self.expr()?;
            self.expect_symbol(")")?;
            return Ok(inner);
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr, ParseError> {
        let left = match self.peek() {
            Some(Token::Int(_)) | Some(Token::Float(_)) | Some(Token::Str(_)) => {
                Scalar::Value(self.value()?)
            }
            _ => Scalar::Column(self.column_ref()?),
        };
        // Column-only predicate forms.
        if let Scalar::Column(col) = &left {
            let col = col.clone();
            let negated = self.peek() == Some(&Token::Keyword(Keyword::Not));
            let lookahead = if negated { self.peek2() } else { self.peek() };
            match lookahead {
                Some(Token::Keyword(Keyword::In)) => {
                    if negated {
                        self.pos += 1;
                    }
                    self.pos += 1; // IN
                    self.expect_symbol("(")?;
                    if self.peek() == Some(&Token::Keyword(Keyword::Select)) {
                        let sub = self.query()?;
                        self.expect_symbol(")")?;
                        return Ok(Expr::InSubquery { col, subquery: Box::new(sub), negated });
                    }
                    let mut values = vec![self.value()?];
                    while self.eat_symbol(",") {
                        values.push(self.value()?);
                    }
                    self.expect_symbol(")")?;
                    return Ok(Expr::InList { col, values, negated });
                }
                Some(Token::Keyword(Keyword::Like)) => {
                    if negated {
                        self.pos += 1;
                    }
                    self.pos += 1; // LIKE
                    match self.next() {
                        Some(Token::Str(pattern)) => {
                            return Ok(Expr::Like { col, pattern, negated })
                        }
                        _ => return Err(self.err("expected string pattern after LIKE")),
                    }
                }
                Some(Token::Keyword(Keyword::Between)) if !negated => {
                    self.pos += 1;
                    let low = self.value()?;
                    self.expect_keyword(Keyword::And)?;
                    let high = self.value()?;
                    return Ok(Expr::Between { col, low, high });
                }
                Some(Token::Keyword(Keyword::Is)) if !negated => {
                    self.pos += 1;
                    let negated = self.eat_keyword(Keyword::Not);
                    self.expect_keyword(Keyword::Null)?;
                    return Ok(Expr::IsNull { col, negated });
                }
                _ => {}
            }
        }
        // Binary comparison.
        let op = match self.next() {
            Some(Token::Symbol("=")) => CmpOp::Eq,
            Some(Token::Symbol("!=")) => CmpOp::Ne,
            Some(Token::Symbol("<")) => CmpOp::Lt,
            Some(Token::Symbol("<=")) => CmpOp::Le,
            Some(Token::Symbol(">")) => CmpOp::Gt,
            Some(Token::Symbol(">=")) => CmpOp::Ge,
            other => return Err(self.err(format!("expected comparison operator, got {other:?}"))),
        };
        let right = match self.peek() {
            Some(Token::Int(_)) | Some(Token::Float(_)) | Some(Token::Str(_)) => {
                Scalar::Value(self.value()?)
            }
            _ => Scalar::Column(self.column_ref()?),
        };
        Ok(Expr::Cmp { left, op, right })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_imdb_example_from_the_paper() {
        let sql = "SELECT t.id FROM title t, movie_companies mc \
                   WHERE t.id = mc.movie_id AND t.production_year > 2010 \
                   AND mc.company_id = 5";
        let q = parse(sql).unwrap();
        assert_eq!(q.body.from.len(), 2);
        let w = q.body.where_clause.as_ref().unwrap();
        assert_eq!(w.conjuncts().len(), 3);
        assert_eq!(q.sql(), sql);
    }

    #[test]
    fn parses_count_star() {
        let q = parse("SELECT COUNT(*) FROM title").unwrap();
        assert_eq!(
            q.body.projections[0],
            SelectItem::Aggregate { func: AggFunc::Count, arg: None, distinct: false }
        );
    }

    #[test]
    fn parses_in_list_and_union_equivalents_from_fig2() {
        let q1 = parse("SELECT name FROM user WHERE rank IN ('adm', 'sup')").unwrap();
        assert!(matches!(
            q1.body.where_clause,
            Some(Expr::InList { ref values, negated: false, .. }) if values.len() == 2
        ));
        let q3 = parse(
            "SELECT name FROM user WHERE rank = 'adm' \
             UNION SELECT name FROM user WHERE rank = 'sup'",
        )
        .unwrap();
        assert_eq!(q3.unions.len(), 1);
    }

    #[test]
    fn parses_in_subquery_from_fig2() {
        let q = parse(
            "SELECT SUM(balance) FROM accounts WHERE user_id IN \
             (SELECT user_id FROM user WHERE rank = 'adm')",
        )
        .unwrap();
        match q.body.where_clause.as_ref().unwrap() {
            Expr::InSubquery { subquery, .. } => {
                assert_eq!(subquery.body.from[0].table, "user");
            }
            other => panic!("expected InSubquery, got {other:?}"),
        }
    }

    #[test]
    fn parses_between() {
        let q = parse("SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b = 2").unwrap();
        let conjs = q.body.where_clause.as_ref().unwrap().conjuncts().len();
        assert_eq!(conjs, 2, "BETWEEN's AND must bind inside the predicate");
    }

    #[test]
    fn parses_like_and_not_like() {
        let q = parse("SELECT * FROM t WHERE name LIKE '%abc%' AND x NOT LIKE 'z%'").unwrap();
        let w = q.body.where_clause.unwrap();
        let c = w.conjuncts();
        assert!(matches!(c[0], Expr::Like { negated: false, .. }));
        assert!(matches!(c[1], Expr::Like { negated: true, .. }));
    }

    #[test]
    fn parses_explicit_join() {
        let q = parse("SELECT * FROM a JOIN b ON a.id = b.a_id WHERE a.x < 3").unwrap();
        assert_eq!(q.body.joins.len(), 1);
        assert_eq!(q.body.joins[0].table.table, "b");
    }

    #[test]
    fn parses_group_order_limit() {
        let q = parse(
            "SELECT kind_id, COUNT(*) FROM title GROUP BY kind_id \
             HAVING kind_id > 1 ORDER BY kind_id DESC LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.body.group_by.len(), 1);
        assert!(q.body.having.is_some());
        assert_eq!(q.body.order_by, vec![(ColumnRef::bare("kind_id"), true)]);
        assert_eq!(q.body.limit, Some(10));
    }

    #[test]
    fn parses_or_and_not() {
        let q = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND NOT (c = 3)").unwrap();
        let w = q.body.where_clause.unwrap();
        match w {
            Expr::And(l, r) => {
                assert!(matches!(*l, Expr::Or(..)));
                assert!(matches!(*r, Expr::Not(..)));
            }
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn parses_aliases_with_and_without_as() {
        let q = parse("SELECT * FROM title AS t, movie_companies mc").unwrap();
        assert_eq!(q.body.from[0].binding(), "t");
        assert_eq!(q.body.from[1].binding(), "mc");
    }

    #[test]
    fn parses_is_null() {
        let q = parse("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL").unwrap();
        let w = q.body.where_clause.unwrap();
        let c = w.conjuncts();
        assert!(matches!(c[0], Expr::IsNull { negated: false, .. }));
        assert!(matches!(c[1], Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("SELECT * FROM t WHERE a = 1 b").is_err());
    }

    #[test]
    fn rejects_sum_star() {
        assert!(parse("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn accepts_trailing_semicolon() {
        assert!(parse("SELECT * FROM t;").is_ok());
    }

    #[test]
    fn display_round_trips_through_parser() {
        let cases = [
            "SELECT COUNT(*) FROM title t, movie_companies mc \
             WHERE t.id = mc.movie_id AND t.production_year > 2010 AND mc.company_id = 5",
            "SELECT name FROM user WHERE rank IN ('adm', 'sup')",
            "SELECT SUM(balance) FROM accounts WHERE user_id IN \
             (SELECT user_id FROM user WHERE rank = 'adm')",
            "SELECT a.x FROM a JOIN b ON a.id = b.a_id WHERE a.y BETWEEN 1 AND 2",
            "SELECT kind_id, COUNT(DISTINCT id) FROM title GROUP BY kind_id \
             ORDER BY kind_id DESC LIMIT 5",
        ];
        for sql in cases {
            let q1 = parse(sql).unwrap();
            let q2 = parse(&q1.sql()).unwrap();
            assert_eq!(q1, q2, "round-trip failed for {sql}");
        }
    }
}
