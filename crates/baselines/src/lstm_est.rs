//! The LSTM-based estimator (Sun & Li, VLDB'20 style — the paper's
//! `LSTMCard`/`LSTMCost` baselines): the query is treated as a flat token
//! sequence, encoded with an LSTM, optionally concatenated with sample
//! bitmaps, and regressed with an MLP.
//!
//! Its deliberate weakness (which PreQR fixes) is that SQL keywords and
//! predicates are encoded together as plain text with no structure or
//! schema awareness.

use std::collections::HashMap;

use rand::rngs::StdRng;

use preqr_engine::{BitmapSampler, Database};
use preqr_nn::layers::{join, Embedding, Linear, LstmCell, Module};
use preqr_nn::{ops, Matrix, Tensor};
use preqr_sql::ast::Query;
use preqr_sql::normalize::linearize;

/// Token vocabulary for the LSTM baseline (word-level; literals are kept
/// as raw text, matching the baseline's lack of value-distribution
/// awareness — numbers are min-max normalized into a side channel).
pub struct LstmVocab {
    ids: HashMap<String, usize>,
}

impl LstmVocab {
    /// Builds from a corpus.
    pub fn build(corpus: &[Query]) -> Self {
        let mut ids = HashMap::new();
        ids.insert("[UNK]".to_string(), 0);
        for q in corpus {
            for t in linearize(q) {
                let text = canonical_text(&t);
                let next = ids.len();
                ids.entry(text).or_insert(next);
            }
        }
        Self { ids }
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when only `[UNK]` exists.
    pub fn is_empty(&self) -> bool {
        self.ids.len() <= 1
    }

    /// Encodes a query into `(token ids, numeric side-channel)`.
    pub fn encode(&self, q: &Query) -> (Vec<usize>, Vec<f32>) {
        let toks = linearize(q);
        let ids =
            toks.iter().map(|t| self.ids.get(&canonical_text(t)).copied().unwrap_or(0)).collect();
        let nums = toks
            .iter()
            .map(|t| match &t.value {
                Some(v) => (v.as_f64().unwrap_or(0.0).abs().max(1.0).log10() / 10.0) as f32,
                None => 0.0,
            })
            .collect();
        (ids, nums)
    }
}

/// Per-token sample-selectivity channel: the original estimator attaches
/// sample bitmaps at each plan scan node; the sequence-level analogue
/// marks each FROM-table token with that table's sampled selectivity,
/// 0 elsewhere.
pub fn table_channel(db: &Database, sampler: &BitmapSampler, q: &Query) -> Vec<f32> {
    let toks = linearize(q);
    let mut channel = vec![0.0f32; toks.len()];
    let mut cursor = 0usize;
    for (bi, t) in q.body.tables().iter().enumerate() {
        if let Some(pos) = (cursor..toks.len()).find(|&i| toks[i].text == t.table) {
            let frac = sampler.selectivity(db, q, bi).unwrap_or(0.0) as f32;
            channel[pos] = frac;
            cursor = pos + 1;
        }
    }
    channel
}

/// Literals collapse to a generic token (the baseline cannot represent
/// value distributions in its vocabulary).
fn canonical_text(t: &preqr_sql::normalize::LinToken) -> String {
    if t.value.is_some() {
        "[VAL]".to_string()
    } else {
        t.text.clone()
    }
}

/// The LSTM encoder + MLP regressor.
pub struct LstmEstimator {
    emb: Embedding,
    cell: LstmCell,
    head1: Linear,
    head2: Linear,
    bitmap_dim: usize,
}

/// Dimensions of the per-token side channels (literal magnitude +
/// table-selectivity).
pub const SIDE_CHANNELS: usize = 2;

impl LstmEstimator {
    /// Builds the model. `bitmap_dim` > 0 concatenates per-table sample
    /// bitmaps (pooled) to the final state.
    pub fn new(
        vocab: &LstmVocab,
        emb_dim: usize,
        hidden: usize,
        bitmap_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            emb: Embedding::new(vocab.len(), emb_dim, rng),
            cell: LstmCell::new(emb_dim + SIDE_CHANNELS, hidden, rng),
            head1: Linear::new(hidden + bitmap_dim, hidden, rng),
            head2: Linear::new(hidden, 1, rng),
            bitmap_dim,
        }
    }

    /// Encodes a query to the LSTM final hidden state (`1 × hidden`).
    /// `channel` is the per-token table-selectivity channel (zeros when
    /// sampling is disabled).
    pub fn encode(&self, ids: &[usize], nums: &[f32], channel: &[f32]) -> Tensor {
        let emb = self.emb.forward(ids);
        let side = Tensor::constant(Matrix::from_fn(nums.len(), SIDE_CHANNELS, |r, c| {
            if c == 0 {
                nums[r]
            } else {
                channel.get(r).copied().unwrap_or(0.0)
            }
        }));
        let seq = ops::concat_cols(&emb, &side);
        let (_, h, _) = self.cell.run(&seq);
        h
    }

    /// Predicts the regression target.
    pub fn forward(
        &self,
        ids: &[usize],
        nums: &[f32],
        channel: &[f32],
        bitmap: Option<&[f32]>,
    ) -> Tensor {
        let h = self.encode(ids, nums, channel);
        let h = match bitmap {
            Some(bits) => {
                let mut padded = vec![0.0f32; self.bitmap_dim];
                for (o, &b) in padded.iter_mut().zip(bits.iter()) {
                    *o = b;
                }
                let b = Tensor::constant(Matrix::from_vec(1, self.bitmap_dim, padded));
                ops::concat_cols(&h, &b)
            }
            None => {
                let b = Tensor::constant(Matrix::zeros(1, self.bitmap_dim));
                ops::concat_cols(&h, &b)
            }
        };
        self.head2.forward(&ops::relu(&self.head1.forward(&h)))
    }

    /// Pooled per-table bitmaps for a query (mean across tables).
    pub fn pooled_bitmap(
        db: &Database,
        sampler: &BitmapSampler,
        q: &Query,
        dim: usize,
    ) -> Vec<f32> {
        let n_tables = q.body.tables().len();
        let mut pooled = vec![0.0f32; dim];
        let mut count = 0.0f32;
        for bi in 0..n_tables {
            if let Ok(bits) = sampler.bitmap_for(db, q, bi) {
                for (o, &b) in pooled.iter_mut().zip(bits.iter()) {
                    *o += b;
                }
                count += 1.0;
            }
        }
        if count > 0.0 {
            for o in pooled.iter_mut() {
                *o /= count;
            }
        }
        pooled
    }
}

impl Module for LstmEstimator {
    fn collect_params(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        self.emb.collect_params(&join(prefix, "emb"), out);
        self.cell.collect_params(&join(prefix, "lstm"), out);
        self.head1.collect_params(&join(prefix, "head1"), out);
        self.head2.collect_params(&join(prefix, "head2"), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_sql::parser::parse;
    use preqr_train::{FnTask, Plan, StepOutput, Trainer, TrainerConfig};
    use rand::SeedableRng;

    fn corpus() -> Vec<Query> {
        // Literal magnitudes spread over decades of scale so the
        // log-magnitude side channel carries usable signal.
        (0..6)
            .map(|i| {
                parse(&format!(
                    "SELECT COUNT(*) FROM title t WHERE t.production_year > {}",
                    10i64.pow(i + 1)
                ))
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn vocab_collapses_literals() {
        let v = LstmVocab::build(&corpus());
        let (a, _) = v.encode(&corpus()[0]);
        let (b, _) = v.encode(&corpus()[5]);
        assert_eq!(a, b, "queries differing only in literal share token ids");
        let nums_a = v.encode(&corpus()[0]).1;
        assert!(nums_a.iter().any(|&x| x > 0.0), "numeric side channel set");
    }

    #[test]
    fn forward_shapes() {
        let v = LstmVocab::build(&corpus());
        let mut rng = StdRng::seed_from_u64(1);
        let m = LstmEstimator::new(&v, 8, 12, 4, &mut rng);
        let (ids, nums) = v.encode(&corpus()[0]);
        let zeros = vec![0.0; ids.len()];
        assert_eq!(m.encode(&ids, &nums, &zeros).shape(), (1, 12));
        assert_eq!(m.forward(&ids, &nums, &zeros, Some(&[1.0, 0.0])).shape(), (1, 1));
        assert_eq!(m.forward(&ids, &nums, &zeros, None).shape(), (1, 1));
    }

    #[test]
    fn learns_value_dependent_target_through_side_channel() {
        // Targets depend only on the literal magnitude, which the LSTM
        // can only see through the numeric side channel.
        let v = LstmVocab::build(&corpus());
        let mut rng = StdRng::seed_from_u64(2);
        let m = LstmEstimator::new(&v, 8, 12, 0, &mut rng);
        let data: Vec<(Vec<usize>, Vec<f32>, f32)> = (0..6)
            .map(|i| {
                let (ids, nums) = v.encode(&corpus()[i]);
                (ids, nums, i as f32 / 6.0)
            })
            .collect();
        let mut task = FnTask::new("test.lstm", data.len(), m.params(), |idx, _rng| {
            let (ids, nums, y) = &data[idx];
            let zeros = vec![0.0; ids.len()];
            let pred = m.forward(ids, nums, &zeros, None);
            let loss = ops::mse_loss(&pred, &Matrix::full(1, 1, *y));
            let scalar = f64::from(loss.value_clone().get(0, 0));
            loss.backward();
            StepOutput { loss: scalar, ..StepOutput::default() }
        });
        let config = TrainerConfig::new(
            Plan::Epochs { epochs: 120, chunk: data.len(), shuffle: false },
            5e-3,
        );
        let report = Trainer::new(config).fit(&mut task, &mut rng);
        let last = report.last_chunk_loss;
        // Different literals → different log-magnitudes → fit must be
        // better than predicting the mean (variance of targets ≈ 0.097).
        assert!(last < 0.05, "LSTM failed to exploit value side channel: {last}");
    }
}
