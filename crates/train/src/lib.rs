//! `preqr-train` — the shared training harness.
//!
//! PreQR is one pre-training objective plus four fine-tuned downstream
//! tasks, which this workspace used to implement as ten copy-pasted
//! epoch loops. This crate is the single place they all run now: a
//! [`TrainTask`] describes *what* one example's loss computation is, and
//! the [`Trainer`] owns *how* training proceeds — deterministic
//! Fisher–Yates shuffling, gradient-accumulation chunking, pluggable
//! learning-rate [`Schedule`]s, validation early stopping, periodic
//! checkpointing with crash-resume, and uniform `train.*` observability.
//!
//! ## Determinism contract
//!
//! Given the same task, config, and RNG state, [`Trainer::fit`] consumes
//! the RNG in exactly the order the hand-rolled loops did (shuffle draws
//! at epoch start, then per-example draws in visit order) and performs
//! floating-point accumulation in the same order, so every migrated
//! loop's loss/accuracy trajectory is bit-identical to its pre-harness
//! implementation at a fixed seed. The in-tree [`reference`] module keeps
//! an independently written copy of the legacy loop shape; the golden
//! tests pin `Trainer` against it bit-for-bit.
//!
//! Checkpointing composes with determinism through a reseed trick: at
//! every checkpoint boundary the trainer draws one `u64` from the live
//! RNG, persists it, and reseeds the live RNG from it. RNG state on disk
//! is therefore a single word, and an interrupted-then-resumed run
//! replays the exact stream of an uninterrupted run with the same
//! checkpoint cadence. With checkpointing disabled the RNG stream is
//! untouched (bit-identical to the legacy loops).

#![warn(missing_docs)]

pub mod checkpoint;
pub mod reference;
pub mod schedule;
pub mod stats;
pub mod task;
pub mod trainer;

pub use checkpoint::CheckpointConfig;
pub use schedule::{scheduled_steps, Schedule};
pub use stats::{EpochStats, TrainReport};
pub use task::{FnTask, StepOutput, TrainTask};
pub use trainer::{Plan, Trainer, TrainerConfig};
