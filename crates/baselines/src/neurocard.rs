//! A NeuroCard-style *data-driven* join-cardinality estimator.
//!
//! NeuroCard (Yang et al., VLDB'21) learns a single density model over the
//! full outer join of the database and answers queries by progressive
//! sampling. This reproduction keeps the method's operational core — and
//! therefore its characteristic error profile — without the deep
//! autoregressive model: it progressively samples join paths from the
//! *unfiltered* root table with a fixed sample budget.
//!
//! Consequences (matching Table 8's shape):
//! * multi-join queries with moderate selectivity (JOB-light) are
//!   estimated very accurately, because fanout sampling follows the true
//!   correlation structure of the data;
//! * highly selective point predicates (Synthetic/Scale) suffer sampling
//!   variance — few or zero of the budgeted samples hit the predicate
//!   region, so the tail error grows.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use preqr_engine::storage::ColumnData;
use preqr_engine::{Database, ExecError};
use preqr_sql::ast::{CmpOp, Expr, Query, Scalar};

use preqr_engine::bind::{Bindings, BoundColumn};
use preqr_engine::filter::{compile, Compiled};

/// The sampling estimator.
pub struct SamplingEstimator<'a> {
    db: &'a Database,
    /// Hash indexes `(table, column) → value → row ids` for join columns.
    indexes: HashMap<(String, String), HashMap<i64, Vec<u32>>>,
    /// Sample budget per query.
    pub samples: usize,
    seed: u64,
}

impl<'a> SamplingEstimator<'a> {
    /// Builds join-column indexes for every foreign-key endpoint.
    pub fn new(db: &'a Database, samples: usize, seed: u64) -> Self {
        let mut indexes = HashMap::new();
        for fk in db.schema().foreign_keys() {
            for (t, c) in [(&fk.from_table, &fk.from_column), (&fk.to_table, &fk.to_column)] {
                let key = (t.clone(), c.clone());
                if indexes.contains_key(&key) {
                    continue;
                }
                let mut idx: HashMap<i64, Vec<u32>> = HashMap::new();
                if let Some(ColumnData::Int(vals)) = db.column(t, c) {
                    for (r, &v) in vals.iter().enumerate() {
                        idx.entry(v).or_default().push(r as u32);
                    }
                }
                indexes.insert(key, idx);
            }
        }
        Self { db, indexes, samples, seed }
    }

    /// Estimates the join cardinality of a (star-shaped or chained)
    /// conjunctive query by progressive sampling.
    ///
    /// # Errors
    /// Name-resolution failures or unsupported query shapes.
    pub fn estimate(&self, q: &Query) -> Result<f64, ExecError> {
        let stmt = &q.body;
        let bindings = Bindings::of(stmt, self.db.schema())?;
        // Partition predicates like the executor does.
        let mut table_preds: Vec<Vec<Expr>> = vec![Vec::new(); bindings.len()];
        let mut join_preds: Vec<(BoundColumn, BoundColumn)> = Vec::new();
        let mut conjuncts: Vec<&Expr> = Vec::new();
        if let Some(w) = &stmt.where_clause {
            conjuncts.extend(w.conjuncts());
        }
        for j in &stmt.joins {
            conjuncts.extend(j.on.conjuncts());
        }
        for c in conjuncts {
            if let Expr::Cmp { left: Scalar::Column(a), op: CmpOp::Eq, right: Scalar::Column(b) } =
                c
            {
                let ba = bindings.resolve(a, self.db.schema())?;
                let bb = bindings.resolve(b, self.db.schema())?;
                if ba.table != bb.table {
                    join_preds.push((ba, bb));
                    continue;
                }
            }
            let cols = c.columns();
            let t = match cols.first() {
                Some(col) => bindings.resolve(col, self.db.schema())?.table,
                None => 0,
            };
            table_preds[t].push(c.clone());
        }
        // Compile per-table predicates.
        let compiled: Vec<Option<Compiled>> = (0..bindings.len())
            .map(|t| {
                if table_preds[t].is_empty() {
                    Ok(None)
                } else {
                    compile(&Expr::and_all(table_preds[t].clone()), t, &bindings, self.db).map(Some)
                }
            })
            .collect::<Result<_, _>>()?;

        let root = 0usize;
        let root_table = self
            .db
            .table(bindings.table_name(root))
            .ok_or_else(|| ExecError::UnknownTable(bindings.table_name(root).to_string()))?;
        let n_root = root_table.row_count();
        if n_root == 0 {
            return Ok(1.0);
        }
        // Root conjuncts compiled *separately*: the factorized density.
        let root_conjuncts: Vec<Compiled> = table_preds[root]
            .iter()
            .map(|c| compile(c, root, &bindings, self.db))
            .collect::<Result<_, _>>()?;

        let mut rng = StdRng::seed_from_u64(self.seed);
        let sample_rows: Vec<u32> =
            (0..self.samples).map(|_| rng.random_range(0..n_root) as u32).collect();

        // Phase 1: per-conjunct selectivities multiplied under the
        // factorization's independence assumption.
        let mut sel_root = 1.0f64;
        for c in &root_conjuncts {
            let hits = sample_rows.iter().filter(|&&r| c.eval(root_table, r as usize)).count();
            sel_root *= hits as f64 / self.samples as f64;
        }

        // Phase 2: join fanout factor from progressive sampling. Walk
        // from root rows that pass all root conjuncts (exact), falling
        // back to all samples when the sample misses the predicate
        // region entirely.
        let passing: Vec<u32> = sample_rows
            .iter()
            .copied()
            .filter(|&r| root_conjuncts.iter().all(|c| c.eval(root_table, r as usize)))
            .collect();
        let walk_rows: &[u32] = if passing.is_empty() { &sample_rows } else { &passing };

        let mut total_weight = 0.0f64;
        for &row in walk_rows {
            let mut weight = 1.0f64;
            let mut current: Vec<Option<u32>> = vec![None; bindings.len()];
            current[root] = Some(row);
            let mut bound = vec![false; bindings.len()];
            bound[root] = true;
            let mut remaining: Vec<usize> = (0..join_preds.len()).collect();
            let mut dead = false;
            while !remaining.is_empty() {
                let pos = remaining.iter().position(|&j| {
                    let (a, b) = join_preds[j];
                    bound[a.table] != bound[b.table]
                });
                let Some(pos) = pos else { break };
                let j = remaining.remove(pos);
                let (a, b) = join_preds[j];
                let (src, dst) = if bound[a.table] { (a, b) } else { (b, a) };
                let src_table = self.db.table(bindings.table_name(src.table)).expect("bound");
                let src_row = current[src.table].expect("bound row");
                let key = match src_table.columns[src.column].get_f64(src_row as usize) {
                    Some(v) => v as i64,
                    None => {
                        dead = true;
                        break;
                    }
                };
                let dst_name = bindings.table_name(dst.table).to_string();
                let dst_schema_col =
                    &self.db.schema().table(&dst_name).expect("table").columns[dst.column];
                let idx = self.indexes.get(&(dst_name.clone(), dst_schema_col.name.clone()));
                let dst_table = self.db.table(&dst_name).expect("table");
                let matches: Vec<u32> = match idx {
                    Some(map) => map.get(&key).cloned().unwrap_or_default(),
                    None => (0..dst_table.row_count() as u32)
                        .filter(|&r| {
                            dst_table.columns[dst.column].get_f64(r as usize) == Some(key as f64)
                        })
                        .collect(),
                };
                let filtered: Vec<u32> = match &compiled[dst.table] {
                    Some(p) => {
                        matches.into_iter().filter(|&r| p.eval(dst_table, r as usize)).collect()
                    }
                    None => matches,
                };
                if filtered.is_empty() {
                    dead = true;
                    break;
                }
                weight *= filtered.len() as f64;
                current[dst.table] = Some(filtered[rng.random_range(0..filtered.len())]);
                bound[dst.table] = true;
            }
            if dead {
                continue;
            }
            // Unjoined tables (cross products) contribute their filtered
            // size exactly once per sample.
            for t in 0..bindings.len() {
                if !bound[t] {
                    let table = self.db.table(bindings.table_name(t)).expect("table");
                    let count = match &compiled[t] {
                        Some(p) => (0..table.row_count()).filter(|&r| p.eval(table, r)).count(),
                        None => table.row_count(),
                    };
                    weight *= count as f64;
                    bound[t] = true;
                }
            }
            total_weight += weight;
        }
        let join_factor = total_weight / walk_rows.len().max(1) as f64;
        Ok((n_root as f64 * sel_root * join_factor).max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_data::imdb::{generate, ImdbConfig};
    use preqr_engine::execute;
    use preqr_sql::parser::parse;

    fn qerror(est: f64, truth: f64) -> f64 {
        let (e, t) = (est.max(1.0), truth.max(1.0));
        (e / t).max(t / e)
    }

    #[test]
    fn accurate_on_pure_fk_join() {
        let db = generate(ImdbConfig::tiny());
        let est = SamplingEstimator::new(&db, 400, 7);
        let q = parse("SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id")
            .unwrap();
        let truth = execute(&db, &q).unwrap().join_cardinality as f64;
        let guess = est.estimate(&q).unwrap();
        assert!(qerror(guess, truth) < 1.3, "fk join qerr {}", qerror(guess, truth));
    }

    #[test]
    fn good_on_moderate_multijoin() {
        let db = generate(ImdbConfig::tiny());
        let est = SamplingEstimator::new(&db, 800, 7);
        let q = parse(
            "SELECT COUNT(*) FROM title t, movie_companies mc, movie_keyword mk \
             WHERE t.id = mc.movie_id AND t.id = mk.movie_id AND t.production_year > 1990",
        )
        .unwrap();
        let truth = execute(&db, &q).unwrap().join_cardinality as f64;
        let guess = est.estimate(&q).unwrap();
        assert!(
            qerror(guess, truth) < 2.0,
            "multijoin qerr {} (guess {guess}, truth {truth})",
            qerror(guess, truth)
        );
    }

    #[test]
    fn struggles_with_highly_selective_point_predicates() {
        // The data-driven estimator's weakness: a point predicate hitting
        // a handful of rows is rarely sampled with a small budget.
        let db = generate(ImdbConfig::tiny());
        let est = SamplingEstimator::new(&db, 100, 7);
        let q = parse("SELECT COUNT(*) FROM title t WHERE t.id = 17").unwrap();
        let guess = est.estimate(&q).unwrap();
        // Either misses entirely (→ 1.0 floor) or overshoots by the
        // inverse sampling fraction.
        let truth = 1.0;
        assert!(qerror(guess, truth) <= 400.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let db = generate(ImdbConfig::tiny());
        let q = parse("SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id")
            .unwrap();
        let a = SamplingEstimator::new(&db, 200, 9).estimate(&q).unwrap();
        let b = SamplingEstimator::new(&db, 200, 9).estimate(&q).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cross_product_queries_are_handled() {
        let db = generate(ImdbConfig::tiny());
        let est = SamplingEstimator::new(&db, 200, 7);
        let q = parse("SELECT COUNT(*) FROM title t, kind_type kt WHERE t.production_year > 1990")
            .unwrap();
        let truth = execute(&db, &q).unwrap().join_cardinality as f64;
        let guess = est.estimate(&q).unwrap();
        assert!(qerror(guess, truth) < 2.0, "cross product qerr {}", qerror(guess, truth));
    }
}
