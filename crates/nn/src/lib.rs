//! `preqr-nn` — the neural substrate of the PreQR reproduction.
//!
//! A small, dependency-light deep-learning library: dense [`Matrix`]
//! storage, a reverse-mode autograd [`Tensor`] graph, the layers required
//! by the PreQR model family (linear, embedding, layer-norm, multi-head
//! attention, transformer encoder, LSTM/BiLSTM, relational GCN), Adam/SGD
//! optimizers, and a binary checkpoint format.
//!
//! The dense kernels in [`matrix`] route through a persistent worker pool
//! ([`parallel`]) above a FLOP threshold: work is partitioned by output
//! rows, which keeps every per-element reduction in the same floating-point
//! order as the retained serial reference kernels, so results are
//! bit-identical at any thread count (`PREQR_THREADS`, defaulting to the
//! available hardware parallelism). Large shapes additionally use a
//! cache-blocked, packed serial microkernel under the row-parallel loop.
//!
//! # Example
//!
//! ```
//! use preqr_nn::layers::{Mlp, Module};
//! use preqr_nn::optim::Adam;
//! use preqr_nn::{ops, Matrix, Tensor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mlp = Mlp::new(&[2, 8, 1], &mut rng);
//! let mut opt = Adam::new(mlp.params(), 1e-2);
//! let x = Tensor::constant(Matrix::from_vec(1, 2, vec![0.5, -0.5]));
//! let target = Matrix::from_vec(1, 1, vec![1.0]);
//! for _ in 0..10 {
//!     let loss = ops::mse_loss(&mlp.forward(&x), &target);
//!     loss.backward();
//!     opt.step();
//! }
//! ```

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index-heavy numeric kernels read clearer with explicit indices
pub mod init;
pub mod layers;
pub mod matrix;
pub mod ops;
pub mod optim;
pub mod parallel;
mod rowops;
pub mod serialize;
pub mod tensor;

pub use matrix::Matrix;
pub use tensor::{no_grad, no_grad_active, NoGradGuard, Tensor};
