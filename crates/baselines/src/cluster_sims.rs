//! Classic query-similarity metrics (§4.3.1): Aouiche et al. (binary
//! clause vectors, Hamming), Aligon et al. (clause sets, Jaccard),
//! Makiyama et al. (term frequency, cosine), plus the generic cosine
//! helpers used by One-hotDis, Seq2SeqDis, and PreQRDis.

use std::collections::HashSet;

use preqr_sql::ast::{Query, SelectItem};
use preqr_sql::distance::{jaccard, tf_cosine};

/// Aouiche et al.: binary presence vector over (selection columns, join
/// columns, group-by columns); similarity = 1 − normalized Hamming
/// distance.
pub fn aouiche_similarity(a: &Query, b: &Query, universe: &[String]) -> f64 {
    let va = aouiche_vector(a, universe);
    let vb = aouiche_vector(b, universe);
    if universe.is_empty() {
        return 1.0;
    }
    let hamming = va.iter().zip(&vb).filter(|(x, y)| x != y).count();
    1.0 - hamming as f64 / universe.len() as f64
}

/// The binary feature vector of Aouiche et al. over a fixed column
/// universe.
pub fn aouiche_vector(q: &Query, universe: &[String]) -> Vec<bool> {
    let mut present: HashSet<String> = HashSet::new();
    for s in q.selects() {
        if let Some(w) = &s.where_clause {
            for c in w.columns() {
                present.insert(c.column.clone());
            }
        }
        for g in &s.group_by {
            present.insert(g.column.clone());
        }
        for item in &s.projections {
            if let SelectItem::Column(c) = item {
                present.insert(c.column.clone());
            }
        }
    }
    universe.iter().map(|c| present.contains(c)).collect()
}

/// The column universe for a workload (sorted, deduplicated).
pub fn column_universe(queries: &[Query]) -> Vec<String> {
    let mut set: HashSet<String> = HashSet::new();
    for q in queries {
        for s in q.selects() {
            if let Some(w) = &s.where_clause {
                for c in w.columns() {
                    set.insert(c.column.clone());
                }
            }
            for g in &s.group_by {
                set.insert(g.column.clone());
            }
            for item in &s.projections {
                if let SelectItem::Column(c) = item {
                    set.insert(c.column.clone());
                }
            }
        }
    }
    let mut v: Vec<String> = set.into_iter().collect();
    v.sort();
    v
}

/// Aligon et al.: Jaccard over the union of selection/join/group-by item
/// sets (selection and joins weighted highest per their finding).
pub fn aligon_similarity(a: &Query, b: &Query) -> f64 {
    let fa = clause_items(a);
    let fb = clause_items(b);
    0.5 * jaccard(&fa.0, &fb.0) + 0.35 * jaccard(&fa.1, &fb.1) + 0.15 * jaccard(&fa.2, &fb.2)
}

/// `(selection+join tokens, projection tokens, group/order tokens)`.
fn clause_items(q: &Query) -> (Vec<String>, Vec<String>, Vec<String>) {
    let mut sel = Vec::new();
    let mut proj = Vec::new();
    let mut group = Vec::new();
    for s in q.selects() {
        for t in s.tables() {
            sel.push(t.table.clone());
        }
        if let Some(w) = &s.where_clause {
            for c in w.columns() {
                sel.push(c.column.clone());
            }
        }
        for item in &s.projections {
            proj.push(item.to_string());
        }
        for g in &s.group_by {
            group.push(g.column.clone());
        }
        for (o, _) in &s.order_by {
            group.push(o.column.clone());
        }
    }
    (sel, proj, group)
}

/// Makiyama et al.: term-frequency cosine over clause-tagged tokens
/// (`sel:col`, `from:table`, `where:col`, `group:col`, `order:col`).
pub fn makiyama_similarity(a: &Query, b: &Query) -> f64 {
    tf_cosine(&makiyama_terms(a), &makiyama_terms(b))
}

fn makiyama_terms(q: &Query) -> Vec<String> {
    let mut out = Vec::new();
    for s in q.selects() {
        for item in &s.projections {
            out.push(format!("sel:{item}"));
        }
        for t in s.tables() {
            out.push(format!("from:{}", t.table));
        }
        if let Some(w) = &s.where_clause {
            for c in w.columns() {
                out.push(format!("where:{}", c.column));
            }
        }
        for g in &s.group_by {
            out.push(format!("group:{}", g.column));
        }
        for (o, _) in &s.order_by {
            out.push(format!("order:{}", o.column));
        }
    }
    out
}

/// Cosine similarity of two dense vectors (used by One-hotDis,
/// Seq2SeqDis and PreQRDis).
pub fn cosine(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine dimension mismatch");
    let dot: f64 = a.iter().zip(b).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum();
    let na: f64 = a.iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_sql::parser::parse;

    fn q(sql: &str) -> Query {
        parse(sql).unwrap()
    }

    #[test]
    fn aouiche_identical_queries_are_similar() {
        let a = q("SELECT name FROM user WHERE rank = 'adm'");
        let u = column_universe(std::slice::from_ref(&a));
        assert_eq!(aouiche_similarity(&a, &a, &u), 1.0);
    }

    #[test]
    fn aouiche_is_blind_to_constants_and_tables() {
        // The known weakness: column sets alone conflate queries over the
        // same columns.
        let a = q("SELECT name FROM user WHERE rank = 'adm'");
        let b = q("SELECT name FROM customer WHERE rank = 'xyz'");
        let u = column_universe(&[a.clone(), b.clone()]);
        assert_eq!(aouiche_similarity(&a, &b, &u), 1.0);
    }

    #[test]
    fn aligon_uses_tables_too() {
        let a = q("SELECT name FROM user WHERE rank = 'adm'");
        let b = q("SELECT name FROM customer WHERE rank = 'adm'");
        assert!(aligon_similarity(&a, &b) < aligon_similarity(&a, &a));
        assert!((aligon_similarity(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn makiyama_tracks_term_frequencies() {
        let a = q("SELECT COUNT(*) FROM orders WHERE carrier_id = 1");
        let b = q("SELECT COUNT(*) FROM orders WHERE carrier_id = 9");
        let c = q("SELECT name FROM item WHERE category = 'food'");
        assert!(makiyama_similarity(&a, &b) > makiyama_similarity(&a, &c));
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-9);
        assert_eq!(cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert!(cosine(&[1.0, 1.0], &[-1.0, -1.0]) < -0.99);
    }

    #[test]
    fn column_universe_is_sorted_dedup() {
        let qs = vec![q("SELECT a FROM t WHERE b = 1"), q("SELECT a FROM t WHERE c = 2 AND b = 3")];
        assert_eq!(column_universe(&qs), vec!["a", "b", "c"]);
    }
}
