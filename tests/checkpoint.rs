//! Checkpointing: models rebuilt deterministically from the same corpus
//! accept each other's parameters and produce identical encodings.

use preqr::{PreqrConfig, SqlBert};
use preqr_data::imdb::{generate, ImdbConfig};
use preqr_data::workloads;
use preqr_nn::layers::Module;
use preqr_nn::serialize;
use preqr_tasks::setup::value_buckets_from_db;

#[test]
fn save_load_round_trip_reproduces_encodings() {
    let db = generate(ImdbConfig::tiny());
    let corpus = workloads::pretrain_corpus(&db, 40, 7);
    let buckets = value_buckets_from_db(&db, 8);
    let mut a = SqlBert::new(&corpus, db.schema(), buckets.clone(), PreqrConfig::test());
    a.pretrain(&corpus[..20], 1, 2e-3);

    let mut buf = Vec::new();
    serialize::write_params(&mut buf, &a.named_params("m")).unwrap();

    // A fresh model with the same deterministic build accepts the params.
    let b = SqlBert::new(&corpus, db.schema(), buckets, PreqrConfig::test());
    let loaded = serialize::read_params(&mut buf.as_slice()).unwrap();
    serialize::apply_params(&b.named_params("m"), &loaded).unwrap();

    let q = &corpus[3];
    assert_eq!(a.encode(q), b.encode(q), "loaded model must encode identically");
}

#[test]
fn save_load_file_helpers_round_trip() {
    let db = generate(ImdbConfig::tiny());
    let corpus = workloads::pretrain_corpus(&db, 30, 7);
    let buckets = value_buckets_from_db(&db, 8);
    let mut a = SqlBert::new(&corpus, db.schema(), buckets.clone(), PreqrConfig::test());
    a.pretrain(&corpus[..10], 1, 2e-3);
    // Unique per-process directory: concurrent test runs (or a stale file
    // from a crashed one) must never race on a shared fixed path.
    let dir = std::env::temp_dir().join(format!("preqr_ckpt_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.bin");
    a.save(&path).unwrap();
    let b = SqlBert::new(&corpus, db.schema(), buckets, PreqrConfig::test());
    b.load(&path).unwrap();
    assert_eq!(a.encode(&corpus[0]), b.encode(&corpus[0]));
    // Clean up on success only — a failure leaves the artifact for triage.
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn mismatched_architecture_is_rejected() {
    let db = generate(ImdbConfig::tiny());
    let corpus = workloads::pretrain_corpus(&db, 30, 7);
    let buckets = value_buckets_from_db(&db, 8);
    let a = SqlBert::new(&corpus, db.schema(), buckets.clone(), PreqrConfig::test());
    let mut buf = Vec::new();
    serialize::write_params(&mut buf, &a.named_params("m")).unwrap();
    let loaded = serialize::read_params(&mut buf.as_slice()).unwrap();
    // A different width must fail shape validation.
    let bigger = PreqrConfig { d_model: 64, ..PreqrConfig::test() };
    let b = SqlBert::new(&corpus, db.schema(), buckets, bigger);
    assert!(serialize::apply_params(&b.named_params("m"), &loaded).is_err());
}
