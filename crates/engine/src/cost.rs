//! A PostgreSQL-flavoured plan cost model.
//!
//! The cost-estimation task (Tables 9, 11) needs two things: a *true*
//! execution cost (the paper measures wall-clock on PG; here cost is the
//! model evaluated on the executor's true per-step cardinalities, which is
//! deterministic and hardware-independent) and the *PG estimate* (the same
//! model on the analytic estimator's per-step cardinalities).

use serde::{Deserialize, Serialize};

/// Per-operation cost coefficients (relative units, PG-like ratios).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost to scan one base-table row.
    pub seq_tuple: f64,
    /// Cost to process one filtered row (predicate evaluation + hash
    /// build/probe participation).
    pub cpu_tuple: f64,
    /// Cost to emit one join-output row.
    pub join_tuple: f64,
    /// Fixed startup cost.
    pub startup: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Intermediate-result processing dominates (as in real execution
        // time, which the paper's cost task targets); sequential scans of
        // the always-known base tables are comparatively cheap, so cost
        // estimation quality hinges on cardinality estimation quality.
        Self { seq_tuple: 0.001, cpu_tuple: 0.05, join_tuple: 0.5, startup: 1.0 }
    }
}

impl CostModel {
    /// Plan cost from base-table scan sizes, filtered sizes, and per-join
    /// output sizes. The join term is superlinear (`n·log₂(n)`-ish, as
    /// hash-table build/probe with spills behaves in practice), so
    /// cardinality misestimates amplify in cost space — the behaviour the
    /// paper's execution-time cost task exhibits.
    pub fn plan_cost(&self, base_rows: &[f64], filtered: &[f64], join_sizes: &[f64]) -> f64 {
        let scan: f64 = base_rows.iter().sum::<f64>() * self.seq_tuple;
        let cpu: f64 = filtered.iter().sum::<f64>() * self.cpu_tuple;
        let join: f64 =
            join_sizes.iter().map(|&n| n * (n + 2.0).log2()).sum::<f64>() * self.join_tuple;
        self.startup + scan + cpu + join
    }

    /// Cost from the executor's `step_cardinalities` layout: the first
    /// `num_tables` entries are filtered sizes, the rest join-output
    /// sizes. `base_rows` are the unfiltered table sizes.
    pub fn cost_from_steps(&self, base_rows: &[f64], steps: &[u64], num_tables: usize) -> f64 {
        let filtered: Vec<f64> = steps.iter().take(num_tables).map(|&x| x as f64).collect();
        let joins: Vec<f64> = steps.iter().skip(num_tables).map(|&x| x as f64).collect();
        self.plan_cost(base_rows, &filtered, &joins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_monotone_in_every_component() {
        let m = CostModel::default();
        let base = m.plan_cost(&[1000.0], &[100.0], &[50.0]);
        assert!(m.plan_cost(&[2000.0], &[100.0], &[50.0]) > base);
        assert!(m.plan_cost(&[1000.0], &[500.0], &[50.0]) > base);
        assert!(m.plan_cost(&[1000.0], &[100.0], &[500.0]) > base);
    }

    #[test]
    fn empty_plan_costs_startup() {
        let m = CostModel::default();
        assert_eq!(m.plan_cost(&[], &[], &[]), m.startup);
    }

    #[test]
    fn steps_layout_splits_filtered_and_joins() {
        let m = CostModel::default();
        let via_steps = m.cost_from_steps(&[100.0, 200.0], &[10, 20, 5], 2);
        let direct = m.plan_cost(&[100.0, 200.0], &[10.0, 20.0], &[5.0]);
        assert_eq!(via_steps, direct);
    }

    #[test]
    fn join_output_dominates_at_ratio() {
        // join_tuple is the most expensive per-row coefficient, as hash
        // join output materialization dominates in practice.
        let m = CostModel::default();
        assert!(m.join_tuple > m.cpu_tuple && m.cpu_tuple > m.seq_tuple);
    }
}
