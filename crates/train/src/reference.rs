//! An independently written copy of the *legacy* training-loop shape.
//!
//! Before this crate existed, every workload hand-rolled the same loop:
//! optional Fisher–Yates shuffle, gradient accumulation over fixed
//! chunks, `set_lr` + `step` per chunk, per-item f64 loss accumulation,
//! and (for the estimation trainers) epoch-end validation with
//! patience-3 early stopping and best-snapshot restore. This module
//! keeps that shape alive — no observability, no checkpointing, nothing
//! shared with [`crate::Trainer`]'s control flow — so the golden tests
//! can pin `Trainer::fit` against it bit-for-bit, and the bench harness
//! can measure Trainer-vs-legacy overhead.
//!
//! Do not "fix" this module to match `Trainer`; its value is that it was
//! written from the legacy loops, not from the trainer.

use preqr_nn::optim::Adam;
use preqr_nn::{Matrix, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

use crate::stats::{EpochStats, TrainReport};
use crate::task::TrainTask;
use crate::trainer::{Plan, TrainerConfig};

/// Runs `task` through the legacy loop shape described by `config`.
///
/// Checkpointing and halting are ignored (the legacy loops had
/// neither); everything else — shuffling, chunking, LR scheduling,
/// early stopping, snapshot restore — follows the pre-refactor code.
pub fn run(task: &mut dyn TrainTask, config: &TrainerConfig, rng: &mut StdRng) -> TrainReport {
    match config.plan {
        Plan::Epochs { epochs, chunk, shuffle } => {
            run_epochs(task, config, rng, epochs, chunk.max(1), shuffle)
        }
        Plan::Window { steps, take } => run_window(task, config, rng, steps, take),
    }
}

/// The `SqlBert::pretrain` / estimation-trainer shape.
fn run_epochs(
    task: &mut dyn TrainTask,
    config: &TrainerConfig,
    rng: &mut StdRng,
    epochs: usize,
    chunk: usize,
    shuffle: bool,
) -> TrainReport {
    let params = task.params();
    let mut opt = Adam::new(params.clone(), config.lr);
    let mut stats = Vec::with_capacity(epochs);
    let mut step: u64 = 0;
    let mut best = f64::INFINITY;
    let mut best_snap: Option<Vec<Matrix>> = None;
    let mut patience = 0usize;
    let mut early_stopped = false;
    let mut last_chunk_loss = 0.0f64;
    for epoch in 0..epochs {
        let mut order: Vec<usize> = (0..task.len()).collect();
        if shuffle {
            for i in (1..order.len()).rev() {
                order.swap(i, rng.random_range(0..=i));
            }
        }
        let mut total_loss = 0.0f64;
        let mut total_masked = 0usize;
        let mut total_correct = 0usize;
        let mut samples = 0usize;
        let epoch_start_step = step;
        for chunk_idxs in order.chunks(chunk) {
            task.chunk_start();
            let mut batch_loss = 0.0f64;
            for &idx in chunk_idxs {
                let out = task.step(idx, rng);
                batch_loss += out.loss;
                total_loss += out.loss;
                total_masked += out.masked;
                total_correct += out.correct;
                samples += 1;
            }
            last_chunk_loss = batch_loss / chunk_idxs.len().max(1) as f64;
            opt.set_lr(config.schedule.lr_at(config.lr, step));
            opt.step();
            step += 1;
            task.post_step();
        }
        let epoch_loss = total_loss / samples.max(1) as f64;
        let epoch_acc = total_correct as f64 / total_masked.max(1) as f64;
        let val = task.eval();
        let st = EpochStats {
            epoch,
            loss: epoch_loss,
            accuracy: epoch_acc,
            samples,
            steps: step - epoch_start_step,
            masked: total_masked,
            correct: total_correct,
            val,
        };
        task.epoch_end(&st);
        stats.push(st);
        if let (Some(max_patience), Some(v)) = (config.patience, val) {
            if v < best {
                best = v;
                best_snap = Some(params.iter().map(Tensor::value_clone).collect());
                patience = 0;
            } else {
                patience += 1;
                if patience >= max_patience {
                    task.on_early_stop();
                    early_stopped = true;
                    break;
                }
            }
        }
    }
    if let Some(snap) = best_snap {
        for (p, m) in params.iter().zip(snap) {
            p.set_value(m);
        }
    }
    TrainReport { stats, steps: step, early_stopped, halted: false, last_chunk_loss }
}

/// The `update.rs::train_subset` shape: a sliding window over the
/// prepared examples, one optimizer step per window.
fn run_window(
    task: &mut dyn TrainTask,
    config: &TrainerConfig,
    rng: &mut StdRng,
    steps: usize,
    take: usize,
) -> TrainReport {
    let n = task.len();
    let params = task.params();
    let mut opt = Adam::new(params, config.lr);
    let mut last_chunk_loss = 0.0f64;
    let mut total_loss = 0.0f64;
    let mut samples = 0usize;
    for s in 0..steps {
        task.chunk_start();
        let batch: Vec<usize> =
            if n == 0 { Vec::new() } else { (s % n..n).take(take.min(n)).collect() };
        let mut batch_loss = 0.0f64;
        for &idx in &batch {
            let out = task.step(idx, rng);
            batch_loss += out.loss;
            total_loss += out.loss;
            samples += 1;
        }
        opt.set_lr(config.schedule.lr_at(config.lr, s as u64));
        opt.step();
        task.post_step();
        last_chunk_loss = batch_loss / batch.len().max(1) as f64;
    }
    let st = EpochStats {
        epoch: 0,
        loss: total_loss / samples.max(1) as f64,
        accuracy: 0.0,
        samples,
        steps: steps as u64,
        masked: 0,
        correct: 0,
        val: None,
    };
    TrainReport {
        stats: vec![st],
        steps: steps as u64,
        early_stopped: false,
        halted: false,
        last_chunk_loss,
    }
}
