//! Weight initialization helpers.

use rand::Rng;

use crate::matrix::Matrix;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(-a..a))
}

/// Normal initialization with the given standard deviation (Box–Muller).
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        let u1: f32 = rng.random_range(1e-7..1.0f32);
        let u2: f32 = rng.random::<f32>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * std
    })
}

/// Uniform initialization in `[-a, a]`.
pub fn uniform(rows: usize, cols: usize, a: f32, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(-a..a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = xavier_uniform(10, 20, &mut rng);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(m.data().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn normal_has_roughly_right_std() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = normal(100, 100, 0.5, &mut rng);
        let mean = m.mean();
        let var = m.data().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn initializers_are_deterministic_for_fixed_seed() {
        let a = xavier_uniform(3, 3, &mut StdRng::seed_from_u64(9));
        let b = xavier_uniform(3, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
