//! Quickstart: build a database, pre-train PreQR, and inspect a query's
//! representation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use preqr::{PreqrConfig, SqlBert};
use preqr_data::imdb::{generate, ImdbConfig};
use preqr_data::workloads;
use preqr_sql::parser::parse;
use preqr_tasks::setup::value_buckets_from_db;

fn main() {
    // 1. A deterministic, correlated mini-IMDB database.
    let db = generate(ImdbConfig { movies: 1_000, ..ImdbConfig::default() });
    println!("database: {} tables, {} rows", db.schema().tables().len(), db.total_rows());

    // 2. A pre-training corpus of realistic queries over that schema.
    let corpus = workloads::pretrain_corpus(&db, 300, 7);
    println!("corpus:   {} queries", corpus.len());

    // 3. Build PreQR: vocabulary + automaton from the corpus, the schema
    //    graph from the schema, value-range buckets from the data.
    let buckets = value_buckets_from_db(&db, 10);
    let mut model = SqlBert::new(&corpus, db.schema(), buckets, PreqrConfig::small());
    println!("model:    {} parameters", model.num_parameters());

    // 4. Masked-language-model pre-training (§3.5.2).
    for s in model.pretrain(&corpus, 2, 1e-3) {
        println!(
            "epoch {}: mlm loss {:.3}, masked-token accuracy {:.2}",
            s.epoch, s.loss, s.accuracy
        );
    }

    // 5. Encode a query. The representation is `Concat(e_q, e_g)` per
    //    token (Eq. 8); row 0 is the [CLS] aggregate.
    let q = parse(
        "SELECT COUNT(*) FROM title t, movie_companies mc \
         WHERE t.id = mc.movie_id AND t.production_year > 2010 AND mc.company_id = 5",
    )
    .unwrap();
    let pq = model.prepare(&q);
    println!("\nquery: {q}");
    println!("tokens ({}):", pq.len());
    for t in pq.tokens.iter().take(12) {
        println!("  {:<28} state {:>3}  maskable {}", t.text, t.state_id, t.maskable);
    }
    let emb = model.encode(&q);
    println!("representation: {} x {}", emb.rows(), emb.cols());
    let cls = model.cls_vector(&q, None);
    let norm: f32 = cls.iter().map(|x| x * x).sum::<f32>().sqrt();
    println!("[CLS] vector norm: {norm:.3}");
    println!("structure coverage (automaton match): {:.2}", pq.structure_coverage);
}
