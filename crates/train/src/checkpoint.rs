//! Trainer checkpoints: resumable run state in a small binary container.
//!
//! Layout (version 1): magic `PQTR`, version u32, word count u64, then
//! that many u64 LE words of run state (step counters, RNG reseed word,
//! f64 accumulators as bit patterns, per-epoch stats, optional shuffle
//! order), then an FNV-1a-64 checksum (u64 LE) over every preceding
//! byte — followed by a `preqr-nn` parameter blob (itself checksummed,
//! see `preqr_nn::serialize`) holding the model parameters, the Adam
//! first/second moments, and the best-validation snapshot when one
//! exists.
//!
//! RNG state is a single word: at every checkpoint boundary the trainer
//! draws one `u64` from the live RNG, persists it here, and reseeds the
//! live RNG from it, so a resumed run replays the exact stream of an
//! uninterrupted run with the same checkpoint cadence.
//!
//! Writes go to a temporary sibling file and are renamed into place, so
//! a crash mid-write never destroys the previous checkpoint.

use std::io::{self, Read};
use std::path::{Path, PathBuf};

use preqr_nn::serialize::{apply_params, read_params, write_params};
use preqr_nn::{Matrix, Tensor};

use crate::stats::EpochStats;

const MAGIC: &[u8; 4] = b"PQTR";
const VERSION: u32 = 1;
/// Largest accepted word count (stats + order for any realistic run).
const MAX_WORDS: u64 = 1 << 28;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Where and how often the [`crate::Trainer`] checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Checkpoint file path (overwritten atomically at each boundary).
    pub path: PathBuf,
    /// Checkpoint every this many optimizer steps (0 disables writing;
    /// resume still works if the file exists).
    pub every_steps: u64,
    /// Whether to resume from `path` when it already exists.
    pub resume: bool,
}

impl CheckpointConfig {
    /// Checkpoints to `path` every `every_steps` steps, resuming from an
    /// existing file.
    pub fn new(path: impl Into<PathBuf>, every_steps: u64) -> Self {
        Self { path: path.into(), every_steps, resume: true }
    }
}

/// Full run state captured at a step boundary.
pub(crate) struct Saved {
    pub epoch: usize,
    pub pos: usize,
    pub step: u64,
    pub rng_seed: u64,
    pub adam_t: u64,
    pub loss_total: f64,
    pub samples: usize,
    pub masked: usize,
    pub correct: usize,
    pub epoch_start_step: u64,
    pub patience: usize,
    pub best: Option<f64>,
    pub last_chunk_loss: f64,
    pub stats: Vec<EpochStats>,
    pub order: Option<Vec<usize>>,
    pub m: Vec<Matrix>,
    pub v: Vec<Matrix>,
    pub best_snap: Option<Vec<Matrix>>,
}

fn encode_words(s: &Saved) -> Vec<u64> {
    let mut w = Vec::with_capacity(16 + s.stats.len() * 9);
    w.push(s.epoch as u64);
    w.push(s.pos as u64);
    w.push(s.step);
    w.push(s.rng_seed);
    w.push(s.adam_t);
    w.push(s.loss_total.to_bits());
    w.push(s.samples as u64);
    w.push(s.masked as u64);
    w.push(s.correct as u64);
    w.push(s.epoch_start_step);
    w.push(s.patience as u64);
    let mut flags = 0u64;
    if s.best.is_some() {
        flags |= 1;
    }
    if s.order.is_some() {
        flags |= 2;
    }
    w.push(flags);
    w.push(s.best.unwrap_or(0.0).to_bits());
    w.push(s.last_chunk_loss.to_bits());
    w.push(s.stats.len() as u64);
    for st in &s.stats {
        w.push(st.epoch as u64);
        w.push(st.loss.to_bits());
        w.push(st.accuracy.to_bits());
        w.push(st.samples as u64);
        w.push(st.steps);
        w.push(st.masked as u64);
        w.push(st.correct as u64);
        w.push(u64::from(st.val.is_some()));
        w.push(st.val.unwrap_or(0.0).to_bits());
    }
    if let Some(order) = &s.order {
        w.push(order.len() as u64);
        w.extend(order.iter().map(|&i| i as u64));
    }
    w
}

struct WordReader<'a> {
    words: &'a [u64],
    at: usize,
}

impl WordReader<'_> {
    fn next(&mut self) -> io::Result<u64> {
        let w = self.words.get(self.at).copied().ok_or_else(|| bad_data("checkpoint truncated"));
        self.at += 1;
        w
    }

    fn next_usize(&mut self) -> io::Result<usize> {
        Ok(self.next()? as usize)
    }
}

fn decode_words(words: &[u64]) -> io::Result<Saved> {
    let mut r = WordReader { words, at: 0 };
    let epoch = r.next_usize()?;
    let pos = r.next_usize()?;
    let step = r.next()?;
    let rng_seed = r.next()?;
    let adam_t = r.next()?;
    let loss_total = f64::from_bits(r.next()?);
    let samples = r.next_usize()?;
    let masked = r.next_usize()?;
    let correct = r.next_usize()?;
    let epoch_start_step = r.next()?;
    let patience = r.next_usize()?;
    let flags = r.next()?;
    let best_bits = r.next()?;
    let best = (flags & 1 != 0).then(|| f64::from_bits(best_bits));
    let last_chunk_loss = f64::from_bits(r.next()?);
    let n_stats = r.next_usize()?;
    if n_stats > words.len() {
        return Err(bad_data(format!("checkpoint stats count {n_stats} exceeds payload")));
    }
    let mut stats = Vec::with_capacity(n_stats);
    for _ in 0..n_stats {
        stats.push(EpochStats {
            epoch: r.next_usize()?,
            loss: f64::from_bits(r.next()?),
            accuracy: f64::from_bits(r.next()?),
            samples: r.next_usize()?,
            steps: r.next()?,
            masked: r.next_usize()?,
            correct: r.next_usize()?,
            val: {
                let has = r.next()? != 0;
                let bits = r.next()?;
                has.then(|| f64::from_bits(bits))
            },
        });
    }
    let order = if flags & 2 != 0 {
        let len = r.next_usize()?;
        if len > words.len() {
            return Err(bad_data(format!("checkpoint order length {len} exceeds payload")));
        }
        let mut order = Vec::with_capacity(len);
        for _ in 0..len {
            order.push(r.next_usize()?);
        }
        Some(order)
    } else {
        None
    };
    if r.at != words.len() {
        return Err(bad_data("checkpoint has trailing state words"));
    }
    Ok(Saved {
        epoch,
        pos,
        step,
        rng_seed,
        adam_t,
        loss_total,
        samples,
        masked,
        correct,
        epoch_start_step,
        patience,
        best,
        last_chunk_loss,
        stats,
        order,
        m: Vec::new(),
        v: Vec::new(),
        best_snap: None,
    })
}

/// Writes a checkpoint atomically (temp file + rename).
pub(crate) fn save(path: &Path, state: &Saved, params: &[Tensor]) -> io::Result<()> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    let words = encode_words(state);
    buf.extend_from_slice(&(words.len() as u64).to_le_bytes());
    for w in &words {
        buf.extend_from_slice(&w.to_le_bytes());
    }
    let digest = fnv(&buf);
    buf.extend_from_slice(&digest.to_le_bytes());

    let mut named: Vec<(String, Tensor)> = Vec::new();
    for (i, p) in params.iter().enumerate() {
        named.push((format!("param.{i}"), p.clone()));
    }
    for (i, m) in state.m.iter().enumerate() {
        named.push((format!("adam.m.{i}"), Tensor::constant(m.clone())));
    }
    for (i, v) in state.v.iter().enumerate() {
        named.push((format!("adam.v.{i}"), Tensor::constant(v.clone())));
    }
    if let Some(snap) = &state.best_snap {
        for (i, b) in snap.iter().enumerate() {
            named.push((format!("best.{i}"), Tensor::constant(b.clone())));
        }
    }
    write_params(&mut buf, &named)?;

    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &buf)?;
    std::fs::rename(&tmp, path)
}

/// Loads a checkpoint, applies the saved parameter values to `params`,
/// and returns the full run state (Adam moments, best snapshot, stats).
///
/// # Errors
/// Any structural problem — bad magic/version, checksum mismatch,
/// truncation, parameter count/shape mismatch — returns an error without
/// touching `params`.
pub(crate) fn load(path: &Path, params: &[Tensor]) -> io::Result<Saved> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut header = [0u8; 16];
    f.read_exact(&mut header)?;
    if &header[..4] != MAGIC {
        return Err(bad_data("bad trainer checkpoint magic"));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(bad_data(format!("unsupported trainer checkpoint version {version}")));
    }
    let n_words = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    if n_words > MAX_WORDS {
        return Err(bad_data(format!("checkpoint word count {n_words} exceeds {MAX_WORDS}")));
    }
    let mut body = vec![0u8; n_words as usize * 8];
    f.read_exact(&mut body)?;
    let mut digest = [0u8; 8];
    f.read_exact(&mut digest)?;
    let mut hashed = Vec::with_capacity(16 + body.len());
    hashed.extend_from_slice(&header);
    hashed.extend_from_slice(&body);
    if u64::from_le_bytes(digest) != fnv(&hashed) {
        return Err(bad_data("trainer checkpoint checksum mismatch"));
    }
    let words: Vec<u64> =
        body.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))).collect();
    let mut saved = decode_words(&words)?;

    let loaded = read_params(&mut f)?;
    let named: Vec<(String, Tensor)> =
        params.iter().enumerate().map(|(i, p)| (format!("param.{i}"), p.clone())).collect();
    let mut m = Vec::with_capacity(params.len());
    let mut v = Vec::with_capacity(params.len());
    for i in 0..params.len() {
        let mi = loaded
            .get(&format!("adam.m.{i}"))
            .ok_or_else(|| bad_data(format!("checkpoint is missing adam.m.{i}")))?;
        let vi = loaded
            .get(&format!("adam.v.{i}"))
            .ok_or_else(|| bad_data(format!("checkpoint is missing adam.v.{i}")))?;
        if mi.shape() != params[i].shape() || vi.shape() != params[i].shape() {
            return Err(bad_data(format!("checkpoint moment shape mismatch at {i}")));
        }
        m.push(mi.clone());
        v.push(vi.clone());
    }
    let best_snap = if loaded.contains_key("best.0") || saved.best.is_some() {
        let mut snap = Vec::with_capacity(params.len());
        for i in 0..params.len() {
            let b = loaded
                .get(&format!("best.{i}"))
                .ok_or_else(|| bad_data(format!("checkpoint is missing best.{i}")))?;
            if b.shape() != params[i].shape() {
                return Err(bad_data(format!("checkpoint best-snapshot shape mismatch at {i}")));
            }
            snap.push(b.clone());
        }
        Some(snap)
    } else {
        None
    };
    // Everything validated; now mutate the model (all-or-nothing).
    apply_params(&named, &loaded).map_err(bad_data)?;
    saved.m = m;
    saved.v = v;
    saved.best_snap = best_snap;
    Ok(saved)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<Tensor>, Saved) {
        let params = vec![
            Tensor::param(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0])),
            Tensor::param(Matrix::from_vec(1, 3, vec![-1.0, 0.5, 9.0])),
        ];
        let saved = Saved {
            epoch: 3,
            pos: 2,
            step: 17,
            rng_seed: 0xdead_beef,
            adam_t: 17,
            loss_total: 1.25,
            samples: 40,
            masked: 7,
            correct: 5,
            epoch_start_step: 15,
            patience: 1,
            best: Some(2.5),
            last_chunk_loss: 0.75,
            stats: vec![EpochStats {
                epoch: 0,
                loss: 3.5,
                accuracy: 0.5,
                samples: 20,
                steps: 5,
                masked: 4,
                correct: 2,
                val: Some(4.0),
            }],
            order: Some(vec![2, 0, 1]),
            m: params.iter().map(|p| Matrix::full(p.shape().0, p.shape().1, 0.1)).collect(),
            v: params.iter().map(|p| Matrix::full(p.shape().0, p.shape().1, 0.2)).collect(),
            best_snap: Some(params.iter().map(Tensor::value_clone).collect()),
        };
        (params, saved)
    }

    #[test]
    fn round_trip_restores_everything() {
        let (params, saved) = sample();
        let dir = std::env::temp_dir().join("preqr-train-ckpt-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.pqtr");
        save(&path, &saved, &params).unwrap();
        // Perturb the live params; load must restore them.
        params[0].set_value(Matrix::zeros(2, 2));
        let got = load(&path, &params).unwrap();
        assert_eq!(params[0].value_clone().data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(got.epoch, 3);
        assert_eq!(got.pos, 2);
        assert_eq!(got.step, 17);
        assert_eq!(got.rng_seed, 0xdead_beef);
        assert_eq!(got.adam_t, 17);
        assert_eq!(got.loss_total.to_bits(), 1.25f64.to_bits());
        assert_eq!(got.samples, 40);
        assert_eq!(got.patience, 1);
        assert_eq!(got.best, Some(2.5));
        assert_eq!(got.last_chunk_loss.to_bits(), 0.75f64.to_bits());
        assert_eq!(got.stats, saved.stats);
        assert_eq!(got.order, Some(vec![2, 0, 1]));
        assert_eq!(got.m[0].data(), saved.m[0].data());
        assert_eq!(got.v[1].data(), saved.v[1].data());
        assert_eq!(got.best_snap.unwrap()[0].data(), &[1.0, 2.0, 3.0, 4.0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corruption_without_touching_params() {
        let (params, saved) = sample();
        let dir = std::env::temp_dir().join("preqr-train-ckpt-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.pqtr");
        save(&path, &saved, &params).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let before = params[0].value_clone();
        assert!(load(&path, &params).is_err());
        assert_eq!(params[0].value_clone().data(), before.data());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncation() {
        let (params, saved) = sample();
        let dir = std::env::temp_dir().join("preqr-train-ckpt-trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.pqtr");
        save(&path, &saved, &params).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for len in [0, 3, 15, 40, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..len]).unwrap();
            assert!(load(&path, &params).is_err(), "prefix of {len} bytes must fail");
        }
        std::fs::remove_file(&path).ok();
    }
}
