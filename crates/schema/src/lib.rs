//! `preqr-schema` — database schema model and the PreQR schema graph.
//!
//! [`Schema`] describes tables, typed columns, primary keys and foreign
//! keys. [`graph::SchemaGraph`] converts a schema into the directed
//! labelled graph of §3.4.1 with exactly the ten edge labels of Table 4
//! (plus implicit self-connections added at the R-GCN layer).

#![warn(missing_docs)]
pub mod graph;

use std::fmt;

use serde::{Deserialize, Serialize};

/// SQL column types used across the reproduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ColumnType {
    Int,
    Float,
    Varchar,
    Bool,
}

impl ColumnType {
    /// Lower-case type token (the first name token of a column vertex,
    /// §3.4.2).
    pub fn token(&self) -> &'static str {
        match self {
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Varchar => "varchar",
            ColumnType::Bool => "bool",
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.token().to_ascii_uppercase())
    }
}

/// A column definition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
    /// True for the table's primary key (single-column PKs only).
    pub primary: bool,
}

impl Column {
    /// Plain column.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self { name: name.into(), ty, primary: false }
    }

    /// Primary-key column.
    pub fn primary(name: impl Into<String>, ty: ColumnType) -> Self {
        Self { name: name.into(), ty, primary: true }
    }
}

/// A table definition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Columns in definition order.
    pub columns: Vec<Column>,
}

impl Table {
    /// Creates a table.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        Self { name: name.into(), columns }
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The primary-key column index, if declared.
    pub fn primary_key(&self) -> Option<usize> {
        self.columns.iter().position(|c| c.primary)
    }
}

/// A foreign-key constraint `from_table.from_column → to_table.to_column`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Referencing table.
    pub from_table: String,
    /// Referencing column.
    pub from_column: String,
    /// Referenced table.
    pub to_table: String,
    /// Referenced column (normally the PK).
    pub to_column: String,
}

/// A database schema.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    tables: Vec<Table>,
    foreign_keys: Vec<ForeignKey>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table.
    ///
    /// # Panics
    /// Panics if a table with the same name exists.
    pub fn add_table(&mut self, table: Table) -> &mut Self {
        assert!(self.table(&table.name).is_none(), "duplicate table `{}`", table.name);
        self.tables.push(table);
        self
    }

    /// Adds a foreign key.
    ///
    /// # Panics
    /// Panics if either endpoint does not exist.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) -> &mut Self {
        assert!(
            self.column(&fk.from_table, &fk.from_column).is_some(),
            "unknown fk source {}.{}",
            fk.from_table,
            fk.from_column
        );
        assert!(
            self.column(&fk.to_table, &fk.to_column).is_some(),
            "unknown fk target {}.{}",
            fk.to_table,
            fk.to_column
        );
        self.foreign_keys.push(fk);
        self
    }

    /// Adds a column to an existing table (§3.6 Case 2 schema update).
    ///
    /// # Panics
    /// Panics if the table does not exist or the column already does.
    pub fn add_column(&mut self, table: &str, column: Column) {
        let t = self
            .tables
            .iter_mut()
            .find(|t| t.name == table)
            .unwrap_or_else(|| panic!("unknown table `{table}`"));
        assert!(
            t.column_index(&column.name).is_none(),
            "duplicate column `{}.{}`",
            table,
            column.name
        );
        t.columns.push(column);
    }

    /// All tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// All foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Column by table and name.
    pub fn column(&self, table: &str, column: &str) -> Option<&Column> {
        self.table(table)?.columns.iter().find(|c| c.name == column)
    }

    /// Total number of columns across all tables.
    pub fn column_count(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }

    /// Foreign keys joining two tables in either direction.
    pub fn joins_between(&self, a: &str, b: &str) -> Vec<&ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(|fk| {
                (fk.from_table == a && fk.to_table == b) || (fk.from_table == b && fk.to_table == a)
            })
            .collect()
    }

    /// Splits a snake_case identifier into name tokens, e.g.
    /// `production_year → ["production", "year"]`.
    pub fn name_tokens(name: &str) -> Vec<String> {
        name.split('_').filter(|p| !p.is_empty()).map(str::to_string).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_schema() -> Schema {
        let mut s = Schema::new();
        s.add_table(Table::new(
            "title",
            vec![
                Column::primary("id", ColumnType::Int),
                Column::new("production_year", ColumnType::Int),
                Column::new("kind_id", ColumnType::Int),
            ],
        ));
        s.add_table(Table::new(
            "movie_companies",
            vec![
                Column::primary("id", ColumnType::Int),
                Column::new("movie_id", ColumnType::Int),
                Column::new("company_id", ColumnType::Int),
            ],
        ));
        s.add_foreign_key(ForeignKey {
            from_table: "movie_companies".into(),
            from_column: "movie_id".into(),
            to_table: "title".into(),
            to_column: "id".into(),
        });
        s
    }

    #[test]
    fn lookups() {
        let s = tiny_schema();
        assert!(s.table("title").is_some());
        assert!(s.column("title", "production_year").is_some());
        assert!(s.column("title", "nope").is_none());
        assert_eq!(s.column_count(), 6);
        assert_eq!(s.table("title").unwrap().primary_key(), Some(0));
    }

    #[test]
    #[should_panic(expected = "duplicate table")]
    fn rejects_duplicate_table() {
        let mut s = tiny_schema();
        s.add_table(Table::new("title", vec![]));
    }

    #[test]
    #[should_panic(expected = "unknown fk source")]
    fn rejects_dangling_fk() {
        let mut s = tiny_schema();
        s.add_foreign_key(ForeignKey {
            from_table: "nope".into(),
            from_column: "x".into(),
            to_table: "title".into(),
            to_column: "id".into(),
        });
    }

    #[test]
    fn joins_between_works_both_directions() {
        let s = tiny_schema();
        assert_eq!(s.joins_between("title", "movie_companies").len(), 1);
        assert_eq!(s.joins_between("movie_companies", "title").len(), 1);
        assert!(s.joins_between("title", "title").is_empty());
    }

    #[test]
    fn add_column_extends_table() {
        let mut s = tiny_schema();
        s.add_column("title", Column::new("season_nr", ColumnType::Int));
        assert!(s.column("title", "season_nr").is_some());
    }

    #[test]
    fn name_tokens_split_snake_case() {
        assert_eq!(Schema::name_tokens("production_year"), vec!["production", "year"]);
        assert_eq!(Schema::name_tokens("id"), vec!["id"]);
        assert_eq!(Schema::name_tokens("__x__"), vec!["x"]);
    }

    #[test]
    fn column_type_tokens() {
        assert_eq!(ColumnType::Int.token(), "int");
        assert_eq!(ColumnType::Varchar.to_string(), "VARCHAR");
    }
}
