//! Schema2Graph (§3.4): BiLSTM vertex-name encoding (Eq. 1–2) + R-GCN
//! propagation over the ten-relation schema graph (Eq. 3) + average
//! pooling to the global schema representation `e_G` (Eq. 4).

use rand::rngs::StdRng;

use preqr_nn::layers::{join, BiLstm, Embedding, Linear, Module, RelAdjacency, RgcnLayer};
use preqr_nn::{ops, Tensor};
use preqr_schema::graph::{EdgeLabel, SchemaGraph};
use preqr_schema::Schema;
use preqr_sql::vocab::Vocab;

use crate::config::PreqrConfig;

/// The Schema2Graph module.
pub struct Schema2Graph {
    /// Name-token embedding (the paper feeds BERT token embeddings; here
    /// a dedicated name-token table plays that role).
    name_emb: Embedding,
    name_vocab: Vocab,
    name_lstm: BiLstm,
    /// Projects the BiLSTM summary (2×hidden) to `d_model`.
    init_proj: Linear,
    gcn: Vec<RgcnLayer>,
    graph: SchemaGraph,
    adjacency: Vec<RelAdjacency>,
    /// Per-vertex name-token id sequences (cached).
    vertex_tokens: Vec<Vec<usize>>,
}

impl Schema2Graph {
    /// Builds the module from a schema.
    pub fn build(schema: &Schema, config: &PreqrConfig, rng: &mut StdRng) -> Self {
        let graph = SchemaGraph::build(schema);
        let mut name_vocab = Vocab::build(
            graph.vertices().iter().flat_map(|v| v.name_tokens.iter().map(String::as_str)),
            1,
        );
        let vertex_tokens: Vec<Vec<usize>> = graph
            .vertices()
            .iter()
            .map(|v| v.name_tokens.iter().map(|t| name_vocab.add(t)).collect::<Vec<usize>>())
            .collect();
        let adjacency = build_adjacency(&graph);
        let d = config.d_model;
        let hidden = config.name_lstm_hidden;
        let gcn = (0..config.gcn_layers.max(1))
            .map(|_| RgcnLayer::new(d, d, EdgeLabel::ALL.len(), rng))
            .collect();
        Self {
            name_emb: Embedding::new(name_vocab.len(), d, rng),
            name_lstm: BiLstm::new(d, hidden, rng),
            init_proj: Linear::new(2 * hidden, d, rng),
            gcn,
            graph,
            adjacency,
            name_vocab,
            vertex_tokens,
        }
    }

    /// Replaces the schema graph after a schema update (§3.6 Case 2) —
    /// the learned weights are kept, vertex caches are rebuilt.
    pub fn update_schema(&mut self, schema: &Schema) {
        self.graph = SchemaGraph::build(schema);
        self.vertex_tokens = self
            .graph
            .vertices()
            .iter()
            .map(|v| v.name_tokens.iter().map(|t| self.name_vocab.add(t)).collect::<Vec<usize>>())
            .collect();
        // New name tokens may have grown the vocabulary beyond the
        // embedding table; clamp at lookup time instead of resizing, to
        // keep old rows stable.
        self.adjacency = build_adjacency(&self.graph);
    }

    /// The schema graph.
    pub fn graph(&self) -> &SchemaGraph {
        &self.graph
    }

    /// Forward pass: returns the `|V| × d_model` vertex representation
    /// matrix after R-GCN propagation. The global pooled `e_G` (Eq. 4) is
    /// available via [`ops::mean_rows`] of this output.
    pub fn node_states(&self) -> Tensor {
        // Initial vertex representations: BiLSTM over name tokens,
        // concat(last-fwd, first-rev), projected to d (Eq. 1–2).
        let max_id = self.name_emb.vocab() - 1;
        let mut inits: Option<Tensor> = None;
        for toks in &self.vertex_tokens {
            let ids: Vec<usize> = toks.iter().map(|&t| t.min(max_id)).collect();
            let seq = self.name_emb.forward(&ids);
            let summary = self.init_proj.forward(&self.name_lstm.encode(&seq));
            inits = Some(match inits {
                Some(acc) => ops::concat_rows(&acc, &summary),
                None => summary,
            });
        }
        let mut h = inits.expect("schema graph has vertices");
        for layer in &self.gcn {
            h = layer.forward(&h, &self.adjacency);
        }
        h
    }

    /// Global schema embedding `e_G` (Eq. 4): average pooling over
    /// vertices.
    pub fn global_embedding(&self) -> Tensor {
        ops::mean_rows(&self.node_states())
    }
}

fn build_adjacency(graph: &SchemaGraph) -> Vec<RelAdjacency> {
    graph
        .edges_by_relation()
        .iter()
        .map(|edges| RelAdjacency::from_edges(graph.len(), edges))
        .collect()
}

impl Module for Schema2Graph {
    fn collect_params(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        self.name_emb.collect_params(&join(prefix, "name_emb"), out);
        self.name_lstm.collect_params(&join(prefix, "name_lstm"), out);
        self.init_proj.collect_params(&join(prefix, "init_proj"), out);
        for (i, g) in self.gcn.iter().enumerate() {
            g.collect_params(&join(prefix, &format!("gcn{i}")), out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_schema::{Column, ColumnType, ForeignKey, Table};
    use rand::SeedableRng;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_table(Table::new(
            "title",
            vec![
                Column::primary("id", ColumnType::Int),
                Column::new("production_year", ColumnType::Int),
            ],
        ));
        s.add_table(Table::new(
            "movie_companies",
            vec![Column::primary("id", ColumnType::Int), Column::new("movie_id", ColumnType::Int)],
        ));
        s.add_foreign_key(ForeignKey {
            from_table: "movie_companies".into(),
            from_column: "movie_id".into(),
            to_table: "title".into(),
            to_column: "id".into(),
        });
        s
    }

    #[test]
    fn node_states_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let s2g = Schema2Graph::build(&schema(), &PreqrConfig::test(), &mut rng);
        let states = s2g.node_states();
        assert_eq!(states.shape(), (2 + 4, PreqrConfig::test().d_model));
        assert_eq!(s2g.global_embedding().shape(), (1, PreqrConfig::test().d_model));
    }

    #[test]
    fn params_cover_all_submodules_and_receive_grads() {
        let mut rng = StdRng::seed_from_u64(3);
        let s2g = Schema2Graph::build(&schema(), &PreqrConfig::test(), &mut rng);
        ops::sum_all(&s2g.global_embedding()).backward();
        let mut missing = Vec::new();
        for (name, p) in s2g.named_params("s2g") {
            if p.grad().is_none() {
                missing.push(name);
            }
        }
        // Some GCN relation weights legitimately get no gradient when the
        // schema has no edges of that relation; everything else must.
        assert!(
            missing.iter().all(|n| n.contains("w_rel")),
            "unexpected grad-less params: {missing:?}"
        );
    }

    #[test]
    fn schema_update_extends_graph_keeping_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = schema();
        let mut s2g = Schema2Graph::build(&s, &PreqrConfig::test(), &mut rng);
        let before = s2g.graph().len();
        s.add_table(Table::new("keyword", vec![Column::primary("id", ColumnType::Int)]));
        s2g.update_schema(&s);
        assert_eq!(s2g.graph().len(), before + 2);
        // Forward still runs with the enlarged graph.
        assert_eq!(s2g.node_states().shape().0, before + 2);
    }

    #[test]
    fn related_vertices_are_closer_than_unrelated_after_propagation() {
        // Not a learned property — just checks propagation mixes related
        // vertices' features (fk-linked columns see each other).
        let mut rng = StdRng::seed_from_u64(5);
        let s2g = Schema2Graph::build(&schema(), &PreqrConfig::test(), &mut rng);
        let states = s2g.node_states().value_clone();
        assert!(states.data().iter().any(|&x| x != 0.0), "states must be non-trivial");
    }
}
