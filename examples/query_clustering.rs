//! Query-log clustering: compare classic similarity metrics against the
//! PreQR embedding on logically-equivalent query rewrites (Figure 2 of
//! the paper).
//!
//! ```sh
//! cargo run --release --example query_clustering
//! ```

use preqr::{PreqrConfig, SqlBert};
use preqr_data::chdb::{generate, ChConfig};
use preqr_data::clustering::{iit_bombay, pocketdata};
use preqr_sql::parser::parse;
use preqr_tasks::clustering::{betacv_of, SimilarityMethod};
use preqr_tasks::setup::value_buckets_from_db;

fn main() {
    let db = generate(ChConfig { customers: 300, seed: 7 });

    // Pre-train PreQR on the clustering queries themselves (the paper
    // pre-trains once per database on its frequent-query log).
    let ds_easy = iit_bombay();
    let ds_hard = pocketdata();
    let mut corpus = ds_easy.queries.clone();
    corpus.extend(ds_hard.queries.clone());
    let buckets = value_buckets_from_db(&db, 8);
    let mut model = SqlBert::new(&corpus, db.schema(), buckets, PreqrConfig::small());
    println!("pre-training PreQR on {} log queries…", corpus.len());
    model.pretrain(&corpus, 3, 1e-3);

    // Figure 2's rewrites: an IN-list and its UNION form should embed
    // close together.
    let q1 = parse("SELECT name FROM user WHERE rank IN ('adm', 'sup')").unwrap();
    let q3 = parse(
        "SELECT name FROM user WHERE rank = 'adm' UNION SELECT name FROM user WHERE rank = 'sup'",
    )
    .unwrap();
    let q_far = parse("SELECT SUM(amount) FROM order_line WHERE quantity > 5").unwrap();
    let nodes = model.cached_nodes();
    let cos = |a: &[f32], b: &[f32]| preqr_baselines::cluster_sims::cosine(a, b);
    let (e1, e3, ef) = (
        model.cls_vector(&q1, nodes.as_ref()),
        model.cls_vector(&q3, nodes.as_ref()),
        model.cls_vector(&q_far, nodes.as_ref()),
    );
    println!("\nFigure 2 sanity:");
    println!("  sim(q1, q3 = UNION rewrite)   = {:.3}", cos(&e1, &e3));
    println!("  sim(q1, unrelated aggregate)  = {:.3}", cos(&e1, &ef));

    // BetaCV over two labelled log profiles (smaller is better).
    println!("\nBetaCV (smaller = better clustering):");
    println!("{:<12} {:>12} {:>12}", "method", ds_easy.name, ds_hard.name);
    let methods = [
        SimilarityMethod::Aouiche,
        SimilarityMethod::Aligon,
        SimilarityMethod::Makiyama,
        SimilarityMethod::Preqr(&model),
    ];
    for m in methods {
        println!(
            "{:<12} {:>12.3} {:>12.3}",
            m.name(),
            betacv_of(&m, &ds_easy.queries, &ds_easy.labels),
            betacv_of(&m, &ds_hard.queries, &ds_hard.labels)
        );
    }
}
