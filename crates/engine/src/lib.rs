//! `preqr-engine` — a mini columnar relational engine.
//!
//! The PreQR paper evaluates on real databases (IMDB) with PostgreSQL as
//! both a baseline estimator and the source of ground truth. This crate
//! provides the equivalent substrate: columnar [`storage`], a hash-join
//! [`exec`]utor that yields true cardinalities / per-step intermediate
//! sizes / result row-id signatures, per-column [`stats`], a
//! PostgreSQL-style analytic [`estimator`] (the `PG` rows of Tables 7–11),
//! a plan [`cost`] model, and materialized-sample [`sample`] bitmaps (the
//! MSCN/LSTM optimization of §4.3.2).
//!
//! ```
//! use preqr_engine::{Database, Datum, execute};
//! use preqr_schema::{Column, ColumnType, Schema, Table};
//! use preqr_sql::parser::parse;
//!
//! let mut schema = Schema::new();
//! schema.add_table(Table::new("t", vec![Column::primary("id", ColumnType::Int)]));
//! let mut db = Database::new(schema);
//! for i in 0..10 {
//!     db.insert("t", &[Datum::Int(i)]);
//! }
//! let q = parse("SELECT COUNT(*) FROM t WHERE t.id < 3").unwrap();
//! let r = execute(&db, &q).unwrap();
//! assert_eq!(r.join_cardinality, 3);
//! assert_eq!(r.rows[0][0], Datum::Int(3));
//! ```

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index-heavy numeric kernels read clearer with explicit indices
pub mod bind;
pub mod cost;
pub mod estimator;
pub mod exec;
pub mod filter;
pub mod sample;
pub mod stats;
pub mod storage;

pub use bind::ExecError;
pub use cost::CostModel;
pub use estimator::PgEstimator;
pub use exec::{execute, QueryResult};
pub use sample::BitmapSampler;
pub use stats::TableStats;
pub use storage::{ColumnData, Database, Datum, TableData};

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_schema::{Column, ColumnType, ForeignKey, Schema, Table};
    use preqr_sql::parser::parse;

    /// A small correlated two-table database: 100 movies, each with
    /// 0–3 company rows; company_id correlates with production year.
    fn movie_db() -> Database {
        let mut s = Schema::new();
        s.add_table(Table::new(
            "title",
            vec![
                Column::primary("id", ColumnType::Int),
                Column::new("production_year", ColumnType::Int),
                Column::new("kind_id", ColumnType::Int),
            ],
        ));
        s.add_table(Table::new(
            "movie_companies",
            vec![
                Column::primary("id", ColumnType::Int),
                Column::new("movie_id", ColumnType::Int),
                Column::new("company_id", ColumnType::Int),
            ],
        ));
        s.add_foreign_key(ForeignKey {
            from_table: "movie_companies".into(),
            from_column: "movie_id".into(),
            to_table: "title".into(),
            to_column: "id".into(),
        });
        let mut db = Database::new(s);
        let mut mc_id = 0i64;
        for i in 0..100i64 {
            let year = 1980 + (i % 40);
            db.insert("title", &[Datum::Int(i), Datum::Int(year), Datum::Int(i % 5)]);
            let companies = (i % 4) as usize; // 0..=3 companies per movie
            for c in 0..companies {
                db.insert(
                    "movie_companies",
                    &[Datum::Int(mc_id), Datum::Int(i), Datum::Int((year % 10) * 10 + c as i64)],
                );
                mc_id += 1;
            }
        }
        db
    }

    #[test]
    fn count_star_single_table() {
        let db = movie_db();
        let q = parse("SELECT COUNT(*) FROM title WHERE title.production_year > 2009").unwrap();
        let r = execute(&db, &q).unwrap();
        // Years 2010..2019 inclusive: those year offsets (30..39) occur
        // twice each among i in 0..100 → 20 movies.
        assert_eq!(r.join_cardinality, 20);
        assert_eq!(r.rows, vec![vec![Datum::Int(20)]]);
    }

    #[test]
    fn fk_join_cardinality_matches_manual_count() {
        let db = movie_db();
        let q = parse("SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id")
            .unwrap();
        let r = execute(&db, &q).unwrap();
        // Σ over movies of company count: i%4 summed over 0..100 = 150.
        assert_eq!(r.join_cardinality, 150);
        assert_eq!(r.step_cardinalities.len(), 3); // two filters + one join
    }

    #[test]
    fn join_with_filters_on_both_sides() {
        let db = movie_db();
        let q = parse(
            "SELECT COUNT(*) FROM title t, movie_companies mc \
             WHERE t.id = mc.movie_id AND t.production_year > 2009 AND mc.company_id = 5",
        )
        .unwrap();
        let r = execute(&db, &q).unwrap();
        // Verify against a brute-force count.
        let mut expected = 0u64;
        for i in 0..100i64 {
            let year = 1980 + (i % 40);
            if year <= 2009 {
                continue;
            }
            for c in 0..(i % 4) {
                if (year % 10) * 10 + c == 5 {
                    expected += 1;
                }
            }
        }
        assert_eq!(r.join_cardinality, expected);
    }

    #[test]
    fn explicit_join_syntax_matches_implicit() {
        let db = movie_db();
        let a = parse("SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id")
            .unwrap();
        let b = parse("SELECT COUNT(*) FROM title t JOIN movie_companies mc ON t.id = mc.movie_id")
            .unwrap();
        assert_eq!(
            execute(&db, &a).unwrap().join_cardinality,
            execute(&db, &b).unwrap().join_cardinality
        );
    }

    #[test]
    fn group_by_and_order_by() {
        let db = movie_db();
        let q =
            parse("SELECT kind_id, COUNT(*) FROM title GROUP BY kind_id ORDER BY kind_id").unwrap();
        let r = execute(&db, &q).unwrap();
        assert_eq!(r.rows.len(), 5);
        assert_eq!(r.rows[0], vec![Datum::Int(0), Datum::Int(20)]);
        assert_eq!(r.rows[4], vec![Datum::Int(4), Datum::Int(20)]);
    }

    #[test]
    fn order_by_desc_and_limit() {
        let db = movie_db();
        let q = parse(
            "SELECT kind_id, COUNT(*) FROM title GROUP BY kind_id ORDER BY kind_id DESC LIMIT 2",
        )
        .unwrap();
        let r = execute(&db, &q).unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Datum::Int(4));
    }

    #[test]
    fn union_deduplicates_and_merges_row_ids() {
        let db = movie_db();
        let q = parse(
            "SELECT production_year FROM title WHERE kind_id = 0 \
             UNION SELECT production_year FROM title WHERE kind_id = 0",
        )
        .unwrap();
        let r = execute(&db, &q).unwrap();
        // Same branch twice: dedup keeps distinct years of the 20 movies.
        let distinct_years: std::collections::HashSet<i64> =
            (0..100i64).filter(|i| i % 5 == 0).map(|i| 1980 + (i % 40)).collect();
        assert_eq!(r.rows.len(), distinct_years.len());
        assert_eq!(r.base_row_ids.len(), 20);
    }

    #[test]
    fn in_subquery_filters_outer() {
        let db = movie_db();
        let q = parse(
            "SELECT COUNT(*) FROM movie_companies WHERE movie_companies.movie_id IN \
             (SELECT id FROM title WHERE title.production_year > 2009)",
        )
        .unwrap();
        let r = execute(&db, &q).unwrap();
        let mut expected = 0u64;
        for i in 0..100i64 {
            if 1980 + (i % 40) > 2009 {
                expected += (i % 4) as u64;
            }
        }
        assert_eq!(r.join_cardinality, expected);
    }

    #[test]
    fn logically_equivalent_forms_agree() {
        // Figure 2's point: IN-subquery vs explicit join produce the same
        // answer (per distinct movie).
        let db = movie_db();
        let sub = parse(
            "SELECT COUNT(DISTINCT movie_id) FROM movie_companies WHERE movie_id IN \
             (SELECT id FROM title WHERE production_year > 2009)",
        )
        .unwrap();
        let join = parse(
            "SELECT COUNT(DISTINCT mc.movie_id) FROM movie_companies mc, title t \
             WHERE mc.movie_id = t.id AND t.production_year > 2009",
        )
        .unwrap();
        assert_eq!(execute(&db, &sub).unwrap().rows, execute(&db, &join).unwrap().rows);
    }

    #[test]
    fn aggregates_compute_correct_values() {
        let db = movie_db();
        let q = parse(
            "SELECT MIN(production_year), MAX(production_year), AVG(production_year), \
             SUM(kind_id) FROM title",
        )
        .unwrap();
        let r = execute(&db, &q).unwrap();
        assert_eq!(r.rows[0][0], Datum::Int(1980));
        assert_eq!(r.rows[0][1], Datum::Int(2019));
        match r.rows[0][2] {
            Datum::Float(avg) => assert!((avg - 1997.5).abs() < 0.5, "avg {avg}"),
            ref other => panic!("expected float avg, got {other:?}"),
        }
        assert_eq!(r.rows[0][3], Datum::Float(200.0));
    }

    #[test]
    fn empty_result_count_is_zero_row() {
        let db = movie_db();
        let q = parse("SELECT COUNT(*) FROM title WHERE title.production_year > 9999").unwrap();
        let r = execute(&db, &q).unwrap();
        assert_eq!(r.join_cardinality, 0);
        assert_eq!(r.rows, vec![vec![Datum::Int(0)]]);
    }

    #[test]
    fn pg_estimator_is_exactish_on_independent_single_table() {
        let db = movie_db();
        let stats = TableStats::analyze(&db);
        let est = PgEstimator::new(&db, &stats);
        let q = parse("SELECT COUNT(*) FROM title WHERE title.production_year > 2009").unwrap();
        let truth = execute(&db, &q).unwrap().join_cardinality as f64;
        let guess = est.estimate(&q).unwrap();
        let qerr = (guess / truth).max(truth / guess);
        assert!(qerr < 1.6, "single-table q-error {qerr} (guess {guess}, truth {truth})");
    }

    #[test]
    fn pg_estimator_underestimates_correlated_join() {
        // company_id is derived from production_year, so the independence
        // assumption must misestimate the conjunction — the paper's core
        // motivation for learned estimators.
        let db = movie_db();
        let stats = TableStats::analyze(&db);
        let est = PgEstimator::new(&db, &stats);
        let q = parse(
            "SELECT COUNT(*) FROM title t, movie_companies mc \
             WHERE t.id = mc.movie_id AND t.production_year = 1985 AND mc.company_id = 50",
        )
        .unwrap();
        let truth = execute(&db, &q).unwrap().join_cardinality.max(1) as f64;
        let guess = est.estimate(&q).unwrap();
        let qerr = (guess / truth).max(truth / guess);
        assert!(qerr > 2.0, "correlated join should be misestimated, q-error {qerr}");
    }

    #[test]
    fn estimator_plan_shape_matches_executor() {
        let db = movie_db();
        let stats = TableStats::analyze(&db);
        let est = PgEstimator::new(&db, &stats);
        let q = parse("SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id")
            .unwrap();
        let plan = est.estimate_plan(&q.body).unwrap();
        assert_eq!(plan.filtered.len(), 2);
        assert_eq!(plan.joins.len(), 1);
        let truth = execute(&db, &q).unwrap();
        let qerr = (plan.total / truth.join_cardinality as f64)
            .max(truth.join_cardinality as f64 / plan.total);
        // Pure PK-FK join without predicates: nearly exact.
        assert!(qerr < 1.5, "fk join q-error {qerr}");
    }

    #[test]
    fn executor_rejects_unknown_names() {
        let db = movie_db();
        assert!(matches!(
            execute(&db, &parse("SELECT * FROM nope").unwrap()),
            Err(ExecError::UnknownTable(_))
        ));
        assert!(matches!(
            execute(&db, &parse("SELECT nope FROM title").unwrap()),
            Err(ExecError::UnknownColumn(_))
        ));
    }

    #[test]
    fn cross_join_without_predicate_works() {
        let db = movie_db();
        let q =
            parse("SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.kind_id = 0").unwrap();
        let r = execute(&db, &q).unwrap();
        assert_eq!(r.join_cardinality, 20 * 150);
    }
}
