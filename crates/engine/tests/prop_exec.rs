//! Property-based tests: the hash-join executor agrees with a brute-force
//! nested-loop evaluation on randomized data and predicates, and the
//! estimator produces bounded selectivities.

use proptest::prelude::*;

use preqr_engine::{execute, Database, Datum, PgEstimator, TableStats};
use preqr_schema::{Column, ColumnType, ForeignKey, Schema, Table};
use preqr_sql::parser::parse;

fn two_table_db(a_vals: &[(i64, i64)], b_vals: &[(i64, i64)]) -> Database {
    let mut s = Schema::new();
    s.add_table(Table::new(
        "ta",
        vec![Column::primary("id", ColumnType::Int), Column::new("x", ColumnType::Int)],
    ));
    s.add_table(Table::new(
        "tb",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("a_id", ColumnType::Int),
            Column::new("y", ColumnType::Int),
        ],
    ));
    s.add_foreign_key(ForeignKey {
        from_table: "tb".into(),
        from_column: "a_id".into(),
        to_table: "ta".into(),
        to_column: "id".into(),
    });
    let mut db = Database::new(s);
    for &(id, x) in a_vals {
        db.insert("ta", &[Datum::Int(id), Datum::Int(x)]);
    }
    for (i, &(a_id, y)) in b_vals.iter().enumerate() {
        db.insert("tb", &[Datum::Int(i as i64), Datum::Int(a_id), Datum::Int(y)]);
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Join cardinality from the executor equals brute-force counting.
    #[test]
    fn join_count_matches_brute_force(
        a in proptest::collection::vec((0i64..30, -5i64..5), 1..40),
        b in proptest::collection::vec((0i64..30, -5i64..5), 1..60),
        x_lo in -5i64..5,
        y_eq in -5i64..5,
    ) {
        // De-duplicate primary keys.
        let mut seen = std::collections::HashSet::new();
        let a: Vec<(i64, i64)> = a.into_iter().filter(|(id, _)| seen.insert(*id)).collect();
        let db = two_table_db(&a, &b);
        let sql = format!(
            "SELECT COUNT(*) FROM ta, tb WHERE ta.id = tb.a_id AND ta.x > {x_lo} AND tb.y = {y_eq}"
        );
        let q = parse(&sql).unwrap();
        let got = execute(&db, &q).unwrap().join_cardinality;
        let mut expected = 0u64;
        for &(id, x) in &a {
            if x <= x_lo {
                continue;
            }
            for &(a_id, y) in &b {
                if a_id == id && y == y_eq {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(got, expected, "query: {}", sql);
    }

    /// Single-table filters equal brute-force counting for arbitrary
    /// conjunctions of range predicates.
    #[test]
    fn filter_count_matches_brute_force(
        vals in proptest::collection::vec(-50i64..50, 1..120),
        lo in -50i64..50,
        hi in -50i64..50,
    ) {
        let a: Vec<(i64, i64)> = vals.iter().enumerate().map(|(i, &v)| (i as i64, v)).collect();
        let db = two_table_db(&a, &[(0, 0)]);
        let q = parse(&format!(
            "SELECT COUNT(*) FROM ta WHERE ta.x >= {lo} AND ta.x <= {hi}"
        ))
        .unwrap();
        let got = execute(&db, &q).unwrap().join_cardinality;
        let expected = vals.iter().filter(|&&v| v >= lo && v <= hi).count() as u64;
        prop_assert_eq!(got, expected);
        // BETWEEN is equivalent.
        let q2 = parse(&format!(
            "SELECT COUNT(*) FROM ta WHERE ta.x BETWEEN {lo} AND {hi}"
        ))
        .unwrap();
        prop_assert_eq!(execute(&db, &q2).unwrap().join_cardinality, expected);
    }

    /// UNION result sizes: |A ∪ B| ≤ |A| + |B| and ≥ max(|A|, |B|).
    #[test]
    fn union_bounds(
        vals in proptest::collection::vec(-10i64..10, 1..60),
        t1 in -10i64..10,
        t2 in -10i64..10,
    ) {
        let a: Vec<(i64, i64)> = vals.iter().enumerate().map(|(i, &v)| (i as i64, v)).collect();
        let db = two_table_db(&a, &[(0, 0)]);
        let qa = parse(&format!("SELECT id FROM ta WHERE ta.x > {t1}")).unwrap();
        let qb = parse(&format!("SELECT id FROM ta WHERE ta.x < {t2}")).unwrap();
        let qu = parse(&format!(
            "SELECT id FROM ta WHERE ta.x > {t1} UNION SELECT id FROM ta WHERE ta.x < {t2}"
        ))
        .unwrap();
        let na = execute(&db, &qa).unwrap().rows.len();
        let nb = execute(&db, &qb).unwrap().rows.len();
        let nu = execute(&db, &qu).unwrap().rows.len();
        prop_assert!(nu <= na + nb);
        prop_assert!(nu >= na.max(nb));
    }

    /// The PG estimator's estimate is always ≥ 1 and finite, and its
    /// per-table filtered estimates never exceed the table sizes.
    #[test]
    fn estimator_bounds(
        a in proptest::collection::vec((0i64..20, -5i64..5), 1..30),
        b in proptest::collection::vec((0i64..20, -5i64..5), 1..40),
        thr in -5i64..5,
    ) {
        let mut seen = std::collections::HashSet::new();
        let a: Vec<(i64, i64)> = a.into_iter().filter(|(id, _)| seen.insert(*id)).collect();
        let db = two_table_db(&a, &b);
        let stats = TableStats::analyze(&db);
        let est = PgEstimator::new(&db, &stats);
        let q = parse(&format!(
            "SELECT COUNT(*) FROM ta, tb WHERE ta.id = tb.a_id AND ta.x > {thr}"
        ))
        .unwrap();
        let e = est.estimate(&q).unwrap();
        prop_assert!(e.is_finite() && e >= 1.0);
        let plan = est.estimate_plan(&q.body).unwrap();
        prop_assert!(plan.filtered[0] <= a.len().max(1) as f64 + 0.5);
        prop_assert!(plan.filtered[1] <= b.len() as f64 + 0.5);
    }
}
