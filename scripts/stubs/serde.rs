//! serde facade stub: re-exports the no-op derive macros.
pub use serde_derive::{Deserialize, Serialize};
