//! `train` — Trainer-overhead probe feeding `results/BENCH_train.json`.
//!
//! Runs the identical fine-tune task twice — once through the shared
//! `preqr_train::Trainer`, once through `preqr_train::reference` (the
//! hand-rolled legacy loop shape the ten migrated call sites used to
//! carry) — and appends best-of-N wall-clock timings plus the overhead
//! ratio to the trajectory file. Both paths consume the same RNG stream
//! and produce bit-identical losses, so the delta is pure loop
//! bookkeeping; the PR budget for it is ±1%.

use std::path::Path;
use std::time::Instant;

use preqr_bench::trajectory::{append, PipelineEntry};
use preqr_nn::layers::{Mlp, Module};
use preqr_nn::{ops, parallel, Matrix, Tensor};
use preqr_train::{reference, FnTask, Plan, Schedule, StepOutput, Trainer, TrainerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const REPS: usize = 7;
const EXAMPLES: usize = 1024;
const EPOCHS: usize = 8;
const CHUNK: usize = 8;

fn examples() -> Vec<(Tensor, f32)> {
    (0..EXAMPLES)
        .map(|i| {
            let x: Vec<f32> = (0..8).map(|j| ((i * 13 + j * 5) % 17) as f32 / 17.0).collect();
            let y = x.iter().sum::<f32>() / 8.0;
            (Tensor::constant(Matrix::from_vec(1, 8, x)), y)
        })
        .collect()
}

fn config() -> TrainerConfig {
    TrainerConfig::new(Plan::Epochs { epochs: EPOCHS, chunk: CHUNK, shuffle: true }, 1e-2)
        .with_schedule(Schedule::bert(EPOCHS, EXAMPLES, CHUNK))
}

/// One full run through either loop; returns (seconds, final epoch loss).
fn run(data: &[(Tensor, f32)], legacy: bool) -> (f64, f64) {
    let mut init = StdRng::seed_from_u64(42);
    let mlp = Mlp::new(&[8, 64, 32, 1], &mut init);
    let mut task = FnTask::new("bench.train", data.len(), mlp.params(), |idx, _rng| {
        let (x, y) = &data[idx];
        let pred = mlp.forward(x);
        let loss = ops::mse_loss(&pred, &Matrix::full(1, 1, *y));
        let scalar = f64::from(loss.value_clone().get(0, 0));
        loss.backward();
        StepOutput { loss: scalar, ..StepOutput::default() }
    });
    let config = config();
    let mut rng = StdRng::seed_from_u64(7);
    let t0 = Instant::now();
    let report = if legacy {
        reference::run(&mut task, &config, &mut rng)
    } else {
        Trainer::new(config).fit(&mut task, &mut rng)
    };
    let secs = t0.elapsed().as_secs_f64();
    (secs, report.stats.last().expect("ran at least one epoch").loss)
}

fn report(label: &str, best: f64, loss: f64) {
    let steps = EPOCHS * EXAMPLES.div_ceil(CHUNK);
    println!("{label:>8}: {best:.4}s  ({:.0} steps/s)  final loss {loss:.6}", steps as f64 / best);
}

fn main() {
    println!(
        "train bench: {EXAMPLES} examples x {EPOCHS} epochs, chunk {CHUNK}, threads={}",
        parallel::effective_threads()
    );
    let data = examples();
    // Interleave the reps so slow drift (thermal, scheduler) hits both
    // loops equally instead of biasing whichever phase ran second.
    let (mut trainer_secs, mut legacy_secs) = (f64::INFINITY, f64::INFINITY);
    let (mut trainer_loss, mut legacy_loss) = (0.0, 0.0);
    for _ in 0..REPS {
        let (secs, l) = run(&data, false);
        if secs < trainer_secs {
            (trainer_secs, trainer_loss) = (secs, l);
        }
        let (secs, l) = run(&data, true);
        if secs < legacy_secs {
            (legacy_secs, legacy_loss) = (secs, l);
        }
    }
    report("trainer", trainer_secs, trainer_loss);
    report("legacy", legacy_secs, legacy_loss);
    assert_eq!(
        trainer_loss.to_bits(),
        legacy_loss.to_bits(),
        "the two loops must do bit-identical numeric work"
    );
    let overhead = trainer_secs / legacy_secs - 1.0;
    println!("trainer overhead vs legacy loop: {:+.2}%", overhead * 100.0);

    let entry = |phase: &str, secs: f64| PipelineEntry {
        label: "train".into(),
        phase: phase.into(),
        threads: parallel::effective_threads(),
        trace: false,
        seconds: secs,
        counters: vec![
            ("train.examples".into(), EXAMPLES as u64),
            ("train.epochs".into(), EPOCHS as u64),
            ("train.overhead_bp".into(), (overhead.abs() * 10_000.0) as u64),
        ],
    };
    let path = Path::new("results/BENCH_train.json");
    append(path, &[entry("trainer", trainer_secs), entry("legacy", legacy_secs)])
        .expect("write trajectory");
    println!("appended 2 entries -> {}", path.display());
}
