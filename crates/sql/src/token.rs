//! SQL lexer.
//!
//! Produces the token stream consumed by both the parser and the PreQR
//! input-embedding pipeline (token / position / automaton-state
//! embeddings all index into this stream).

use serde::{Deserialize, Serialize};
use std::fmt;

/// SQL keywords recognized by the lexer (uppercased during scanning).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    And,
    Or,
    Not,
    In,
    Between,
    Like,
    Is,
    Null,
    Group,
    Order,
    By,
    Having,
    Limit,
    Union,
    All,
    Distinct,
    As,
    Join,
    Inner,
    Left,
    Right,
    On,
    Count,
    Sum,
    Avg,
    Min,
    Max,
    Asc,
    Desc,
}

impl Keyword {
    /// Parses an identifier-shaped word into a keyword, case-insensitively.
    pub fn parse(word: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match word.to_ascii_uppercase().as_str() {
            "SELECT" => Select,
            "FROM" => From,
            "WHERE" => Where,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            "IN" => In,
            "BETWEEN" => Between,
            "LIKE" => Like,
            "IS" => Is,
            "NULL" => Null,
            "GROUP" => Group,
            "ORDER" => Order,
            "BY" => By,
            "HAVING" => Having,
            "LIMIT" => Limit,
            "UNION" => Union,
            "ALL" => All,
            "DISTINCT" => Distinct,
            "AS" => As,
            "JOIN" => Join,
            "INNER" => Inner,
            "LEFT" => Left,
            "RIGHT" => Right,
            "ON" => On,
            "COUNT" => Count,
            "SUM" => Sum,
            "AVG" => Avg,
            "MIN" => Min,
            "MAX" => Max,
            "ASC" => Asc,
            "DESC" => Desc,
            _ => return None,
        })
    }

    /// Canonical upper-case spelling.
    pub fn as_str(&self) -> &'static str {
        use Keyword::*;
        match self {
            Select => "SELECT",
            From => "FROM",
            Where => "WHERE",
            And => "AND",
            Or => "OR",
            Not => "NOT",
            In => "IN",
            Between => "BETWEEN",
            Like => "LIKE",
            Is => "IS",
            Null => "NULL",
            Group => "GROUP",
            Order => "ORDER",
            By => "BY",
            Having => "HAVING",
            Limit => "LIMIT",
            Union => "UNION",
            All => "ALL",
            Distinct => "DISTINCT",
            As => "AS",
            Join => "JOIN",
            Inner => "INNER",
            Left => "LEFT",
            Right => "RIGHT",
            On => "ON",
            Count => "COUNT",
            Sum => "SUM",
            Avg => "AVG",
            Min => "MIN",
            Max => "MAX",
            Asc => "ASC",
            Desc => "DESC",
        }
    }
}

/// A lexed SQL token.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Token {
    /// Recognized SQL keyword.
    Keyword(Keyword),
    /// Identifier (table, column, alias). Case is preserved.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Punctuation / operator: one of `( ) , . * = != <> < <= > >= ;`.
    Symbol(&'static str),
}

impl Token {
    /// Surface text of the token (used for vocabulary building).
    pub fn text(&self) -> String {
        match self {
            Token::Keyword(k) => k.as_str().to_string(),
            Token::Ident(s) => s.clone(),
            Token::Int(v) => v.to_string(),
            Token::Float(v) => format!("{v}"),
            Token::Str(s) => format!("'{s}'"),
            Token::Symbol(s) => (*s).to_string(),
        }
    }

    /// True for value literals (numbers and strings).
    pub fn is_literal(&self) -> bool {
        matches!(self, Token::Int(_) | Token::Float(_) | Token::Str(_))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text())
    }
}

/// Lexing error with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Lexes a SQL string into tokens.
///
/// # Errors
/// Returns [`LexError`] on unterminated strings, malformed numbers, or
/// unrecognized characters.
pub fn lex(sql: &str) -> Result<Vec<Token>, LexError> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                tokens.push(Token::Symbol("("));
                i += 1;
            }
            b')' => {
                tokens.push(Token::Symbol(")"));
                i += 1;
            }
            b',' => {
                tokens.push(Token::Symbol(","));
                i += 1;
            }
            b'.' => {
                tokens.push(Token::Symbol("."));
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Symbol("*"));
                i += 1;
            }
            b';' => {
                tokens.push(Token::Symbol(";"));
                i += 1;
            }
            b'=' => {
                tokens.push(Token::Symbol("="));
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol("!="));
                    i += 2;
                } else {
                    return Err(LexError { position: i, message: "expected `!=`".into() });
                }
            }
            b'<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token::Symbol("<="));
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token::Symbol("!="));
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Symbol("<"));
                    i += 1;
                }
            },
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(">="));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(">"));
                    i += 1;
                }
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            // Decode a full UTF-8 scalar, never a lone byte:
                            // `i` is always a char boundary here (every other
                            // advance in this loop is over ASCII), so slicing
                            // is safe and the literal round-trips exactly.
                            let c = sql[i..].chars().next().expect("byte present at char boundary");
                            s.push(c);
                            i += c.len_utf8();
                        }
                        None => {
                            return Err(LexError {
                                position: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &sql[start..i];
                if is_float {
                    let v = text.parse().map_err(|_| LexError {
                        position: start,
                        message: format!("bad float literal `{text}`"),
                    })?;
                    tokens.push(Token::Float(v));
                } else {
                    let v = text.parse().map_err(|_| LexError {
                        position: start,
                        message: format!("bad integer literal `{text}`"),
                    })?;
                    tokens.push(Token::Int(v));
                }
            }
            b'-' => {
                // Negative literal (only valid immediately before digits).
                if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let mut is_float = false;
                    if i < bytes.len()
                        && bytes[i] == b'.'
                        && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                    {
                        is_float = true;
                        i += 1;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                    let text = &sql[start..i];
                    if is_float {
                        tokens.push(Token::Float(text.parse().map_err(|_| LexError {
                            position: start,
                            message: format!("bad float literal `{text}`"),
                        })?));
                    } else {
                        tokens.push(Token::Int(text.parse().map_err(|_| LexError {
                            position: start,
                            message: format!("bad integer literal `{text}`"),
                        })?));
                    }
                } else {
                    return Err(LexError { position: i, message: "unexpected `-`".into() });
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &sql[start..i];
                match Keyword::parse(word) {
                    Some(k) => tokens.push(Token::Keyword(k)),
                    None => tokens.push(Token::Ident(word.to_string())),
                }
            }
            _ => {
                // Report the whole scalar value, not its leading byte —
                // `i` sits on a char boundary (see the string-literal arm).
                let c = sql[i..].chars().next().expect("byte present at char boundary");
                return Err(LexError {
                    position: i,
                    message: format!("unrecognized character `{c}`"),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_basic_select() {
        let toks = lex("SELECT id FROM title WHERE x = 5").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Ident("id".into()),
                Token::Keyword(Keyword::From),
                Token::Ident("title".into()),
                Token::Keyword(Keyword::Where),
                Token::Ident("x".into()),
                Token::Symbol("="),
                Token::Int(5),
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = lex("select FROM Where").unwrap();
        assert!(matches!(toks[0], Token::Keyword(Keyword::Select)));
        assert!(matches!(toks[2], Token::Keyword(Keyword::Where)));
    }

    #[test]
    fn lexes_operators() {
        let toks = lex("a >= 1 AND b <> 2 AND c != 3 AND d <= 4").unwrap();
        let symbols: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(symbols, vec![">=", "!=", "!=", "<="]);
    }

    #[test]
    fn lexes_string_with_escaped_quote() {
        let toks = lex("name = 'O''Brien'").unwrap();
        assert_eq!(toks[2], Token::Str("O'Brien".into()));
    }

    #[test]
    fn rejects_unterminated_string() {
        let err = lex("x = 'oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn lexes_floats_and_negative_numbers() {
        let toks = lex("a = 3.25 AND b = -7 AND c = -1.5").unwrap();
        assert_eq!(toks[2], Token::Float(3.25));
        assert_eq!(toks[6], Token::Int(-7));
        assert_eq!(toks[10], Token::Float(-1.5));
    }

    #[test]
    fn qualified_name_splits_on_dot() {
        let toks = lex("t.production_year").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("t".into()),
                Token::Symbol("."),
                Token::Ident("production_year".into()),
            ]
        );
    }

    #[test]
    fn multibyte_string_literals_round_trip_exactly() {
        // 'é' is 2 bytes, each CJK char 3, '☕' 3: byte-at-a-time
        // decoding would mangle every one of them.
        let toks = lex("name = 'café'").unwrap();
        assert_eq!(toks[2], Token::Str("café".into()));
        let toks = lex("city = '北京市'").unwrap();
        assert_eq!(toks[2], Token::Str("北京市".into()));
        let toks = lex("bio = 'O''Brien — café ☕'").unwrap();
        assert_eq!(toks[2], Token::Str("O'Brien — café ☕".into()));
    }

    #[test]
    fn unterminated_multibyte_literal_reports_the_opening_quote() {
        let sql = "x = 'café";
        let err = lex(sql).unwrap_err();
        assert!(err.message.contains("unterminated"));
        // `position` is a byte offset and must sit on a char boundary of
        // the input (the opening quote, here after "x = ").
        assert_eq!(err.position, 4);
        assert!(sql.is_char_boundary(err.position));
    }

    #[test]
    fn non_ascii_outside_literals_errors_on_the_full_character() {
        let sql = "x = ☃";
        let err = lex(sql).unwrap_err();
        assert_eq!(err.position, 4);
        assert!(sql.is_char_boundary(err.position));
        assert!(
            err.message.contains('☃'),
            "diagnostic must show the whole scalar, not a stray byte: {}",
            err.message
        );
    }

    #[test]
    fn count_star_tokens() {
        let toks = lex("COUNT(*)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword(Keyword::Count),
                Token::Symbol("("),
                Token::Symbol("*"),
                Token::Symbol(")"),
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("SELECT #").is_err());
        assert!(lex("a - b").is_err());
    }

    #[test]
    fn literal_detection() {
        assert!(Token::Int(1).is_literal());
        assert!(Token::Str("x".into()).is_literal());
        assert!(!Token::Ident("x".into()).is_literal());
    }
}
