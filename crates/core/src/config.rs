//! Model configuration.

use serde::{Deserialize, Serialize};

/// Hyper-parameters of the PreQR model (paper defaults: L=4, H=256, A=4,
/// ~40 M parameters; the CPU-scale presets shrink H for tractable
/// single-core pre-training — Table 13 sweeps these knobs).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PreqrConfig {
    /// Transformer hidden size (`H`, `d_model`).
    pub d_model: usize,
    /// Number of `Trm_g` layers (`L`).
    pub layers: usize,
    /// Attention heads (`A`).
    pub heads: usize,
    /// Maximum sequence length (positions beyond this are clamped).
    pub max_seq: usize,
    /// Per-column value-range buckets (§3.3.2).
    pub value_buckets: usize,
    /// MLM masking probability.
    pub mask_prob: f32,
    /// Dropout probability during pre-training.
    pub dropout: f32,
    /// Include the automaton state embedding (ablation `PreQRNA` sets
    /// this to `false`).
    pub use_automaton: bool,
    /// Include the query-aware schema module `Trm_g` (ablation `PreQRNT`
    /// sets this to `false`).
    pub use_schema: bool,
    /// R-GCN propagation layers in Schema2Graph.
    pub gcn_layers: usize,
    /// BiLSTM hidden size for vertex-name encoding (output is `2×` this;
    /// it is projected to `d_model`).
    pub name_lstm_hidden: usize,
    /// RNG seed for weight initialization and masking.
    pub seed: u64,
}

impl PreqrConfig {
    /// The paper's configuration (L=4, H=256, A=4).
    pub fn paper() -> Self {
        Self { d_model: 256, layers: 4, heads: 4, ..Self::small() }
    }

    /// CPU-scale default used by the reproduction binaries.
    pub fn small() -> Self {
        Self {
            d_model: 64,
            layers: 2,
            heads: 4,
            max_seq: 128,
            value_buckets: 16,
            mask_prob: 0.15,
            dropout: 0.1,
            use_automaton: true,
            use_schema: true,
            gcn_layers: 2,
            name_lstm_hidden: 16,
            seed: 42,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn test() -> Self {
        Self {
            d_model: 32,
            layers: 1,
            heads: 2,
            gcn_layers: 1,
            name_lstm_hidden: 8,
            ..Self::small()
        }
    }

    /// Ablation: PreQR without the automaton state embedding.
    pub fn without_automaton(mut self) -> Self {
        self.use_automaton = false;
        self
    }

    /// Ablation: PreQR without the query-aware schema module (`Trm_g`
    /// degrades to a plain transformer).
    pub fn without_schema(mut self) -> Self {
        self.use_schema = false;
        self
    }

    /// Ablation: plain BERT — neither automaton nor schema.
    pub fn bert_only(self) -> Self {
        self.without_automaton().without_schema()
    }

    /// Output width of the encoder: `Trm_g` concatenates `e_q` with `e_g`
    /// (Eq. 8), so the final representation is `2 × d_model` when the
    /// schema module is enabled.
    pub fn output_dim(&self) -> usize {
        if self.use_schema {
            2 * self.d_model
        } else {
            self.d_model
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_4_3() {
        let c = PreqrConfig::paper();
        assert_eq!((c.layers, c.d_model, c.heads), (4, 256, 4));
        assert!((c.mask_prob - 0.15).abs() < 1e-6);
    }

    #[test]
    fn ablations_toggle_flags() {
        let c = PreqrConfig::test();
        assert!(!c.without_automaton().use_automaton);
        assert!(!c.without_schema().use_schema);
        let b = c.bert_only();
        assert!(!b.use_automaton && !b.use_schema);
    }

    #[test]
    fn output_dim_doubles_with_schema() {
        let c = PreqrConfig::test();
        assert_eq!(c.output_dim(), 2 * c.d_model);
        assert_eq!(c.without_schema().output_dim(), c.d_model);
    }
}
