//! Logical time for the micro-batcher.
//!
//! The batch timeout is expressed in *ticks* of this clock, not
//! wall-clock time. Ticks advance at two deterministic-ish program
//! points — each accepted submission, and each collector wake-up — and
//! they gate exactly one decision: when a *partial* batch stops waiting
//! for more requests and closes. Because every response is bit-identical
//! regardless of which batch carried it (see `SqlBert::encode_batch`'s
//! batch-invariance contract), tick timing can only ever change
//! throughput, never results — wall-time stays out of every output.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic logical clock (see the module docs).
#[derive(Debug, Default)]
pub struct LogicalClock {
    ticks: AtomicU64,
}

impl LogicalClock {
    /// A clock at tick zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by one tick, returning the new reading.
    pub fn tick(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current reading.
    pub fn now(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotonic() {
        let c = LogicalClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.now(), 2);
    }
}
