//! `preqr-obs` — zero-dependency, deterministic tracing/metrics layer.
//!
//! # Design
//!
//! Three primitives, one global pipeline:
//!
//! * **Spans** ([`span`]) — RAII wall-clock timers emitted as events at
//!   deterministic program points (epoch boundaries, training runs,
//!   bench phases). Durations are payload, never identity, so two runs
//!   emit the same event *stream shape* regardless of timing.
//! * **Counters** ([`counter_add`]) — monotonic, fixed-registry
//!   ([`Metric`]), lock-free. Aggregated in memory; written out only at
//!   [`flush_metrics`] points, so hot kernels never touch the sink.
//! * **Histograms** ([`record_hist`]) — per-value streams summarized as
//!   `count/p50/p95/max/sum` ([`HistMetric`]).
//!
//! Events flow to one pluggable [`Sink`]: a JSONL file when the
//! `PREQR_TRACE` environment variable names a path ([`init_from_env`]),
//! an in-memory [`TestSink`] installed by tests, or — the default —
//! nothing, at a cost of one relaxed atomic load per call site.
//!
//! # Determinism contract
//!
//! [`flush_metrics`] always emits one `counter` event per [`Metric`] and
//! one `hist` event per [`HistMetric`] — zero-valued ones included — in
//! registry order. Combined with spans sitting at deterministic program
//! points, the number of events a traced program emits is an exact
//! function of the work it did, never of thread interleaving or timing.
//! Tests therefore assert *exact* event counts; observability doubles as
//! a correctness oracle (see `tests/obs_events.rs` at the workspace
//! root).
//!
//! # Failure behavior
//!
//! A sink whose `record` fails is uninstalled on the spot: the layer
//! degrades to no-op, exactly one warning event is retained (retrieve
//! with [`take_warnings`]), the [`Metric::ObsSinkDegraded`] counter is
//! bumped, and the traced computation proceeds untouched.

#![warn(missing_docs)]

mod event;
mod metrics;
mod sink;

pub use event::{Event, EventKind, FieldValue};
pub use metrics::{HistMetric, HistSummary, Metric, Snapshot, HIST_CAP};
pub use sink::{JsonlSink, Sink, SinkError, TestSink};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::Instant;

/// Fast gate for the sink path: true iff a sink is installed.
static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);

/// Fast gate for metric aggregation.
static METRICS_ACTIVE: AtomicBool = AtomicBool::new(false);

static ENV_INIT: Once = Once::new();

fn sink_slot() -> &'static Mutex<Option<Arc<dyn Sink>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<dyn Sink>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn warning_slot() -> &'static Mutex<Vec<Event>> {
    static SLOT: OnceLock<Mutex<Vec<Event>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(Vec::new()))
}

/// Installs `sink` as the global event destination and enables metric
/// aggregation (a sink without metrics would flush empty registries).
pub fn install_sink(sink: Arc<dyn Sink>) {
    let mut slot = sink_slot().lock().unwrap_or_else(|e| e.into_inner());
    *slot = Some(sink);
    SINK_ACTIVE.store(true, Ordering::Release);
    METRICS_ACTIVE.store(true, Ordering::Release);
}

/// Uninstalls the sink (metric aggregation keeps its current setting).
pub fn clear_sink() {
    let mut slot = sink_slot().lock().unwrap_or_else(|e| e.into_inner());
    *slot = None;
    SINK_ACTIVE.store(false, Ordering::Release);
}

/// True iff events currently reach a sink.
pub fn tracing_active() -> bool {
    SINK_ACTIVE.load(Ordering::Acquire)
}

/// Turns metric aggregation on or off independently of any sink (bench
/// harnesses aggregate without tracing).
pub fn set_metrics_enabled(on: bool) {
    METRICS_ACTIVE.store(on, Ordering::Release);
}

/// True iff counters/histograms are aggregating.
pub fn metrics_enabled() -> bool {
    METRICS_ACTIVE.load(Ordering::Relaxed)
}

/// One-time `PREQR_TRACE` initialization: when the variable names a
/// path, installs a JSONL file sink there (and enables metrics). Called
/// lazily by [`span`]; binaries may call it eagerly. Unreadable paths
/// degrade to no-op with a retained warning rather than failing the run.
pub fn init_from_env() {
    ENV_INIT.call_once(|| {
        let Ok(path) = std::env::var("PREQR_TRACE") else { return };
        if path.is_empty() {
            return;
        }
        match JsonlSink::create(&path) {
            Ok(s) => install_sink(Arc::new(s)),
            Err(e) => {
                let mut w = Event::new(EventKind::Warn, "obs.sink.degraded", 1.0);
                w.fields.push(("error", FieldValue::Str(format!("PREQR_TRACE={path}: {e}"))));
                warning_slot().lock().unwrap_or_else(|p| p.into_inner()).push(w);
            }
        }
    });
}

/// Sends one event to the sink; on sink failure, degrades to no-op and
/// retains a single warning (see the module docs).
fn emit(event: Event) {
    if !tracing_active() {
        return;
    }
    let sink = {
        let slot = sink_slot().lock().unwrap_or_else(|e| e.into_inner());
        slot.clone()
    };
    let Some(sink) = sink else { return };
    if let Err(e) = sink.record(&event) {
        clear_sink();
        counter_add(Metric::ObsSinkDegraded, 1);
        let mut w = Event::new(EventKind::Warn, "obs.sink.degraded", 1.0);
        w.fields.push(("error", FieldValue::Str(e.message)));
        w.fields.push(("dropped", FieldValue::Str(event.name.to_string())));
        warning_slot().lock().unwrap_or_else(|p| p.into_inner()).push(w);
    }
}

/// Drains the retained out-of-band warnings (sink degradations).
pub fn take_warnings() -> Vec<Event> {
    std::mem::take(&mut *warning_slot().lock().unwrap_or_else(|e| e.into_inner()))
}

/// Adds `delta` to a counter (no-op unless metrics are enabled).
#[inline]
pub fn counter_add(m: Metric, delta: u64) {
    if metrics_enabled() {
        metrics::counter_add_raw(m, delta);
    }
}

/// Current counter total (0 while metrics are disabled — reads are
/// always allowed).
pub fn counter_get(m: Metric) -> u64 {
    metrics::counter_get_raw(m)
}

/// Records one histogram observation (no-op unless metrics are enabled).
#[inline]
pub fn record_hist(h: HistMetric, v: f64) {
    if metrics_enabled() {
        metrics::hist_record_raw(h, v);
    }
}

/// Point-in-time summary of one histogram.
pub fn hist_summary(h: HistMetric) -> HistSummary {
    metrics::summarize(h)
}

/// Deterministic snapshot of the full metric registry.
pub fn snapshot() -> Snapshot {
    metrics::snapshot_raw()
}

/// Zeroes every counter and histogram (tests and bench phase boundaries).
pub fn reset_metrics() {
    metrics::reset_raw();
}

/// Emits the full metric registry to the sink — exactly
/// `Metric::ALL.len()` counter events plus `HistMetric::ALL.len()` hist
/// events, in registry order, regardless of which metrics were touched —
/// then flushes the sink. No-op without a sink.
pub fn flush_metrics() {
    if !tracing_active() {
        return;
    }
    for &m in &Metric::ALL {
        emit(Event::new(EventKind::Counter, m.name(), counter_get(m) as f64));
    }
    for &h in &HistMetric::ALL {
        let s = metrics::summarize(h);
        let mut e = Event::new(EventKind::Hist, h.name(), s.count as f64);
        e.fields.push(("p50", FieldValue::F64(s.p50)));
        e.fields.push(("p95", FieldValue::F64(s.p95)));
        e.fields.push(("max", FieldValue::F64(s.max)));
        e.fields.push(("sum", FieldValue::F64(s.sum)));
        emit(e);
    }
    let sink = {
        let slot = sink_slot().lock().unwrap_or_else(|e| e.into_inner());
        slot.clone()
    };
    if let Some(s) = sink {
        if let Err(e) = s.flush() {
            clear_sink();
            counter_add(Metric::ObsSinkDegraded, 1);
            let mut w = Event::new(EventKind::Warn, "obs.sink.degraded", 1.0);
            w.fields.push(("error", FieldValue::Str(e.message)));
            warning_slot().lock().unwrap_or_else(|p| p.into_inner()).push(w);
        }
    }
}

/// An in-flight span. Emits one `span` event with the elapsed wall-clock
/// microseconds when dropped (or [`Span::end`]ed). Inert — no clock
/// read, no allocation — while tracing is inactive.
#[must_use = "a span measures the scope it lives in"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Span {
    /// Attaches a payload field (builder style).
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        self.add_field(key, value);
        self
    }

    /// Attaches a payload field to a span already in flight (e.g. a loss
    /// known only at the end of the epoch the span measures).
    pub fn add_field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.start.is_some() {
            self.fields.push((key, value.into()));
        }
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let us = start.elapsed().as_secs_f64() * 1e6;
            emit(Event {
                kind: EventKind::Span,
                name: self.name,
                value: us,
                fields: std::mem::take(&mut self.fields),
            });
        }
    }
}

/// Opens a span. The first span of the process also performs
/// [`init_from_env`], so setting `PREQR_TRACE` is all a binary needs.
pub fn span(name: &'static str) -> Span {
    init_from_env();
    if tracing_active() {
        Span { name, start: Some(Instant::now()), fields: Vec::new() }
    } else {
        Span { name, start: None, fields: Vec::new() }
    }
}

/// RAII histogram timer: records elapsed microseconds into `h` on drop.
/// Inert while metrics are disabled.
#[must_use = "a timer measures the scope it lives in"]
pub struct HistTimer {
    hist: HistMetric,
    start: Option<Instant>,
}

/// Starts a histogram timer (see [`HistTimer`]).
#[inline]
pub fn timer(h: HistMetric) -> HistTimer {
    HistTimer { hist: h, start: metrics_enabled().then(Instant::now) }
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            metrics::hist_record_raw(self.hist, start.elapsed().as_secs_f64() * 1e6);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global obs state is process-wide; tests that touch it serialize.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn fresh(sink: &Arc<TestSink>) {
        reset_metrics();
        take_warnings();
        install_sink(sink.clone() as Arc<dyn Sink>);
        sink.clear();
    }

    #[test]
    fn disabled_paths_are_inert() {
        let _g = lock();
        clear_sink();
        set_metrics_enabled(false);
        reset_metrics();
        counter_add(Metric::EngineQueries, 5);
        record_hist(HistMetric::EngineJoinCard, 1.0);
        let sp = span("x");
        drop(sp);
        assert_eq!(counter_get(Metric::EngineQueries), 0);
        assert_eq!(hist_summary(HistMetric::EngineJoinCard).count, 0);
    }

    #[test]
    fn span_emits_one_event_with_fields() {
        let _g = lock();
        let sink = Arc::new(TestSink::new());
        fresh(&sink);
        let mut sp = span("unit.span").field("k", 7u64);
        sp.add_field("s", "v");
        drop(sp);
        clear_sink();
        let evs = sink.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::Span);
        assert_eq!(evs[0].name, "unit.span");
        assert!(evs[0].value >= 0.0);
        assert_eq!(evs[0].field("k"), Some(&FieldValue::U64(7)));
        assert_eq!(evs[0].field("s"), Some(&FieldValue::Str("v".into())));
    }

    #[test]
    fn flush_always_emits_the_full_registry() {
        let _g = lock();
        let sink = Arc::new(TestSink::new());
        fresh(&sink);
        // Touch only one counter; the flush must still cover everything.
        counter_add(Metric::EngineQueries, 3);
        flush_metrics();
        clear_sink();
        let evs = sink.events();
        assert_eq!(evs.len(), Metric::ALL.len() + HistMetric::ALL.len());
        let q = evs.iter().find(|e| e.name == "engine.queries").unwrap();
        assert_eq!(q.value, 3.0);
        let untouched = evs.iter().find(|e| e.name == "nn.dispatch.pool").unwrap();
        assert_eq!(untouched.value, 0.0);
    }

    #[test]
    fn hist_summary_has_percentiles() {
        let _g = lock();
        let sink = Arc::new(TestSink::new());
        fresh(&sink);
        for i in 1..=100 {
            record_hist(HistMetric::EstValQerror, f64::from(i));
        }
        let s = hist_summary(HistMetric::EstValQerror);
        clear_sink();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, 51.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.sum, 5050.0);
    }

    /// Writer that fails after a byte budget.
    struct FailingWriter {
        budget: usize,
    }

    impl std::io::Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if buf.len() > self.budget {
                return Err(std::io::Error::other("disk full"));
            }
            self.budget -= buf.len();
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn failing_sink_degrades_to_noop_with_one_warning() {
        let _g = lock();
        reset_metrics();
        take_warnings();
        install_sink(Arc::new(JsonlSink::new(FailingWriter { budget: 40 })));
        for _ in 0..10 {
            drop(span("will.fail"));
        }
        assert!(!tracing_active(), "failing sink must uninstall itself");
        let warnings = take_warnings();
        assert_eq!(warnings.len(), 1, "exactly one degradation warning");
        assert_eq!(warnings[0].kind, EventKind::Warn);
        assert_eq!(counter_get(Metric::ObsSinkDegraded), 1);
        set_metrics_enabled(false);
        reset_metrics();
    }

    #[test]
    fn snapshot_covers_full_registry_in_order() {
        let _g = lock();
        let snap = snapshot();
        assert_eq!(snap.counters.len(), Metric::ALL.len());
        assert_eq!(snap.hists.len(), HistMetric::ALL.len());
        assert_eq!(snap.counters[0].0, Metric::ALL[0].name());
        assert!(snap.counter("engine.queries").is_some());
        assert!(snap.hist("nn.matmul_us").is_some());
    }
}
