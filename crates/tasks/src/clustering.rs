//! The query-clustering task (§4.4): BetaCV over the labelled datasets
//! and NDCG / group-distance analysis on the CH workload (Table 7 top,
//! Figure 7).

use rand::rngs::StdRng;
use rand::SeedableRng;

use preqr::SqlBert;
use preqr_baselines::cluster_sims::{
    aligon_similarity, aouiche_similarity, column_universe, cosine, makiyama_similarity,
};
use preqr_baselines::mscn::{MscnFeaturizer, MscnModel};
use preqr_baselines::seq2seq::{
    DecoderOptions, LstmTextEncoder, RnnDecoder, TextEncoder, TextVocab,
};
use preqr_data::clustering::{ChWorkload, PairKind};
use preqr_engine::Database;
use preqr_nn::layers::Module;
use preqr_sql::ast::Query;
use preqr_sql::normalize::linearize;
use preqr_train::{FnTask, Plan, StepOutput, Trainer, TrainerConfig};

use crate::metrics::{betacv, ndcg_at_k};

/// The similarity methods of Table 7's clustering block.
pub enum SimilarityMethod<'a> {
    /// Aouiche et al. — binary code + Hamming.
    Aouiche,
    /// Aligon et al. — string sets + Jaccard.
    Aligon,
    /// Makiyama et al. — item frequency + cosine.
    Makiyama,
    /// One-hot encoding + cosine (MSCN features).
    OneHot(&'a Database),
    /// Attention Seq2Seq embeddings + cosine.
    Seq2Seq(Box<Seq2SeqEmbedder>),
    /// PreQR `[CLS]` embeddings + cosine.
    Preqr(&'a SqlBert),
}

impl SimilarityMethod<'_> {
    /// Row label.
    pub fn name(&self) -> &'static str {
        match self {
            SimilarityMethod::Aouiche => "Aouiche",
            SimilarityMethod::Aligon => "Aligon",
            SimilarityMethod::Makiyama => "Makiyama",
            SimilarityMethod::OneHot(_) => "One-hotDis",
            SimilarityMethod::Seq2Seq(_) => "Seq2SeqDis",
            SimilarityMethod::Preqr(_) => "PreQRDis",
        }
    }

    /// Pairwise similarity matrix over a query set.
    pub fn similarity_matrix(&self, queries: &[Query]) -> Vec<Vec<f64>> {
        let n = queries.len();
        let mut sim = vec![vec![0.0f64; n]; n];
        // Vector-based methods embed once.
        let embeddings: Option<Vec<Vec<f32>>> = match self {
            SimilarityMethod::OneHot(db) => {
                let f = MscnFeaturizer::new(db, 0);
                Some(
                    queries
                        .iter()
                        .map(|q| {
                            let feats = f.featurize(db, q, None);
                            MscnModel::onehot_vector(&feats, &f)
                        })
                        .collect(),
                )
            }
            SimilarityMethod::Seq2Seq(embedder) => {
                Some(center(queries.iter().map(|q| embedder.embed(q)).collect()))
            }
            SimilarityMethod::Preqr(model) => {
                let nodes = model.cached_nodes();
                Some(center(queries.iter().map(|q| model.cls_vector(q, nodes.as_ref())).collect()))
            }
            _ => None,
        };
        let universe = column_universe(queries);
        for i in 0..n {
            sim[i][i] = 1.0;
            for j in i + 1..n {
                let s = match (self, &embeddings) {
                    (SimilarityMethod::Aouiche, _) => {
                        aouiche_similarity(&queries[i], &queries[j], &universe)
                    }
                    (SimilarityMethod::Aligon, _) => aligon_similarity(&queries[i], &queries[j]),
                    (SimilarityMethod::Makiyama, _) => {
                        makiyama_similarity(&queries[i], &queries[j])
                    }
                    (_, Some(e)) => cosine(&e[i], &e[j]),
                    _ => unreachable!("vector methods have embeddings"),
                };
                sim[i][j] = s;
                sim[j][i] = s;
            }
        }
        sim
    }
}

/// Mean-centers a set of neural embeddings (the standard anisotropy
/// correction for transformer sentence vectors: without it every pair's
/// cosine saturates near 1 and the ranking signal drowns).
fn center(mut embeddings: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    if embeddings.is_empty() {
        return embeddings;
    }
    let d = embeddings[0].len();
    let n = embeddings.len() as f32;
    let mut mean = vec![0.0f32; d];
    for e in &embeddings {
        for (m, &x) in mean.iter_mut().zip(e.iter()) {
            *m += x / n;
        }
    }
    for e in &mut embeddings {
        for (x, &m) in e.iter_mut().zip(mean.iter()) {
            *x -= m;
        }
    }
    embeddings
}

/// Distance matrix `1 − similarity` (clamped to `[0, 2]`).
pub fn to_distance(sim: &[Vec<f64>]) -> Vec<Vec<f64>> {
    sim.iter().map(|row| row.iter().map(|&s| (1.0 - s).clamp(0.0, 2.0)).collect()).collect()
}

/// BetaCV of a method on a labelled dataset (smaller is better).
pub fn betacv_of(method: &SimilarityMethod<'_>, queries: &[Query], labels: &[usize]) -> f64 {
    let sim = method.similarity_matrix(queries);
    betacv(&to_distance(&sim), labels)
}

/// Mean NDCG@k on the CH workload: for each query, rank the others by
/// predicted similarity; relevance = measured result overlap.
pub fn ch_ndcg(method: &SimilarityMethod<'_>, ch: &ChWorkload, k: usize) -> f64 {
    let sim = method.similarity_matrix(&ch.queries);
    let n = ch.len();
    let mut total = 0.0;
    for i in 0..n {
        let mut others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        others.sort_by(|&a, &b| sim[i][b].partial_cmp(&sim[i][a]).expect("finite similarity"));
        // Relevance indexed by position in `others`.
        let relevance: Vec<f64> = (0..n).filter(|&j| j != i).map(|j| ch.overlap[i][j]).collect();
        let index_of: std::collections::HashMap<usize, usize> =
            (0..n).filter(|&j| j != i).enumerate().map(|(pos, j)| (j, pos)).collect();
        let ranking: Vec<usize> = others.iter().map(|j| index_of[j]).collect();
        total += ndcg_at_k(&relevance, &ranking, k);
    }
    total / n as f64
}

/// Mean predicted distances per pair category (Figure 7b).
#[derive(Clone, Copy, Debug)]
pub struct GroupDistances {
    /// Mean distance between logically-equivalent pairs.
    pub equivalent: f64,
    /// Mean distance between same-template pairs.
    pub same_template: f64,
    /// Mean distance between irrelevant pairs.
    pub irrelevant: f64,
}

/// Computes Figure 7b's per-category mean distances.
pub fn ch_group_distances(method: &SimilarityMethod<'_>, ch: &ChWorkload) -> GroupDistances {
    let sim = method.similarity_matrix(&ch.queries);
    let dist = to_distance(&sim);
    let mut sums = [0.0f64; 3];
    let mut counts = [0usize; 3];
    for i in 0..ch.len() {
        for j in i + 1..ch.len() {
            let k = match ch.pair_kind(i, j) {
                PairKind::Equivalent => 0,
                PairKind::SameTemplate => 1,
                PairKind::Irrelevant => 2,
            };
            sums[k] += dist[i][j];
            counts[k] += 1;
        }
    }
    GroupDistances {
        equivalent: sums[0] / counts[0].max(1) as f64,
        same_template: sums[1] / counts[1].max(1) as f64,
        irrelevant: sums[2] / counts[2].max(1) as f64,
    }
}

/// A trained Seq2Seq auto-encoder whose encoder state embeds queries
/// (the `Seq2SeqDis` baseline).
pub struct Seq2SeqEmbedder {
    encoder: LstmTextEncoder,
}

impl Seq2SeqEmbedder {
    /// Trains the auto-encoder on a query corpus: the decoder reconstructs
    /// the query's own token sequence from the encoder state.
    pub fn train(corpus: &[Query], d: usize, epochs: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Target vocabulary = the queries' own token texts (auto-encoding).
        let token_texts: Vec<Vec<String>> =
            corpus.iter().map(|q| linearize(q).iter().map(|t| t.text.clone()).collect()).collect();
        let all_words: Vec<&str> =
            token_texts.iter().flat_map(|ts| ts.iter().map(String::as_str)).collect();
        let tv = TextVocab::build(all_words);
        let encoder = LstmTextEncoder::new(corpus, &tv, d, &mut rng);
        let decoder = RnnDecoder::new(&tv, d, DecoderOptions::default(), &mut rng);
        let mut params = encoder.encoder_params();
        params.extend(decoder.params());
        // Scoped so the task's borrow of the encoder ends before the move.
        {
            let mut task = FnTask::new("cluster.seq2seq", corpus.len(), params, |idx, rng| {
                let src = encoder.encode(&corpus[idx]);
                let target = tv.encode(&token_texts[idx]);
                let loss = decoder.loss(&src, &target, true, rng);
                let scalar = f64::from(loss.value_clone().get(0, 0));
                loss.backward();
                StepOutput { loss: scalar, ..StepOutput::default() }
            });
            let config =
                TrainerConfig::new(Plan::Epochs { epochs, chunk: 2, shuffle: false }, 5e-3);
            Trainer::new(config).fit(&mut task, &mut rng);
        }
        Self { encoder }
    }

    /// Embeds a query as the encoder's initial-context vector.
    pub fn embed(&self, q: &Query) -> Vec<f32> {
        let src = self.encoder.encode(q);
        src.init.value_clone().row(0).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_data::chdb::{generate, ChConfig};
    use preqr_data::clustering::{ch_workload, iit_bombay};

    #[test]
    fn classic_methods_produce_valid_betacv() {
        let ds = iit_bombay();
        for method in
            [SimilarityMethod::Aouiche, SimilarityMethod::Aligon, SimilarityMethod::Makiyama]
        {
            let b = betacv_of(&method, &ds.queries, &ds.labels);
            assert!(b.is_finite() && b > 0.0, "{} betacv {b}", method.name());
            assert!(b < 1.5, "{} betacv should be below random-ish 1.5: {b}", method.name());
        }
    }

    #[test]
    fn onehot_method_runs_on_ch_schema() {
        let db = generate(ChConfig::tiny());
        let ds = iit_bombay();
        let m = SimilarityMethod::OneHot(&db);
        let b = betacv_of(&m, &ds.queries, &ds.labels);
        assert!(b.is_finite() && b > 0.0);
    }

    #[test]
    fn ndcg_and_group_distances_on_ch() {
        let db = generate(ChConfig::tiny());
        let ch = ch_workload(&db, 5, 1);
        let m = SimilarityMethod::Makiyama;
        let ndcg = ch_ndcg(&m, &ch, 10);
        assert!((0.0..=1.0).contains(&ndcg), "ndcg {ndcg}");
        let gd = ch_group_distances(&m, &ch);
        assert!(gd.equivalent.is_finite());
        assert!(gd.irrelevant > gd.equivalent, "irrelevant pairs must be farther: {gd:?}");
    }

    #[test]
    fn seq2seq_embedder_distinguishes_queries() {
        let ds = iit_bombay();
        let corpus: Vec<Query> = ds.queries.iter().take(12).cloned().collect();
        let emb = Seq2SeqEmbedder::train(&corpus, 16, 2, 5);
        let a = emb.embed(&corpus[0]);
        let b = emb.embed(&corpus[11]);
        assert_eq!(a.len(), 16);
        assert!(cosine(&a, &b) < 0.999, "distinct queries should not collapse");
    }

    #[test]
    fn distance_matrix_is_metric_like() {
        let ds = iit_bombay();
        let sim = SimilarityMethod::Aligon.similarity_matrix(&ds.queries[..8]);
        let d = to_distance(&sim);
        for i in 0..8 {
            assert!(d[i][i].abs() < 1e-9, "self distance 0");
            for j in 0..8 {
                assert!((d[i][j] - d[j][i]).abs() < 1e-12, "symmetry");
                assert!((0.0..=2.0).contains(&d[i][j]));
            }
        }
    }
}
