//! The directed labelled schema graph `G_s = {V, E, R}` of §3.4.1.
//!
//! Vertices are tables and columns; edges carry one of the ten labels of
//! Table 4. Self-connections are *not* stored here — the R-GCN layer adds
//! the `W_self` term itself, matching the paper's "we also intentionally
//! create a self-connection edge for each vertex".

use serde::{Deserialize, Serialize};

use crate::Schema;

/// The ten edge labels of Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeLabel {
    /// (Column, Column): both belong to the same table.
    SameTable,
    /// (Column, Column): `v_x` is a foreign key for `v_y`.
    ForeignKeyColumnLeft,
    /// (Column, Column): `v_y` is a foreign key for `v_x`.
    ForeignKeyColumnRight,
    /// (Column, Table): `v_x` is the primary key of `v_y`.
    PrimaryKeyLeft,
    /// (Column, Table): `v_x` is a non-PK column of `v_y`.
    BelongsToLeft,
    /// (Table, Column): `v_y` is the primary key of `v_x`.
    PrimaryKeyRight,
    /// (Table, Column): `v_y` is a non-PK column of `v_x`.
    BelongsToRight,
    /// (Table, Table): `v_x` has a foreign key column referencing `v_y`.
    ForeignKeyTableLeft,
    /// (Table, Table): `v_y` has a foreign key column referencing `v_x`.
    ForeignKeyTableRight,
    /// (Table, Table): foreign keys exist in both directions.
    ForeignKeyTableBoth,
}

impl EdgeLabel {
    /// All ten labels in a stable order (the relation index used by the
    /// R-GCN weight matrices).
    pub const ALL: [EdgeLabel; 10] = [
        EdgeLabel::SameTable,
        EdgeLabel::ForeignKeyColumnLeft,
        EdgeLabel::ForeignKeyColumnRight,
        EdgeLabel::PrimaryKeyLeft,
        EdgeLabel::BelongsToLeft,
        EdgeLabel::PrimaryKeyRight,
        EdgeLabel::BelongsToRight,
        EdgeLabel::ForeignKeyTableLeft,
        EdgeLabel::ForeignKeyTableRight,
        EdgeLabel::ForeignKeyTableBoth,
    ];

    /// Stable relation index in `0..10`.
    pub fn index(&self) -> usize {
        Self::ALL.iter().position(|l| l == self).expect("label in ALL")
    }
}

/// Kind of a schema-graph vertex.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VertexKind {
    /// A table vertex.
    Table {
        /// Table name.
        table: String,
    },
    /// A column vertex.
    Column {
        /// Owning table name.
        table: String,
        /// Column name.
        column: String,
    },
}

/// A schema-graph vertex with its name-token sequence (function ρ of
/// §3.4.2; column vertices are prefixed with their type token).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Vertex {
    /// Table or column identity.
    pub kind: VertexKind,
    /// Name tokens fed to the BiLSTM name encoder.
    pub name_tokens: Vec<String>,
}

/// The schema graph.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SchemaGraph {
    vertices: Vec<Vertex>,
    edges: Vec<(usize, EdgeLabel, usize)>,
}

impl SchemaGraph {
    /// Builds the graph from a schema following Table 4's rules.
    pub fn build(schema: &Schema) -> Self {
        let mut g = SchemaGraph::default();
        // Each table vertex is immediately followed by its column vertices,
        // so appending a new table (§3.6 Case 2) appends vertices and keeps
        // all existing vertex ids stable.
        for t in schema.tables() {
            g.vertices.push(Vertex {
                kind: VertexKind::Table { table: t.name.clone() },
                name_tokens: Schema::name_tokens(&t.name),
            });
            for c in &t.columns {
                let mut toks = vec![c.ty.token().to_string()];
                toks.extend(Schema::name_tokens(&c.name));
                g.vertices.push(Vertex {
                    kind: VertexKind::Column { table: t.name.clone(), column: c.name.clone() },
                    name_tokens: toks,
                });
            }
        }

        // (Column, Column) Same-Table: all ordered pairs within a table.
        for t in schema.tables() {
            let cols: Vec<usize> = t
                .columns
                .iter()
                .map(|c| g.column_vertex(&t.name, &c.name).expect("column vertex"))
                .collect();
            for &a in &cols {
                for &b in &cols {
                    if a != b {
                        g.edges.push((a, EdgeLabel::SameTable, b));
                    }
                }
            }
        }

        // Column↔Table membership edges.
        for t in schema.tables() {
            let tv = g.table_vertex(&t.name).expect("table vertex");
            for c in &t.columns {
                let cv = g.column_vertex(&t.name, &c.name).expect("column vertex");
                if c.primary {
                    g.edges.push((cv, EdgeLabel::PrimaryKeyLeft, tv));
                    g.edges.push((tv, EdgeLabel::PrimaryKeyRight, cv));
                } else {
                    g.edges.push((cv, EdgeLabel::BelongsToLeft, tv));
                    g.edges.push((tv, EdgeLabel::BelongsToRight, cv));
                }
            }
        }

        // (Column, Column) foreign-key edges.
        for fk in schema.foreign_keys() {
            let from = g.column_vertex(&fk.from_table, &fk.from_column).expect("fk source");
            let to = g.column_vertex(&fk.to_table, &fk.to_column).expect("fk target");
            g.edges.push((from, EdgeLabel::ForeignKeyColumnLeft, to));
            g.edges.push((to, EdgeLabel::ForeignKeyColumnRight, from));
        }

        // (Table, Table) foreign-key edges, with Both when bidirectional.
        let names: Vec<&str> = schema.tables().iter().map(|t| t.name.as_str()).collect();
        for (i, &a) in names.iter().enumerate() {
            for &b in names.iter().skip(i + 1) {
                let a_to_b =
                    schema.foreign_keys().iter().any(|fk| fk.from_table == a && fk.to_table == b);
                let b_to_a =
                    schema.foreign_keys().iter().any(|fk| fk.from_table == b && fk.to_table == a);
                let va = g.table_vertex(a).expect("table vertex");
                let vb = g.table_vertex(b).expect("table vertex");
                match (a_to_b, b_to_a) {
                    (true, true) => {
                        g.edges.push((va, EdgeLabel::ForeignKeyTableBoth, vb));
                        g.edges.push((vb, EdgeLabel::ForeignKeyTableBoth, va));
                    }
                    (true, false) => {
                        g.edges.push((va, EdgeLabel::ForeignKeyTableLeft, vb));
                        g.edges.push((vb, EdgeLabel::ForeignKeyTableRight, va));
                    }
                    (false, true) => {
                        g.edges.push((vb, EdgeLabel::ForeignKeyTableLeft, va));
                        g.edges.push((va, EdgeLabel::ForeignKeyTableRight, vb));
                    }
                    (false, false) => {}
                }
            }
        }
        g
    }

    /// All vertices.
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// All labelled edges `(src, label, dst)`.
    pub fn edges(&self) -> &[(usize, EdgeLabel, usize)] {
        &self.edges
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True for a graph with no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Vertex id of a table.
    pub fn table_vertex(&self, table: &str) -> Option<usize> {
        self.vertices
            .iter()
            .position(|v| matches!(&v.kind, VertexKind::Table { table: t } if t == table))
    }

    /// Vertex id of a column.
    pub fn column_vertex(&self, table: &str, column: &str) -> Option<usize> {
        self.vertices.iter().position(|v| {
            matches!(&v.kind, VertexKind::Column { table: t, column: c }
                if t == table && c == column)
        })
    }

    /// Directed edges with a given label, as `(src, dst)` pairs.
    pub fn edges_with_label(&self, label: EdgeLabel) -> Vec<(usize, usize)> {
        self.edges.iter().filter(|(_, l, _)| *l == label).map(|(s, _, d)| (*s, *d)).collect()
    }

    /// Per-relation edge lists indexed by [`EdgeLabel::index`] (input to
    /// the R-GCN adjacency construction).
    pub fn edges_by_relation(&self) -> Vec<Vec<(usize, usize)>> {
        let mut out = vec![Vec::new(); EdgeLabel::ALL.len()];
        for (s, l, d) in &self.edges {
            out[l.index()].push((*s, *d));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Column, ColumnType, ForeignKey, Table};

    fn imdb_fragment() -> Schema {
        let mut s = Schema::new();
        s.add_table(Table::new(
            "title",
            vec![
                Column::primary("id", ColumnType::Int),
                Column::new("title", ColumnType::Varchar),
                Column::new("production_year", ColumnType::Int),
            ],
        ));
        s.add_table(Table::new(
            "movie_companies",
            vec![
                Column::primary("id", ColumnType::Int),
                Column::new("movie_id", ColumnType::Int),
                Column::new("company_id", ColumnType::Int),
            ],
        ));
        s.add_foreign_key(ForeignKey {
            from_table: "movie_companies".into(),
            from_column: "movie_id".into(),
            to_table: "title".into(),
            to_column: "id".into(),
        });
        s
    }

    #[test]
    fn vertex_counts_tables_plus_columns() {
        let g = SchemaGraph::build(&imdb_fragment());
        assert_eq!(g.len(), 2 + 6);
        assert!(g.table_vertex("title").is_some());
        assert!(g.column_vertex("movie_companies", "movie_id").is_some());
        assert!(g.column_vertex("title", "movie_id").is_none());
    }

    #[test]
    fn column_vertices_start_with_type_token() {
        let g = SchemaGraph::build(&imdb_fragment());
        let v = &g.vertices()[g.column_vertex("title", "production_year").unwrap()];
        assert_eq!(v.name_tokens, vec!["int", "production", "year"]);
    }

    #[test]
    fn same_table_edges_are_complete_within_table() {
        let g = SchemaGraph::build(&imdb_fragment());
        // 3 columns per table → 3·2 ordered pairs per table, two tables.
        assert_eq!(g.edges_with_label(EdgeLabel::SameTable).len(), 12);
    }

    #[test]
    fn membership_edges_distinguish_pk() {
        let g = SchemaGraph::build(&imdb_fragment());
        assert_eq!(g.edges_with_label(EdgeLabel::PrimaryKeyLeft).len(), 2);
        assert_eq!(g.edges_with_label(EdgeLabel::PrimaryKeyRight).len(), 2);
        assert_eq!(g.edges_with_label(EdgeLabel::BelongsToLeft).len(), 4);
        assert_eq!(g.edges_with_label(EdgeLabel::BelongsToRight).len(), 4);
    }

    #[test]
    fn fk_column_edges_point_both_ways() {
        let g = SchemaGraph::build(&imdb_fragment());
        let from = g.column_vertex("movie_companies", "movie_id").unwrap();
        let to = g.column_vertex("title", "id").unwrap();
        assert_eq!(g.edges_with_label(EdgeLabel::ForeignKeyColumnLeft), vec![(from, to)]);
        assert_eq!(g.edges_with_label(EdgeLabel::ForeignKeyColumnRight), vec![(to, from)]);
    }

    #[test]
    fn fk_table_edges_have_direction() {
        let g = SchemaGraph::build(&imdb_fragment());
        let mc = g.table_vertex("movie_companies").unwrap();
        let t = g.table_vertex("title").unwrap();
        assert_eq!(g.edges_with_label(EdgeLabel::ForeignKeyTableLeft), vec![(mc, t)]);
        assert_eq!(g.edges_with_label(EdgeLabel::ForeignKeyTableRight), vec![(t, mc)]);
        assert!(g.edges_with_label(EdgeLabel::ForeignKeyTableBoth).is_empty());
    }

    #[test]
    fn bidirectional_fks_get_both_label() {
        let mut s = imdb_fragment();
        // Add a reverse FK title.id → movie_companies.id to force Both.
        s.add_foreign_key(ForeignKey {
            from_table: "title".into(),
            from_column: "id".into(),
            to_table: "movie_companies".into(),
            to_column: "id".into(),
        });
        let g = SchemaGraph::build(&s);
        assert_eq!(g.edges_with_label(EdgeLabel::ForeignKeyTableBoth).len(), 2);
        assert!(g.edges_with_label(EdgeLabel::ForeignKeyTableLeft).is_empty());
    }

    #[test]
    fn edges_by_relation_covers_all_edges() {
        let g = SchemaGraph::build(&imdb_fragment());
        let by_rel = g.edges_by_relation();
        assert_eq!(by_rel.len(), 10);
        let total: usize = by_rel.iter().map(Vec::len).sum();
        assert_eq!(total, g.edges().len());
    }

    #[test]
    fn schema_update_appends_vertices_stably() {
        let mut s = imdb_fragment();
        let g1 = SchemaGraph::build(&s);
        let title_v = g1.table_vertex("title").unwrap();
        let mc_col = g1.column_vertex("movie_companies", "company_id").unwrap();
        s.add_table(Table::new(
            "movie_info",
            vec![Column::primary("id", ColumnType::Int), Column::new("movie_id", ColumnType::Int)],
        ));
        let g2 = SchemaGraph::build(&s);
        assert_eq!(g2.table_vertex("title").unwrap(), title_v);
        assert_eq!(g2.column_vertex("movie_companies", "company_id").unwrap(), mc_col);
        assert_eq!(g2.len(), g1.len() + 3);
    }

    #[test]
    fn label_indices_are_stable_and_complete() {
        for (i, l) in EdgeLabel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
    }
}
