//! Template-affinity routing: which shard owns a normalized template.
//!
//! The sharded service routes every request by a deterministic hash of
//! its cache key — the normalized template text — so one template's
//! cache entry, recency position, and hit/miss counters live on exactly
//! one shard. Affinity is the load-bearing determinism property: because
//! no template is ever split across shards, the per-template sequence of
//! counted cache operations is the per-shard FIFO replay order, which is
//! the submission order restricted to that shard — independent of how
//! requests to *other* templates interleave, and independent of batch
//! geometry. The hash is a fixed-constant FNV-1a (never seeded, unlike
//! `std`'s `RandomState`), so a template maps to the same shard in every
//! process and on every run for a given shard count.

/// 64-bit FNV-1a over the key bytes. Fixed offset/prime constants — the
/// routing function must be identical across processes and runs.
pub fn affinity_hash(key: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The shard (in `0..shards`) owning `key`. `shards` is clamped to at
/// least 1, so a degenerate config can never route out of range.
///
/// The hash is xor-folded before the mod: FNV-1a's low bits correlate
/// across keys that differ only mid-string (the tail bytes are often a
/// shared suffix like `)`), which visibly skews `% shards` for
/// power-of-two shard counts. Folding the high half in breaks that
/// correlation while staying a fixed, process-independent function.
pub fn route(key: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let h = affinity_hash(key);
    ((h ^ (h >> 32)) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_fixed_fnv1a() {
        // Pinned reference values: a silent change to the hash would
        // silently remap every template's shard.
        assert_eq!(affinity_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(affinity_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(affinity_hash("SELECT"), affinity_hash("SELECT"));
        assert_ne!(affinity_hash("SELECT"), affinity_hash("select"));
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 4, 8, 16] {
            for key in ["", "a", "SELECT COUNT(*) FROM t", "日本語のリテラル"] {
                let s = route(key, shards);
                assert!(s < shards);
                assert_eq!(s, route(key, shards), "routing must be a pure function");
            }
        }
    }

    #[test]
    fn single_shard_and_degenerate_counts_route_to_zero() {
        assert_eq!(route("anything", 1), 0);
        assert_eq!(route("anything", 0), 0);
    }

    #[test]
    fn keys_spread_across_shards() {
        // Not a statistical test — just proof the router is not constant:
        // across 64 distinct templates every shard of 4 gets some keys.
        let mut seen = [false; 4];
        for i in 0..64 {
            seen[route(&format!("SELECT c{i} FROM t WHERE x IN ({i})"), 4)] = true;
        }
        assert_eq!(seen, [true; 4], "64 distinct keys must touch all 4 shards");
    }
}
