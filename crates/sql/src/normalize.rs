//! Query linearization and normalization.
//!
//! [`linearize`] turns a parsed [`Query`] into the canonical token stream
//! used by every encoder in this repository. Each linear token carries
//!
//! * its surface `text` (what the vocabulary encodes),
//! * an abstract [`StateKey`] — the `(clause region, symbol class)` pair
//!   that the SQL2Automaton module (crate `preqr-automaton`) uses as a
//!   state identity, and
//! * for literals, the column the value is compared against, so that the
//!   composite-embedding stage can replace the literal with the right
//!   per-column value-range token (§3.3.2 of the paper).
//!
//! [`template_text`] produces the normalized template string (literals
//! replaced by typed placeholders) used for template clustering (§3.3.1).

use serde::{Deserialize, Serialize};

use crate::ast::*;

/// Symbol classes for automaton states — roughly the vocabulary of the
/// automaton in Table 2 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SymbolClass {
    Cls,
    Select,
    Agg,
    Column,
    Star,
    From,
    Table,
    Where,
    PredColumn,
    CmpEq,
    CmpRange,
    InKw,
    LikeKw,
    BetweenKw,
    IsNullKw,
    Value,
    AndSep,
    OrSep,
    NotKw,
    GroupBy,
    Having,
    OrderBy,
    SortDir,
    Limit,
    Union,
    SubOpen,
    SubClose,
    End,
}

/// Clause regions for automaton states.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ClauseRegion {
    Start,
    SelectList,
    FromList,
    WhereClause,
    GroupByClause,
    HavingClause,
    OrderByClause,
    LimitClause,
    End,
}

/// An automaton state identity: clause region × symbol class × subquery
/// nesting depth (capped at 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StateKey {
    /// Clause the token sits in.
    pub region: ClauseRegion,
    /// Abstract class of the token.
    pub symbol: SymbolClass,
    /// Subquery nesting depth (0 = top level, capped at 2).
    pub depth: u8,
}

impl StateKey {
    /// Constructs a key at a given depth (clamped to 2).
    pub fn new(region: ClauseRegion, symbol: SymbolClass, depth: u8) -> Self {
        Self { region, symbol, depth: depth.min(2) }
    }
}

/// One token of the canonical linearized query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinToken {
    /// Surface text (vocabulary unit).
    pub text: String,
    /// Automaton state identity.
    pub key: StateKey,
    /// For literal tokens, the column the literal applies to (for value
    /// bucketing). `None` for everything else.
    pub value_col: Option<ColumnRef>,
    /// For literal tokens, the literal itself.
    pub value: Option<Value>,
}

impl LinToken {
    fn plain(text: impl Into<String>, key: StateKey) -> Self {
        Self { text: text.into(), key, value_col: None, value: None }
    }

    fn literal(col: Option<ColumnRef>, value: Value, key: StateKey) -> Self {
        Self { text: value.to_string(), key, value_col: col, value: Some(value) }
    }
}

/// Linearizes a query into the canonical token stream, bracketed by
/// `[CLS]` and `[END]` tokens.
pub fn linearize(q: &Query) -> Vec<LinToken> {
    let mut out = Vec::with_capacity(32);
    out.push(LinToken::plain("[CLS]", StateKey::new(ClauseRegion::Start, SymbolClass::Cls, 0)));
    linearize_select(&q.body, 0, &mut out);
    for u in &q.unions {
        out.push(LinToken::plain("UNION", StateKey::new(ClauseRegion::End, SymbolClass::Union, 0)));
        linearize_select(u, 0, &mut out);
    }
    out.push(LinToken::plain("[END]", StateKey::new(ClauseRegion::End, SymbolClass::End, 0)));
    out
}

fn linearize_select(s: &SelectStmt, depth: u8, out: &mut Vec<LinToken>) {
    use ClauseRegion as R;
    use SymbolClass as S;
    let k = |r, sym| StateKey::new(r, sym, depth);
    out.push(LinToken::plain("SELECT", k(R::SelectList, S::Select)));
    for (i, item) in s.projections.iter().enumerate() {
        if i > 0 {
            out.push(LinToken::plain(",", k(R::SelectList, S::Column)));
        }
        match item {
            SelectItem::Star => out.push(LinToken::plain("*", k(R::SelectList, S::Star))),
            SelectItem::Column(c) => {
                out.push(LinToken::plain(c.to_string(), k(R::SelectList, S::Column)))
            }
            SelectItem::Aggregate { .. } => {
                out.push(LinToken::plain(item.to_string(), k(R::SelectList, S::Agg)))
            }
        }
    }
    if !s.from.is_empty() {
        out.push(LinToken::plain("FROM", k(R::FromList, S::From)));
        for (i, t) in s.from.iter().enumerate() {
            if i > 0 {
                out.push(LinToken::plain(",", k(R::FromList, S::Table)));
            }
            out.push(LinToken::plain(t.table.clone(), k(R::FromList, S::Table)));
            if let Some(a) = &t.alias {
                out.push(LinToken::plain(a.clone(), k(R::FromList, S::Table)));
            }
        }
        for j in &s.joins {
            out.push(LinToken::plain("JOIN", k(R::FromList, S::From)));
            out.push(LinToken::plain(j.table.table.clone(), k(R::FromList, S::Table)));
            if let Some(a) = &j.table.alias {
                out.push(LinToken::plain(a.clone(), k(R::FromList, S::Table)));
            }
            out.push(LinToken::plain("ON", k(R::WhereClause, S::Where)));
            linearize_expr(&j.on, R::WhereClause, depth, out);
        }
    }
    if let Some(w) = &s.where_clause {
        out.push(LinToken::plain("WHERE", k(R::WhereClause, S::Where)));
        linearize_expr(w, R::WhereClause, depth, out);
    }
    if !s.group_by.is_empty() {
        out.push(LinToken::plain("GROUP BY", k(R::GroupByClause, S::GroupBy)));
        for (i, c) in s.group_by.iter().enumerate() {
            if i > 0 {
                out.push(LinToken::plain(",", k(R::GroupByClause, S::Column)));
            }
            out.push(LinToken::plain(c.to_string(), k(R::GroupByClause, S::Column)));
        }
    }
    if let Some(h) = &s.having {
        out.push(LinToken::plain("HAVING", k(R::HavingClause, S::Having)));
        linearize_expr(h, R::HavingClause, depth, out);
    }
    if !s.order_by.is_empty() {
        out.push(LinToken::plain("ORDER BY", k(R::OrderByClause, S::OrderBy)));
        for (i, (c, desc)) in s.order_by.iter().enumerate() {
            if i > 0 {
                out.push(LinToken::plain(",", k(R::OrderByClause, S::Column)));
            }
            out.push(LinToken::plain(c.to_string(), k(R::OrderByClause, S::Column)));
            if *desc {
                out.push(LinToken::plain("DESC", k(R::OrderByClause, S::SortDir)));
            }
        }
    }
    if let Some(l) = s.limit {
        out.push(LinToken::plain("LIMIT", k(R::LimitClause, S::Limit)));
        out.push(LinToken::literal(None, Value::Int(l as i64), k(R::LimitClause, S::Value)));
    }
}

fn linearize_expr(e: &Expr, region: ClauseRegion, depth: u8, out: &mut Vec<LinToken>) {
    use SymbolClass as S;
    let k = |sym| StateKey::new(region, sym, depth);
    match e {
        Expr::And(a, b) => {
            linearize_expr(a, region, depth, out);
            out.push(LinToken::plain("AND", k(S::AndSep)));
            linearize_expr(b, region, depth, out);
        }
        Expr::Or(a, b) => {
            linearize_expr(a, region, depth, out);
            out.push(LinToken::plain("OR", k(S::OrSep)));
            linearize_expr(b, region, depth, out);
        }
        Expr::Not(a) => {
            out.push(LinToken::plain("NOT", k(S::NotKw)));
            linearize_expr(a, region, depth, out);
        }
        Expr::Cmp { left, op, right } => {
            linearize_scalar(left, None, region, depth, out);
            let sym = if *op == CmpOp::Eq { S::CmpEq } else { S::CmpRange };
            out.push(LinToken::plain(op.as_str(), k(sym)));
            let ctx = match left {
                Scalar::Column(c) => Some(c.clone()),
                Scalar::Value(_) => None,
            };
            linearize_scalar(right, ctx, region, depth, out);
        }
        Expr::Between { col, low, high } => {
            out.push(LinToken::plain(col.to_string(), k(S::PredColumn)));
            out.push(LinToken::plain("BETWEEN", k(S::BetweenKw)));
            out.push(LinToken::literal(Some(col.clone()), low.clone(), k(S::Value)));
            out.push(LinToken::plain("AND", k(S::BetweenKw)));
            out.push(LinToken::literal(Some(col.clone()), high.clone(), k(S::Value)));
        }
        Expr::InList { col, values, negated } => {
            out.push(LinToken::plain(col.to_string(), k(S::PredColumn)));
            if *negated {
                out.push(LinToken::plain("NOT", k(S::NotKw)));
            }
            out.push(LinToken::plain("IN", k(S::InKw)));
            for v in values {
                out.push(LinToken::literal(Some(col.clone()), v.clone(), k(S::Value)));
            }
        }
        Expr::InSubquery { col, subquery, negated } => {
            out.push(LinToken::plain(col.to_string(), k(S::PredColumn)));
            if *negated {
                out.push(LinToken::plain("NOT", k(S::NotKw)));
            }
            out.push(LinToken::plain("IN", k(S::InKw)));
            out.push(LinToken::plain("(", k(S::SubOpen)));
            linearize_select(&subquery.body, depth + 1, out);
            for u in &subquery.unions {
                out.push(LinToken::plain(
                    "UNION",
                    StateKey::new(ClauseRegion::End, S::Union, depth + 1),
                ));
                linearize_select(u, depth + 1, out);
            }
            out.push(LinToken::plain(")", k(S::SubClose)));
        }
        Expr::Like { col, pattern, negated } => {
            out.push(LinToken::plain(col.to_string(), k(S::PredColumn)));
            if *negated {
                out.push(LinToken::plain("NOT", k(S::NotKw)));
            }
            out.push(LinToken::plain("LIKE", k(S::LikeKw)));
            out.push(LinToken::literal(
                Some(col.clone()),
                Value::Str(pattern.clone()),
                k(S::Value),
            ));
        }
        Expr::IsNull { col, negated } => {
            out.push(LinToken::plain(col.to_string(), k(S::PredColumn)));
            let text = if *negated { "IS NOT NULL" } else { "IS NULL" };
            out.push(LinToken::plain(text, k(S::IsNullKw)));
        }
    }
}

fn linearize_scalar(
    s: &Scalar,
    value_ctx: Option<ColumnRef>,
    region: ClauseRegion,
    depth: u8,
    out: &mut Vec<LinToken>,
) {
    use SymbolClass as S;
    match s {
        Scalar::Column(c) => {
            out.push(LinToken::plain(c.to_string(), StateKey::new(region, S::PredColumn, depth)))
        }
        Scalar::Value(v) => out.push(LinToken::literal(
            value_ctx,
            v.clone(),
            StateKey::new(region, S::Value, depth),
        )),
    }
}

/// The abstract symbol sequence (automaton input) of a query.
pub fn state_keys(q: &Query) -> Vec<StateKey> {
    linearize(q).into_iter().map(|t| t.key).collect()
}

/// Normalized template text: literals replaced by typed placeholders,
/// preserving structure. Queries with the same template text belong to
/// the same template occurrence group.
pub fn template_text(q: &Query) -> String {
    let parts: Vec<String> = linearize(q)
        .iter()
        .map(|t| match (&t.value, &t.key.symbol) {
            (Some(Value::Int(_)), _) => "<INT>".to_string(),
            (Some(Value::Float(_)), _) => "<FLOAT>".to_string(),
            (Some(Value::Str(_)), _) => "<STR>".to_string(),
            _ => t.text.clone(),
        })
        .collect();
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn linearize_brackets_with_cls_and_end() {
        let q = parse("SELECT * FROM t").unwrap();
        let toks = linearize(&q);
        assert_eq!(toks.first().unwrap().text, "[CLS]");
        assert_eq!(toks.last().unwrap().text, "[END]");
    }

    #[test]
    fn from_list_tokens_share_the_table_state() {
        // Mirrors Figure 4: "title t , movie_companies mc" all map to the
        // same automaton state.
        let q = parse("SELECT COUNT(*) FROM title t, movie_companies mc").unwrap();
        let toks = linearize(&q);
        let table_keys: Vec<&StateKey> = toks
            .iter()
            .filter(|t| ["title", "t", ",", "movie_companies", "mc"].contains(&t.text.as_str()))
            .map(|t| &t.key)
            .collect();
        assert_eq!(table_keys.len(), 5);
        assert!(table_keys.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn eq_and_in_get_distinct_states() {
        // Mirrors Table 2: '=' and 'IN' transition to different states.
        let q1 = parse("SELECT name FROM user WHERE rank = 'adm'").unwrap();
        let q2 = parse("SELECT name FROM user WHERE rank IN ('adm', 'sup')").unwrap();
        let k1: Vec<SymbolClass> = state_keys(&q1).iter().map(|k| k.symbol).collect();
        let k2: Vec<SymbolClass> = state_keys(&q2).iter().map(|k| k.symbol).collect();
        assert!(k1.contains(&SymbolClass::CmpEq));
        assert!(k2.contains(&SymbolClass::InKw));
        // Shared prefix up to the operator (SELECT name FROM user WHERE rank).
        let shared = k1.iter().zip(k2.iter()).take_while(|(a, b)| a == b).count();
        assert!(shared >= 6, "expected a long shared prefix, got {shared}");
    }

    #[test]
    fn union_queries_repeat_the_state_sequence() {
        // q3 of Figure 2: UNION of two equal-shaped SELECTs gives a repeated
        // state block, as in Table 2.
        let q = parse(
            "SELECT name FROM user WHERE rank = 'adm' \
             UNION SELECT name FROM user WHERE rank = 'sup'",
        )
        .unwrap();
        let keys = state_keys(&q);
        let union_pos = linearize(&q).iter().position(|t| t.text == "UNION").unwrap();
        let first = &keys[1..union_pos];
        let second = &keys[union_pos + 1..keys.len() - 1];
        assert_eq!(first, second, "both UNION branches should share state sequences");
    }

    #[test]
    fn literal_tokens_carry_column_context() {
        let q = parse("SELECT * FROM t WHERE t.year > 2010 AND t.kind = 'movie'").unwrap();
        let toks = linearize(&q);
        let lits: Vec<&LinToken> = toks.iter().filter(|t| t.value.is_some()).collect();
        assert_eq!(lits.len(), 2);
        assert_eq!(lits[0].value_col.as_ref().unwrap().column, "year");
        assert_eq!(lits[1].value_col.as_ref().unwrap().column, "kind");
    }

    #[test]
    fn subquery_tokens_are_at_deeper_depth() {
        let q = parse(
            "SELECT SUM(balance) FROM accounts WHERE user_id IN \
             (SELECT user_id FROM user WHERE rank = 'adm')",
        )
        .unwrap();
        let toks = linearize(&q);
        let inner_select =
            toks.iter().filter(|t| t.text == "SELECT").map(|t| t.key.depth).collect::<Vec<_>>();
        assert_eq!(inner_select, vec![0, 1]);
    }

    #[test]
    fn template_text_abstracts_literals() {
        let a = parse("SELECT * FROM t WHERE x > 5").unwrap();
        let b = parse("SELECT * FROM t WHERE x > 99").unwrap();
        let c = parse("SELECT * FROM t WHERE x > 'abc'").unwrap();
        assert_eq!(template_text(&a), template_text(&b));
        assert_ne!(template_text(&a), template_text(&c), "typed placeholders differ");
        assert!(template_text(&a).contains("<INT>"));
    }

    #[test]
    fn multibyte_string_literals_share_a_template() {
        // Queries differing only in (multi-byte) string literals must
        // normalize to one `<STR>` template — this is the serving-cache
        // key, so a lexer that mangled UTF-8 would split or corrupt it.
        let a = parse("SELECT * FROM t WHERE city = 'café'").unwrap();
        let b = parse("SELECT * FROM t WHERE city = '北京市'").unwrap();
        let c = parse("SELECT * FROM t WHERE city = 'plain'").unwrap();
        let ta = template_text(&a);
        assert_eq!(ta, template_text(&b));
        assert_eq!(ta, template_text(&c));
        assert!(ta.contains("<STR>"));
        assert!(!ta.contains("café"), "literal text must not leak into the template: {ta}");
    }

    #[test]
    fn between_produces_two_value_tokens_with_context() {
        let q = parse("SELECT * FROM t WHERE y BETWEEN 1 AND 9").unwrap();
        let lits: Vec<LinToken> = linearize(&q).into_iter().filter(|t| t.value.is_some()).collect();
        assert_eq!(lits.len(), 2);
        assert!(lits.iter().all(|t| t.value_col.as_ref().unwrap().column == "y"));
    }
}
