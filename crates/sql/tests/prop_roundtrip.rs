//! Property-based tests: arbitrary ASTs round-trip through the printer
//! and parser, and normalization invariants hold.

use proptest::prelude::*;

use preqr_sql::ast::*;
use preqr_sql::normalize::{state_keys, template_text};
use preqr_sql::parser::parse;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}"
        .prop_filter("not a keyword", |s| preqr_sql::token::Keyword::parse(s).is_none())
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-10_000i64..10_000).prop_map(Value::Int),
        (-1000i64..1000).prop_map(|v| Value::Float(v as f64 / 8.0)),
        "[a-z0-9 ]{0,6}".prop_map(Value::Str),
    ]
}

fn column_ref() -> impl Strategy<Value = ColumnRef> {
    (proptest::option::of(ident()), ident()).prop_map(|(t, c)| ColumnRef { table: t, column: c })
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (column_ref(), cmp_op(), value()).prop_map(|(c, op, v)| Expr::Cmp {
            left: Scalar::Column(c),
            op,
            right: Scalar::Value(v),
        }),
        (column_ref(), cmp_op(), column_ref()).prop_map(|(a, op, b)| Expr::Cmp {
            left: Scalar::Column(a),
            op,
            right: Scalar::Column(b),
        }),
        (column_ref(), -100i64..100, 0i64..100).prop_map(|(c, lo, d)| Expr::Between {
            col: c,
            low: Value::Int(lo),
            high: Value::Int(lo + d),
        }),
        (column_ref(), proptest::collection::vec(value(), 1..4), any::<bool>())
            .prop_map(|(c, vs, neg)| Expr::InList { col: c, values: vs, negated: neg }),
        (column_ref(), "[a-z%_]{1,6}", any::<bool>()).prop_map(|(c, p, neg)| Expr::Like {
            col: c,
            pattern: p,
            negated: neg,
        }),
        (column_ref(), any::<bool>()).prop_map(|(c, neg)| Expr::IsNull { col: c, negated: neg }),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Expr::Not(Box::new(a))),
        ]
    })
}

fn select_item() -> impl Strategy<Value = SelectItem> {
    prop_oneof![
        Just(SelectItem::Star),
        column_ref().prop_map(SelectItem::Column),
        (column_ref(), any::<bool>()).prop_map(|(c, d)| SelectItem::Aggregate {
            func: AggFunc::Count,
            arg: Some(c),
            distinct: d,
        }),
        Just(SelectItem::Aggregate { func: AggFunc::Count, arg: None, distinct: false }),
        column_ref().prop_map(|c| SelectItem::Aggregate {
            func: AggFunc::Sum,
            arg: Some(c),
            distinct: false,
        }),
    ]
}

fn table_ref() -> impl Strategy<Value = TableRef> {
    (ident(), proptest::option::of(ident())).prop_map(|(t, a)| TableRef { table: t, alias: a })
}

prop_compose! {
    fn select_stmt()(
        projections in proptest::collection::vec(select_item(), 1..4),
        from in proptest::collection::vec(table_ref(), 1..4),
        where_clause in proptest::option::of(expr()),
        group_by in proptest::collection::vec(column_ref(), 0..3),
        order_by in proptest::collection::vec((column_ref(), any::<bool>()), 0..3),
        limit in proptest::option::of(0u64..1000),
    ) -> SelectStmt {
        SelectStmt {
            projections,
            from,
            joins: Vec::new(),
            where_clause,
            group_by,
            having: None,
            order_by,
            limit,
        }
    }
}

fn query() -> impl Strategy<Value = Query> {
    (select_stmt(), proptest::collection::vec(select_stmt(), 0..2))
        .prop_map(|(body, unions)| Query { body, unions })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Printing and re-parsing an arbitrary query yields the same AST up
    /// to AND/OR associativity (the printer flattens chains; the parser
    /// re-associates left).
    #[test]
    fn print_parse_round_trip(q in query()) {
        let sql = q.sql();
        let reparsed = parse(&sql)
            .unwrap_or_else(|e| panic!("failed to re-parse `{sql}`: {e}"));
        prop_assert_eq!(normalize_assoc_query(&reparsed), normalize_assoc_query(&q));
    }

    /// The printer is a fixed point: print ∘ parse ∘ print = print.
    #[test]
    fn printer_is_fixed_point(q in query()) {
        let once = q.sql();
        let twice = parse(&once).unwrap().sql();
        prop_assert_eq!(once, twice);
    }

    /// State keys are invariant under integer-literal changes (templates
    /// abstract values).
    #[test]
    fn state_keys_ignore_int_literals(q in query(), delta in 1i64..50) {
        let shifted = shift_ints(&q, delta);
        prop_assert_eq!(state_keys(&q), state_keys(&shifted));
        prop_assert_eq!(template_text(&q), template_text(&shifted));
    }

    /// Linearized token streams start with [CLS] and end with [END].
    #[test]
    fn linearize_brackets(q in query()) {
        let toks = preqr_sql::normalize::linearize(&q);
        prop_assert!(toks.len() >= 3);
        prop_assert_eq!(toks.first().unwrap().text.as_str(), "[CLS]");
        prop_assert_eq!(toks.last().unwrap().text.as_str(), "[END]");
    }
}

/// Rebuilds AND/OR chains left-associated so structurally different but
/// associativity-equivalent trees compare equal.
fn normalize_assoc(e: &Expr) -> Expr {
    fn flatten_and<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::And(a, b) => {
                flatten_and(a, out);
                flatten_and(b, out);
            }
            other => out.push(other),
        }
    }
    fn flatten_or<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::Or(a, b) => {
                flatten_or(a, out);
                flatten_or(b, out);
            }
            other => out.push(other),
        }
    }
    match e {
        Expr::And(..) => {
            let mut parts = Vec::new();
            flatten_and(e, &mut parts);
            parts
                .into_iter()
                .map(normalize_assoc)
                .reduce(|a, b| Expr::And(Box::new(a), Box::new(b)))
                .expect("non-empty")
        }
        Expr::Or(..) => {
            let mut parts = Vec::new();
            flatten_or(e, &mut parts);
            parts
                .into_iter()
                .map(normalize_assoc)
                .reduce(|a, b| Expr::Or(Box::new(a), Box::new(b)))
                .expect("non-empty")
        }
        Expr::Not(a) => Expr::Not(Box::new(normalize_assoc(a))),
        other => other.clone(),
    }
}

fn normalize_assoc_query(q: &Query) -> Query {
    let mut q = q.clone();
    for s in std::iter::once(&mut q.body).chain(q.unions.iter_mut()) {
        if let Some(w) = &s.where_clause {
            s.where_clause = Some(normalize_assoc(w));
        }
    }
    q
}

/// Shifts every integer literal in predicates by `delta`, preserving
/// structure (a pure-test helper mirroring the rewrite in `preqr-data`).
fn shift_ints(q: &Query, delta: i64) -> Query {
    fn walk(e: &mut Expr, delta: i64) {
        match e {
            Expr::And(a, b) | Expr::Or(a, b) => {
                walk(a, delta);
                walk(b, delta);
            }
            Expr::Not(a) => walk(a, delta),
            Expr::Cmp { right: Scalar::Value(Value::Int(v)), .. } => *v += delta,
            Expr::Between { low, high, .. } => {
                if let Value::Int(v) = low {
                    *v += delta;
                }
                if let Value::Int(v) = high {
                    *v += delta;
                }
            }
            Expr::InList { values, .. } => {
                for v in values.iter_mut() {
                    if let Value::Int(x) = v {
                        *x += delta;
                    }
                }
            }
            _ => {}
        }
    }
    let mut q = q.clone();
    for s in std::iter::once(&mut q.body).chain(q.unions.iter_mut()) {
        if let Some(w) = &mut s.where_clause {
            walk(w, delta);
        }
    }
    q
}
