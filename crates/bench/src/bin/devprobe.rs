//! Development probe (not a paper artifact): fast PreQR-only iteration
//! on the estimation pipeline.

use preqr::PreqrConfig;
use preqr_bench::Ctx;
use preqr_tasks::estimation::{evaluate, train_lstm, train_preqr, NeuroCardPredictor, Target};

fn main() {
    let ctx = Ctx::build();
    let model = ctx.pretrained("main", PreqrConfig::small());
    let (train, valid) = ctx.estimation_train();
    let tests = ctx.test_workloads();
    let target = if std::env::var("COST").is_ok() { Target::Cost } else { Target::Cardinality };
    let pred = train_preqr(
        &ctx.db,
        &model,
        Some(&ctx.sampler),
        &train,
        &valid,
        target,
        ctx.sizes.est_epochs,
        7,
        "PreQRCard",
    );
    println!(
        "val history: {:?}",
        pred.history.iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    let train_fit = evaluate(&pred, target, &train[..200]);
    println!("train-fit  median {:>7.2} mean {:>8.2}", train_fit.median, train_fit.mean);
    for (name, w) in &tests {
        let s = evaluate(&pred, target, w);
        println!(
            "{name:<10} median {:>7.2} 90th {:>8.2} mean {:>8.2} max {:>9.2}",
            s.median, s.p90, s.mean, s.max
        );
    }
    if std::env::var("BASELINES").is_err() {
        return;
    }
    let lstm =
        train_lstm(&ctx.db, Some(&ctx.sampler), &train, &valid, target, ctx.sizes.est_epochs, 7);
    for (name, w) in &tests {
        let s = evaluate(&lstm, target, w);
        println!(
            "LSTM {name:<10} median {:>7.2} mean {:>8.2} max {:>9.2}",
            s.median, s.mean, s.max
        );
    }
    let nc = NeuroCardPredictor::new(&ctx.db, ctx.sizes.nc_samples, 7);
    for (name, w) in &tests {
        let s = evaluate(&nc, target, w);
        println!(
            "NC   {name:<10} median {:>7.2} mean {:>8.2} max {:>9.2}",
            s.median, s.mean, s.max
        );
    }
}
