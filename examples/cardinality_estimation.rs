//! Cardinality estimation with PreQR: the paper's flagship downstream
//! task, end to end at demo scale.
//!
//! ```sh
//! cargo run --release --example cardinality_estimation
//! ```

use preqr::PreqrConfig;
use preqr_data::imdb::{generate, ImdbConfig};
use preqr_data::workloads;
use preqr_engine::{BitmapSampler, CostModel, TableStats};
use preqr_tasks::estimation::{evaluate, train_preqr, PgBaseline, Target};
use preqr_tasks::setup::build_pretrained;

fn main() {
    let db = generate(ImdbConfig { movies: 2_000, ..ImdbConfig::default() });
    let stats = TableStats::analyze(&db);
    let sampler = BitmapSampler::new(&db, 32, 1);
    let cost_model = CostModel::default();

    // Pre-train PreQR on a mixed corpus (structure coverage for the
    // automaton, value coverage for the range tokens).
    let corpus = workloads::pretrain_corpus(&db, 400, 7);
    println!("pre-training PreQR on {} queries…", corpus.len());
    let (model, _) = build_pretrained(&db, &corpus, PreqrConfig::small(), 2, 1e-3);

    // Label training and test workloads with true cardinalities by
    // executing them on the engine.
    println!("labelling workloads…");
    let train = workloads::label(&db, &workloads::synthetic(&db, 400, 21), &cost_model);
    let valid = workloads::label(&db, &workloads::synthetic(&db, 60, 22), &cost_model);
    let test = workloads::label(&db, &workloads::job_light(&db, 41), &cost_model);

    // Fine-tune the last SQLBERT layer + a 3-layer FC head (§4.3.2).
    println!("fine-tuning PreQR head…");
    let preqr = train_preqr(
        &db,
        &model,
        Some(&sampler),
        &train,
        &valid,
        Target::Cardinality,
        6,
        7,
        "PreQRCard",
    );
    let pg = PgBaseline::new(&db, &stats, Target::Cardinality);

    println!("\nJOB-light q-errors (70 queries):");
    println!("{:<10} {:>8} {:>8} {:>8}", "method", "median", "95th", "mean");
    for (name, s) in [
        ("PG", evaluate(&pg, Target::Cardinality, &test)),
        ("PreQR", evaluate(&preqr, Target::Cardinality, &test)),
    ] {
        println!("{:<10} {:>8.2} {:>8.2} {:>8.2}", name, s.median, s.p95, s.mean);
    }
    println!("\n(small demo scale — run the preqr-bench binaries for the full reproduction)");
}
