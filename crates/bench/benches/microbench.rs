//! Criterion micro-benchmarks over the hot paths of every reproduced
//! pipeline — one group per experiment family, so `cargo bench` tracks
//! regressions in the components each table/figure depends on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use preqr::{PreqrConfig, SqlBert};
use preqr_automaton::Automaton;
use preqr_data::imdb::{generate, ImdbConfig};
use preqr_data::workloads;
use preqr_engine::{execute, BitmapSampler, Database, PgEstimator, TableStats};
use preqr_nn::layers::MultiHeadAttention;
use preqr_nn::{Matrix, Tensor};
use preqr_sql::normalize::{linearize, state_keys};
use preqr_sql::parser::parse;
use preqr_sql::template::TemplateSet;
use preqr_tasks::setup::value_buckets_from_db;

const SQL: &str = "SELECT COUNT(*) FROM title t, movie_companies mc \
                   WHERE t.id = mc.movie_id AND t.production_year > 2010 \
                   AND mc.company_id = 5";

fn tiny_db() -> Database {
    generate(ImdbConfig::tiny())
}

fn bench_sql_frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("sql_frontend");
    g.bench_function("parse", |b| b.iter(|| parse(black_box(SQL)).unwrap()));
    let q = parse(SQL).unwrap();
    g.bench_function("linearize", |b| b.iter(|| linearize(black_box(&q))));
    g.finish();
}

fn bench_automaton(c: &mut Criterion) {
    let db = tiny_db();
    let corpus = workloads::pretrain_corpus(&db, 60, 11);
    let templates = TemplateSet::extract(&corpus, 0.25);
    let mut g = c.benchmark_group("automaton");
    g.bench_function("build_from_templates", |b| {
        b.iter(|| Automaton::from_templates(black_box(&templates)))
    });
    let fa = Automaton::from_templates(&templates);
    let keys = state_keys(&parse(SQL).unwrap());
    g.bench_function("match_query", |b| b.iter(|| fa.match_keys(black_box(&keys))));
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let db = tiny_db();
    let stats = TableStats::analyze(&db);
    let q = parse(SQL).unwrap();
    let mut g = c.benchmark_group("engine");
    g.bench_function("execute_join", |b| b.iter(|| execute(&db, black_box(&q)).unwrap()));
    g.bench_function("pg_estimate", |b| {
        b.iter(|| PgEstimator::new(&db, &stats).estimate(black_box(&q)).unwrap())
    });
    let sampler = BitmapSampler::new(&db, 64, 1);
    g.bench_function("bitmap_features", |b| {
        b.iter(|| sampler.bitmap_for(&db, black_box(&q), 0).unwrap())
    });
    g.finish();
}

fn bench_model(c: &mut Criterion) {
    let db = tiny_db();
    let corpus = workloads::pretrain_corpus(&db, 12, 11);
    let buckets = value_buckets_from_db(&db, 8);
    let mut model = SqlBert::new(&corpus, db.schema(), buckets, PreqrConfig::test());
    let q = parse(SQL).unwrap();
    let mut g = c.benchmark_group("preqr_model");
    g.sample_size(10);
    let nodes = model.cached_nodes();
    g.bench_function("encode_query", |b| {
        b.iter(|| model.encode_with_nodes(black_box(&q), nodes.as_ref()))
    });
    g.bench_function("schema_node_states", |b| {
        b.iter(|| model.schema2graph().unwrap().node_states().value_clone())
    });
    g.bench_function("mlm_pretrain_epoch_12q", |b| {
        b.iter(|| model.pretrain(black_box(&corpus), 1, 1e-3))
    });
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let db = tiny_db();
    let q = parse(SQL).unwrap();
    let mut g = c.benchmark_group("baselines");
    let featurizer = preqr_baselines::mscn::MscnFeaturizer::new(&db, 0);
    g.bench_function("mscn_featurize", |b| {
        b.iter(|| featurizer.featurize(&db, black_box(&q), None))
    });
    let nc = preqr_baselines::neurocard::SamplingEstimator::new(&db, 200, 7);
    g.bench_function("neurocard_estimate", |b| b.iter(|| nc.estimate(black_box(&q)).unwrap()));
    g.finish();
}

fn bench_kernels(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    let mut random = |rows: usize, cols: usize| {
        let data = (0..rows * cols).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        Matrix::from_vec(rows, cols, data)
    };
    let a = random(256, 256);
    let b = random(256, 256);
    let soft = random(1024, 256);
    let x = Tensor::constant(random(128, 64));
    let attn = MultiHeadAttention::new(64, 4, &mut rng);
    let mut g = c.benchmark_group("nn_kernels");
    g.bench_function("matmul_256x256x256", |bch| bch.iter(|| black_box(&a).matmul(black_box(&b))));
    g.bench_function("matmul_256x256x256_serial", |bch| {
        bch.iter(|| black_box(&a).matmul_serial(black_box(&b)))
    });
    g.bench_function("softmax_rows_1024x256", |bch| {
        bch.iter(|| {
            let mut m = soft.clone();
            m.softmax_rows_inplace();
            m
        })
    });
    g.bench_function("attention_forward_self_seq128_d64", |bch| {
        bch.iter(|| attn.forward_self(black_box(&x)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sql_frontend,
    bench_automaton,
    bench_engine,
    bench_model,
    bench_baselines,
    bench_kernels
);
criterion_main!(benches);
