//! Figure 8 — validation error vs training epoch on the Synthetic
//! workload, with and without bitmap sampling ("NS" = no sampling).
//!
//! Expected shape (paper): sampling helps every learned model; PreQR-NS
//! still beats the sampled baselines.

use preqr::PreqrConfig;
use preqr_bench::Ctx;
use preqr_tasks::estimation::{train_lstm, train_mscn, train_preqr, Target};

fn main() {
    let ctx = Ctx::build();
    let model = ctx.pretrained("main", PreqrConfig::small());
    let (train, valid) = ctx.estimation_train();
    let epochs = ctx.sizes.est_epochs.max(6);
    let sampler = Some(&ctx.sampler);

    for target in [Target::Cardinality, Target::Cost] {
        println!("\n=== Figure 8 ({target:?}): mean validation q-error per epoch ===");
        let series: Vec<(String, Vec<f64>)> = vec![
            (
                "MSCN".into(),
                train_mscn(&ctx.db, sampler, &train, &valid, target, epochs, 7).history,
            ),
            (
                "NS-MSCN".into(),
                train_mscn(&ctx.db, None, &train, &valid, target, epochs, 7).history,
            ),
            (
                "LSTM".into(),
                train_lstm(&ctx.db, sampler, &train, &valid, target, epochs, 7).history,
            ),
            (
                "NS-LSTM".into(),
                train_lstm(&ctx.db, None, &train, &valid, target, epochs, 7).history,
            ),
            (
                "PreQR".into(),
                train_preqr(&ctx.db, &model, sampler, &train, &valid, target, epochs, 7, "PreQR")
                    .history,
            ),
            (
                "NS-PreQR".into(),
                train_preqr(&ctx.db, &model, None, &train, &valid, target, epochs, 7, "NS-PreQR")
                    .history,
            ),
        ];
        let max_len = series.iter().map(|(_, h)| h.len()).max().unwrap_or(0);
        print!("{:<10}", "epoch");
        for e in 0..max_len {
            print!(" {:>8}", e + 1);
        }
        println!();
        for (name, hist) in &series {
            print!("{name:<10}");
            for v in hist {
                print!(" {v:>8.2}");
            }
            println!();
        }
    }
    println!("\npaper: all approaches improve with the bitmap-sampling trick; even NS-PreQR outperforms the sampled baselines.");
}
