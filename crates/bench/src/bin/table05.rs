//! Table 5 — model update cost for the four cases of §3.6.
//!
//! Paper reference (absolute times are hardware-bound; the *ordering*
//! Case 1 ≪ Case 2 < Case 3 < Case 4 is the reproduced shape):
//! Case 1: 15 min, Case 2: 3.5 h, Case 3: 6.7 h, Case 4: 18.3 h.

use preqr::update::{
    retrain_from_scratch, subsample, update_data_distribution, update_query_patterns, update_schema,
};
use preqr::PreqrConfig;
use preqr_bench::Ctx;
use preqr_data::workloads;
use preqr_schema::{Column, ColumnType, Table};
use preqr_tasks::setup::value_buckets_from_db;

fn main() {
    let ctx = Ctx::build();
    let corpus = ctx.pretrain_corpus();
    let config = PreqrConfig::small();
    let mut model = ctx.pretrained("main", config);
    let samples = subsample(&corpus, 64, 5);
    let steps = 24;

    println!("=== Table 5: update cost of the PreQR model ===");
    println!("{:<8} {:<55} {:>9} {:>14}", "case", "description", "seconds", "params trained");

    let r1 = update_data_distribution(&mut model, &samples, steps);
    println!(
        "{:<8} {:<55} {:>9.2} {:>14}",
        "Case 1",
        r1.case.description(),
        r1.seconds,
        r1.trained_params
    );

    let mut new_schema = model.schema().clone();
    new_schema.add_table(Table::new(
        "aka_title",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("movie_id", ColumnType::Int),
            Column::new("title", ColumnType::Varchar),
        ],
    ));
    let r2 = update_schema(&mut model, &new_schema, &samples, steps);
    println!(
        "{:<8} {:<55} {:>9.2} {:>14}",
        "Case 2",
        r2.case.description(),
        r2.seconds,
        r2.trained_params
    );

    let new_patterns = workloads::pretrain_corpus(&ctx.db, 64, 99);
    let r3 = update_query_patterns(&mut model, &new_patterns, steps);
    println!(
        "{:<8} {:<55} {:>9.2} {:>14}",
        "Case 3",
        r3.case.description(),
        r3.seconds,
        r3.trained_params
    );

    let buckets = value_buckets_from_db(&ctx.db, config.value_buckets);
    let (_, r4) = retrain_from_scratch(&corpus, ctx.db.schema(), buckets, config, 1);
    println!(
        "{:<8} {:<55} {:>9.2} {:>14}",
        "Case 4",
        r4.case.description(),
        r4.seconds,
        r4.trained_params
    );
    println!("\npaper: Case 1 = 15 min, Case 2 = 3.5 h, Case 3 = 6.7 h, Case 4 = 18.3 h (ordering is the reproduced shape; Case 4 here runs 1 epoch — multiply by the full epoch count for end-to-end time)");
}
