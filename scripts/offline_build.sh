#!/bin/bash
# Builds the whole preqr workspace with bare rustc against the dependency
# stubs in scripts/stubs/ — for containers with no crate registry access.
# Usage:
#   scripts/offline_build.sh [-O]     # typecheck/build all rlibs (+facade)
# Env: OUT=/tmp/preqr-offline/out (default; -O appends "-O")
set -e
OPT=""
if [ "$1" = "-O" ]; then OPT="-O"; shift; fi
REPO=$(cd "$(dirname "$0")/.." && pwd)
STUBS=$REPO/scripts/stubs
OUT=${OUT:-/tmp/preqr-offline/out$OPT}
mkdir -p "$OUT"
RUSTC="rustc --edition 2021 $OPT -Awarnings -L $OUT --out-dir $OUT"

# ---- dependency stubs ----
if [ ! -f "$OUT/libserde.rlib" ]; then
  rustc --edition 2021 -Awarnings --crate-type proc-macro --crate-name serde_derive \
      --out-dir "$OUT" "$STUBS/serde_derive.rs"
  $RUSTC --crate-type rlib --crate-name serde \
      --extern serde_derive="$OUT/libserde_derive.so" "$STUBS/serde.rs"
  $RUSTC --crate-type rlib --crate-name rand "$STUBS/rand.rs"
  $RUSTC --crate-type rlib --crate-name proptest "$STUBS/proptest.rs"
  $RUSTC --crate-type rlib --crate-name crossbeam "$STUBS/crossbeam.rs"
  $RUSTC --crate-type rlib --crate-name parking_lot "$STUBS/parking_lot.rs"
fi

SERDE="--extern serde=$OUT/libserde.rlib"
RAND="--extern rand=$OUT/librand.rlib"
CB="--extern crossbeam=$OUT/libcrossbeam.rlib"
PL="--extern parking_lot=$OUT/libparking_lot.rlib"

lib() { # lib <crate_name> <path> <externs...>
  local name=$1 path=$2; shift 2
  echo "[build] $name"
  $RUSTC --crate-type rlib --crate-name "$name" "$path" "$@"
}

X() { echo "--extern $1=$OUT/lib$1.rlib"; }

lib preqr_obs   "$REPO/crates/obs/src/lib.rs"
lib preqr_sql   "$REPO/crates/sql/src/lib.rs" $SERDE
lib preqr_schema "$REPO/crates/schema/src/lib.rs" $SERDE
lib preqr_automaton "$REPO/crates/automaton/src/lib.rs" $SERDE $(X preqr_sql)
OBS=$(X preqr_obs)
lib preqr_nn    "$REPO/crates/nn/src/lib.rs" $SERDE $RAND $CB $PL $OBS
lib preqr_train "$REPO/crates/train/src/lib.rs" $RAND $(X preqr_nn) $OBS
lib preqr_engine "$REPO/crates/engine/src/lib.rs" $SERDE $RAND $(X preqr_sql) $(X preqr_schema) $OBS
lib preqr_data  "$REPO/crates/data/src/lib.rs" $SERDE $RAND $CB $(X preqr_sql) $(X preqr_schema) $(X preqr_engine)
lib preqr       "$REPO/crates/core/src/lib.rs" $SERDE $RAND $PL $(X preqr_nn) $(X preqr_train) $(X preqr_sql) $(X preqr_automaton) $(X preqr_schema) $OBS
lib preqr_baselines "$REPO/crates/baselines/src/lib.rs" $SERDE $RAND $(X preqr_nn) $(X preqr_train) $(X preqr_sql) $(X preqr_schema) $(X preqr_engine)
lib preqr_tasks "$REPO/crates/tasks/src/lib.rs" $SERDE $RAND $(X preqr_nn) $(X preqr_train) $(X preqr_sql) $(X preqr_automaton) $(X preqr_schema) $(X preqr_engine) $(X preqr_data) $(X preqr) $(X preqr_baselines) $OBS
lib preqr_serve "$REPO/crates/serve/src/lib.rs" $(X preqr_nn) $(X preqr_sql) $(X preqr_schema) $(X preqr) $OBS
lib preqr_bench "$REPO/crates/bench/src/lib.rs" $RAND $(X preqr_nn) $(X preqr_train) $(X preqr_sql) $(X preqr_automaton) $(X preqr_schema) $(X preqr_engine) $(X preqr_data) $(X preqr) $(X preqr_baselines) $(X preqr_tasks) $OBS
lib preqr_repro "$REPO/src/lib.rs" $RAND $OBS $(X preqr_nn) $(X preqr_train) $(X preqr_sql) $(X preqr_automaton) $(X preqr_schema) $(X preqr_engine) $(X preqr_data) $(X preqr) $(X preqr_baselines) $(X preqr_tasks) $(X preqr_serve)
echo "[build] done -> $OUT"
