//! MSCN (Kipf et al., CIDR'19) — the one-hot set-convolutional
//! cardinality estimator the paper uses as its main query-driven baseline
//! (`MSCNCard`/`MSCNCost`, `One-hotDis`).
//!
//! Featurization follows the original: a query is three sets —
//! table one-hots (+ optional sample bitmaps), join one-hots, and
//! predicate vectors `(column one-hot ⧺ op one-hot ⧺ normalized value)`.
//! Each set runs through a small per-element MLP, is average-pooled, and
//! the pooled vectors feed a final MLP.

use std::collections::HashMap;

use rand::rngs::StdRng;

use preqr_engine::{BitmapSampler, Database};
use preqr_nn::layers::{join, Linear, Module};
use preqr_nn::{ops, Matrix, Tensor};
use preqr_sql::ast::{CmpOp, Expr, Query, Scalar};

/// One-hot + bitmap featurization of a query.
#[derive(Clone, Debug)]
pub struct MscnFeatures {
    /// Per referenced table: table one-hot (⧺ sample bitmap when enabled).
    pub tables: Vec<Vec<f32>>,
    /// Per join predicate: join-edge one-hot.
    pub joins: Vec<Vec<f32>>,
    /// Per value predicate: column one-hot ⧺ op one-hot ⧺ normalized value.
    pub predicates: Vec<Vec<f32>>,
}

/// Builds MSCN feature vectors for a database.
pub struct MscnFeaturizer {
    tables: Vec<String>,
    columns: Vec<(String, String)>,
    col_range: HashMap<(String, String), (f64, f64)>,
    join_edges: Vec<((String, String), (String, String))>,
    sample_bits: usize,
}

const OPS: [CmpOp; 6] = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];

impl MscnFeaturizer {
    /// Builds the featurizer from the schema and data (for value
    /// normalization); `sample_bits > 0` appends bitmap samples to table
    /// features (the optimization of §4.3.2).
    pub fn new(db: &Database, sample_bits: usize) -> Self {
        let mut tables = Vec::new();
        let mut columns = Vec::new();
        let mut col_range = HashMap::new();
        for t in db.schema().tables() {
            tables.push(t.name.clone());
            for c in &t.columns {
                columns.push((t.name.clone(), c.name.clone()));
                if let Some(col) = db.column(&t.name, &c.name) {
                    let mut min = f64::INFINITY;
                    let mut max = f64::NEG_INFINITY;
                    for r in 0..col.len() {
                        if let Some(v) = col.get_f64(r) {
                            min = min.min(v);
                            max = max.max(v);
                        }
                    }
                    if min.is_finite() {
                        col_range.insert((t.name.clone(), c.name.clone()), (min, max));
                    }
                }
            }
        }
        let join_edges = db
            .schema()
            .foreign_keys()
            .iter()
            .map(|fk| {
                (
                    (fk.from_table.clone(), fk.from_column.clone()),
                    (fk.to_table.clone(), fk.to_column.clone()),
                )
            })
            .collect();
        Self { tables, columns, col_range, join_edges, sample_bits }
    }

    /// Table-feature width.
    pub fn table_dim(&self) -> usize {
        self.tables.len() + self.sample_bits
    }

    /// Join-feature width.
    pub fn join_dim(&self) -> usize {
        self.join_edges.len().max(1)
    }

    /// Predicate-feature width.
    pub fn pred_dim(&self) -> usize {
        self.columns.len() + OPS.len() + 1
    }

    fn table_index(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t == name)
    }

    fn column_index(&self, table: &str, column: &str) -> Option<usize> {
        self.columns.iter().position(|(t, c)| t == table && c == column)
    }

    fn normalize(&self, table: &str, column: &str, v: f64) -> f32 {
        match self.col_range.get(&(table.to_string(), column.to_string())) {
            Some((min, max)) if max > min => (((v - min) / (max - min)).clamp(0.0, 1.0)) as f32,
            _ => 0.5,
        }
    }

    /// Featurizes a query. The featurizer is *context-free* by design
    /// (the drawback Figure 1 of the paper illustrates): string
    /// predicates normalize to a hash fraction, values lose their
    /// distribution, and query structure beyond join one-hots is dropped.
    pub fn featurize(
        &self,
        db: &Database,
        q: &Query,
        sampler: Option<&BitmapSampler>,
    ) -> MscnFeatures {
        let stmt = &q.body;
        let mut alias: HashMap<&str, &str> = HashMap::new();
        for t in stmt.tables() {
            alias.insert(t.binding(), t.table.as_str());
        }
        let resolve = |cr: &preqr_sql::ast::ColumnRef| -> Option<(String, String)> {
            let table = match &cr.table {
                Some(b) => (*alias.get(b.as_str())?).to_string(),
                None => alias
                    .values()
                    .find(|t| db.schema().column(t, &cr.column).is_some())?
                    .to_string(),
            };
            Some((table, cr.column.clone()))
        };

        let mut tables = Vec::new();
        for (bi, t) in stmt.tables().iter().enumerate() {
            let mut v = vec![0.0f32; self.table_dim()];
            if let Some(i) = self.table_index(&t.table) {
                v[i] = 1.0;
            }
            if let (Some(sampler), true) = (sampler, self.sample_bits > 0) {
                if let Ok(bits) = sampler.bitmap_for(db, q, bi) {
                    for (k, &b) in bits.iter().take(self.sample_bits).enumerate() {
                        v[self.tables.len() + k] = b;
                    }
                }
            }
            tables.push(v);
        }

        let mut joins = Vec::new();
        let mut predicates = Vec::new();
        let mut conjuncts: Vec<&Expr> = Vec::new();
        if let Some(w) = &stmt.where_clause {
            conjuncts.extend(w.conjuncts());
        }
        for j in &stmt.joins {
            conjuncts.extend(j.on.conjuncts());
        }
        for c in conjuncts {
            match c {
                Expr::Cmp { left: Scalar::Column(a), op: CmpOp::Eq, right: Scalar::Column(b) }
                    if a.table != b.table =>
                {
                    let mut v = vec![0.0f32; self.join_dim()];
                    if let (Some(ra), Some(rb)) = (resolve(a), resolve(b)) {
                        if let Some(i) = self
                            .join_edges
                            .iter()
                            .position(|(x, y)| (*x == ra && *y == rb) || (*x == rb && *y == ra))
                        {
                            v[i] = 1.0;
                        }
                    }
                    joins.push(v);
                }
                other => {
                    for (col, op, val) in predicate_atoms(other) {
                        let mut v = vec![0.0f32; self.pred_dim()];
                        if let Some((t, c)) = resolve(&col) {
                            if let Some(i) = self.column_index(&t, &c) {
                                v[i] = 1.0;
                            }
                            let norm = match &val {
                                preqr_sql::ast::Value::Str(s) => {
                                    preqr_sql::vocab::string_bucket(s, 1000) as f32 / 1000.0
                                }
                                other => self.normalize(&t, &c, other.as_f64().unwrap_or(0.0)),
                            };
                            v[self.columns.len() + OPS.len()] = norm;
                        }
                        if let Some(oi) = OPS.iter().position(|o| *o == op) {
                            v[self.columns.len() + oi] = 1.0;
                        }
                        predicates.push(v);
                    }
                }
            }
        }
        MscnFeatures { tables, joins, predicates }
    }
}

/// Flattens any predicate into `(column, op, value)` atoms the MSCN
/// vector format can hold.
fn predicate_atoms(e: &Expr) -> Vec<(preqr_sql::ast::ColumnRef, CmpOp, preqr_sql::ast::Value)> {
    use preqr_sql::ast::Value;
    let mut out = Vec::new();
    match e {
        Expr::And(a, b) | Expr::Or(a, b) => {
            out.extend(predicate_atoms(a));
            out.extend(predicate_atoms(b));
        }
        Expr::Not(a) => out.extend(predicate_atoms(a)),
        Expr::Cmp { left: Scalar::Column(c), op, right: Scalar::Value(v) } => {
            out.push((c.clone(), *op, v.clone()));
        }
        Expr::Cmp { left: Scalar::Value(v), op, right: Scalar::Column(c) } => {
            out.push((c.clone(), *op, v.clone()));
        }
        Expr::Between { col, low, high } => {
            out.push((col.clone(), CmpOp::Ge, low.clone()));
            out.push((col.clone(), CmpOp::Le, high.clone()));
        }
        Expr::InList { col, values, .. } => {
            for v in values {
                out.push((col.clone(), CmpOp::Eq, v.clone()));
            }
        }
        Expr::Like { col, pattern, .. } => {
            out.push((col.clone(), CmpOp::Eq, Value::Str(pattern.clone())));
        }
        Expr::InSubquery { col, .. } => {
            out.push((col.clone(), CmpOp::Eq, Value::Int(0)));
        }
        Expr::IsNull { .. } | Expr::Cmp { .. } => {}
    }
    out
}

/// The MSCN set-convolutional regressor.
pub struct MscnModel {
    table_mlp: Linear,
    join_mlp: Linear,
    pred_mlp: Linear,
    out1: Linear,
    out2: Linear,
    hidden: usize,
}

impl MscnModel {
    /// Builds the model for a featurizer's dimensions.
    pub fn new(f: &MscnFeaturizer, hidden: usize, rng: &mut StdRng) -> Self {
        Self {
            table_mlp: Linear::new(f.table_dim(), hidden, rng),
            join_mlp: Linear::new(f.join_dim(), hidden, rng),
            pred_mlp: Linear::new(f.pred_dim(), hidden, rng),
            out1: Linear::new(3 * hidden, hidden, rng),
            out2: Linear::new(hidden, 1, rng),
            hidden,
        }
    }

    fn pool(&self, mlp: &Linear, rows: &[Vec<f32>], width: usize) -> Tensor {
        if rows.is_empty() {
            return Tensor::constant(Matrix::zeros(1, self.hidden));
        }
        let m = Matrix::from_fn(rows.len(), width, |r, c| rows[r][c]);
        let h = ops::relu(&mlp.forward(&Tensor::constant(m)));
        ops::mean_rows(&h)
    }

    /// Predicts the regression target (e.g. log-cardinality).
    pub fn forward(&self, feats: &MscnFeatures, f: &MscnFeaturizer) -> Tensor {
        let t = self.pool(&self.table_mlp, &feats.tables, f.table_dim());
        let j = self.pool(&self.join_mlp, &feats.joins, f.join_dim());
        let p = self.pool(&self.pred_mlp, &feats.predicates, f.pred_dim());
        let cat = ops::concat_cols(&ops::concat_cols(&t, &j), &p);
        self.out2.forward(&ops::relu(&self.out1.forward(&cat)))
    }

    /// A flat feature vector (pooled raw sets) used by `One-hotDis`
    /// cosine similarity.
    pub fn onehot_vector(feats: &MscnFeatures, f: &MscnFeaturizer) -> Vec<f32> {
        let pool = |rows: &[Vec<f32>], width: usize| -> Vec<f32> {
            let mut v = vec![0.0f32; width];
            for r in rows {
                for (o, &x) in v.iter_mut().zip(r.iter()) {
                    *o += x;
                }
            }
            v
        };
        let mut out = pool(&feats.tables, f.table_dim());
        out.extend(pool(&feats.joins, f.join_dim()));
        out.extend(pool(&feats.predicates, f.pred_dim()));
        out
    }
}

impl Module for MscnModel {
    fn collect_params(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        self.table_mlp.collect_params(&join(prefix, "table"), out);
        self.join_mlp.collect_params(&join(prefix, "join"), out);
        self.pred_mlp.collect_params(&join(prefix, "pred"), out);
        self.out1.collect_params(&join(prefix, "out1"), out);
        self.out2.collect_params(&join(prefix, "out2"), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_data::imdb::{generate, ImdbConfig};
    use preqr_sql::parser::parse;
    use preqr_train::{FnTask, Plan, StepOutput, Trainer, TrainerConfig};
    use rand::SeedableRng;

    fn db() -> Database {
        generate(ImdbConfig::tiny())
    }

    #[test]
    fn featurizer_dimensions_are_consistent() {
        let db = db();
        let f = MscnFeaturizer::new(&db, 0);
        let q = parse(
            "SELECT COUNT(*) FROM title t, movie_companies mc \
             WHERE t.id = mc.movie_id AND t.production_year > 2000",
        )
        .unwrap();
        let feats = f.featurize(&db, &q, None);
        assert_eq!(feats.tables.len(), 2);
        assert_eq!(feats.joins.len(), 1);
        assert_eq!(feats.predicates.len(), 1);
        assert!(feats.tables.iter().all(|v| v.len() == f.table_dim()));
        assert!(feats.joins.iter().all(|v| v.len() == f.join_dim()));
        assert!(feats.predicates.iter().all(|v| v.len() == f.pred_dim()));
        // The join edge is known, so the one-hot must fire.
        assert_eq!(feats.joins[0].iter().sum::<f32>(), 1.0);
    }

    #[test]
    fn bitmap_sampling_fills_table_features() {
        let db = db();
        let sampler = BitmapSampler::new(&db, 16, 1);
        let f = MscnFeaturizer::new(&db, 16);
        let q = parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 2000").unwrap();
        let feats = f.featurize(&db, &q, Some(&sampler));
        let bits: f32 = feats.tables[0][f.table_dim() - 16..].iter().sum();
        assert!(bits > 0.0, "some sample rows must satisfy the predicate");
        // Without a sampler the bits stay zero.
        let feats2 = f.featurize(&db, &q, None);
        let bits2: f32 = feats2.tables[0][f.table_dim() - 16..].iter().sum();
        assert_eq!(bits2, 0.0);
    }

    #[test]
    fn between_and_in_expand_to_atoms() {
        let db = db();
        let f = MscnFeaturizer::new(&db, 0);
        let q = parse(
            "SELECT COUNT(*) FROM title t WHERE t.production_year BETWEEN 1990 AND 2000 \
             AND t.kind_id IN (1, 2, 3)",
        )
        .unwrap();
        let feats = f.featurize(&db, &q, None);
        assert_eq!(feats.predicates.len(), 2 + 3);
    }

    #[test]
    fn values_are_normalized_to_unit_range() {
        let db = db();
        let f = MscnFeaturizer::new(&db, 0);
        let q = parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 2015").unwrap();
        let feats = f.featurize(&db, &q, None);
        let norm = *feats.predicates[0].last().unwrap();
        assert!(norm > 0.8 && norm <= 1.0, "2015 is near the top of the year range: {norm}");
    }

    #[test]
    fn model_learns_a_simple_monotone_target() {
        // Sanity: MSCN can fit "more predicates → lower log-card" style
        // structure on a toy set.
        let db = db();
        let f = MscnFeaturizer::new(&db, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let model = MscnModel::new(&f, 16, &mut rng);
        let qs: Vec<(Query, f32)> = (0..10)
            .map(|i| {
                let y = 1950 + i * 7;
                let q =
                    parse(&format!("SELECT COUNT(*) FROM title t WHERE t.production_year > {y}"))
                        .unwrap();
                (q, (2020 - y) as f32 / 70.0)
            })
            .collect();
        let feats: Vec<MscnFeatures> = qs.iter().map(|(q, _)| f.featurize(&db, q, None)).collect();
        let mut task = FnTask::new("test.mscn", qs.len(), model.params(), |idx, _rng| {
            let pred = model.forward(&feats[idx], &f);
            let loss = ops::mse_loss(&pred, &Matrix::full(1, 1, qs[idx].1));
            let scalar = f64::from(loss.value_clone().get(0, 0));
            loss.backward();
            StepOutput { loss: scalar, ..StepOutput::default() }
        });
        let config =
            TrainerConfig::new(Plan::Epochs { epochs: 150, chunk: qs.len(), shuffle: false }, 1e-2);
        let report = Trainer::new(config).fit(&mut task, &mut rng);
        let last = report.last_chunk_loss;
        assert!(last < 0.01, "MSCN failed to fit monotone target: {last}");
    }

    #[test]
    fn onehot_vector_distinguishes_tables() {
        let db = db();
        let f = MscnFeaturizer::new(&db, 0);
        let a = f.featurize(
            &db,
            &parse("SELECT COUNT(*) FROM title t WHERE t.kind_id = 1").unwrap(),
            None,
        );
        let b = f.featurize(
            &db,
            &parse("SELECT COUNT(*) FROM cast_info ci WHERE ci.role_id = 1").unwrap(),
            None,
        );
        assert_ne!(MscnModel::onehot_vector(&a, &f), MscnModel::onehot_vector(&b, &f));
    }
}
