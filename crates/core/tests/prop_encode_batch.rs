//! Property test for the batch-invariance contract of
//! [`SqlBert::encode_batch`]: an embedding is a function of the query
//! alone — never of the batch it happened to ride in. The serving layer
//! (`crates/serve`) relies on this to keep responses bit-identical across
//! `max_batch` settings, so the property is pinned here at the model
//! layer where it is enforced.

use std::cell::OnceCell;

use proptest::prelude::*;

use preqr::{PreqrConfig, SqlBert, ValueBuckets};
use preqr_nn::Matrix;
use preqr_schema::{Column, ColumnType, ForeignKey, Schema, Table};
use preqr_sql::ast::Query;
use preqr_sql::parser::parse;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_table(Table::new(
        "title",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("production_year", ColumnType::Int),
            Column::new("kind_id", ColumnType::Int),
        ],
    ));
    s.add_table(Table::new(
        "movie_companies",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("movie_id", ColumnType::Int),
            Column::new("company_id", ColumnType::Int),
        ],
    ));
    s.add_foreign_key(ForeignKey {
        from_table: "movie_companies".into(),
        from_column: "movie_id".into(),
        to_table: "title".into(),
        to_column: "id".into(),
    });
    s
}

/// Query pool mixing templates, literals, and join shapes.
fn pool() -> Vec<Query> {
    let mut qs = Vec::new();
    for y in [1975, 1990, 2005, 2011] {
        qs.push(
            parse(&format!("SELECT COUNT(*) FROM title t WHERE t.production_year > {y}")).unwrap(),
        );
        qs.push(
            parse(&format!(
                "SELECT COUNT(*) FROM title t, movie_companies mc \
                 WHERE t.id = mc.movie_id AND t.production_year > {y}"
            ))
            .unwrap(),
        );
    }
    qs.push(parse("SELECT * FROM title t WHERE t.kind_id IN (1, 3, 5)").unwrap());
    qs.push(
        parse("SELECT MIN(t.id) FROM title t WHERE t.production_year BETWEEN 1990 AND 2000")
            .unwrap(),
    );
    qs
}

thread_local! {
    /// One model per test thread (`SqlBert` is `!Send`): building it per
    /// proptest case would dominate runtime. Model construction is
    /// deterministic, so every thread's replica is identical.
    static MODEL: OnceCell<SqlBert> = const { OnceCell::new() };
}

fn with_model<R>(f: impl FnOnce(&SqlBert) -> R) -> R {
    MODEL.with(|cell| {
        f(cell.get_or_init(|| {
            let mut buckets = ValueBuckets::new(4);
            buckets.insert("title", "production_year", (1930..2020).map(f64::from).collect());
            buckets.insert("title", "kind_id", (1..8).map(f64::from).collect());
            buckets.insert("movie_companies", "company_id", (1..100).map(f64::from).collect());
            SqlBert::new(&pool(), &schema(), buckets, PreqrConfig::test())
        }))
    })
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.data().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any batch (composition, order, duplicates) yields the same bytes
    /// per query as encoding that query alone.
    #[test]
    fn batched_embeddings_are_batch_invariant(
        picks in proptest::collection::vec(0usize..10, 1..8),
    ) {
        let qs = pool();
        let batch: Vec<Query> = picks.iter().map(|&i| qs[i].clone()).collect();
        let checks = with_model(|m| {
            let batched = m.encode_batch(&batch);
            assert_eq!(batched.len(), batch.len());
            batch
                .iter()
                .zip(&batched)
                .map(|(q, b)| (bits(&m.encode(q)), bits(b)))
                .collect::<Vec<_>>()
        });
        for (solo, batched) in checks {
            prop_assert_eq!(solo, batched);
        }
    }

    /// Splitting one batch at an arbitrary point changes nothing.
    #[test]
    fn batch_split_points_do_not_change_embeddings(split in 0usize..10) {
        let qs = pool();
        let checks = with_model(|m| {
            let whole = m.encode_batch(&qs);
            let (a, b) = qs.split_at(split.min(qs.len()));
            let mut parts = m.encode_batch(a);
            parts.extend(m.encode_batch(b));
            whole.iter().zip(&parts).map(|(w, p)| (bits(w), bits(p))).collect::<Vec<_>>()
        });
        for (w, p) in checks {
            prop_assert_eq!(w, p);
        }
    }
}
