//! The shared per-epoch report type.
//!
//! Before the harness existed, three near-identical stats shapes lived in
//! the tree: `preqr::EpochStats` (epoch/loss/accuracy), the estimation
//! trainers' `history: Vec<f64>` of validation q-errors, and the ad-hoc
//! running-loss accumulators in the baseline tests. [`EpochStats`] is the
//! superset they all deduplicate onto; `preqr` re-exports it.

/// Statistics for one completed training epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochStats {
    /// Epoch index.
    pub epoch: usize,
    /// Mean loss over the epoch's examples.
    pub loss: f64,
    /// Prediction accuracy (`correct / masked`; 0 when the task reports
    /// no per-token counts).
    pub accuracy: f64,
    /// Examples consumed this epoch.
    pub samples: usize,
    /// Optimizer steps taken this epoch.
    pub steps: u64,
    /// Masked positions this epoch (MLM tasks; 0 otherwise).
    pub masked: usize,
    /// Correctly predicted masked positions this epoch.
    pub correct: usize,
    /// Epoch-end validation metric, when the task evaluates one.
    pub val: Option<f64>,
}

/// Outcome of one [`crate::Trainer::fit`] run.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainReport {
    /// Per-epoch statistics, in epoch order (includes epochs restored
    /// from a resumed checkpoint).
    pub stats: Vec<EpochStats>,
    /// Total optimizer steps taken (global step counter).
    pub steps: u64,
    /// Whether validation early stopping ended the run.
    pub early_stopped: bool,
    /// Whether the run halted at a checkpoint boundary
    /// (`halt_after_steps`) instead of running to completion.
    pub halted: bool,
    /// Mean loss of the last micro-batch (the incremental-update paths
    /// report this, matching the legacy `train_subset` return value).
    pub last_chunk_loss: f64,
}

impl TrainReport {
    /// The validation-metric trajectory (one entry per evaluated epoch),
    /// with non-evaluated epochs skipped.
    pub fn val_history(&self) -> Vec<f64> {
        self.stats.iter().filter_map(|s| s.val).collect()
    }

    /// Final epoch loss (0 when no epoch ran).
    pub fn final_loss(&self) -> f64 {
        self.stats.last().map_or(0.0, |s| s.loss)
    }
}
