//! Checkpoint format: named parameter matrices in a small binary container.
//!
//! Layout: magic `PRQR`, version u32, count u32, then per entry
//! `name_len u32 | name bytes | rows u32 | cols u32 | f32 LE data`.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::matrix::Matrix;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"PRQR";
const VERSION: u32 = 1;

/// Writes named parameters to `w`.
pub fn write_params<W: Write>(w: &mut W, params: &[(String, Tensor)]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for (name, t) in params {
        let bytes = name.as_bytes();
        w.write_all(&(bytes.len() as u32).to_le_bytes())?;
        w.write_all(bytes)?;
        let v = t.value();
        w.write_all(&(v.rows() as u32).to_le_bytes())?;
        w.write_all(&(v.cols() as u32).to_le_bytes())?;
        for &x in v.data() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads named matrices from `r`.
pub fn read_params<R: Read>(r: &mut R) -> io::Result<HashMap<String, Matrix>> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad checkpoint magic"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    let count = read_u32(r)? as usize;
    let mut out = HashMap::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name =
            String::from_utf8(name).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let rows = read_u32(r)? as usize;
        let cols = read_u32(r)? as usize;
        let mut data = vec![0f32; rows * cols];
        let mut buf = [0u8; 4];
        for x in data.iter_mut() {
            r.read_exact(&mut buf)?;
            *x = f32::from_le_bytes(buf);
        }
        out.insert(name, Matrix::from_vec(rows, cols, data));
    }
    Ok(out)
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Saves named parameters to a file.
pub fn save_to_file(path: impl AsRef<Path>, params: &[(String, Tensor)]) -> io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_params(&mut f, params)
}

/// Loads named matrices from a file.
pub fn load_from_file(path: impl AsRef<Path>) -> io::Result<HashMap<String, Matrix>> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    read_params(&mut f)
}

/// Copies loaded matrices into matching parameters.
///
/// Returns the number of applied parameters. Errors if a named parameter is
/// missing from the checkpoint or has a mismatched shape.
pub fn apply_params(
    params: &[(String, Tensor)],
    loaded: &HashMap<String, Matrix>,
) -> Result<usize, String> {
    for (name, t) in params {
        let m =
            loaded.get(name).ok_or_else(|| format!("checkpoint is missing parameter `{name}`"))?;
        if m.shape() != t.shape() {
            return Err(format!(
                "shape mismatch for `{name}`: checkpoint {:?} vs model {:?}",
                m.shape(),
                t.shape()
            ));
        }
        t.set_value(m.clone());
    }
    Ok(params.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_params() -> Vec<(String, Tensor)> {
        vec![
            ("a.w".to_string(), Tensor::param(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]))),
            ("a.b".to_string(), Tensor::param(Matrix::from_vec(1, 2, vec![-0.5, 0.25]))),
        ]
    }

    #[test]
    fn round_trip_in_memory() {
        let params = sample_params();
        let mut buf = Vec::new();
        write_params(&mut buf, &params).unwrap();
        let loaded = read_params(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded["a.w"], params[0].1.value_clone());
        assert_eq!(loaded["a.b"], params[1].1.value_clone());
    }

    #[test]
    fn apply_restores_values() {
        let params = sample_params();
        let mut buf = Vec::new();
        write_params(&mut buf, &params).unwrap();
        // Perturb, then restore.
        params[0].1.set_value(Matrix::zeros(2, 2));
        let loaded = read_params(&mut buf.as_slice()).unwrap();
        let n = apply_params(&params, &loaded).unwrap();
        assert_eq!(n, 2);
        assert_eq!(params[0].1.value_clone().data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn apply_rejects_missing_and_mismatched() {
        let params = sample_params();
        let mut loaded = HashMap::new();
        loaded.insert("a.w".to_string(), Matrix::zeros(2, 2));
        assert!(apply_params(&params, &loaded).unwrap_err().contains("missing"));
        loaded.insert("a.b".to_string(), Matrix::zeros(3, 3));
        assert!(apply_params(&params, &loaded).unwrap_err().contains("shape mismatch"));
    }

    #[test]
    fn rejects_bad_magic() {
        let bytes = b"NOPE\0\0\0\0";
        assert!(read_params(&mut &bytes[..]).is_err());
    }
}
