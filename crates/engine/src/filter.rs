//! Single-table predicate compilation and evaluation.
//!
//! Per-table conjuncts are compiled once per query into [`Compiled`]
//! predicates over column indices (string comparisons become dictionary
//! code-set membership), then evaluated row-at-a-time over the columnar
//! storage.

use std::collections::HashSet;

use preqr_sql::ast::{CmpOp, Expr, Scalar, Value};

use crate::bind::{Bindings, BoundColumn, ExecError};
use crate::storage::{ColumnData, Database, TableData};

/// A compiled single-table predicate.
#[derive(Clone, Debug)]
pub enum Compiled {
    /// Numeric comparison against a constant.
    NumCmp {
        /// Column index.
        col: usize,
        /// Operator.
        op: CmpOp,
        /// Constant right-hand side.
        rhs: f64,
    },
    /// Numeric column-to-column comparison within the same table.
    NumColCmp {
        /// Left column index.
        left: usize,
        /// Operator.
        op: CmpOp,
        /// Right column index.
        right: usize,
    },
    /// Numeric range (`BETWEEN`).
    NumBetween {
        /// Column index.
        col: usize,
        /// Inclusive low bound.
        low: f64,
        /// Inclusive high bound.
        high: f64,
    },
    /// Numeric set membership.
    NumInSet {
        /// Column index.
        col: usize,
        /// Accepted values (compared as i64 where possible).
        set: HashSet<i64>,
        /// Negated (`NOT IN`).
        negated: bool,
    },
    /// String set membership over dictionary codes (covers `=`, `!=`,
    /// `IN`, `LIKE` after dictionary scan).
    StrInCodes {
        /// Column index.
        col: usize,
        /// Accepted dictionary codes.
        codes: HashSet<u32>,
        /// Negated.
        negated: bool,
    },
    /// String ordering comparison (lexicographic, resolved per row).
    StrCmp {
        /// Column index.
        col: usize,
        /// Operator (only `<,<=,>,>=`).
        op: CmpOp,
        /// Constant.
        rhs: String,
    },
    /// Conjunction.
    And(Box<Compiled>, Box<Compiled>),
    /// Disjunction.
    Or(Box<Compiled>, Box<Compiled>),
    /// Negation.
    Not(Box<Compiled>),
    /// Constant truth value (e.g. `IS NULL` on NOT NULL data).
    Const(bool),
}

impl Compiled {
    /// Evaluates the predicate on one row of a table.
    pub fn eval(&self, table: &TableData, row: usize) -> bool {
        match self {
            Compiled::NumCmp { col, op, rhs } => {
                let v = table.columns[*col].get_f64(row).unwrap_or(f64::NAN);
                cmp_f64(v, *op, *rhs)
            }
            Compiled::NumColCmp { left, op, right } => {
                let a = table.columns[*left].get_f64(row).unwrap_or(f64::NAN);
                let b = table.columns[*right].get_f64(row).unwrap_or(f64::NAN);
                cmp_f64(a, *op, b)
            }
            Compiled::NumBetween { col, low, high } => {
                let v = table.columns[*col].get_f64(row).unwrap_or(f64::NAN);
                v >= *low && v <= *high
            }
            Compiled::NumInSet { col, set, negated } => {
                let hit = match &table.columns[*col] {
                    ColumnData::Int(v) => set.contains(&v[row]),
                    ColumnData::Float(v) => {
                        let f = v[row];
                        f.fract() == 0.0 && set.contains(&(f as i64))
                    }
                    ColumnData::Str { .. } => false,
                };
                hit != *negated
            }
            Compiled::StrInCodes { col, codes, negated } => {
                let hit = match &table.columns[*col] {
                    ColumnData::Str { codes: rows, .. } => codes.contains(&rows[row]),
                    _ => false,
                };
                hit != *negated
            }
            Compiled::StrCmp { col, op, rhs } => match &table.columns[*col] {
                ColumnData::Str { codes, dict } => {
                    let s = dict.string(codes[row]);
                    match op {
                        CmpOp::Lt => s < rhs.as_str(),
                        CmpOp::Le => s <= rhs.as_str(),
                        CmpOp::Gt => s > rhs.as_str(),
                        CmpOp::Ge => s >= rhs.as_str(),
                        CmpOp::Eq => s == rhs.as_str(),
                        CmpOp::Ne => s != rhs.as_str(),
                    }
                }
                _ => false,
            },
            Compiled::And(a, b) => a.eval(table, row) && b.eval(table, row),
            Compiled::Or(a, b) => a.eval(table, row) || b.eval(table, row),
            Compiled::Not(a) => !a.eval(table, row),
            Compiled::Const(v) => *v,
        }
    }
}

fn cmp_f64(a: f64, op: CmpOp, b: f64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

/// SQL `LIKE` pattern match (`%` = any run, `_` = any char), case
/// sensitive, iterative with backtracking.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi, si));
            pi += 1;
        } else if let Some((sp, ss)) = star {
            pi = sp + 1;
            si = ss + 1;
            star = Some((sp, ss + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// Compiles a single-table predicate expression for binding `target`.
///
/// `resolve` must already have confirmed that every column in `expr`
/// belongs to `target`.
///
/// # Errors
/// Propagates resolution errors and reports unsupported shapes.
pub fn compile(
    expr: &Expr,
    target: usize,
    bindings: &Bindings,
    db: &Database,
) -> Result<Compiled, ExecError> {
    let resolve = |cr: &preqr_sql::ast::ColumnRef| -> Result<BoundColumn, ExecError> {
        let bc = bindings.resolve(cr, db.schema())?;
        if bc.table != target {
            return Err(ExecError::Unsupported(format!("predicate on `{cr}` is not single-table")));
        }
        Ok(bc)
    };
    let table_name = bindings.table_name(target);
    let column_data = |bc: BoundColumn| -> &ColumnData {
        &db.table(table_name).expect("bound table exists").columns[bc.column]
    };
    match expr {
        Expr::And(a, b) => Ok(Compiled::And(
            Box::new(compile(a, target, bindings, db)?),
            Box::new(compile(b, target, bindings, db)?),
        )),
        Expr::Or(a, b) => Ok(Compiled::Or(
            Box::new(compile(a, target, bindings, db)?),
            Box::new(compile(b, target, bindings, db)?),
        )),
        Expr::Not(a) => Ok(Compiled::Not(Box::new(compile(a, target, bindings, db)?))),
        Expr::Cmp { left, op, right } => match (left, right) {
            (Scalar::Column(c), Scalar::Value(v)) => {
                let bc = resolve(c)?;
                compile_cmp(bc, *op, v, column_data(bc))
            }
            (Scalar::Value(v), Scalar::Column(c)) => {
                let bc = resolve(c)?;
                compile_cmp(bc, flip(*op), v, column_data(bc))
            }
            (Scalar::Column(a), Scalar::Column(b)) => {
                let (ba, bb) = (resolve(a)?, resolve(b)?);
                Ok(Compiled::NumColCmp { left: ba.column, op: *op, right: bb.column })
            }
            (Scalar::Value(a), Scalar::Value(b)) => {
                let truth = match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => cmp_f64(x, *op, y),
                    _ => false,
                };
                Ok(Compiled::Const(truth))
            }
        },
        Expr::Between { col, low, high } => {
            let bc = resolve(col)?;
            let (l, h) = match (low.as_f64(), high.as_f64()) {
                (Some(l), Some(h)) => (l, h),
                _ => return Err(ExecError::Unsupported("BETWEEN over strings".to_string())),
            };
            Ok(Compiled::NumBetween { col: bc.column, low: l, high: h })
        }
        Expr::InList { col, values, negated } => {
            let bc = resolve(col)?;
            match column_data(bc) {
                ColumnData::Str { dict, .. } => {
                    let codes: HashSet<u32> = values
                        .iter()
                        .filter_map(|v| match v {
                            Value::Str(s) => dict.code(s),
                            _ => None,
                        })
                        .collect();
                    Ok(Compiled::StrInCodes { col: bc.column, codes, negated: *negated })
                }
                _ => {
                    let set: HashSet<i64> = values
                        .iter()
                        .filter_map(Value::as_f64)
                        .filter(|f| f.fract() == 0.0)
                        .map(|f| f as i64)
                        .collect();
                    Ok(Compiled::NumInSet { col: bc.column, set, negated: *negated })
                }
            }
        }
        Expr::Like { col, pattern, negated } => {
            let bc = resolve(col)?;
            match column_data(bc) {
                ColumnData::Str { dict, .. } => {
                    let codes: HashSet<u32> = dict
                        .iter()
                        .filter(|(_, s)| like_match(s, pattern))
                        .map(|(c, _)| c)
                        .collect();
                    Ok(Compiled::StrInCodes { col: bc.column, codes, negated: *negated })
                }
                _ => Ok(Compiled::Const(*negated)),
            }
        }
        Expr::IsNull { negated, .. } => {
            // Generated data contains no NULLs.
            Ok(Compiled::Const(*negated))
        }
        Expr::InSubquery { .. } => Err(ExecError::Unsupported(
            "IN subquery must be pre-evaluated by the executor".to_string(),
        )),
    }
}

fn compile_cmp(
    bc: BoundColumn,
    op: CmpOp,
    v: &Value,
    col: &ColumnData,
) -> Result<Compiled, ExecError> {
    match (col, v) {
        (ColumnData::Str { dict, .. }, Value::Str(s)) => match op {
            CmpOp::Eq | CmpOp::Ne => {
                let codes: HashSet<u32> = dict.code(s).into_iter().collect();
                Ok(Compiled::StrInCodes { col: bc.column, codes, negated: op == CmpOp::Ne })
            }
            other => Ok(Compiled::StrCmp { col: bc.column, op: other, rhs: s.clone() }),
        },
        (ColumnData::Str { .. }, _) => {
            Err(ExecError::Unsupported("numeric literal compared to a string column".to_string()))
        }
        (_, v) => {
            let rhs = v.as_f64().ok_or_else(|| {
                ExecError::Unsupported("string literal compared to a numeric column".to_string())
            })?;
            Ok(Compiled::NumCmp { col: bc.column, op, rhs })
        }
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Filters a table, returning row ids satisfying the compiled predicate.
pub fn filter_rows(table: &TableData, pred: &Compiled) -> Vec<u32> {
    let n = table.row_count();
    let mut out = Vec::new();
    for row in 0..n {
        if pred.eval(table, row) {
            out.push(row as u32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Datum;
    use preqr_schema::{Column, ColumnType, Schema, Table};
    use preqr_sql::parser::parse;

    fn db() -> Database {
        let mut s = Schema::new();
        s.add_table(Table::new(
            "t",
            vec![
                Column::primary("id", ColumnType::Int),
                Column::new("year", ColumnType::Int),
                Column::new("name", ColumnType::Varchar),
            ],
        ));
        let mut db = Database::new(s);
        let names = ["alpha", "beta", "alphabet", "gamma", "beta"];
        for (i, n) in names.iter().enumerate() {
            db.insert(
                "t",
                &[Datum::Int(i as i64), Datum::Int(2000 + i as i64), Datum::Str((*n).into())],
            );
        }
        db
    }

    fn rows_matching(db: &Database, sql: &str) -> Vec<u32> {
        let q = parse(sql).unwrap();
        let b = Bindings::of(&q.body, db.schema()).unwrap();
        let pred = compile(q.body.where_clause.as_ref().unwrap(), 0, &b, db).unwrap();
        filter_rows(db.table("t").unwrap(), &pred)
    }

    #[test]
    fn like_match_semantics() {
        assert!(like_match("alphabet", "alpha%"));
        assert!(like_match("alphabet", "%bet"));
        assert!(like_match("alphabet", "%pha%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
        assert!(!like_match("xyz", "abc"));
    }

    #[test]
    fn numeric_range_filter() {
        let db = db();
        assert_eq!(rows_matching(&db, "SELECT * FROM t WHERE year > 2002"), vec![3, 4]);
        assert_eq!(
            rows_matching(&db, "SELECT * FROM t WHERE year BETWEEN 2001 AND 2002"),
            vec![1, 2]
        );
        assert_eq!(rows_matching(&db, "SELECT * FROM t WHERE 2002 < year"), vec![3, 4]);
    }

    #[test]
    fn string_equality_and_in() {
        let db = db();
        assert_eq!(rows_matching(&db, "SELECT * FROM t WHERE name = 'beta'"), vec![1, 4]);
        assert_eq!(rows_matching(&db, "SELECT * FROM t WHERE name != 'beta'"), vec![0, 2, 3]);
        assert_eq!(
            rows_matching(&db, "SELECT * FROM t WHERE name IN ('alpha', 'gamma')"),
            vec![0, 3]
        );
        assert_eq!(
            rows_matching(&db, "SELECT * FROM t WHERE name NOT IN ('alpha', 'gamma')"),
            vec![1, 2, 4]
        );
    }

    #[test]
    fn like_filter_uses_dictionary() {
        let db = db();
        assert_eq!(rows_matching(&db, "SELECT * FROM t WHERE name LIKE 'alpha%'"), vec![0, 2]);
        assert_eq!(rows_matching(&db, "SELECT * FROM t WHERE name NOT LIKE '%a'"), vec![2]);
    }

    #[test]
    fn unknown_string_literal_matches_nothing() {
        let db = db();
        assert!(rows_matching(&db, "SELECT * FROM t WHERE name = 'zzz'").is_empty());
    }

    #[test]
    fn boolean_combinations() {
        let db = db();
        assert_eq!(
            rows_matching(
                &db,
                "SELECT * FROM t WHERE (name = 'beta' OR name = 'alpha') AND year < 2004"
            ),
            vec![0, 1]
        );
        assert_eq!(rows_matching(&db, "SELECT * FROM t WHERE NOT (year > 2000)"), vec![0]);
    }

    #[test]
    fn int_in_list_filter() {
        let db = db();
        assert_eq!(rows_matching(&db, "SELECT * FROM t WHERE id IN (0, 4, 9)"), vec![0, 4]);
    }

    #[test]
    fn is_null_is_constant_on_not_null_data() {
        let db = db();
        assert!(rows_matching(&db, "SELECT * FROM t WHERE id IS NULL").is_empty());
        assert_eq!(rows_matching(&db, "SELECT * FROM t WHERE id IS NOT NULL").len(), 5);
    }

    #[test]
    fn same_table_column_comparison() {
        let db = db();
        assert!(rows_matching(&db, "SELECT * FROM t WHERE id = year").is_empty());
        assert_eq!(rows_matching(&db, "SELECT * FROM t WHERE id < year").len(), 5);
    }

    #[test]
    fn cross_table_predicate_is_rejected() {
        let mut schema = Schema::new();
        schema.add_table(Table::new("a", vec![Column::primary("id", ColumnType::Int)]));
        schema.add_table(Table::new("b", vec![Column::primary("id", ColumnType::Int)]));
        let db2 = Database::new(schema);
        let q = parse("SELECT * FROM a, b WHERE a.id = b.id").unwrap();
        let bind = Bindings::of(&q.body, db2.schema()).unwrap();
        let r = compile(q.body.where_clause.as_ref().unwrap(), 0, &bind, &db2);
        assert!(matches!(r, Err(ExecError::Unsupported(_))));
    }
}
