//! The inference service: bounded admission queue → micro-batcher →
//! batched tape-free encoder → template cache, on a dedicated worker
//! thread.
//!
//! # Determinism contract
//!
//! Responses are a function of the *submission order* alone:
//!
//! * Embeddings are bit-identical no matter how requests land in
//!   micro-batches, because `SqlBert::encode_batch` is batch-invariant
//!   and the worker replays cache operations strictly in FIFO order.
//! * The cache evolves exactly as if requests were processed one at a
//!   time: the batch collector only *prefetches* forward passes; the
//!   replay pass performs the same lookup/insert sequence a
//!   `max_batch = 1` service would.
//! * Every processed request emits exactly one `serve.request` span, so
//!   traced event counts depend on the request script, never on
//!   `max_batch`, `batch_timeout`, worker-pool width, or timing. Batch
//!   geometry surfaces only through counters and histograms, whose
//!   *flush* cost is fixed by the closed `preqr-obs` registry.
//!
//! # Failure behavior
//!
//! Malformed SQL resolves that request's ticket with a structured
//! [`ServeError::Malformed`] — the worker keeps serving. A panicking
//! worker (e.g. a model factory that dies) poisons the service: queued
//! tickets resolve with [`ServeError::WorkerFailed`] instead of hanging,
//! and later submissions are refused.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use preqr::SqlBert;
use preqr_nn::Matrix;
use preqr_obs as obs;
use preqr_sql::ast::Query;
use preqr_sql::normalize::template_text;
use preqr_sql::parser::parse;

use crate::cache::LruCache;
use crate::clock::LogicalClock;
use crate::config::ServeConfig;

/// Why a submission was refused at admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue is at capacity — backpressure, try again later.
    QueueFull,
}

/// Structured serving failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Refused at admission; the request was never queued.
    Rejected(RejectReason),
    /// The SQL text failed to parse.
    Malformed {
        /// Token index where parsing failed.
        position: usize,
        /// Parser diagnostic.
        message: String,
    },
    /// The service no longer accepts work (shutdown in progress).
    ShuttingDown,
    /// The worker thread died; the request cannot be served.
    WorkerFailed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(RejectReason::QueueFull) => write!(f, "rejected: queue full"),
            ServeError::Malformed { position, message } => {
                write!(f, "malformed SQL at token {position}: {message}")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::WorkerFailed => write!(f, "serving worker failed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A served embedding.
#[derive(Clone, Debug, PartialEq)]
pub struct Embedding {
    /// The `n_tokens × output_dim` representation matrix.
    pub matrix: Matrix,
    /// Whether the template cache supplied it without a forward pass.
    pub cache_hit: bool,
}

impl Embedding {
    /// The `[CLS]` row — the aggregate query representation.
    pub fn cls(&self) -> &[f32] {
        self.matrix.row(0)
    }
}

/// Outcome of one request.
pub type ServeResult = Result<Embedding, ServeError>;

struct TicketState {
    slot: Mutex<Option<ServeResult>>,
    cv: Condvar,
}

/// Handle to one in-flight request; [`Ticket::wait`] blocks for the
/// response.
pub struct Ticket(Arc<TicketState>);

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let resolved = self.0.slot.lock().unwrap_or_else(|e| e.into_inner()).is_some();
        f.debug_struct("Ticket").field("resolved", &resolved).finish()
    }
}

impl Ticket {
    /// Blocks until the worker resolves this request.
    pub fn wait(self) -> ServeResult {
        let mut slot = self.0.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.0.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_take(&self) -> Option<ServeResult> {
        self.0.slot.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

fn resolve(ticket: &Arc<TicketState>, result: ServeResult) {
    let mut slot = ticket.slot.lock().unwrap_or_else(|e| e.into_inner());
    *slot = Some(result);
    ticket.cv.notify_all();
}

struct Pending {
    sql: String,
    ticket: Arc<TicketState>,
    enqueued_at: u64,
}

#[derive(Default)]
struct QueueState {
    items: VecDeque<Pending>,
    draining: bool,
    poisoned: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    cv: Condvar,
    clock: LogicalClock,
    accepted: AtomicU64,
    rejected: AtomicU64,
}

/// Aggregate service statistics, returned by [`Service::shutdown`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Submissions accepted into the queue.
    pub accepted: u64,
    /// Submissions refused with `QueueFull`.
    pub rejected: u64,
    /// Requests the worker resolved (ok or malformed).
    pub processed: u64,
    /// Requests that failed SQL parsing.
    pub parse_errors: u64,
    /// Micro-batches drained.
    pub batches: u64,
    /// Encoder forward passes actually run.
    pub encoded: u64,
    /// Template-cache hits.
    pub cache_hits: u64,
    /// Template-cache misses.
    pub cache_misses: u64,
    /// Template-cache evictions.
    pub cache_evictions: u64,
    /// True when the worker thread panicked instead of draining cleanly.
    pub worker_panicked: bool,
}

#[derive(Default)]
struct WorkerReport {
    processed: u64,
    parse_errors: u64,
    batches: u64,
    encoded: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
}

/// The batched SQL-embedding inference service.
///
/// Construction takes a *model factory* rather than a model: `SqlBert`
/// is intentionally `!Send` (its autograd graph is `Rc`-based), so the
/// worker thread builds — or rebuilds from transferred parameter
/// matrices, which are plain `Send` data — its own replica. Model
/// construction is deterministic given the same corpus/schema/config, so
/// a replica encodes bit-identically to the original.
pub struct Service {
    shared: Arc<Shared>,
    worker: Option<std::thread::JoinHandle<WorkerReport>>,
    config: ServeConfig,
}

impl Service {
    /// Spawns the serving worker. `factory` runs once on the worker
    /// thread and must produce the model to serve.
    pub fn spawn(
        config: ServeConfig,
        factory: impl FnOnce() -> SqlBert + Send + 'static,
    ) -> Service {
        let config = config.normalized();
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            clock: LogicalClock::new(),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("preqr-serve-worker".into())
            .spawn(move || worker_main(&worker_shared, config, factory))
            .expect("spawn serving worker");
        Service { shared, worker: Some(worker), config }
    }

    /// The (normalized) configuration the service runs with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Submits one SQL text for encoding. Returns a [`Ticket`] on
    /// admission; rejects with `QueueFull` backpressure when the bounded
    /// queue is at capacity, `ShuttingDown` after a drain began, or
    /// `WorkerFailed` once the worker died.
    pub fn submit(&self, sql: &str) -> Result<Ticket, ServeError> {
        let mut q = self.lock_queue();
        if q.poisoned {
            return Err(ServeError::WorkerFailed);
        }
        if q.draining {
            return Err(ServeError::ShuttingDown);
        }
        if q.items.len() >= self.config.queue_capacity {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            obs::counter_add(obs::Metric::ServeRejected, 1);
            return Err(ServeError::Rejected(RejectReason::QueueFull));
        }
        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
        obs::counter_add(obs::Metric::ServeRequests, 1);
        let enqueued_at = self.shared.clock.tick();
        let ticket = Arc::new(TicketState { slot: Mutex::new(None), cv: Condvar::new() });
        q.items.push_back(Pending {
            sql: sql.to_string(),
            ticket: Arc::clone(&ticket),
            enqueued_at,
        });
        drop(q);
        self.shared.cv.notify_one();
        Ok(Ticket(ticket))
    }

    /// Convenience: submit and block for the response.
    pub fn encode_blocking(&self, sql: &str) -> ServeResult {
        self.submit(sql)?.wait()
    }

    /// Current queue depth (in-flight requests not yet drained).
    pub fn queue_depth(&self) -> usize {
        self.lock_queue().items.len()
    }

    /// Stops admission, drains every accepted request, joins the worker,
    /// and returns aggregate statistics. Accepted work is never dropped:
    /// each queued ticket resolves before the worker exits.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> ServeStats {
        {
            let mut q = self.lock_queue();
            q.draining = true;
        }
        self.shared.cv.notify_all();
        let mut stats = ServeStats {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            ..ServeStats::default()
        };
        if let Some(worker) = self.worker.take() {
            match worker.join() {
                Ok(report) => {
                    stats.processed = report.processed;
                    stats.parse_errors = report.parse_errors;
                    stats.batches = report.batches;
                    stats.encoded = report.encoded;
                    stats.cache_hits = report.cache_hits;
                    stats.cache_misses = report.cache_misses;
                    stats.cache_evictions = report.cache_evictions;
                }
                Err(_) => stats.worker_panicked = true,
            }
        }
        stats
    }

    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if self.worker.is_some() {
            let _ = self.shutdown_inner();
        }
    }
}

/// Resolves every queued ticket with `WorkerFailed` if the worker
/// unwinds, so clients can never hang on a dead service.
struct PanicGuard<'a> {
    shared: &'a Shared,
    armed: bool,
}

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.poisoned = true;
        for p in q.items.drain(..) {
            resolve(&p.ticket, Err(ServeError::WorkerFailed));
        }
    }
}

fn worker_main(
    shared: &Shared,
    config: ServeConfig,
    factory: impl FnOnce() -> SqlBert,
) -> WorkerReport {
    let mut guard = PanicGuard { shared, armed: true };
    let model = factory();
    let mut cache: LruCache<Matrix> = LruCache::new(config.cache_capacity);
    let mut report = WorkerReport::default();
    while let Some(batch) = collect_batch(shared, &config) {
        report.batches += 1;
        obs::counter_add(obs::Metric::ServeBatches, 1);
        obs::record_hist(obs::HistMetric::ServeBatchSize, batch.len() as f64);
        process_batch(&model, &mut cache, batch, &config, &mut report);
    }
    let c = cache.counters();
    report.cache_hits = c.hits;
    report.cache_misses = c.misses;
    report.cache_evictions = c.evictions;
    guard.armed = false;
    report
}

/// How long the collector sleeps per logical tick while a partial batch
/// waits for company. Pure liveness pacing: results never depend on it.
const TICK_WAIT: Duration = Duration::from_micros(200);

/// Blocks until a micro-batch is ready; `None` once the service is
/// draining and the queue is empty (worker exit).
fn collect_batch(shared: &Shared, config: &ServeConfig) -> Option<Vec<Pending>> {
    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let full = q.items.len() >= config.max_batch;
        let timed_out = q.items.front().is_some_and(|oldest| {
            shared.clock.now().saturating_sub(oldest.enqueued_at) >= config.batch_timeout
        });
        if full || (q.draining && !q.items.is_empty()) || timed_out {
            break;
        }
        if q.draining && q.items.is_empty() {
            return None;
        }
        let (guard, _) = shared.cv.wait_timeout(q, TICK_WAIT).unwrap_or_else(|e| e.into_inner());
        q = guard;
        if !q.items.is_empty() {
            shared.clock.tick();
        }
    }
    obs::record_hist(obs::HistMetric::ServeQueueDepth, q.items.len() as f64);
    let n = q.items.len().min(config.max_batch);
    Some(q.items.drain(..n).collect())
}

/// Per-request plan produced by the scheduling pass.
enum Plan {
    /// Parsing failed; resolve with the structured error.
    Malformed { position: usize, message: String },
    /// Cache-on: replay a counted lookup; `prefetch` indexes the batched
    /// forward when this request is the first occurrence of its template.
    Lookup { template: String, query: Query, prefetch: Option<usize> },
    /// Cache-off: take the batched forward's output directly.
    Direct { idx: usize },
}

/// Schedules, prefetches, and replays one micro-batch.
///
/// The replay pass executes the exact lookup → encode → insert sequence
/// a batch-of-one service would, in FIFO order; the batched forward in
/// the middle is only a prefetch of the misses the scheduler predicted.
/// When a prediction goes stale (a tiny cache can evict a predicted hit
/// mid-replay), the replay falls back to a solo forward — behavior and
/// counters stay identical to unbatched serving.
fn process_batch(
    model: &SqlBert,
    cache: &mut LruCache<Matrix>,
    batch: Vec<Pending>,
    config: &ServeConfig,
    report: &mut WorkerReport,
) {
    let cache_on = config.cache_capacity > 0;
    // Pass 1: schedule. Uncounted peeks only — the cache is not touched.
    let mut scheduled: HashMap<String, usize> = HashMap::new();
    let mut to_encode: Vec<Query> = Vec::new();
    let plans: Vec<Plan> = batch
        .iter()
        .map(|p| match parse(&p.sql) {
            Err(e) => Plan::Malformed { position: e.position, message: e.message },
            Ok(query) => {
                if !cache_on {
                    to_encode.push(query);
                    return Plan::Direct { idx: to_encode.len() - 1 };
                }
                let template = template_text(&query);
                let prefetch = if cache.peek(&template) || scheduled.contains_key(&template) {
                    None
                } else {
                    to_encode.push(query.clone());
                    scheduled.insert(template.clone(), to_encode.len() - 1);
                    Some(to_encode.len() - 1)
                };
                Plan::Lookup { template, query, prefetch }
            }
        })
        .collect();

    // Pass 2: one batched, tape-free forward over the predicted misses.
    let mut encoded: Vec<Option<Matrix>> = {
        let _t = obs::timer(obs::HistMetric::ServeEncodeUs);
        model.encode_batch(&to_encode).into_iter().map(Some).collect()
    };
    report.encoded += encoded.len() as u64;
    obs::counter_add(obs::Metric::ServeEncoded, encoded.len() as u64);

    // Pass 3: FIFO replay — the sequence of cache operations (and hence
    // hit/miss/eviction counters and recency order) matches unbatched
    // serving exactly.
    for (pending, plan) in batch.into_iter().zip(plans) {
        let mut span = obs::span("serve.request");
        report.processed += 1;
        match plan {
            Plan::Malformed { position, message } => {
                span.add_field("outcome", "parse_error");
                report.parse_errors += 1;
                obs::counter_add(obs::Metric::ServeParseErrors, 1);
                resolve(&pending.ticket, Err(ServeError::Malformed { position, message }));
            }
            Plan::Direct { idx } => {
                span.add_field("outcome", "ok");
                span.add_field("cached", 0u64);
                let matrix = encoded[idx].take().expect("direct prefetch consumed once");
                resolve(&pending.ticket, Ok(Embedding { matrix, cache_hit: false }));
            }
            Plan::Lookup { template, query, prefetch } => {
                span.add_field("outcome", "ok");
                if let Some(hit) = cache.get(&template) {
                    span.add_field("cached", 1u64);
                    obs::counter_add(obs::Metric::ServeCacheHits, 1);
                    let matrix = hit.clone();
                    resolve(&pending.ticket, Ok(Embedding { matrix, cache_hit: true }));
                } else {
                    span.add_field("cached", 0u64);
                    obs::counter_add(obs::Metric::ServeCacheMisses, 1);
                    let matrix = match prefetch.and_then(|i| encoded[i].take()) {
                        Some(m) => m,
                        None => {
                            // Stale prediction: a mid-replay eviction (or a
                            // template shared with an earlier request in this
                            // batch that has since been evicted) — run the
                            // forward this request would have run unbatched.
                            let _t = obs::timer(obs::HistMetric::ServeEncodeUs);
                            report.encoded += 1;
                            obs::counter_add(obs::Metric::ServeEncoded, 1);
                            model
                                .encode_batch(std::slice::from_ref(&query))
                                .pop()
                                .expect("batch of one yields one")
                        }
                    };
                    if cache.insert(template, matrix.clone()).is_some() {
                        obs::counter_add(obs::Metric::ServeCacheEvictions, 1);
                    }
                    resolve(&pending.ticket, Ok(Embedding { matrix, cache_hit: false }));
                }
            }
        }
        span.end();
    }
}
