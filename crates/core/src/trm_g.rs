//! The `Trm_g` module (§3.5.1, Figure 6): a standard transformer encoder
//! sub-layer (Eq. 6) combined with the query-aware sub-graph transformer
//! (Eq. 5, 7), merged by concatenation (Eq. 8).

use rand::rngs::StdRng;

use preqr_nn::layers::{
    join, FeedForward, LayerNorm, Linear, Module, MultiHeadAttention, TransformerLayer,
};
use preqr_nn::{ops, Tensor};

/// Output of one `Trm_g` layer.
pub struct TrmGOutput {
    /// `n × d` merged representation fed to the next layer.
    pub merged: Tensor,
    /// `e_q`: the standard transformer branch output (`n × d`).
    pub e_q: Tensor,
    /// `e_g`: the query-aware sub-graph branch output (`n × d`), when the
    /// schema module is enabled.
    pub e_g: Option<Tensor>,
}

/// The query-aware sub-graph transformer (red rectangle of Figure 6).
struct SubGraphBranch {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ffn: FeedForward,
    ln2: LayerNorm,
    merge: Linear,
}

/// One `Trm_g` layer.
pub struct TrmG {
    trm: TransformerLayer,
    branch: Option<SubGraphBranch>,
}

impl TrmG {
    /// Creates a layer. `with_schema = false` degrades to a plain
    /// transformer layer (the `PreQRNT` ablation).
    pub fn new(d: usize, heads: usize, with_schema: bool, rng: &mut StdRng) -> Self {
        let branch = with_schema.then(|| SubGraphBranch {
            attn: MultiHeadAttention::new(d, heads, rng),
            ln1: LayerNorm::new(d),
            ffn: FeedForward::new(d, d * 2, rng),
            ln2: LayerNorm::new(d),
            merge: Linear::new(2 * d, d, rng),
        });
        Self { trm: TransformerLayer::new(d, heads, rng), branch }
    }

    /// Forward pass. `nodes` is the `|V| × d` schema vertex matrix from
    /// Schema2Graph; required iff the layer was built with the schema
    /// branch.
    pub fn forward(&self, x: &Tensor, nodes: Option<&Tensor>) -> TrmGOutput {
        let e_q = self.trm.forward(x);
        match (&self.branch, nodes) {
            (Some(b), Some(nodes)) => {
                // Eq. 5: scaled dot-product attention of the query tokens
                // over the schema graph — soft pruning to the query-aware
                // sub-graph.
                let attended = b.attn.forward(&e_q, nodes);
                // Eq. 7: residual + layer norms around the attention and
                // feed-forward sub-layers.
                let e_g = b.ln1.forward(&attended);
                let e_g = b.ln2.forward(&ops::add(&e_g, &b.ffn.forward(&e_g)));
                // Eq. 8 merged back to width d so layers stack.
                let merged = b.merge.forward(&ops::concat_cols(&e_q, &e_g));
                TrmGOutput { merged, e_q, e_g: Some(e_g) }
            }
            (None, _) => TrmGOutput { merged: e_q.clone(), e_q, e_g: None },
            (Some(_), None) => panic!("TrmG built with schema branch requires node states"),
        }
    }

    /// Attention weights of the sub-graph branch's first head
    /// (interpretability: which schema vertices a token links to).
    pub fn schema_attention(&self, x: &Tensor, nodes: &Tensor) -> Option<Tensor> {
        let b = self.branch.as_ref()?;
        let e_q = self.trm.forward(x);
        Some(b.attn.attention_weights(&e_q, nodes))
    }
}

impl Module for TrmG {
    fn collect_params(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        self.trm.collect_params(&join(prefix, "trm"), out);
        if let Some(b) = &self.branch {
            b.attn.collect_params(&join(prefix, "g_attn"), out);
            b.ln1.collect_params(&join(prefix, "g_ln1"), out);
            b.ffn.collect_params(&join(prefix, "g_ffn"), out);
            b.ln2.collect_params(&join(prefix, "g_ln2"), out);
            b.merge.collect_params(&join(prefix, "g_merge"), out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_nn::Matrix;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes_with_and_without_schema() {
        let mut rng = StdRng::seed_from_u64(1);
        let with = TrmG::new(8, 2, true, &mut rng);
        let without = TrmG::new(8, 2, false, &mut rng);
        let x = Tensor::constant(Matrix::from_fn(5, 8, |r, c| (r + c) as f32 * 0.1));
        let nodes = Tensor::constant(Matrix::from_fn(7, 8, |r, c| (r * c) as f32 * 0.05));
        let out = with.forward(&x, Some(&nodes));
        assert_eq!(out.merged.shape(), (5, 8));
        assert_eq!(out.e_q.shape(), (5, 8));
        assert_eq!(out.e_g.as_ref().unwrap().shape(), (5, 8));
        let out2 = without.forward(&x, None);
        assert_eq!(out2.merged.shape(), (5, 8));
        assert!(out2.e_g.is_none());
    }

    #[test]
    #[should_panic(expected = "requires node states")]
    fn schema_layer_requires_nodes() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = TrmG::new(8, 2, true, &mut rng);
        let x = Tensor::constant(Matrix::zeros(2, 8));
        let _ = layer.forward(&x, None);
    }

    #[test]
    fn schema_branch_responds_to_node_changes() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = TrmG::new(8, 2, true, &mut rng);
        let x = Tensor::constant(Matrix::from_fn(3, 8, |r, c| (r + c) as f32 * 0.1));
        let nodes_a = Tensor::constant(Matrix::from_fn(4, 8, |r, c| (r * c) as f32 * 0.1));
        let nodes_b = Tensor::constant(Matrix::from_fn(4, 8, |r, c| (r + 2 * c) as f32 * 0.1));
        let a = layer.forward(&x, Some(&nodes_a)).merged.value_clone();
        let b = layer.forward(&x, Some(&nodes_b)).merged.value_clone();
        assert_ne!(a, b, "schema content must influence the output");
    }

    #[test]
    fn schema_attention_is_distribution_over_vertices() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = TrmG::new(8, 2, true, &mut rng);
        let x = Tensor::constant(Matrix::from_fn(3, 8, |r, c| (r + c) as f32 * 0.1));
        let nodes = Tensor::constant(Matrix::from_fn(6, 8, |r, c| (r * c) as f32 * 0.1));
        let w = layer.schema_attention(&x, &nodes).unwrap().value_clone();
        assert_eq!(w.shape(), (3, 6));
        for r in 0..3 {
            assert!((w.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn gradients_flow_through_both_branches() {
        let mut rng = StdRng::seed_from_u64(4);
        let layer = TrmG::new(8, 2, true, &mut rng);
        let x = Tensor::constant(Matrix::from_fn(3, 8, |r, c| (r + c) as f32 * 0.1));
        let nodes = Tensor::param(Matrix::from_fn(4, 8, |r, c| (r * c) as f32 * 0.1));
        let out = layer.forward(&x, Some(&nodes));
        ops::sum_all(&out.merged).backward();
        assert!(nodes.grad().is_some(), "schema nodes must receive gradient");
        for (name, p) in layer.named_params("l") {
            assert!(p.grad().is_some(), "no grad for {name}");
        }
    }
}
