//! Sharded-serving acceptance test: replaying a fixed request script
//! must yield bit-identical embeddings, identical per-request cache-hit
//! flags, identical per-template cache counters, and identical traced
//! event counts across shard counts {1, 2, 4, 8} (plus any
//! `PREQR_SERVE_SHARDS` override from the CI matrix).
//!
//! Why this holds (see `DESIGN.md` §9): embeddings are batch-invariant
//! at the model layer and every shard replica is built deterministically;
//! template-affinity routing ([`preqr_serve::route`]) keeps each
//! template's entire counted-operation sequence on one shard, in
//! submission order; and absent eviction pressure the per-shard cache
//! slices behave exactly like disjoint regions of the single cache.
//! Under eviction pressure the slices evict independently, so counters
//! — and even embeddings for literal-*variant* repeats, since a cache
//! hit serves the template representative computed from the first
//! variant's literals — may legitimately differ across shard counts.
//! What still holds, and the final sweep checks, is exact-repeat
//! determinism: when every occurrence of a template carries the same
//! literals, hit-vs-recompute is bit-neutral and embeddings stay
//! identical at every shard count even while eviction patterns diverge.

use std::collections::BTreeMap;
use std::sync::Arc;

use preqr::{PreqrConfig, SqlBert, ValueBuckets};
use preqr_obs as obs;
use preqr_obs::{EventKind, HistMetric, Metric};
use preqr_schema::{Column, ColumnType, Schema, Table};
use preqr_serve::{route, ServeConfig, ServeStats, Service, ShardStats};
use preqr_sql::normalize::template_text;
use preqr_sql::parser::parse;

/// Fixed request script: five template classes with literal variants
/// (including multi-byte string literals) plus one malformed line.
const SCRIPT: [&str; 16] = [
    "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990",
    "SELECT * FROM title t WHERE t.kind_id IN (1, 3)",
    "SELECT COUNT(*) FROM title t WHERE t.production_year > 2005",
    "SELECT MIN(t.id) FROM title t WHERE t.production_year BETWEEN 1990 AND 2000",
    "no parse at all",
    "SELECT COUNT(*) FROM title t WHERE t.note = 'café'",
    "SELECT * FROM title t WHERE t.kind_id IN (2, 6)",
    "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990",
    "SELECT COUNT(*) FROM title t WHERE t.note = '北京市'",
    "SELECT MAX(t.id) FROM title t WHERE t.kind_id IN (1, 2, 3)",
    "SELECT * FROM title t WHERE t.kind_id IN (5, 7, 2, 4)",
    "SELECT COUNT(*) FROM title t WHERE t.note = 'plain'",
    "SELECT MIN(t.id) FROM title t WHERE t.production_year BETWEEN 1950 AND 1960",
    "SELECT COUNT(*) FROM title t WHERE t.production_year > 1975",
    "SELECT MAX(t.id) FROM title t WHERE t.kind_id IN (4, 5, 6)",
    "SELECT * FROM title t WHERE t.kind_id IN (1, 3)",
];

fn serve_model() -> SqlBert {
    let mut s = Schema::new();
    s.add_table(Table::new(
        "title",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("production_year", ColumnType::Int),
            Column::new("kind_id", ColumnType::Int),
        ],
    ));
    let corpus: Vec<_> = [
        "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990",
        "SELECT * FROM title t WHERE t.kind_id IN (1, 3, 5)",
        "SELECT MIN(t.id) FROM title t WHERE t.production_year BETWEEN 1990 AND 2000",
    ]
    .iter()
    .map(|q| parse(q).unwrap())
    .collect();
    let mut buckets = ValueBuckets::new(4);
    buckets.insert("title", "production_year", (1930..2020).map(f64::from).collect());
    buckets.insert("title", "kind_id", (1..8).map(f64::from).collect());
    SqlBert::new(&corpus, &s, buckets, PreqrConfig::test())
}

/// Exact-repeat pressure script: six distinct templates cycled twice
/// with *identical* literals per occurrence, against a cache budget of 2
/// — heavy eviction churn, but hit-vs-recompute cannot change bits.
const EXACT_REPEAT: [&str; 12] = [
    "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990",
    "SELECT * FROM title t WHERE t.kind_id IN (1, 3)",
    "SELECT MIN(t.id) FROM title t WHERE t.production_year BETWEEN 1990 AND 2000",
    "SELECT COUNT(*) FROM title t WHERE t.note = 'café'",
    "SELECT MAX(t.id) FROM title t WHERE t.kind_id IN (1, 2, 3)",
    "SELECT * FROM title t WHERE t.kind_id IN (5, 7, 2, 4)",
    "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990",
    "SELECT * FROM title t WHERE t.kind_id IN (1, 3)",
    "SELECT MIN(t.id) FROM title t WHERE t.production_year BETWEEN 1990 AND 2000",
    "SELECT COUNT(*) FROM title t WHERE t.note = 'café'",
    "SELECT MAX(t.id) FROM title t WHERE t.kind_id IN (1, 2, 3)",
    "SELECT * FROM title t WHERE t.kind_id IN (5, 7, 2, 4)",
];

/// Per-request outcome: embedding bit pattern + cache-hit flag (`None`
/// for the malformed request).
type Outputs = Vec<Option<(Vec<u32>, bool)>>;

struct Replay {
    outputs: Outputs,
    events: Vec<obs::Event>,
    serve_counters: Vec<(&'static str, u64)>,
    stats: ServeStats,
    per_shard: Vec<ShardStats>,
}

/// Replays `script` through a fresh service with the given shard count
/// and global cache budget; `traced` wires up the obs sink + registry.
fn replay(script: &[&str], shards: usize, cache_capacity: usize, traced: bool) -> Replay {
    let sink = Arc::new(obs::TestSink::new());
    if traced {
        obs::reset_metrics();
        obs::install_sink(sink.clone());
    }
    let config = ServeConfig {
        shards,
        max_batch: 4,
        batch_timeout: 3,
        queue_capacity: script.len() * 8, // every shard slice fits the whole script
        cache_capacity,
        ..ServeConfig::default()
    };
    let svc = Service::spawn(config, |_| serve_model());
    let tickets: Vec<_> = script.iter().map(|sql| svc.submit(sql).unwrap()).collect();
    let (stats, per_shard) = svc.shutdown_detailed();
    assert_eq!(stats.processed, script.len() as u64);
    let outputs = tickets
        .into_iter()
        .map(|t| {
            t.wait()
                .ok()
                .map(|e| (e.matrix.data().iter().map(|x| x.to_bits()).collect(), e.cache_hit))
        })
        .collect();

    let serve_counters = if traced {
        obs::flush_metrics();
        obs::clear_sink();
        let snap = obs::snapshot();
        obs::set_metrics_enabled(false);
        obs::reset_metrics();
        Metric::ALL
            .iter()
            .map(|m| m.name())
            .filter(|n| n.starts_with("serve.") && *n != "serve.batches")
            .map(|n| (n, snap.counter(n).unwrap()))
            .collect()
    } else {
        Vec::new()
    };
    Replay { outputs, events: sink.events(), serve_counters, stats, per_shard }
}

/// Per-template `(hits, misses)`, reconstructed from the per-request
/// cache-hit flags the service returned. Because every request reports
/// whether its template was cached, identical flags across shard counts
/// mean identical per-template counter sequences.
fn per_template_counters(outputs: &Outputs) -> BTreeMap<String, (u64, u64)> {
    let mut m = BTreeMap::new();
    for (sql, out) in SCRIPT.iter().zip(outputs) {
        // (the traced sweeps always replay SCRIPT)
        if let Some((_, hit)) = out {
            let e = m.entry(template_text(&parse(sql).unwrap())).or_insert((0u64, 0u64));
            if *hit {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
    }
    m
}

/// The shard each script line must land on, per [`route`]: parseable
/// requests by template, malformed ones by raw text — mirroring
/// admission exactly.
fn predicted_processed(shards: usize) -> Vec<u64> {
    let mut predicted = vec![0u64; shards];
    for sql in SCRIPT {
        let key = match parse(sql) {
            Ok(q) => template_text(&q),
            Err(_) => sql.to_string(),
        };
        predicted[route(&key, shards)] += 1;
    }
    predicted
}

#[test]
fn fixed_script_replays_identically_across_shard_counts() {
    let mut sweep = vec![2usize, 4, 8];
    if let Some(n) = ServeConfig::shards_from_env() {
        if n != 1 && !sweep.contains(&n) {
            sweep.push(n);
        }
    }

    let base = replay(&SCRIPT, 1, 64, true);
    // Baseline sanity: one malformed request, one span per processed
    // request, and one full fixed-registry flush.
    assert_eq!(base.outputs.iter().filter(|o| o.is_none()).count(), 1);
    let spans = base.events.iter().filter(|e| e.kind == EventKind::Span).count();
    assert_eq!(spans, SCRIPT.len());
    assert_eq!(base.events.len(), SCRIPT.len() + Metric::ALL.len() + HistMetric::ALL.len());
    assert_eq!(
        base.stats.cache_evictions, 0,
        "precondition: the workload must fit the cache, or counter invariance cannot hold"
    );
    let base_templates = per_template_counters(&base.outputs);
    assert!(base_templates.values().any(|&(hits, _)| hits > 0), "script repeats templates");

    for &shards in &sweep {
        let run = replay(&SCRIPT, shards, 64, true);
        assert_eq!(
            run.outputs, base.outputs,
            "embeddings or cache-hit flags diverged at shards={shards}"
        );
        assert_eq!(
            per_template_counters(&run.outputs),
            base_templates,
            "per-template cache counters diverged at shards={shards}"
        );
        assert_eq!(run.events.len(), base.events.len(), "event count diverged at shards={shards}");
        assert_eq!(
            run.serve_counters, base.serve_counters,
            "serve.* counters diverged at shards={shards}"
        );

        // Shard accounting: routing places work exactly where `route`
        // says, and per-shard counters sum to the aggregates.
        assert_eq!(run.per_shard.len(), shards);
        let processed: Vec<u64> = run.per_shard.iter().map(|s| s.processed).collect();
        assert_eq!(processed, predicted_processed(shards), "routing mismatch at shards={shards}");
        assert_eq!(run.per_shard.iter().map(|s| s.cache_hits).sum::<u64>(), run.stats.cache_hits);
        assert_eq!(
            run.per_shard.iter().map(|s| s.cache_misses).sum::<u64>(),
            run.stats.cache_misses
        );
        assert_eq!(run.per_shard.iter().map(|s| s.batches).sum::<u64>(), run.stats.batches);
        assert!(run.per_shard.iter().all(|s| !s.panicked));
    }

    // Under eviction pressure (global budget 2) the shard slices evict
    // independently, so hit/miss patterns — and, for literal-variant
    // repeats, even the served representative — may differ across shard
    // counts. Exact-repeat requests close that loophole: hit or
    // recompute, the bits are the same, so embeddings must stay
    // identical at every shard count even while counters diverge.
    let pressured = replay(&EXACT_REPEAT, 1, 2, false);
    assert!(pressured.stats.cache_evictions > 0, "budget 2 must actually evict on this script");
    let bits_only = |o: &Outputs| -> Vec<Option<Vec<u32>>> {
        o.iter().map(|x| x.as_ref().map(|(b, _)| b.clone())).collect()
    };
    for shards in [2usize, 4, 8] {
        let run = replay(&EXACT_REPEAT, shards, 2, false);
        assert_eq!(
            bits_only(&run.outputs),
            bits_only(&pressured.outputs),
            "embeddings diverged under eviction pressure at shards={shards}"
        );
    }
}
