#!/usr/bin/env bash
# Kernel benchmark: serial reference kernels vs packed/parallel fast paths.
#
# Preferred path runs the cargo binary. When the registry is unreachable
# (offline container), falls back to a plain-rustc harness that compiles the
# real kernel sources (crates/nn/src/{parallel,matrix,rowops}.rs) with
# std-based shims for crossbeam/parking_lot — see
# scripts/standalone_bench_kernels.rs. Both writers emit the same
# results/BENCH_kernels.json schema.
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results

# Benchmark builds target the host CPU so the packed microkernel's register
# tile actually lands in AVX2/AVX-512 registers (results stay bit-identical:
# Rust never contracts mul+add into FMA, so only instruction selection
# changes, not floating-point semantics).
export RUSTFLAGS="${RUSTFLAGS:--C target-cpu=native}"

if cargo build --release -p preqr-bench --bin bench_kernels 2>/dev/null; then
    exec cargo run --release -p preqr-bench --bin bench_kernels
fi

echo "cargo build unavailable (offline registry?); using standalone rustc harness" >&2

BUILD_DIR="$(mktemp -d)"
trap 'rm -rf "$BUILD_DIR"' EXIT

cp scripts/standalone_bench_kernels.rs "$BUILD_DIR/main.rs"

# Real kernel sources, with only their external imports rewritten to the
# harness's std-based compat shims.
sed -e 's|use crossbeam::channel::{unbounded, Receiver, Sender};|use crate::compat::channel::{unbounded, Receiver, Sender};|' \
    -e 's|use parking_lot::{Condvar, Mutex};|use crate::compat::sync::{Condvar, Mutex};|' \
    -e 's|use preqr_obs as obs;|use crate::compat::obs;|' \
    crates/nn/src/parallel.rs > "$BUILD_DIR/parallel.rs"

sed -e '/^use serde::{Deserialize, Serialize};$/d' \
    -e 's|#\[derive(Clone, Debug, PartialEq, Serialize, Deserialize)\]|#[derive(Clone, Debug, PartialEq)]|' \
    -e 's|use preqr_obs as obs;|use crate::compat::obs;|' \
    crates/nn/src/matrix.rs > "$BUILD_DIR/matrix.rs"

cp crates/nn/src/rowops.rs "$BUILD_DIR/rowops.rs"

# The harness benchmarks the *shipped* kernels: the only allowed difference
# from crates/nn is the import rewrite above. Fail loudly if the rewrite no
# longer matches (e.g. the import lines changed upstream) rather than let
# the fallback drift from the real sources.
if grep -qE 'crossbeam|parking_lot|preqr_obs' "$BUILD_DIR/parallel.rs"; then
    echo "error: import rewrite failed for crates/nn/src/parallel.rs;" >&2
    echo "       update the sed patterns in scripts/bench_kernels.sh" >&2
    exit 1
fi
if grep -qE 'serde|preqr_obs' "$BUILD_DIR/matrix.rs"; then
    echo "error: serde strip failed for crates/nn/src/matrix.rs;" >&2
    echo "       update the sed patterns in scripts/bench_kernels.sh" >&2
    exit 1
fi
rustc --edition 2021 -C opt-level=3 $RUSTFLAGS -o "$BUILD_DIR/bench_kernels" "$BUILD_DIR/main.rs"
"$BUILD_DIR/bench_kernels"
