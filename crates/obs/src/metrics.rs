//! Fixed-registry monotonic counters and histogram summaries.
//!
//! The metric namespace is a closed enum rather than an open string
//! registry: every counter and histogram exists from process start, is
//! addressed by a compile-time index (one relaxed atomic op on the hot
//! path, no hashing), and is always present in snapshots and flushes —
//! including zero-valued ones. That last property is what makes flush
//! event counts *exactly* deterministic regardless of which code paths
//! ran (e.g. `PREQR_THREADS=1` never touches the pool-dispatch counter,
//! but the counter still appears in every flush).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Monotonic counters, in stable flush order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// Kernel dispatches that ran entirely on the calling thread
    /// (small shapes, single-thread config, or nested-in-worker).
    NnDispatchInline,
    /// Kernel dispatches fanned out to the worker pool.
    NnDispatchPool,
    /// `parallel::join` calls that ran sequentially.
    NnJoinInline,
    /// `parallel::join` calls that used a pool worker.
    NnJoinPool,
    /// `Matrix::matmul` family entry calls (all variants).
    NnMatmulCalls,
    /// Completed pre-training epochs.
    PretrainEpochs,
    /// Query samples consumed by MLM pre-training.
    PretrainSamples,
    /// Optimizer steps taken during pre-training.
    PretrainSteps,
    /// Tokens masked for the MLM objective.
    PretrainMaskedTokens,
    /// Masked tokens the model predicted correctly.
    PretrainCorrectTokens,
    /// Downstream estimator training runs started.
    EstTrainRuns,
    /// Downstream estimator training epochs completed.
    EstEpochs,
    /// Trainings that ended via early stopping.
    EstEarlyStops,
    /// Trainer runs started (`preqr-train`, any workload).
    TrainRuns,
    /// Trainer epochs completed (any workload).
    TrainEpochs,
    /// Trainer optimizer steps taken (any workload).
    TrainSteps,
    /// Examples consumed by trainer runs (any workload).
    TrainSamples,
    /// Trainer runs ended by validation early stopping.
    TrainEarlyStops,
    /// Trainer checkpoints written.
    TrainCheckpoints,
    /// Queries executed by the engine.
    EngineQueries,
    /// Base-table rows scanned by the engine (pre-filter).
    EngineRowsScanned,
    /// Executions aborted by the intermediate-size safety cap.
    EngineCapHits,
    /// Executions that failed for any other reason.
    EngineErrors,
    /// Requests accepted into the serving queue.
    ServeRequests,
    /// Requests rejected at admission (queue full).
    ServeRejected,
    /// Requests that failed SQL parsing inside the serving worker.
    ServeParseErrors,
    /// Encoder forward passes run by the serving worker (cache misses).
    ServeEncoded,
    /// Serving cache hits (embedding returned without a forward pass).
    ServeCacheHits,
    /// Serving cache misses.
    ServeCacheMisses,
    /// Serving cache evictions (LRU capacity pressure).
    ServeCacheEvictions,
    /// Micro-batches drained by the serving collector.
    ServeBatches,
    /// Serving worker shards that died by panic (isolation events).
    ServeShardPanics,
    /// Trace sinks that failed and degraded to no-op.
    ObsSinkDegraded,
}

impl Metric {
    /// Every counter, in flush order.
    pub const ALL: [Metric; 33] = [
        Metric::NnDispatchInline,
        Metric::NnDispatchPool,
        Metric::NnJoinInline,
        Metric::NnJoinPool,
        Metric::NnMatmulCalls,
        Metric::PretrainEpochs,
        Metric::PretrainSamples,
        Metric::PretrainSteps,
        Metric::PretrainMaskedTokens,
        Metric::PretrainCorrectTokens,
        Metric::EstTrainRuns,
        Metric::EstEpochs,
        Metric::EstEarlyStops,
        Metric::TrainRuns,
        Metric::TrainEpochs,
        Metric::TrainSteps,
        Metric::TrainSamples,
        Metric::TrainEarlyStops,
        Metric::TrainCheckpoints,
        Metric::EngineQueries,
        Metric::EngineRowsScanned,
        Metric::EngineCapHits,
        Metric::EngineErrors,
        Metric::ServeRequests,
        Metric::ServeRejected,
        Metric::ServeParseErrors,
        Metric::ServeEncoded,
        Metric::ServeCacheHits,
        Metric::ServeCacheMisses,
        Metric::ServeCacheEvictions,
        Metric::ServeBatches,
        Metric::ServeShardPanics,
        Metric::ObsSinkDegraded,
    ];

    /// Stable dotted event name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::NnDispatchInline => "nn.dispatch.inline",
            Metric::NnDispatchPool => "nn.dispatch.pool",
            Metric::NnJoinInline => "nn.join.inline",
            Metric::NnJoinPool => "nn.join.pool",
            Metric::NnMatmulCalls => "nn.matmul.calls",
            Metric::PretrainEpochs => "pretrain.epochs",
            Metric::PretrainSamples => "pretrain.samples",
            Metric::PretrainSteps => "pretrain.steps",
            Metric::PretrainMaskedTokens => "pretrain.masked_tokens",
            Metric::PretrainCorrectTokens => "pretrain.correct_tokens",
            Metric::EstTrainRuns => "est.train_runs",
            Metric::EstEpochs => "est.epochs",
            Metric::EstEarlyStops => "est.early_stops",
            Metric::TrainRuns => "train.runs",
            Metric::TrainEpochs => "train.epochs",
            Metric::TrainSteps => "train.steps",
            Metric::TrainSamples => "train.samples",
            Metric::TrainEarlyStops => "train.early_stops",
            Metric::TrainCheckpoints => "train.checkpoints",
            Metric::EngineQueries => "engine.queries",
            Metric::EngineRowsScanned => "engine.rows_scanned",
            Metric::EngineCapHits => "engine.cap_hits",
            Metric::EngineErrors => "engine.errors",
            Metric::ServeRequests => "serve.requests",
            Metric::ServeRejected => "serve.rejected",
            Metric::ServeParseErrors => "serve.parse_errors",
            Metric::ServeEncoded => "serve.encoded",
            Metric::ServeCacheHits => "serve.cache.hits",
            Metric::ServeCacheMisses => "serve.cache.misses",
            Metric::ServeCacheEvictions => "serve.cache.evictions",
            Metric::ServeBatches => "serve.batches",
            Metric::ServeShardPanics => "serve.shard.panics",
            Metric::ObsSinkDegraded => "obs.sink.degraded",
        }
    }
}

/// Histogram-summarized value streams, in stable flush order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum HistMetric {
    /// Wall-clock microseconds per `Matrix::matmul` family call.
    NnMatmulUs,
    /// Mean MLM loss per pre-training epoch.
    PretrainEpochLoss,
    /// Mean validation q-error per fine-tuning epoch.
    EstValQerror,
    /// Mean loss per trainer epoch (any workload).
    TrainEpochLoss,
    /// Epoch-end validation metric per trainer epoch (any workload).
    TrainValMetric,
    /// Pre-aggregation join cardinality per executed query.
    EngineJoinCard,
    /// Requests per drained serving micro-batch.
    ServeBatchSize,
    /// Queue depth observed at each serving batch collection.
    ServeQueueDepth,
    /// Wall-clock microseconds per serving encoder forward (batched or
    /// solo).
    ServeEncodeUs,
}

impl HistMetric {
    /// Every histogram, in flush order.
    pub const ALL: [HistMetric; 9] = [
        HistMetric::NnMatmulUs,
        HistMetric::PretrainEpochLoss,
        HistMetric::EstValQerror,
        HistMetric::TrainEpochLoss,
        HistMetric::TrainValMetric,
        HistMetric::EngineJoinCard,
        HistMetric::ServeBatchSize,
        HistMetric::ServeQueueDepth,
        HistMetric::ServeEncodeUs,
    ];

    /// Stable dotted event name.
    pub fn name(self) -> &'static str {
        match self {
            HistMetric::NnMatmulUs => "nn.matmul_us",
            HistMetric::PretrainEpochLoss => "pretrain.epoch_loss",
            HistMetric::EstValQerror => "est.val_qerror",
            HistMetric::TrainEpochLoss => "train.epoch_loss",
            HistMetric::TrainValMetric => "train.val_metric",
            HistMetric::EngineJoinCard => "engine.join_cardinality",
            HistMetric::ServeBatchSize => "serve.batch_size",
            HistMetric::ServeQueueDepth => "serve.queue_depth",
            HistMetric::ServeEncodeUs => "serve.encode_us",
        }
    }
}

const N_COUNTERS: usize = Metric::ALL.len();
const N_HISTS: usize = HistMetric::ALL.len();

/// Reservoir cap per histogram: percentiles come from the first
/// `HIST_CAP` observations; `count`/`sum`/`max` cover every observation.
pub const HIST_CAP: usize = 1 << 16;

static COUNTERS: [AtomicU64; N_COUNTERS] = [const { AtomicU64::new(0) }; N_COUNTERS];

struct HistState {
    values: Vec<f64>,
    count: u64,
    sum: f64,
    max: f64,
}

impl HistState {
    const fn new() -> Self {
        HistState { values: Vec::new(), count: 0, sum: 0.0, max: f64::NEG_INFINITY }
    }
}

static HISTS: [Mutex<HistState>; N_HISTS] = [const { Mutex::new(HistState::new()) }; N_HISTS];

pub(crate) fn counter_add_raw(m: Metric, delta: u64) {
    COUNTERS[m as usize].fetch_add(delta, Ordering::Relaxed);
}

pub(crate) fn counter_get_raw(m: Metric) -> u64 {
    COUNTERS[m as usize].load(Ordering::Relaxed)
}

pub(crate) fn hist_record_raw(h: HistMetric, v: f64) {
    let mut st = HISTS[h as usize].lock().unwrap_or_else(|e| e.into_inner());
    st.count += 1;
    st.sum += v;
    if v > st.max {
        st.max = v;
    }
    if st.values.len() < HIST_CAP {
        st.values.push(v);
    }
}

pub(crate) fn reset_raw() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    for h in &HISTS {
        let mut st = h.lock().unwrap_or_else(|e| e.into_inner());
        *st = HistState::new();
    }
}

/// Point-in-time summary of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistSummary {
    /// Metric name.
    pub name: &'static str,
    /// Total observations (beyond the percentile reservoir too).
    pub count: u64,
    /// Median of the reservoir (0 when empty).
    pub p50: f64,
    /// 95th percentile of the reservoir (0 when empty).
    pub p95: f64,
    /// Maximum over all observations (0 when empty).
    pub max: f64,
    /// Sum over all observations.
    pub sum: f64,
}

/// Deterministic snapshot of every counter and histogram, in registry
/// order, zero-valued entries included.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// `(name, total)` for every counter.
    pub counters: Vec<(&'static str, u64)>,
    /// Summary for every histogram.
    pub hists: Vec<HistSummary>,
}

impl Snapshot {
    /// Looks up a counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram summary by name.
    pub fn hist(&self, name: &str) -> Option<&HistSummary> {
        self.hists.iter().find(|h| h.name == name)
    }
}

/// Nearest-rank percentile of a sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

pub(crate) fn summarize(h: HistMetric) -> HistSummary {
    let st = HISTS[h as usize].lock().unwrap_or_else(|e| e.into_inner());
    let mut sorted = st.values.clone();
    let (count, sum, max) = (st.count, st.sum, st.max);
    drop(st);
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    HistSummary {
        name: h.name(),
        count,
        p50: percentile(&sorted, 50.0),
        p95: percentile(&sorted, 95.0),
        max: if count == 0 { 0.0 } else { max },
        sum,
    }
}

pub(crate) fn snapshot_raw() -> Snapshot {
    Snapshot {
        counters: Metric::ALL.iter().map(|&m| (m.name(), counter_get_raw(m))).collect(),
        hists: HistMetric::ALL.iter().map(|&h| summarize(h)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_dotted() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.extend(HistMetric::ALL.iter().map(|h| h.name()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "metric names must be unique");
        assert!(names.iter().all(|n| n.contains('.')));
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), 51.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 95.0), 7.0);
    }
}
