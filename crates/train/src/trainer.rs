//! The [`Trainer`]: one deterministic, resumable driver for every
//! training loop in the workspace.

use std::io;

use preqr_nn::optim::Adam;
use preqr_nn::{Matrix, Tensor};
use preqr_obs as obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::checkpoint::{self, CheckpointConfig, Saved};
use crate::schedule::Schedule;
use crate::stats::{EpochStats, TrainReport};
use crate::task::TrainTask;

/// How examples are visited.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Plan {
    /// Classic epochs: visit every example each epoch, accumulating
    /// gradients over `chunk`-sized micro-batches, optionally shuffling
    /// the visit order with a Fisher–Yates pass per epoch.
    Epochs {
        /// Number of epochs.
        epochs: usize,
        /// Micro-batch size (one optimizer step per chunk).
        chunk: usize,
        /// Whether to Fisher–Yates-shuffle the visit order each epoch.
        shuffle: bool,
    },
    /// Sliding window over the example list (the incremental-update
    /// shape): at step `s`, train on examples `s % len ..` capped at
    /// `take`, one optimizer step per window. Counts as a single epoch.
    Window {
        /// Number of optimizer steps.
        steps: usize,
        /// Maximum examples per window.
        take: usize,
    },
}

/// Everything the [`Trainer`] needs besides the task itself.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// Visit plan (epochs or sliding window).
    pub plan: Plan,
    /// Base learning rate (the schedule modulates it per step).
    pub lr: f32,
    /// Learning-rate schedule.
    pub schedule: Schedule,
    /// Early stopping: stop after this many consecutive epochs without
    /// validation improvement. `None` disables early stopping (the
    /// validation metric is still recorded when the task evaluates one).
    pub patience: Option<usize>,
    /// Periodic checkpointing with crash-resume. `None` disables it and
    /// leaves the RNG stream bit-identical to the legacy loops.
    pub checkpoint: Option<CheckpointConfig>,
    /// Stop (with `halted = true`) once the global step counter reaches
    /// this value — used by smoke tests and the resume proptest to
    /// simulate an interrupted run.
    pub halt_after_steps: Option<u64>,
}

impl TrainerConfig {
    /// A plan at a base learning rate with a constant schedule, no early
    /// stopping, and no checkpointing — the common fine-tune setup.
    pub fn new(plan: Plan, lr: f32) -> Self {
        Self {
            plan,
            lr,
            schedule: Schedule::Constant,
            patience: None,
            checkpoint: None,
            halt_after_steps: None,
        }
    }

    /// Sets the learning-rate schedule.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Enables validation early stopping with the given patience.
    pub fn with_patience(mut self, patience: usize) -> Self {
        self.patience = Some(patience);
        self
    }

    /// Enables periodic checkpointing.
    pub fn with_checkpoint(mut self, checkpoint: CheckpointConfig) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Halts the run once the global step counter reaches `steps`.
    pub fn with_halt_after(mut self, steps: u64) -> Self {
        self.halt_after_steps = Some(steps);
        self
    }
}

/// Per-epoch f64/count accumulators, kept in the exact order the legacy
/// loops accumulated them so trajectories stay bit-identical.
#[derive(Clone, Copy, Default)]
struct Totals {
    loss: f64,
    samples: usize,
    masked: usize,
    correct: usize,
}

/// Mid-epoch resume state restored from a checkpoint.
struct MidEpoch {
    pos: usize,
    totals: Totals,
    epoch_start_step: u64,
    order: Option<Vec<usize>>,
}

/// The shared training driver. Construct with a [`TrainerConfig`], then
/// [`Trainer::fit`] a [`TrainTask`].
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainerConfig) -> Self {
        Self { config }
    }

    /// The configuration this trainer runs with.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Trains the task to completion, panicking on checkpoint I/O errors
    /// (the common path for tasks that don't checkpoint — I/O is then
    /// impossible and this never panics).
    pub fn fit(&self, task: &mut dyn TrainTask, rng: &mut StdRng) -> TrainReport {
        self.try_fit(task, rng).expect("trainer checkpoint I/O failed")
    }

    /// Trains the task to completion, or until early stopping or a
    /// configured halt. See the crate docs for the determinism contract.
    pub fn try_fit(&self, task: &mut dyn TrainTask, rng: &mut StdRng) -> io::Result<TrainReport> {
        let n = task.len();
        let (epochs, chunk_size) = match self.config.plan {
            Plan::Epochs { epochs, chunk, .. } => (epochs, chunk.max(1)),
            Plan::Window { .. } => (1, 1),
        };
        let params = task.params();
        let mut opt = Adam::new(params.clone(), self.config.lr);

        let mut stats: Vec<EpochStats> = Vec::new();
        let mut step: u64 = 0;
        let mut patience_count: usize = 0;
        let mut best = f64::INFINITY;
        let mut best_snap: Option<Vec<Matrix>> = None;
        let mut last_chunk_loss = 0.0f64;
        let mut early_stopped = false;
        let mut halted = false;
        let mut start_epoch = 0usize;
        let mut mid_epoch: Option<MidEpoch> = None;

        if let Some(ck) = &self.config.checkpoint {
            if ck.resume && ck.path.exists() {
                let saved = checkpoint::load(&ck.path, &params)?;
                opt.restore_state(saved.adam_t, saved.m, saved.v);
                *rng = StdRng::seed_from_u64(saved.rng_seed);
                stats = saved.stats;
                step = saved.step;
                patience_count = saved.patience;
                best = saved.best.unwrap_or(f64::INFINITY);
                best_snap = saved.best_snap;
                last_chunk_loss = saved.last_chunk_loss;
                start_epoch = saved.epoch;
                if saved.pos > 0 {
                    mid_epoch = Some(MidEpoch {
                        pos: saved.pos,
                        totals: Totals {
                            loss: saved.loss_total,
                            samples: saved.samples,
                            masked: saved.masked,
                            correct: saved.correct,
                        },
                        epoch_start_step: saved.epoch_start_step,
                        order: saved.order,
                    });
                }
            }
        }

        obs::counter_add(obs::Metric::TrainRuns, 1);
        let mut run_span = obs::span("train.run")
            .field("task", task.name())
            .field("examples", n)
            .field("epochs", epochs)
            .field("lr", self.config.lr);

        'epochs: for epoch in start_epoch..epochs {
            let mut epoch_span =
                obs::span("train.epoch").field("task", task.name()).field("epoch", epoch);
            let (order, start_pos, mut totals, epoch_start_step) = match mid_epoch.take() {
                Some(mid) => {
                    let order = match (&self.config.plan, mid.order) {
                        (Plan::Window { .. }, _) => Vec::new(),
                        (Plan::Epochs { .. }, Some(order)) => order,
                        (Plan::Epochs { .. }, None) => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "mid-epoch checkpoint is missing the visit order",
                            ));
                        }
                    };
                    (order, mid.pos, mid.totals, mid.epoch_start_step)
                }
                None => {
                    let order = match self.config.plan {
                        Plan::Epochs { shuffle, .. } => {
                            let mut order: Vec<usize> = (0..n).collect();
                            if shuffle {
                                // Fisher–Yates with the caller's rng, in the
                                // exact draw order the legacy loops used.
                                for i in (1..order.len()).rev() {
                                    order.swap(i, rng.random_range(0..=i));
                                }
                            }
                            order
                        }
                        Plan::Window { .. } => Vec::new(),
                    };
                    (order, 0, Totals::default(), step)
                }
            };
            let chunk_count = match self.config.plan {
                Plan::Epochs { .. } => n.div_ceil(chunk_size),
                Plan::Window { steps, .. } => steps,
            };

            let mut pending_checkpoint: Option<u64> = None;
            let mut halt_requested = false;
            for pos in start_pos..chunk_count {
                let idxs: Vec<usize> = match self.config.plan {
                    Plan::Epochs { .. } => {
                        order[pos * chunk_size..((pos + 1) * chunk_size).min(n)].to_vec()
                    }
                    Plan::Window { take, .. } => {
                        if n == 0 {
                            Vec::new()
                        } else {
                            (pos % n..n).take(take.min(n)).collect()
                        }
                    }
                };
                task.chunk_start();
                let mut chunk_loss = 0.0f64;
                for &idx in &idxs {
                    let out = task.step(idx, rng);
                    chunk_loss += out.loss;
                    totals.loss += out.loss;
                    totals.masked += out.masked;
                    totals.correct += out.correct;
                    totals.samples += 1;
                }
                last_chunk_loss = chunk_loss / idxs.len().max(1) as f64;
                opt.set_lr(self.config.schedule.lr_at(self.config.lr, step));
                opt.step();
                step += 1;
                task.post_step();

                if let Some(ck) = &self.config.checkpoint {
                    if ck.every_steps > 0 && step % ck.every_steps == 0 {
                        // Reseed trick: one draw pins the whole RNG state.
                        let seed = rng.random::<u64>();
                        *rng = StdRng::seed_from_u64(seed);
                        if pos + 1 == chunk_count {
                            // Defer to after epoch bookkeeping so the file
                            // records the completed epoch.
                            pending_checkpoint = Some(seed);
                        } else {
                            let saved = Saved {
                                epoch,
                                pos: pos + 1,
                                step,
                                rng_seed: seed,
                                adam_t: opt.step_count(),
                                loss_total: totals.loss,
                                samples: totals.samples,
                                masked: totals.masked,
                                correct: totals.correct,
                                epoch_start_step,
                                patience: patience_count,
                                best: best_snap.as_ref().map(|_| best),
                                last_chunk_loss,
                                stats: stats.clone(),
                                order: match self.config.plan {
                                    Plan::Epochs { .. } => Some(order.clone()),
                                    Plan::Window { .. } => None,
                                },
                                m: opt.moments().0.to_vec(),
                                v: opt.moments().1.to_vec(),
                                best_snap: best_snap.clone(),
                            };
                            checkpoint::save(&ck.path, &saved, &params)?;
                            obs::counter_add(obs::Metric::TrainCheckpoints, 1);
                        }
                    }
                }
                if let Some(h) = self.config.halt_after_steps {
                    if step >= h {
                        halt_requested = true;
                        if pos + 1 != chunk_count {
                            halted = true;
                            epoch_span.add_field("halted_at_step", step);
                            epoch_span.end();
                            break 'epochs;
                        }
                        // Last chunk: finish epoch bookkeeping first.
                    }
                }
            }

            let epoch_loss = totals.loss / totals.samples.max(1) as f64;
            let epoch_acc = totals.correct as f64 / totals.masked.max(1) as f64;
            let epoch_steps = step - epoch_start_step;
            obs::counter_add(obs::Metric::TrainEpochs, 1);
            obs::counter_add(obs::Metric::TrainSteps, epoch_steps);
            obs::counter_add(obs::Metric::TrainSamples, totals.samples as u64);
            obs::record_hist(obs::HistMetric::TrainEpochLoss, epoch_loss);
            epoch_span.add_field("loss", epoch_loss);
            epoch_span.add_field("accuracy", epoch_acc);
            epoch_span.add_field("samples", totals.samples);
            let val = task.eval();
            if let Some(v) = val {
                if v.is_finite() {
                    obs::record_hist(obs::HistMetric::TrainValMetric, v);
                }
                epoch_span.add_field("val", v);
            }
            let st = EpochStats {
                epoch,
                loss: epoch_loss,
                accuracy: epoch_acc,
                samples: totals.samples,
                steps: epoch_steps,
                masked: totals.masked,
                correct: totals.correct,
                val,
            };
            task.epoch_end(&st);
            epoch_span.end();
            stats.push(st);

            let mut stop = false;
            if let (Some(patience), Some(v)) = (self.config.patience, val) {
                if v < best {
                    best = v;
                    best_snap = Some(params.iter().map(Tensor::value_clone).collect());
                    patience_count = 0;
                } else {
                    patience_count += 1;
                    if patience_count >= patience {
                        obs::counter_add(obs::Metric::TrainEarlyStops, 1);
                        task.on_early_stop();
                        early_stopped = true;
                        stop = true;
                    }
                }
            }

            if let Some(seed) = pending_checkpoint.take() {
                let ck = self.config.checkpoint.as_ref().expect("pending implies configured");
                let saved = Saved {
                    epoch: epoch + 1,
                    pos: 0,
                    step,
                    rng_seed: seed,
                    adam_t: opt.step_count(),
                    loss_total: 0.0,
                    samples: 0,
                    masked: 0,
                    correct: 0,
                    epoch_start_step: step,
                    patience: patience_count,
                    best: best_snap.as_ref().map(|_| best),
                    last_chunk_loss,
                    stats: stats.clone(),
                    order: None,
                    m: opt.moments().0.to_vec(),
                    v: opt.moments().1.to_vec(),
                    best_snap: best_snap.clone(),
                };
                checkpoint::save(&ck.path, &saved, &params)?;
                obs::counter_add(obs::Metric::TrainCheckpoints, 1);
            }
            if stop {
                break 'epochs;
            }
            if halt_requested {
                halted = true;
                break 'epochs;
            }
        }

        if !halted {
            if let Some(snap) = &best_snap {
                for (p, m) in params.iter().zip(snap) {
                    p.set_value(m.clone());
                }
            }
        }
        run_span.add_field("steps", step);
        run_span.end();
        Ok(TrainReport { stats, steps: step, early_stopped, halted, last_chunk_loss })
    }
}
