//! Table 7 — overall performance with the same training settings:
//! query clustering (BetaCV ↓ / NDCG ↑), cardinality & cost estimation
//! (mean q-error ↓), and SQL-to-Text generation (BLEU ↑).
//!
//! This composite binary runs all three blocks at the current scale; the
//! dedicated binaries (fig07, table08/09, …) run each block with more
//! detail.

use preqr::{PreqrConfig, SqlBert};
use preqr_bench::runner::{run_estimation, RowSelection};
use preqr_bench::{Ctx, Scale};
use preqr_data::chdb::{self, ChConfig};
use preqr_data::clustering::{ch_workload, iit_bombay, pocketdata, ub_exam};
use preqr_data::text::{corpus, TextStyle};
use preqr_sql::ast::Query;
use preqr_tasks::clustering::{betacv_of, ch_ndcg, Seq2SeqEmbedder, SimilarityMethod};
use preqr_tasks::estimation::Target;
use preqr_tasks::setup::value_buckets_from_db;
use preqr_tasks::textgen::{train_generator, GenEncoder};

fn clustering_block() {
    let scale = preqr_bench::scale();
    let ch_db = chdb::generate(if scale == Scale::Full {
        ChConfig::default()
    } else {
        ChConfig { customers: 400, seed: 7 }
    });
    let datasets = [iit_bombay(), ub_exam(), pocketdata()];
    let ch = ch_workload(&ch_db, if scale == Scale::Full { 40 } else { 15 }, 3);

    // PreQR pre-trained on the CH-schema query log.
    let mut corpus_q: Vec<Query> = ch.queries.clone();
    for ds in &datasets {
        corpus_q.extend(ds.queries.clone());
    }
    let buckets = value_buckets_from_db(&ch_db, 10);
    let mut model = SqlBert::new(&corpus_q, ch_db.schema(), buckets, PreqrConfig::small());
    eprintln!("[table07] pre-training PreQR on the CH schema…");
    model.pretrain(&corpus_q, 3, 1e-3);
    eprintln!("[table07] training Seq2Seq auto-encoder…");
    let s2s = Seq2SeqEmbedder::train(&corpus_q[..corpus_q.len().min(120)], 32, 6, 9);

    println!("\n=== Table 7 (clustering): BetaCV ↓ and NDCG ↑ ===");
    println!(
        "{:<12} {:>11} {:>9} {:>11} {:>8}",
        "method", "IIT Bombay", "UB Exam", "PocketData", "CH NDCG"
    );
    let methods: Vec<SimilarityMethod> = vec![
        SimilarityMethod::Aouiche,
        SimilarityMethod::Aligon,
        SimilarityMethod::Makiyama,
        SimilarityMethod::OneHot(&ch_db),
        SimilarityMethod::Seq2Seq(Box::new(s2s)),
        SimilarityMethod::Preqr(&model),
    ];
    for m in &methods {
        let b: Vec<f64> = datasets.iter().map(|ds| betacv_of(m, &ds.queries, &ds.labels)).collect();
        let ndcg = ch_ndcg(m, &ch, ch.len() / 3);
        println!("{:<12} {:>11.3} {:>9.3} {:>11.3} {:>8.3}", m.name(), b[0], b[1], b[2], ndcg);
    }
    println!("paper:       Aouiche .577/.923/.893/.131  Aligon .535/.799/.898/.120  Makiyama .665/.897/.879/.214");
    println!("             One-hot .565/.852/.883/.191  Seq2Seq .459/.761/.801/.584  PreQR .387/.622/.752/.710");
}

fn estimation_block(ctx: &Ctx) {
    let model = ctx.pretrained("main", PreqrConfig::small());
    let (train, valid) = ctx.estimation_train();
    let tests = ctx.test_workloads();
    for target in [Target::Cardinality, Target::Cost] {
        run_estimation(
            ctx,
            &model,
            target,
            &train,
            &valid,
            &tests,
            RowSelection { mscn: true, neurocard: target == Target::Cardinality },
            if target == Target::Cardinality { "PreQRCard" } else { "PreQRCost" },
        );
    }
}

fn generation_block(ctx: &Ctx) {
    let n = ctx.sizes.text_pairs;
    let epochs = ctx.sizes.text_epochs;
    println!("\n=== Table 7 (SQL-to-Text): BLEU ↑ ===");
    println!("{:<14} {:>9} {:>14}", "method", "WikiSQL", "StackOverflow");
    // PreQR pre-trained on the text corpus queries (CH schema).
    let wiki = corpus(TextStyle::WikiSql, n, 5);
    let stack = corpus(TextStyle::StackOverflow, n, 6);
    let ch_db = chdb::generate(ChConfig { customers: 200, seed: 7 });
    let corpus_q: Vec<Query> = wiki.iter().chain(stack.iter()).map(|p| p.query.clone()).collect();
    let buckets = value_buckets_from_db(&ch_db, 10);
    let mut preqr = SqlBert::new(&corpus_q, ch_db.schema(), buckets, PreqrConfig::small());
    eprintln!("[table07] pre-training PreQR for generation…");
    preqr.pretrain(&corpus_q[..corpus_q.len().min(400)], 2, 1e-3);

    let split_w = (wiki.len() * 4) / 5;
    let split_s = (stack.len() * 4) / 5;
    fn make<'a>(name: &str, m: &'a SqlBert) -> GenEncoder<'a> {
        match name {
            "Seq2Seq" => GenEncoder::Seq2Seq,
            "Seq2Seq+cp" => GenEncoder::Seq2SeqCp,
            "Seq2Seq+cp+lv" => GenEncoder::Seq2SeqCpLv,
            "Tree2Seq" => GenEncoder::Tree2Seq,
            "Graph2Seq" => GenEncoder::Graph2Seq,
            _ => GenEncoder::Preqr2Seq(m),
        }
    }
    let variants: Vec<&str> =
        vec!["Seq2Seq", "Seq2Seq+cp", "Seq2Seq+cp+lv", "Tree2Seq", "Graph2Seq", "PreQR2Seq"];
    for name in variants {
        eprintln!("[table07] training {name} (wiki)…");
        let mw = train_generator(make(name, &preqr), &wiki[..split_w], 24, epochs, 3);
        let bw = mw.evaluate(&wiki[split_w..]);
        eprintln!("[table07] training {name} (stackoverflow)…");
        let ms = train_generator(make(name, &preqr), &stack[..split_s], 24, epochs, 3);
        let bs = ms.evaluate(&stack[split_s..]);
        println!("{:<14} {:>9.3} {:>14.3}", name, bw, bs);
    }
    println!(
        "paper BLEU %: Seq2Seq 20.9/13.3, +cp 24.1/16.6, +cp+lv 26.3/18.4, Tree2Seq 26.7/17.0,"
    );
    println!("              Graph2Seq 29.3/19.9, PreQR2Seq 32.1/21.1");
}

fn main() {
    let block = std::env::var("BLOCK").unwrap_or_default();
    let ctx = Ctx::build();
    if block.is_empty() || block == "clustering" {
        clustering_block();
    }
    if block.is_empty() || block == "estimation" {
        estimation_block(&ctx);
    }
    if block.is_empty() || block == "generation" {
        generation_block(&ctx);
    }
}
