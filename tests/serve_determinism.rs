//! Deterministic-serving acceptance test: replaying a fixed request
//! script must yield bit-identical embeddings per request and identical
//! traced event counts across worker-pool widths (`PREQR_THREADS`-style
//! overrides) *and* micro-batch geometries (`max_batch`).
//!
//! Why this holds (see `DESIGN.md` §9): embeddings are batch-invariant
//! at the model layer, the serving worker replays cache operations in
//! FIFO submission order, and the only per-request trace event is the
//! `serve.request` span — batch geometry surfaces through counters and
//! histograms, which emit events only at `flush_metrics`, whose cost is
//! fixed by the closed registry.

use std::sync::Arc;

use preqr::{PreqrConfig, SqlBert, ValueBuckets};
use preqr_nn::parallel;
use preqr_obs as obs;
use preqr_obs::{EventKind, HistMetric, Metric};
use preqr_schema::{Column, ColumnType, Schema, Table};
use preqr_serve::{ServeConfig, Service};
use preqr_sql::parser::parse;

/// Fixed request script: template repeats, literal variants, a malformed
/// line, and distinct join shapes.
const SCRIPT: [&str; 10] = [
    "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990",
    "SELECT COUNT(*) FROM title t WHERE t.production_year > 2005",
    "SELECT * FROM title t WHERE t.kind_id IN (1, 3)",
    "definitely not sql",
    "SELECT COUNT(*) FROM title t WHERE t.production_year > 1975",
    "SELECT * FROM title t WHERE t.kind_id IN (2, 6)",
    "SELECT MIN(t.id) FROM title t WHERE t.production_year BETWEEN 1990 AND 2000",
    "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990",
    "SELECT * FROM title t WHERE t.kind_id IN (1, 3)",
    "SELECT MIN(t.id) FROM title t WHERE t.production_year BETWEEN 1950 AND 1960",
];

fn serve_model() -> SqlBert {
    let mut s = Schema::new();
    s.add_table(Table::new(
        "title",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("production_year", ColumnType::Int),
            Column::new("kind_id", ColumnType::Int),
        ],
    ));
    let corpus: Vec<_> = [
        "SELECT COUNT(*) FROM title t WHERE t.production_year > 1990",
        "SELECT * FROM title t WHERE t.kind_id IN (1, 3, 5)",
        "SELECT MIN(t.id) FROM title t WHERE t.production_year BETWEEN 1990 AND 2000",
    ]
    .iter()
    .map(|q| parse(q).unwrap())
    .collect();
    let mut buckets = ValueBuckets::new(4);
    buckets.insert("title", "production_year", (1930..2020).map(f64::from).collect());
    buckets.insert("title", "kind_id", (1..8).map(f64::from).collect());
    SqlBert::new(&corpus, &s, buckets, PreqrConfig::test())
}

struct Replay {
    /// Per-request CLS bit patterns (`None` for the malformed request).
    outputs: Vec<Option<Vec<u32>>>,
    /// Full traced event stream of the run.
    events: Vec<obs::Event>,
    /// Serving counters from the metric registry.
    serve_counters: Vec<(&'static str, u64)>,
}

/// Replays `SCRIPT` through a fresh traced service under the given
/// worker-pool width and batch geometry.
fn replay(threads: usize, max_batch: usize) -> Replay {
    parallel::set_thread_override(Some(threads));
    let sink = Arc::new(obs::TestSink::new());
    obs::reset_metrics();
    obs::install_sink(sink.clone());

    let config = ServeConfig {
        max_batch,
        batch_timeout: 3,
        queue_capacity: SCRIPT.len() + 1, // the whole script fits: no rejections
        cache_capacity: 4,
        ..ServeConfig::default()
    };
    let svc = Service::spawn(config, |_| serve_model());
    let tickets: Vec<_> = SCRIPT.iter().map(|sql| svc.submit(sql).unwrap()).collect();
    let stats = svc.shutdown();
    assert_eq!(stats.processed, SCRIPT.len() as u64);
    let outputs = tickets
        .into_iter()
        .map(|t| t.wait().ok().map(|e| e.matrix.data().iter().map(|x| x.to_bits()).collect()))
        .collect();

    obs::flush_metrics();
    obs::clear_sink();
    let snap = obs::snapshot();
    obs::set_metrics_enabled(false);
    obs::reset_metrics();
    parallel::set_thread_override(None);

    let serve_counters = Metric::ALL
        .iter()
        .map(|m| m.name())
        .filter(|n| n.starts_with("serve.") && *n != "serve.batches")
        .map(|n| (n, snap.counter(n).unwrap()))
        .collect();
    Replay { outputs, events: sink.events(), serve_counters }
}

#[test]
fn fixed_script_replays_identically_across_threads_and_batching() {
    let base = replay(1, 1);

    // The baseline itself: every parseable request answered, one span per
    // processed request, and the flush emits the full fixed registry.
    assert_eq!(base.outputs.iter().filter(|o| o.is_none()).count(), 1);
    let span_names: Vec<&str> =
        base.events.iter().filter(|e| e.kind == EventKind::Span).map(|e| e.name).collect();
    assert_eq!(span_names, vec!["serve.request"; SCRIPT.len()]);
    assert_eq!(
        base.events.len(),
        SCRIPT.len() + Metric::ALL.len() + HistMetric::ALL.len(),
        "event stream = one span per request + one fixed-registry flush"
    );

    for (threads, max_batch) in [(1, 16), (8, 1), (8, 16)] {
        let run = replay(threads, max_batch);
        assert_eq!(
            run.outputs, base.outputs,
            "embeddings diverged at threads={threads} max_batch={max_batch}"
        );
        assert_eq!(
            run.events.len(),
            base.events.len(),
            "event count diverged at threads={threads} max_batch={max_batch}"
        );
        let kinds = |evs: &[obs::Event]| {
            let count = |k: EventKind| evs.iter().filter(|e| e.kind == k).count();
            (count(EventKind::Span), count(EventKind::Counter), count(EventKind::Hist))
        };
        assert_eq!(
            kinds(&run.events),
            kinds(&base.events),
            "event kinds diverged at threads={threads} max_batch={max_batch}"
        );
        assert_eq!(
            run.serve_counters, base.serve_counters,
            "serving counters diverged at threads={threads} max_batch={max_batch}"
        );
    }

    // The cache did real work on this script (three repeated templates).
    let hits = base.serve_counters.iter().find(|(n, _)| *n == "serve.cache.hits").unwrap().1;
    assert!(hits >= 3, "script has repeated templates; got {hits} hits");
}
