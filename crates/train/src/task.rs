//! The [`TrainTask`] trait: what one training step *is*, independent of
//! how the [`crate::Trainer`] drives it.

use preqr_nn::Tensor;
use rand::rngs::StdRng;

use crate::stats::EpochStats;

/// What one example's training step produced.
///
/// The task computes the loss, calls `backward()` itself (gradients
/// accumulate on the task's parameters), and reports the scalar here so
/// the trainer can aggregate epoch statistics in the same f64 order the
/// legacy loops used.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepOutput {
    /// Scalar loss of this example (already backpropagated).
    pub loss: f64,
    /// Masked positions this example contributed (MLM tasks; 0 otherwise).
    pub masked: usize,
    /// Correctly predicted masked positions (MLM tasks; 0 otherwise).
    pub correct: usize,
}

/// A trainable workload, driven example-at-a-time by the [`crate::Trainer`].
///
/// The trainer owns ordering (deterministic Fisher–Yates shuffling),
/// gradient-accumulation chunking, the optimizer, the LR schedule, early
/// stopping, and checkpointing; the task owns the forward/backward pass
/// and optional epoch-end evaluation. Hooks fire in a fixed order per
/// chunk — `chunk_start`, then `step` per example, then (after the
/// optimizer update) `post_step` — and per epoch — `eval`, then
/// `epoch_end`.
///
/// Determinism contract for implementors: `step` must consume `rng`
/// identically given the same `(idx, rng state)`, and must not read the
/// RNG outside `step` — the trainer's checkpoint/resume machinery relies
/// on the stream advancing only at these points.
pub trait TrainTask {
    /// Short task name, used for the `train.run` span and checkpoints.
    fn name(&self) -> &'static str;

    /// Number of training examples.
    fn len(&self) -> usize;

    /// Whether the task has no training examples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The parameters the optimizer updates (handles, not copies).
    fn params(&self) -> Vec<Tensor>;

    /// Called once before each gradient-accumulation chunk (e.g. to
    /// recompute schema node states shared within a micro-batch).
    fn chunk_start(&mut self) {}

    /// Runs forward + backward for example `idx` and reports the loss.
    fn step(&mut self, idx: usize, rng: &mut StdRng) -> StepOutput;

    /// Called after each optimizer update (e.g. to clear stray gradients
    /// on parameters outside the optimized subset).
    fn post_step(&mut self) {}

    /// Epoch-end validation metric (lower is better). `None` disables
    /// validation tracking and early stopping for this task.
    fn eval(&mut self) -> Option<f64> {
        None
    }

    /// Called once per completed epoch with its statistics (e.g. to bump
    /// task-specific counters).
    fn epoch_end(&mut self, _stats: &EpochStats) {}

    /// Called when validation early stopping ends the run.
    fn on_early_stop(&mut self) {}
}

type StepFn<'a> = Box<dyn FnMut(usize, &mut StdRng) -> StepOutput + 'a>;
type HookFn<'a> = Box<dyn FnMut() + 'a>;
type EvalFn<'a> = Box<dyn FnMut() -> f64 + 'a>;
type EpochEndFn<'a> = Box<dyn FnMut(&EpochStats) + 'a>;

/// A [`TrainTask`] assembled from closures — the migration vehicle for
/// the small fine-tune loops (estimation heads, clustering, textgen,
/// baselines) that don't warrant a named task struct.
pub struct FnTask<'a> {
    name: &'static str,
    len: usize,
    params: Vec<Tensor>,
    step: StepFn<'a>,
    chunk_start: Option<HookFn<'a>>,
    post_step: Option<HookFn<'a>>,
    eval: Option<EvalFn<'a>>,
    epoch_end: Option<EpochEndFn<'a>>,
    on_early_stop: Option<HookFn<'a>>,
}

impl<'a> FnTask<'a> {
    /// Creates a task from its required parts: a name, the example
    /// count, the optimized parameters, and the per-example step.
    pub fn new(
        name: &'static str,
        len: usize,
        params: Vec<Tensor>,
        step: impl FnMut(usize, &mut StdRng) -> StepOutput + 'a,
    ) -> Self {
        Self {
            name,
            len,
            params,
            step: Box::new(step),
            chunk_start: None,
            post_step: None,
            eval: None,
            epoch_end: None,
            on_early_stop: None,
        }
    }

    /// Installs a chunk-start hook.
    pub fn with_chunk_start(mut self, f: impl FnMut() + 'a) -> Self {
        self.chunk_start = Some(Box::new(f));
        self
    }

    /// Installs a post-optimizer-step hook.
    pub fn with_post_step(mut self, f: impl FnMut() + 'a) -> Self {
        self.post_step = Some(Box::new(f));
        self
    }

    /// Installs an epoch-end validation metric (lower is better).
    pub fn with_eval(mut self, f: impl FnMut() -> f64 + 'a) -> Self {
        self.eval = Some(Box::new(f));
        self
    }

    /// Installs an epoch-end hook.
    pub fn with_epoch_end(mut self, f: impl FnMut(&EpochStats) + 'a) -> Self {
        self.epoch_end = Some(Box::new(f));
        self
    }

    /// Installs an early-stop hook.
    pub fn with_on_early_stop(mut self, f: impl FnMut() + 'a) -> Self {
        self.on_early_stop = Some(Box::new(f));
        self
    }
}

impl TrainTask for FnTask<'_> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn len(&self) -> usize {
        self.len
    }

    fn params(&self) -> Vec<Tensor> {
        self.params.clone()
    }

    fn chunk_start(&mut self) {
        if let Some(f) = self.chunk_start.as_mut() {
            f();
        }
    }

    fn step(&mut self, idx: usize, rng: &mut StdRng) -> StepOutput {
        (self.step)(idx, rng)
    }

    fn post_step(&mut self) {
        if let Some(f) = self.post_step.as_mut() {
            f();
        }
    }

    fn eval(&mut self) -> Option<f64> {
        self.eval.as_mut().map(|f| f())
    }

    fn epoch_end(&mut self, stats: &EpochStats) {
        if let Some(f) = self.epoch_end.as_mut() {
            f(stats);
        }
    }

    fn on_early_stop(&mut self) {
        if let Some(f) = self.on_early_stop.as_mut() {
            f();
        }
    }
}
