//! SQL-to-Text baselines (§4.3.3): Seq2Seq (Bahdanau-style attention),
//! Seq2Seq+cp (copy mechanism), Seq2Seq+cp+lv (latent variable),
//! Tree2Seq (AST encoder), and Graph2Seq (query-graph encoder). All share
//! the same attentional RNN decoder; PreQR2Seq plugs the PreQR encoder
//! into the same decoder (wired in `preqr-tasks`).

use std::collections::HashMap;

use rand::rngs::StdRng;

use preqr_nn::layers::{
    join, BiLstm, Embedding, Linear, LstmCell, Module, RelAdjacency, RgcnLayer,
};
use preqr_nn::{init, ops, Matrix, Tensor};
use preqr_sql::ast::{Expr, Query, SelectItem};
use preqr_sql::normalize::linearize;

/// Target-side vocabulary with `[PAD]/[BOS]/[EOS]/[UNK]` specials.
#[derive(Clone, Debug)]
pub struct TextVocab {
    ids: HashMap<String, usize>,
    words: Vec<String>,
}

/// Beginning-of-sequence id.
pub const BOS: usize = 1;
/// End-of-sequence id.
pub const EOS: usize = 2;
/// Unknown-word id.
pub const UNK: usize = 3;

impl TextVocab {
    /// Builds from target word lists.
    pub fn build<'a>(words: impl IntoIterator<Item = &'a str>) -> Self {
        let mut v = Self { ids: HashMap::new(), words: Vec::new() };
        for s in ["[PAD]", "[BOS]", "[EOS]", "[UNK]"] {
            v.add(s);
        }
        for w in words {
            v.add(w);
        }
        v
    }

    fn add(&mut self, w: &str) -> usize {
        match self.ids.get(w) {
            Some(&i) => i,
            None => {
                let i = self.words.len();
                self.ids.insert(w.to_string(), i);
                self.words.push(w.to_string());
                i
            }
        }
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when only the specials exist.
    pub fn is_empty(&self) -> bool {
        self.words.len() <= 4
    }

    /// Id of a word (UNK fallback).
    pub fn id(&self, w: &str) -> usize {
        self.ids.get(w).copied().unwrap_or(UNK)
    }

    /// Word of an id.
    pub fn word(&self, id: usize) -> &str {
        self.words.get(id).map_or("[UNK]", String::as_str)
    }

    /// Encodes a sentence (no specials).
    pub fn encode(&self, sentence: &[String]) -> Vec<usize> {
        sentence.iter().map(|w| self.id(w)).collect()
    }

    /// Decodes ids, stopping at EOS and skipping specials.
    pub fn decode(&self, ids: &[usize]) -> Vec<String> {
        let mut out = Vec::new();
        for &i in ids {
            if i == EOS {
                break;
            }
            if i > UNK {
                out.push(self.word(i).to_string());
            }
        }
        out
    }
}

/// Encoded query memory handed to the decoder.
pub struct EncodedSource {
    /// `n × d` memory the decoder attends over.
    pub memory: Tensor,
    /// `1 × d` initial decoder context.
    pub init: Tensor,
    /// Per-memory-row target-vocabulary id (for the copy mechanism);
    /// `UNK` when a source token has no target-side counterpart.
    pub copy_ids: Vec<usize>,
}

/// A query encoder for SQL-to-Text.
pub trait TextEncoder {
    /// Encodes a query.
    fn encode(&self, q: &Query) -> EncodedSource;
    /// Trainable parameters.
    fn encoder_params(&self) -> Vec<Tensor>;
}

/// Source-side vocabulary shared by the sequence/tree/graph encoders.
#[derive(Clone, Debug)]
pub struct SourceVocab {
    ids: HashMap<String, usize>,
}

impl SourceVocab {
    /// Builds from a query corpus (linearized token texts).
    pub fn build(corpus: &[Query]) -> Self {
        let mut ids = HashMap::new();
        ids.insert("[UNK]".to_string(), 0);
        for q in corpus {
            for t in linearize(q) {
                let next = ids.len();
                ids.entry(t.text).or_insert(next);
            }
        }
        Self { ids }
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when only `[UNK]` exists.
    pub fn is_empty(&self) -> bool {
        self.ids.len() <= 1
    }

    /// Token id with UNK fallback.
    pub fn id(&self, t: &str) -> usize {
        self.ids.get(t).copied().unwrap_or(0)
    }
}

/// Copy-target ids: source tokens whose literal text appears in the
/// target vocabulary can be copied verbatim (numbers, category names).
fn copy_ids_for(q: &Query, tv: &TextVocab) -> Vec<usize> {
    linearize(q)
        .iter()
        .map(|t| {
            let text = t.text.trim_matches('\'');
            tv.ids.get(text).copied().unwrap_or(UNK)
        })
        .collect()
}

/// The basic attention Seq2Seq encoder: BiLSTM over the token sequence.
pub struct LstmTextEncoder {
    vocab: SourceVocab,
    emb: Embedding,
    lstm: BiLstm,
    proj: Linear,
    init_proj: Linear,
    tv: TextVocab,
}

impl LstmTextEncoder {
    /// Builds the encoder.
    pub fn new(corpus: &[Query], tv: &TextVocab, d: usize, rng: &mut StdRng) -> Self {
        let vocab = SourceVocab::build(corpus);
        let hidden = d / 2;
        Self {
            emb: Embedding::new(vocab.len(), d, rng),
            lstm: BiLstm::new(d, hidden, rng),
            proj: Linear::new(2 * hidden, d, rng),
            init_proj: Linear::new(2 * hidden, d, rng),
            vocab,
            tv: tv.clone(),
        }
    }
}

impl TextEncoder for LstmTextEncoder {
    fn encode(&self, q: &Query) -> EncodedSource {
        let ids: Vec<usize> = linearize(q).iter().map(|t| self.vocab.id(&t.text)).collect();
        let emb = self.emb.forward(&ids);
        let outputs = self.lstm.outputs(&emb);
        let memory = self.proj.forward(&outputs);
        let init = self.init_proj.forward(&self.lstm.encode(&emb));
        EncodedSource { memory, init, copy_ids: copy_ids_for(q, &self.tv) }
    }

    fn encoder_params(&self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.emb.collect_params("emb", &mut out);
        self.lstm.collect_params("lstm", &mut out);
        self.proj.collect_params("proj", &mut out);
        self.init_proj.collect_params("init", &mut out);
        out.into_iter().map(|(_, t)| t).collect()
    }
}

/// Tree2Seq: encodes the AST bottom-up; each node's vector is
/// `tanh(W [label-emb ; mean(children)])`. Sibling information is lost —
/// the weakness §4.6 discusses.
pub struct TreeTextEncoder {
    vocab: SourceVocab,
    emb: Embedding,
    compose: Linear,
    tv: TextVocab,
}

impl TreeTextEncoder {
    /// Builds the encoder.
    pub fn new(corpus: &[Query], tv: &TextVocab, d: usize, rng: &mut StdRng) -> Self {
        let vocab = SourceVocab::build(corpus);
        Self {
            emb: Embedding::new(vocab.len(), d, rng),
            compose: Linear::new(2 * d, d, rng),
            vocab,
            tv: tv.clone(),
        }
    }

    fn node(&self, label: &str, children: Vec<Tensor>) -> Tensor {
        let d = self.compose.out_dim();
        let lab = self.emb.forward(&[self.vocab.id(label)]);
        let kids = if children.is_empty() {
            Tensor::constant(Matrix::zeros(1, d))
        } else {
            let mut acc = children[0].clone();
            for c in &children[1..] {
                acc = ops::concat_rows(&acc, c);
            }
            ops::mean_rows(&acc)
        };
        ops::tanh(&self.compose.forward(&ops::concat_cols(&lab, &kids)))
    }

    fn encode_expr(&self, e: &Expr, nodes: &mut Vec<Tensor>) -> Tensor {
        let v = match e {
            Expr::And(a, b) => {
                let ca = self.encode_expr(a, nodes);
                let cb = self.encode_expr(b, nodes);
                self.node("AND", vec![ca, cb])
            }
            Expr::Or(a, b) => {
                let ca = self.encode_expr(a, nodes);
                let cb = self.encode_expr(b, nodes);
                self.node("OR", vec![ca, cb])
            }
            Expr::Not(a) => {
                let c = self.encode_expr(a, nodes);
                self.node("NOT", vec![c])
            }
            Expr::Cmp { left, op, right } => {
                let l = self.node(&left.to_string(), vec![]);
                let r = self.node(&right.to_string(), vec![]);
                self.node(op.as_str(), vec![l, r])
            }
            other => self.node(&other.to_string(), vec![]),
        };
        nodes.push(v.clone());
        v
    }
}

impl TextEncoder for TreeTextEncoder {
    fn encode(&self, q: &Query) -> EncodedSource {
        let mut nodes: Vec<Tensor> = Vec::new();
        let mut roots: Vec<Tensor> = Vec::new();
        for s in q.selects() {
            let mut children = Vec::new();
            for item in &s.projections {
                let leaf = self.node(&item.to_string(), vec![]);
                nodes.push(leaf.clone());
                children.push(leaf);
            }
            for t in s.tables() {
                let leaf = self.node(&t.table, vec![]);
                nodes.push(leaf.clone());
                children.push(leaf);
            }
            if let Some(w) = &s.where_clause {
                children.push(self.encode_expr(w, &mut nodes));
            }
            let root = self.node("SELECT", children);
            nodes.push(root.clone());
            roots.push(root);
        }
        let init = if roots.len() == 1 {
            roots[0].clone()
        } else {
            let mut acc = roots[0].clone();
            for r in &roots[1..] {
                acc = ops::concat_rows(&acc, r);
            }
            ops::mean_rows(&acc)
        };
        let mut memory = nodes[0].clone();
        for nd in &nodes[1..] {
            memory = ops::concat_rows(&memory, nd);
        }
        // The tree has no 1:1 token alignment; copying is not available
        // (matches Tree2Seq's design).
        let copy_ids = vec![UNK; nodes.len()];
        let _ = &self.tv;
        EncodedSource { memory, init, copy_ids }
    }

    fn encoder_params(&self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.emb.collect_params("emb", &mut out);
        self.compose.collect_params("compose", &mut out);
        out.into_iter().map(|(_, t)| t).collect()
    }
}

/// Graph2Seq: the query as a token graph (sequence edges + clause
/// co-membership edges), encoded with a 2-layer GCN.
pub struct GraphTextEncoder {
    vocab: SourceVocab,
    emb: Embedding,
    gcn1: RgcnLayer,
    gcn2: RgcnLayer,
    tv: TextVocab,
}

impl GraphTextEncoder {
    /// Builds the encoder.
    pub fn new(corpus: &[Query], tv: &TextVocab, d: usize, rng: &mut StdRng) -> Self {
        let vocab = SourceVocab::build(corpus);
        Self {
            emb: Embedding::new(vocab.len(), d, rng),
            gcn1: RgcnLayer::new(d, d, 2, rng),
            gcn2: RgcnLayer::new(d, d, 2, rng),
            vocab,
            tv: tv.clone(),
        }
    }
}

impl TextEncoder for GraphTextEncoder {
    fn encode(&self, q: &Query) -> EncodedSource {
        let toks = linearize(q);
        let n = toks.len();
        let ids: Vec<usize> = toks.iter().map(|t| self.vocab.id(&t.text)).collect();
        // Relation 0: sequence adjacency (both directions). Relation 1:
        // same clause-region co-membership.
        let mut seq_edges = Vec::new();
        for i in 1..n {
            seq_edges.push((i - 1, i));
            seq_edges.push((i, i - 1));
        }
        let mut clause_edges = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j && toks[i].key.region == toks[j].key.region {
                    clause_edges.push((i, j));
                }
            }
        }
        let adjs = vec![
            RelAdjacency::from_edges(n, &seq_edges),
            RelAdjacency::from_edges(n, &clause_edges),
        ];
        let x = self.emb.forward(&ids);
        let h = self.gcn2.forward(&self.gcn1.forward(&x, &adjs), &adjs);
        let init = ops::mean_rows(&h);
        EncodedSource { memory: h, init, copy_ids: copy_ids_for(q, &self.tv) }
    }

    fn encoder_params(&self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.emb.collect_params("emb", &mut out);
        self.gcn1.collect_params("g1", &mut out);
        self.gcn2.collect_params("g2", &mut out);
        out.into_iter().map(|(_, t)| t).collect()
    }
}

/// Decoder options.
#[derive(Clone, Copy, Debug, Default)]
pub struct DecoderOptions {
    /// Enable the copy mechanism (+cp).
    pub copy: bool,
    /// Enable the latent-variable bottleneck (+lv).
    pub latent: bool,
}

/// The shared attentional RNN decoder.
pub struct RnnDecoder {
    emb: Embedding,
    cell: LstmCell,
    out: Linear,
    copy_gate: Option<Linear>,
    latent: Option<Linear>,
    d: usize,
    vocab_size: usize,
    options: DecoderOptions,
}

impl RnnDecoder {
    /// Builds a decoder over target vocabulary `tv` with memory width `d`.
    pub fn new(tv: &TextVocab, d: usize, options: DecoderOptions, rng: &mut StdRng) -> Self {
        Self {
            emb: Embedding::new(tv.len(), d, rng),
            cell: LstmCell::new(2 * d, d, rng),
            out: Linear::new(2 * d, tv.len(), rng),
            copy_gate: options.copy.then(|| Linear::new(2 * d, 1, rng)),
            latent: options.latent.then(|| Linear::new(d, d, rng)),
            d,
            vocab_size: tv.len(),
            options,
        }
    }

    fn init_state(&self, src: &EncodedSource, training: bool, rng: &mut StdRng) -> Tensor {
        match &self.latent {
            Some(l) => {
                // +lv: a tanh bottleneck with train-time Gaussian noise —
                // the latent-variable trick in its simplest form.
                let z = ops::tanh(&l.forward(&src.init));
                if training {
                    let noise = Tensor::constant(init::normal(1, self.d, 0.05, rng));
                    ops::add(&z, &noise)
                } else {
                    z
                }
            }
            None => ops::identity(&src.init),
        }
    }

    /// One decode step: returns `(probabilities 1 × V, next h, next c)`.
    fn step(
        &self,
        src: &EncodedSource,
        prev_word: usize,
        h: &Tensor,
        c: &Tensor,
        copy_matrix: Option<&Matrix>,
    ) -> (Tensor, Tensor, Tensor) {
        // Dot-product attention of the state over the memory.
        let scores = ops::matmul_transpose_b(h, &src.memory);
        let attn = ops::softmax_rows(&scores);
        let context = ops::matmul(&attn, &src.memory);
        let emb = self.emb.forward(&[prev_word]);
        let x = ops::concat_cols(&emb, &context);
        let (h2, c2) = self.cell.step(&x, h, c);
        let features = ops::concat_cols(&h2, &context);
        let gen_probs = ops::softmax_rows(&self.out.forward(&features));
        let probs = match (&self.copy_gate, copy_matrix) {
            (Some(gate), Some(cm)) => {
                // +cp: mixture of generation and copy distributions.
                let g = ops::sigmoid(&gate.forward(&features)); // 1×1
                let ones = Tensor::constant(Matrix::full(1, self.vocab_size, 1.0));
                let g_row = ops::matmul(&g, &ones);
                let inv_row = ops::sub(&ones, &g_row);
                let copy_probs = ops::matmul(&attn, &Tensor::constant(cm.clone()));
                ops::add(&ops::mul(&inv_row, &gen_probs), &ops::mul(&g_row, &copy_probs))
            }
            _ => gen_probs,
        };
        (probs, h2, c2)
    }

    fn copy_matrix(&self, src: &EncodedSource) -> Option<Matrix> {
        if !self.options.copy {
            return None;
        }
        let n = src.copy_ids.len();
        let mut m = Matrix::zeros(n, self.vocab_size);
        for (i, &id) in src.copy_ids.iter().enumerate() {
            m.set(i, id.min(self.vocab_size - 1), 1.0);
        }
        Some(m)
    }

    /// Teacher-forced training loss (mean token NLL) for one pair.
    pub fn loss(
        &self,
        src: &EncodedSource,
        target: &[usize],
        training: bool,
        rng: &mut StdRng,
    ) -> Tensor {
        let cm = self.copy_matrix(src);
        let mut h = self.init_state(src, training, rng);
        let mut c = Tensor::constant(Matrix::zeros(1, self.d));
        let mut prev = BOS;
        let mut total: Option<Tensor> = None;
        let mut steps = 0.0f32;
        for &t in target.iter().chain(std::iter::once(&EOS)) {
            let (probs, h2, c2) = self.step(src, prev, &h, &c, cm.as_ref());
            // NLL of the gold token from the probability row.
            let mut onehot = Matrix::zeros(1, self.vocab_size);
            onehot.set(0, t.min(self.vocab_size - 1), 1.0);
            let p_t = ops::sum_all(&ops::mul(&probs, &Tensor::constant(onehot)));
            let nll = ops::scale(&ops::ln(&p_t), -1.0);
            total = Some(match total {
                Some(acc) => ops::add(&acc, &nll),
                None => nll,
            });
            steps += 1.0;
            h = h2;
            c = c2;
            prev = t;
        }
        ops::scale(&total.expect("non-empty target"), 1.0 / steps)
    }

    /// Greedy decoding.
    pub fn generate(&self, src: &EncodedSource, max_len: usize) -> Vec<usize> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut h = self.init_state(src, false, &mut rng);
        let mut c = Tensor::constant(Matrix::zeros(1, self.d));
        let cm = self.copy_matrix(src);
        let mut prev = BOS;
        let mut out = Vec::new();
        for _ in 0..max_len {
            let (probs, h2, c2) = self.step(src, prev, &h, &c, cm.as_ref());
            let v = probs.value_clone();
            let next = v
                .row(0)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
                .map(|(i, _)| i)
                .expect("non-empty vocab");
            if next == EOS {
                break;
            }
            out.push(next);
            prev = next;
            h = h2;
            c = c2;
        }
        out
    }
}

use rand::SeedableRng;

impl Module for RnnDecoder {
    fn collect_params(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        self.emb.collect_params(&join(prefix, "emb"), out);
        self.cell.collect_params(&join(prefix, "cell"), out);
        self.out.collect_params(&join(prefix, "out"), out);
        if let Some(g) = &self.copy_gate {
            g.collect_params(&join(prefix, "copy_gate"), out);
        }
        if let Some(l) = &self.latent {
            l.collect_params(&join(prefix, "latent"), out);
        }
    }
}

/// Pools a select-item list into a display string (used by the tree
/// encoder's leaves). Exposed for tests.
pub fn item_label(i: &SelectItem) -> String {
    i.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_sql::parser::parse;
    use preqr_train::{FnTask, Plan, StepOutput, Trainer, TrainerConfig};
    use rand::SeedableRng;

    fn corpus() -> Vec<Query> {
        vec![
            parse("SELECT COUNT(*) FROM customer WHERE balance > 500").unwrap(),
            parse("SELECT COUNT(*) FROM customer WHERE balance > 100").unwrap(),
            parse("SELECT name FROM item WHERE category = 'food'").unwrap(),
        ]
    }

    fn tv() -> TextVocab {
        TextVocab::build([
            "how",
            "many",
            "customers",
            "with",
            "balance",
            "greater",
            "than",
            "500",
            "100",
            "list",
            "names",
            "of",
            "items",
            "category",
            "food",
        ])
    }

    #[test]
    fn text_vocab_round_trip() {
        let v = tv();
        let ids = v.encode(&["how".into(), "many".into(), "zzz".into()]);
        assert_eq!(ids[2], UNK);
        assert_eq!(v.decode(&[ids[0], ids[1], EOS, 999]), vec!["how", "many"]);
    }

    #[test]
    fn all_encoders_produce_memory_and_init() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = corpus();
        let v = tv();
        let encs: Vec<Box<dyn TextEncoder>> = vec![
            Box::new(LstmTextEncoder::new(&c, &v, 16, &mut rng)),
            Box::new(TreeTextEncoder::new(&c, &v, 16, &mut rng)),
            Box::new(GraphTextEncoder::new(&c, &v, 16, &mut rng)),
        ];
        for e in &encs {
            let src = e.encode(&c[0]);
            assert_eq!(src.init.shape().0, 1);
            assert_eq!(src.init.shape().1, 16);
            assert!(src.memory.shape().0 > 1);
            assert_eq!(src.memory.shape().1, 16);
            assert_eq!(src.copy_ids.len(), src.memory.shape().0);
            assert!(!e.encoder_params().is_empty());
        }
    }

    #[test]
    fn copy_ids_map_literals_to_target_vocab() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = corpus();
        let v = tv();
        let enc = LstmTextEncoder::new(&c, &v, 16, &mut rng);
        let src = enc.encode(&c[0]);
        // "500" appears in the target vocabulary, so some copy id must be
        // a real word id (not UNK).
        assert!(src.copy_ids.iter().any(|&i| i > UNK));
    }

    #[test]
    fn decoder_loss_and_generation_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = corpus();
        let v = tv();
        let enc = LstmTextEncoder::new(&c, &v, 16, &mut rng);
        for opts in [
            DecoderOptions::default(),
            DecoderOptions { copy: true, latent: false },
            DecoderOptions { copy: true, latent: true },
        ] {
            let dec = RnnDecoder::new(&v, 16, opts, &mut rng);
            let src = enc.encode(&c[0]);
            let target = v.encode(&["how".into(), "many".into(), "customers".into()]);
            let loss = dec.loss(&src, &target, true, &mut rng);
            assert!(loss.value_clone().get(0, 0) > 0.0);
            let gen = dec.generate(&src, 8);
            assert!(gen.len() <= 8);
        }
    }

    #[test]
    fn decoder_memorizes_tiny_dataset() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = corpus();
        let v = tv();
        let enc = LstmTextEncoder::new(&c, &v, 16, &mut rng);
        let dec = RnnDecoder::new(&v, 16, DecoderOptions::default(), &mut rng);
        let targets: Vec<Vec<usize>> = vec![
            v.encode(&["how".into(), "many".into(), "customers".into(), "500".into()]),
            v.encode(&["how".into(), "many".into(), "customers".into(), "100".into()]),
            v.encode(&["list".into(), "names".into(), "of".into(), "items".into()]),
        ];
        let mut params = enc.encoder_params();
        params.extend(dec.params());
        let mut task = FnTask::new("test.seq2seq", c.len(), params, |idx, rng| {
            let src = enc.encode(&c[idx]);
            let loss = dec.loss(&src, &targets[idx], true, rng);
            let scalar = f64::from(loss.value_clone().get(0, 0));
            loss.backward();
            StepOutput { loss: scalar, ..StepOutput::default() }
        });
        let config =
            TrainerConfig::new(Plan::Epochs { epochs: 60, chunk: c.len(), shuffle: false }, 1e-2);
        Trainer::new(config).fit(&mut task, &mut rng);
        let mut correct = 0;
        for (q, t) in c.iter().zip(&targets) {
            let gen = dec.generate(&enc.encode(q), 6);
            if gen == *t {
                correct += 1;
            }
        }
        assert!(correct >= 2, "decoder failed to memorize: {correct}/3");
    }
}
