//! Deterministic LRU cache keyed by normalized query templates.
//!
//! Classic intrusive-list LRU over a slab: `get`/`insert` are O(1), the
//! recency order is a pure function of the operation sequence, and the
//! hit/miss/eviction counters are exact — `hits + misses` equals the
//! number of lookups, always. The serving layer keys this cache on
//! [`preqr_sql::normalize::template_text`], so queries that differ only
//! in literals, whitespace, or keyword case share one entry, while
//! structurally distinct queries can never collide (distinct template
//! strings are distinct keys).

use std::collections::HashMap;

/// Sentinel for "no neighbour" in the intrusive recency list.
const NIL: usize = usize::MAX;

struct Entry<V> {
    key: String,
    value: V,
    prev: usize,
    next: usize,
}

/// Exact lookup/eviction counters of an [`LruCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
}

/// A fixed-capacity least-recently-used map from template strings to
/// cached values. Capacity 0 disables the cache: every lookup misses and
/// inserts are dropped.
pub struct LruCache<V> {
    cap: usize,
    map: HashMap<String, usize>,
    slab: Vec<Entry<V>>,
    free: Vec<usize>,
    /// Most recently used entry (NIL when empty).
    head: usize,
    /// Least recently used entry (NIL when empty).
    tail: usize,
    counters: CacheCounters,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `cap` entries.
    pub fn new(cap: usize) -> Self {
        LruCache {
            cap,
            map: HashMap::with_capacity(cap.min(1 << 16)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            counters: CacheCounters::default(),
        }
    }

    /// Capacity the cache was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Exact counters since construction.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Whether `key` is cached, *without* counting a lookup or touching
    /// recency. Used by the batch scheduler to plan work; the replay pass
    /// performs the counted [`LruCache::get`].
    pub fn peek(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// Counted lookup: on hit the entry moves to the front of the
    /// recency order and its value is returned.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.counters.hits += 1;
                self.unlink(idx);
                self.push_front(idx);
                Some(&self.slab[idx].value)
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) `key`, making it most recently used.
    /// Returns the key evicted to make room, if any.
    pub fn insert(&mut self, key: String, value: V) -> Option<String> {
        if self.cap == 0 {
            return None;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        let evicted = if self.map.len() >= self.cap {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL, "non-empty cache has a tail");
            self.unlink(lru);
            let old = std::mem::replace(&mut self.slab[lru].key, String::new());
            self.map.remove(&old);
            self.free.push(lru);
            self.counters.evictions += 1;
            Some(old)
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Entry { key: key.clone(), value, prev: NIL, next: NIL };
                i
            }
            None => {
                self.slab.push(Entry { key: key.clone(), value, prev: NIL, next: NIL });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Keys from most to least recently used (test/debug introspection).
    pub fn recency_order(&self) -> Vec<&str> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.slab[cur].key.as_str());
            cur = self.slab[cur].next;
        }
        out
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_follows_lru_order_exactly() {
        let mut c: LruCache<u32> = LruCache::new(3);
        assert_eq!(c.insert("a".into(), 1), None);
        assert_eq!(c.insert("b".into(), 2), None);
        assert_eq!(c.insert("c".into(), 3), None);
        assert_eq!(c.recency_order(), ["c", "b", "a"]);
        // Touch `a`: it becomes most recent, so `b` is now the victim.
        assert_eq!(c.get("a"), Some(&1));
        assert_eq!(c.insert("d".into(), 4), Some("b".to_string()));
        assert_eq!(c.recency_order(), ["d", "a", "c"]);
        assert_eq!(c.insert("e".into(), 5), Some("c".to_string()));
        assert_eq!(c.insert("f".into(), 6), Some("a".to_string()));
        assert_eq!(c.len(), 3);
        assert_eq!(c.counters().evictions, 3);
    }

    #[test]
    fn counters_account_for_every_lookup() {
        let mut c: LruCache<u32> = LruCache::new(2);
        let mut lookups = 0u64;
        for key in ["x", "y", "x", "z", "y", "x", "x"] {
            if c.get(key).is_none() {
                c.insert(key.into(), 0);
            }
            lookups += 1;
        }
        let ct = c.counters();
        assert_eq!(ct.hits + ct.misses, lookups);
        assert!(ct.hits > 0 && ct.misses > 0);
    }

    #[test]
    fn reinsert_replaces_value_without_eviction() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert("a".into(), 1);
        c.insert("b".into(), 2);
        assert_eq!(c.insert("a".into(), 9), None, "replacing must not evict");
        assert_eq!(c.get("a"), Some(&9));
        assert_eq!(c.recency_order(), ["a", "b"]);
        assert_eq!(c.counters().evictions, 0);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut c: LruCache<u32> = LruCache::new(0);
        assert_eq!(c.insert("a".into(), 1), None);
        assert_eq!(c.get("a"), None);
        assert!(c.is_empty());
        assert_eq!(c.counters(), CacheCounters { hits: 0, misses: 1, evictions: 0 });
    }

    #[test]
    fn reinsert_at_full_capacity_neither_evicts_nor_grows() {
        // The capacity edge: a key already present in a *full* cache must
        // take the replace path — a naive "full ⇒ evict LRU first"
        // implementation would evict a sibling (or the key itself) and
        // bump the eviction counter for what is only an update.
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert("a".into(), 1);
        c.insert("b".into(), 2);
        let slab_before = c.slab.len();
        assert_eq!(c.insert("a".into(), 10), None, "update of LRU key at capacity");
        assert_eq!(c.insert("b".into(), 20), None, "update of MRU key at capacity");
        assert_eq!(c.len(), 2);
        assert_eq!(c.slab.len(), slab_before, "updates must not allocate new slots");
        assert_eq!(c.counters().evictions, 0);
        assert_eq!(c.recency_order(), ["b", "a"]);
        assert_eq!(c.get("a"), Some(&10));
        assert_eq!(c.get("b"), Some(&20));
    }

    #[test]
    fn zero_capacity_counters_stay_exact_over_long_sequences() {
        // `hits + misses == lookups` must hold even when every insert is
        // dropped: a capacity-0 cache that secretly admitted entries (or
        // skipped counting) would silently skew serving statistics.
        let mut c: LruCache<u32> = LruCache::new(0);
        let mut lookups = 0u64;
        for round in 0..3 {
            for i in 0..16u32 {
                if c.get(&format!("k{i}")).is_none() {
                    c.insert(format!("k{i}"), round * 100 + i);
                }
                lookups += 1;
            }
        }
        let ct = c.counters();
        assert_eq!(ct.hits, 0, "nothing can ever be admitted at capacity 0");
        assert_eq!(ct.misses, lookups);
        assert_eq!(ct.hits + ct.misses, lookups);
        assert_eq!(ct.evictions, 0, "dropped inserts are not evictions");
        assert!(c.is_empty());
        assert_eq!(c.slab.len(), 0, "capacity 0 must not allocate slots");
    }

    #[test]
    fn slab_slots_are_reused_after_eviction() {
        let mut c: LruCache<u32> = LruCache::new(2);
        for i in 0..100u32 {
            c.insert(format!("k{i}"), i);
        }
        assert_eq!(c.len(), 2);
        assert!(c.slab.len() <= 3, "evicted slots must be recycled, not leaked");
        assert_eq!(c.recency_order(), ["k99", "k98"]);
    }
}
