#!/usr/bin/env bash
# Regenerates every reproduced table/figure into results/.
# PREQR_SCALE=small (default) keeps each binary to minutes; =full is closer
# to the paper's sizes.
set -uo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
for bin in table03 table05 table06 table08 table09 table10 table11 \
           table12 table13 fig07 fig08 fig09 table07; do
    echo "=== $bin ==="
    cargo run --release -q -p preqr-bench --bin "$bin" \
        > "results/$bin.txt" 2> "results/$bin.log" || echo "  FAILED (see results/$bin.log)"
done
echo "done; see results/"
