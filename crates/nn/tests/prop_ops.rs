//! Property-based tests over the autograd ops: algebraic identities and
//! randomized gradient checks.

use proptest::prelude::*;

use preqr_nn::{ops, Matrix, Tensor};

fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-3.0f32..3.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A·B)ᵀ = Bᵀ·Aᵀ and the fused kernels agree with explicit
    /// transposes.
    #[test]
    fn matmul_transpose_identities(
        a in matrix(1..5, 1..5),
        bcols in 1usize..5,
        extra in proptest::collection::vec(-3.0f32..3.0, 0..25),
    ) {
        let k = a.cols();
        prop_assume!(extra.len() >= k * bcols);
        let b = Matrix::from_vec(k, bcols, extra[..k * bcols].to_vec());
        let ab = a.matmul(&b);
        prop_assert_eq!(ab.transpose(), b.transpose().matmul(&a.transpose()));
        prop_assert_eq!(a.matmul_transpose_b(&b.transpose()), a.matmul(&b));
        prop_assert_eq!(a.transpose().transpose_a_matmul(&b), ab);
    }

    /// Softmax rows are probability distributions and argmax-invariant
    /// under constant shifts.
    #[test]
    fn softmax_rows_properties(m in matrix(1..5, 1..6), shift in -5.0f32..5.0) {
        let x = Tensor::constant(m.clone());
        let y = ops::softmax_rows(&x).value_clone();
        for r in 0..y.rows() {
            let s: f32 = y.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(y.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        let shifted = Tensor::constant(m.map(|v| v + shift));
        let y2 = ops::softmax_rows(&shifted).value_clone();
        for (a, b) in y.data().iter().zip(y2.data()) {
            prop_assert!((a - b).abs() < 1e-4, "shift invariance violated");
        }
    }

    /// Layer norm output rows have ~zero mean and ~unit variance at
    /// default parameters.
    #[test]
    fn layer_norm_standardizes(m in matrix(1..4, 4..8)) {
        let ln = preqr_nn::layers::LayerNorm::new(m.cols());
        let y = ln.forward(&Tensor::constant(m)).value_clone();
        for r in 0..y.rows() {
            let d = y.cols() as f32;
            let mean: f32 = y.row(r).iter().sum::<f32>() / d;
            let var: f32 = y.row(r).iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d;
            prop_assert!(mean.abs() < 1e-3, "mean {mean}");
            prop_assert!((var - 1.0).abs() < 0.05, "var {var}");
        }
    }

    /// Randomized gradient check: d/dx Σ f(x) matches central differences
    /// for a composite expression.
    #[test]
    fn random_gradient_check(m in matrix(2..4, 2..4), w in matrix(2..4, 2..4)) {
        prop_assume!(m.cols() == w.rows());
        let f = |mat: &Matrix| -> f32 {
            let x = Tensor::param(mat.clone());
            let prod = ops::matmul(&x, &Tensor::constant(w.clone()));
            ops::sum_all(&ops::tanh(&prod)).value_clone().get(0, 0)
        };
        let x = Tensor::param(m.clone());
        let prod = ops::matmul(&x, &Tensor::constant(w.clone()));
        ops::sum_all(&ops::tanh(&prod)).backward();
        let g = x.grad().expect("grad");
        let eps = 2e-2f32;
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let mut plus = m.clone();
                plus.set(r, c, m.get(r, c) + eps);
                let mut minus = m.clone();
                minus.set(r, c, m.get(r, c) - eps);
                let numeric = (f(&plus) - f(&minus)) / (2.0 * eps);
                let a = g.get(r, c);
                let denom = a.abs().max(numeric.abs()).max(1.0);
                prop_assert!(
                    (a - numeric).abs() / denom < 0.08,
                    "grad mismatch at ({r},{c}): {a} vs {numeric}"
                );
            }
        }
    }

    /// Adam with clipping keeps parameters finite under adversarial
    /// gradients.
    #[test]
    fn adam_stays_finite(grads in proptest::collection::vec(-1e6f32..1e6, 8)) {
        let p = Tensor::param(Matrix::zeros(1, 8));
        let mut opt = preqr_nn::optim::Adam::new(vec![p.clone()], 0.01);
        for chunk in grads.chunks(2) {
            let mut g = Matrix::zeros(1, 8);
            for (i, &x) in chunk.iter().enumerate() {
                g.set(0, i, x);
            }
            p.accumulate_grad(&g);
            opt.step();
        }
        prop_assert!(p.value_clone().data().iter().all(|v| v.is_finite()));
    }

    /// Bucketizers are monotone: larger values never map to smaller
    /// buckets.
    #[test]
    fn bucketizer_monotone(
        mut samples in proptest::collection::vec(-1e4f64..1e4, 2..200),
        k in 1usize..12,
        probes in proptest::collection::vec(-2e4f64..2e4, 2..20),
    ) {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let b = preqr_sql::vocab::Bucketizer::from_samples(samples, k);
        let mut sorted = probes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let buckets: Vec<usize> = sorted.iter().map(|&v| b.bucket(v)).collect();
        prop_assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(buckets.iter().all(|&x| x < b.buckets()));
    }
}
