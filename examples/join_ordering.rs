//! Extension beyond the paper's evaluation: join-order selection driven
//! by learned cardinalities (the paper's intro lists join ordering as a
//! downstream task of SQL representations but does not evaluate it).
//!
//! A greedy left-deep optimizer picks the next table by the smallest
//! estimated intermediate size. We compare plan costs (true engine cost
//! model on true intermediate sizes of the chosen order) when the
//! estimates come from (a) the PG-style analytic estimator and (b) a
//! PreQR-fine-tuned estimator.
//!
//! ```sh
//! cargo run --release --example join_ordering
//! ```

use preqr::PreqrConfig;
use preqr_data::imdb::{generate, ImdbConfig};
use preqr_data::workloads;
use preqr_engine::{execute, BitmapSampler, CostModel, TableStats};
use preqr_sql::ast::{CmpOp, Expr, Query, Scalar, SelectStmt};
use preqr_tasks::estimation::{train_preqr, Estimator, PgBaseline, Target};
use preqr_tasks::setup::build_pretrained;

/// Left-deep greedy ordering: repeatedly joins the table whose addition
/// the estimator scores cheapest, scoring by estimated cardinality of
/// the partial join.
fn greedy_order(q: &Query, est: &dyn Estimator) -> Vec<usize> {
    let n = q.body.tables().len();
    let mut order = vec![0usize];
    let mut remaining: Vec<usize> = (1..n).collect();
    while !remaining.is_empty() {
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &t)| {
                let mut chosen = order.clone();
                chosen.push(t);
                (pos, est.predict(&partial_query(q, &chosen)))
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite estimate"))
            .expect("non-empty remaining");
        order.push(remaining.remove(pos));
    }
    order
}

/// The sub-query restricted to a subset of tables (predicates touching
/// excluded tables are dropped).
fn partial_query(q: &Query, tables: &[usize]) -> Query {
    let all = q.body.tables();
    let keep: Vec<String> = tables.iter().map(|&i| all[i].binding().to_string()).collect();
    let mut stmt = SelectStmt { projections: q.body.projections.clone(), ..Default::default() };
    for &i in tables {
        stmt.from.push(q.body.tables()[i].clone());
    }
    if let Some(w) = &q.body.where_clause {
        let kept: Vec<Expr> = w
            .conjuncts()
            .into_iter()
            .filter(|c| {
                c.columns().iter().all(|col| match &col.table {
                    Some(t) => keep.contains(t),
                    None => true,
                })
            })
            .cloned()
            .collect();
        if !kept.is_empty() {
            stmt.where_clause = Some(Expr::and_all(kept));
        }
    }
    Query::single(stmt)
}

/// True cost of executing the query with a fixed join order: reorder the
/// FROM list and let the executor's greedy pipeline follow it.
fn true_cost(db: &preqr_engine::Database, q: &Query, order: &[usize], cm: &CostModel) -> f64 {
    let mut reordered = q.clone();
    let tables = q.body.tables();
    reordered.body.from = order.iter().map(|&i| tables[i].clone()).collect();
    reordered.body.joins.clear();
    // Move every join predicate into WHERE (already there for implicit
    // joins in our workloads).
    match execute(db, &reordered) {
        Ok(r) => {
            let base: Vec<f64> =
                reordered.body.tables().iter().map(|t| db.row_count(&t.table) as f64).collect();
            cm.cost_from_steps(&base, &r.step_cardinalities, base.len())
        }
        Err(_) => f64::INFINITY,
    }
}

fn main() {
    let db = generate(ImdbConfig { movies: 2_000, ..ImdbConfig::default() });
    let stats = TableStats::analyze(&db);
    let sampler = BitmapSampler::new(&db, 32, 1);
    let cm = CostModel::default();

    let corpus = workloads::pretrain_corpus(&db, 400, 7);
    println!("pre-training PreQR…");
    let (model, _) = build_pretrained(&db, &corpus, PreqrConfig::small(), 2, 1e-3);
    let train = workloads::label(&db, &workloads::synthetic(&db, 300, 21), &cm);
    let valid = workloads::label(&db, &workloads::synthetic(&db, 40, 22), &cm);
    println!("fine-tuning the cardinality head…");
    let preqr = train_preqr(
        &db,
        &model,
        Some(&sampler),
        &train,
        &valid,
        Target::Cardinality,
        6,
        7,
        "PreQRCard",
    );
    let pg = PgBaseline::new(&db, &stats, Target::Cardinality);

    // Multi-join queries where ordering matters.
    let queries: Vec<Query> = workloads::scale(&db, 43)
        .into_iter()
        .filter(|q| q.body.tables().len() >= 4)
        .take(12)
        .collect();

    println!("\nplan cost by join-order driver (lower is better):");
    println!("{:<6} {:>12} {:>12} {:>12}", "query", "PG-order", "PreQR-order", "best/worst");
    let (mut pg_total, mut preqr_total) = (0.0, 0.0);
    for (i, q) in queries.iter().enumerate() {
        let pg_cost = true_cost(&db, q, &greedy_order(q, &pg), &cm);
        let preqr_cost = true_cost(&db, q, &greedy_order(q, &preqr), &cm);
        pg_total += pg_cost;
        preqr_total += preqr_cost;
        let marker = if preqr_cost < pg_cost {
            "PreQR"
        } else if pg_cost < preqr_cost {
            "PG"
        } else {
            "tie"
        };
        println!("{:<6} {:>12.1} {:>12.1} {:>12}", i, pg_cost, preqr_cost, marker);
    }
    println!(
        "\ntotal: PG-driven {pg_total:.1} vs PreQR-driven {preqr_total:.1} ({})",
        if preqr_total <= pg_total { "PreQR plans cheaper or equal" } else { "PG plans cheaper" }
    );
}
