//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tensor`] is a reference-counted node in a dynamically-built
//! computation graph. Operations (defined in [`crate::ops`]) create new
//! nodes whose backward closures scatter gradients into their parents.
//! Calling [`Tensor::backward`] on a scalar output performs a topological
//! sweep and accumulates gradients into every parameter that participated
//! in the computation.
//!
//! The graph is built per forward pass and dropped afterwards; parameters
//! ([`Tensor::param`]) are the only long-lived nodes and keep their
//! accumulated gradient until the optimizer consumes it.

use std::cell::{Cell, Ref, RefCell};
use std::collections::HashSet;
use std::rc::Rc;

use crate::matrix::Matrix;

thread_local! {
    static NEXT_ID: Cell<u64> = const { Cell::new(0) };
    static NO_GRAD_DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn next_id() -> u64 {
    NEXT_ID.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    })
}

/// True while the current thread is inside a [`no_grad`] scope.
pub fn no_grad_active() -> bool {
    NO_GRAD_DEPTH.with(|c| c.get() > 0)
}

/// RAII guard for an open no-grad scope (see [`no_grad`]). Restores the
/// previous mode on drop, including on unwind, so a panicking inference
/// call can never leave the thread stuck in no-grad mode.
pub struct NoGradGuard {
    _private: (),
}

impl NoGradGuard {
    /// Opens a no-grad scope on the current thread. Scopes nest.
    pub fn new() -> Self {
        NO_GRAD_DEPTH.with(|c| c.set(c.get() + 1));
        NoGradGuard { _private: () }
    }
}

impl Default for NoGradGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for NoGradGuard {
    fn drop(&mut self) {
        NO_GRAD_DEPTH.with(|c| c.set(c.get() - 1));
    }
}

/// Runs `f` with tape recording disabled on the current thread.
///
/// Inside the scope every op produces a *constant* tensor: forward values
/// are computed exactly as in training mode (bit-identical — the mode
/// gates only graph bookkeeping, never arithmetic), but no parent edges
/// or backward closures are allocated, so inference never retains
/// autograd state. Scopes nest; the mode is per-thread.
pub fn no_grad<R>(f: impl FnOnce() -> R) -> R {
    let _guard = NoGradGuard::new();
    f()
}

/// Context passed to an op's backward closure.
pub struct BackwardCtx<'a> {
    /// Gradient of the loss w.r.t. this node's output.
    pub grad_out: &'a Matrix,
    /// The node's forward output value.
    pub value_out: &'a Matrix,
    /// The node's parent tensors, in the order they were passed to
    /// [`Tensor::from_op`].
    pub parents: &'a [Tensor],
}

type BackwardFn = Box<dyn Fn(&BackwardCtx<'_>)>;

pub(crate) struct TensorData {
    id: u64,
    value: RefCell<Matrix>,
    grad: RefCell<Option<Matrix>>,
    requires_grad: bool,
    parents: Vec<Tensor>,
    backward: Option<BackwardFn>,
}

/// A node in the autograd graph holding a [`Matrix`] value.
///
/// Cloning a `Tensor` is cheap (it clones an `Rc`).
#[derive(Clone)]
pub struct Tensor(Rc<TensorData>);

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.0.value.borrow();
        f.debug_struct("Tensor")
            .field("id", &self.0.id)
            .field("shape", &v.shape())
            .field("requires_grad", &self.0.requires_grad)
            .finish()
    }
}

impl Tensor {
    /// Creates a constant leaf tensor (no gradient is tracked through it).
    pub fn constant(value: Matrix) -> Self {
        Tensor(Rc::new(TensorData {
            id: next_id(),
            value: RefCell::new(value),
            grad: RefCell::new(None),
            requires_grad: false,
            parents: Vec::new(),
            backward: None,
        }))
    }

    /// Creates a trainable parameter leaf. Gradients accumulate into it
    /// across [`Tensor::backward`] calls until cleared by the optimizer.
    pub fn param(value: Matrix) -> Self {
        Tensor(Rc::new(TensorData {
            id: next_id(),
            value: RefCell::new(value),
            grad: RefCell::new(None),
            requires_grad: true,
            parents: Vec::new(),
            backward: None,
        }))
    }

    /// Creates an interior node produced by an op.
    ///
    /// `backward` receives the upstream gradient and must accumulate into
    /// the parents via [`Tensor::accumulate_grad`]. It is only invoked when
    /// at least one parent requires a gradient.
    ///
    /// Inside a [`no_grad`] scope the parents and the backward closure are
    /// dropped on the spot and the node degenerates to a constant leaf —
    /// the tape-free inference mode used by the serving path.
    pub fn from_op(value: Matrix, parents: Vec<Tensor>, backward: BackwardFn) -> Self {
        if no_grad_active() {
            return Tensor::constant(value);
        }
        let requires_grad = parents.iter().any(|p| p.0.requires_grad);
        Tensor(Rc::new(TensorData {
            id: next_id(),
            value: RefCell::new(value),
            grad: RefCell::new(None),
            requires_grad,
            parents,
            backward: Some(backward),
        }))
    }

    /// Unique node id (process-local, monotonically increasing).
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// Whether gradients flow through this node.
    pub fn requires_grad(&self) -> bool {
        self.0.requires_grad
    }

    /// Borrow of the forward value.
    pub fn value(&self) -> Ref<'_, Matrix> {
        self.0.value.borrow()
    }

    /// Owned copy of the forward value.
    pub fn value_clone(&self) -> Matrix {
        self.0.value.borrow().clone()
    }

    /// `(rows, cols)` of the forward value.
    pub fn shape(&self) -> (usize, usize) {
        self.0.value.borrow().shape()
    }

    /// Overwrites the stored value in place (used by optimizers and by
    /// parameter loading). Shape must match.
    pub fn set_value(&self, value: Matrix) {
        let mut v = self.0.value.borrow_mut();
        assert_eq!(v.shape(), value.shape(), "set_value shape mismatch");
        *v = value;
    }

    /// Applies `f` to the stored value in place.
    pub fn update_value(&self, f: impl FnOnce(&mut Matrix)) {
        f(&mut self.0.value.borrow_mut());
    }

    /// Owned copy of the accumulated gradient, if any.
    pub fn grad(&self) -> Option<Matrix> {
        self.0.grad.borrow().clone()
    }

    /// Removes and returns the accumulated gradient.
    pub fn take_grad(&self) -> Option<Matrix> {
        self.0.grad.borrow_mut().take()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.0.grad.borrow_mut() = None;
    }

    /// Adds `g` into this node's gradient buffer (no-op when the node does
    /// not require gradients).
    pub fn accumulate_grad(&self, g: &Matrix) {
        if !self.0.requires_grad {
            return;
        }
        let mut slot = self.0.grad.borrow_mut();
        match slot.as_mut() {
            Some(acc) => acc.add_assign(g),
            None => *slot = Some(g.clone()),
        }
    }

    /// Returns a gradient-detached view of this tensor's value.
    pub fn detach(&self) -> Tensor {
        Tensor::constant(self.value_clone())
    }

    /// Runs reverse-mode differentiation from this node.
    ///
    /// The node must hold a `1 × 1` scalar (a loss). Gradients accumulate
    /// into every reachable node with `requires_grad`.
    ///
    /// # Panics
    /// Panics if the node is not a scalar.
    pub fn backward(&self) {
        let (r, c) = self.shape();
        assert_eq!((r, c), (1, 1), "backward() requires a scalar tensor, got {r}x{c}");
        self.backward_with(Matrix::full(1, 1, 1.0));
    }

    /// Runs reverse-mode differentiation seeding this node's gradient with
    /// `seed` (same shape as the value). Useful for Jacobian-vector products
    /// in tests.
    pub fn backward_with(&self, seed: Matrix) {
        assert_eq!(self.shape(), seed.shape(), "backward seed shape mismatch");
        if !self.0.requires_grad {
            return;
        }
        // Topological order via iterative post-order DFS over nodes that
        // require gradients.
        let mut topo: Vec<Tensor> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<(Tensor, bool)> = vec![(self.clone(), false)];
        while let Some((node, processed)) = stack.pop() {
            if processed {
                topo.push(node);
                continue;
            }
            if !visited.insert(node.0.id) {
                continue;
            }
            stack.push((node.clone(), true));
            for p in &node.0.parents {
                if p.0.requires_grad && !visited.contains(&p.0.id) {
                    stack.push((p.clone(), false));
                }
            }
        }

        self.accumulate_grad(&seed);
        // Interior nodes receive their gradient exactly once all children
        // have contributed because children appear later in `topo`.
        for node in topo.iter().rev() {
            let Some(backward) = node.0.backward.as_ref() else {
                continue;
            };
            let grad = node.0.grad.borrow().clone();
            let Some(grad) = grad else { continue };
            let value = node.0.value.borrow();
            let ctx = BackwardCtx { grad_out: &grad, value_out: &value, parents: &node.0.parents };
            backward(&ctx);
            drop(value);
            // Interior gradients are transient; free them eagerly so long
            // graphs don't hold every intermediate gradient at once.
            *node.0.grad.borrow_mut() = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_does_not_track_grad() {
        let t = Tensor::constant(Matrix::zeros(2, 2));
        assert!(!t.requires_grad());
        t.accumulate_grad(&Matrix::full(2, 2, 1.0));
        assert!(t.grad().is_none());
    }

    #[test]
    fn param_accumulates_grad() {
        let t = Tensor::param(Matrix::zeros(1, 3));
        t.accumulate_grad(&Matrix::full(1, 3, 2.0));
        t.accumulate_grad(&Matrix::full(1, 3, 3.0));
        assert_eq!(t.grad().unwrap().data(), &[5.0, 5.0, 5.0]);
        t.zero_grad();
        assert!(t.grad().is_none());
    }

    #[test]
    #[should_panic(expected = "requires a scalar")]
    fn backward_rejects_non_scalar() {
        let t = Tensor::param(Matrix::zeros(1, 2));
        t.backward();
    }

    #[test]
    fn backward_through_shared_node_counts_both_paths() {
        // y = x + x; dy/dx = 2.
        let x = Tensor::param(Matrix::full(1, 1, 3.0));
        let y = crate::ops::add(&x, &x);
        y.backward();
        assert_eq!(x.grad().unwrap().get(0, 0), 2.0);
    }

    #[test]
    fn detach_blocks_gradient() {
        let x = Tensor::param(Matrix::full(1, 1, 3.0));
        let d = x.detach();
        let y = crate::ops::mul(&d, &d);
        assert!(!y.requires_grad());
    }

    #[test]
    fn no_grad_values_are_bit_identical_to_training_mode() {
        let x = Tensor::param(Matrix::from_vec(1, 3, vec![0.25, -1.5, 3.0]));
        let w = Tensor::param(Matrix::from_vec(3, 2, vec![1.0, 0.5, -0.25, 2.0, 0.125, -1.0]));
        let train = crate::ops::relu(&crate::ops::matmul(&x, &w)).value_clone();
        let infer = no_grad(|| crate::ops::relu(&crate::ops::matmul(&x, &w)).value_clone());
        assert_eq!(train, infer, "no-grad mode must not perturb forward arithmetic");
    }

    #[test]
    fn no_grad_ops_record_no_tape() {
        let x = Tensor::param(Matrix::full(1, 1, 2.0));
        let y = no_grad(|| crate::ops::mul(&x, &x));
        assert!(!y.requires_grad(), "ops under no_grad produce constants");
        assert!(y.0.parents.is_empty(), "no parent edges retained");
        assert!(y.0.backward.is_none(), "no backward closure allocated");
        // The param is untouched: training still works after the scope.
        let z = crate::ops::mul(&x, &x);
        z.backward();
        assert_eq!(x.grad().unwrap().get(0, 0), 4.0);
    }

    #[test]
    fn no_grad_scopes_nest() {
        assert!(!no_grad_active());
        no_grad(|| {
            assert!(no_grad_active());
            no_grad(|| assert!(no_grad_active()));
            assert!(no_grad_active(), "inner scope exit must not end the outer scope");
        });
        assert!(!no_grad_active());
    }

    #[test]
    fn no_grad_guard_unwinds_cleanly() {
        let r = std::panic::catch_unwind(|| no_grad(|| panic!("inference failed")));
        assert!(r.is_err());
        assert!(!no_grad_active(), "a panicking no-grad scope must restore the mode");
    }
}
