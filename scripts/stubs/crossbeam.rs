//! crossbeam stub: an unbounded MPMC channel over Mutex+Condvar, covering
//! the `crossbeam::channel::{unbounded, Sender, Receiver}` surface.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        q: Mutex<(VecDeque<T>, usize)>, // (queue, live sender count)
        cv: Condvar,
    }

    pub struct Sender<T>(Arc<Chan<T>>);
    pub struct Receiver<T>(Arc<Chan<T>>);

    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    #[derive(Debug)]
    pub struct RecvError;

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut g = self.0.q.lock().unwrap_or_else(|e| e.into_inner());
            g.1 += 1;
            drop(g);
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut g = self.0.q.lock().unwrap_or_else(|e| e.into_inner());
            g.1 -= 1;
            if g.1 == 0 {
                self.0.cv.notify_all();
            }
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan { q: Mutex::new((VecDeque::new(), 1)), cv: Condvar::new() });
        (Sender(chan.clone()), Receiver(chan))
    }

    impl<T> Sender<T> {
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let mut g = self.0.q.lock().unwrap_or_else(|e| e.into_inner());
            g.0.push_back(t);
            self.0.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut g = self.0.q.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(t) = g.0.pop_front() {
                    return Ok(t);
                }
                if g.1 == 0 {
                    return Err(RecvError);
                }
                g = self.0.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}
