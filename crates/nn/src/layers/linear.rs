//! Fully-connected layers.

use rand::Rng;

use crate::init;
use crate::layers::{join, Module};
use crate::matrix::Matrix;
use crate::ops;
use crate::tensor::Tensor;

/// An affine map `y = x W + b` (weights stored `in × out`).
pub struct Linear {
    w: Tensor,
    b: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            w: Tensor::param(init::xavier_uniform(in_dim, out_dim, rng)),
            b: Some(Tensor::param(Matrix::zeros(1, out_dim))),
        }
    }

    /// Creates a layer without a bias term.
    pub fn new_no_bias(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        Self { w: Tensor::param(init::xavier_uniform(in_dim, out_dim, rng)), b: None }
    }

    /// Applies the layer to an `n × in` tensor.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let y = ops::matmul(x, &self.w);
        match &self.b {
            Some(b) => ops::add_row(&y, b),
            None => y,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.value().rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.value().cols()
    }
}

impl Module for Linear {
    fn collect_params(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        out.push((join(prefix, "w"), self.w.clone()));
        if let Some(b) = &self.b {
            out.push((join(prefix, "b"), b.clone()));
        }
    }
}

/// A plain multi-layer perceptron with ReLU activations between layers.
///
/// This is the "very simple 3-layer fully-connected model" the paper uses
/// as the prediction head on top of PreQR embeddings (§4.3.2).
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[128, 64, 1]` for a
    /// 3-layer head over 128-dim inputs.
    ///
    /// # Panics
    /// Panics if fewer than two widths are given.
    pub fn new(widths: &[usize], rng: &mut impl Rng) -> Self {
        assert!(widths.len() >= 2, "Mlp needs at least input and output widths");
        let layers = widths.windows(2).map(|w| Linear::new(w[0], w[1], rng)).collect();
        Self { layers }
    }

    /// Forward pass; ReLU after every layer except the last.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = ops::identity(x);
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i + 1 < self.layers.len() {
                h = ops::relu(&h);
            }
        }
        h
    }
}

impl Module for Mlp {
    fn collect_params(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        for (i, l) in self.layers.iter().enumerate() {
            l.collect_params(&join(prefix, &format!("l{i}")), out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = Linear::new(4, 2, &mut rng);
        let x = Tensor::constant(Matrix::zeros(3, 4));
        assert_eq!(l.forward(&x).shape(), (3, 2));
        assert_eq!(l.in_dim(), 4);
        assert_eq!(l.out_dim(), 2);
    }

    #[test]
    fn linear_param_names() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = Linear::new(2, 2, &mut rng);
        let names: Vec<String> = l.named_params("head").into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["head.w", "head.b"]);
        assert_eq!(l.param_count(), 2 * 2 + 2);
    }

    #[test]
    fn mlp_learns_a_linear_function() {
        // y = 2*x0 - x1; the MLP should fit it to low error quickly.
        let mut rng = StdRng::seed_from_u64(42);
        let mlp = Mlp::new(&[2, 8, 1], &mut rng);
        let mut opt = Adam::new(mlp.params(), 0.02);
        let data: Vec<([f32; 2], f32)> = (0..32)
            .map(|i| {
                let x0 = (i % 8) as f32 / 8.0;
                let x1 = (i / 8) as f32 / 4.0;
                ([x0, x1], 2.0 * x0 - x1)
            })
            .collect();
        let mut last = f32::MAX;
        for _ in 0..300 {
            let xs = Matrix::from_fn(data.len(), 2, |r, c| data[r].0[c]);
            let ys = Matrix::from_fn(data.len(), 1, |r, _| data[r].1);
            let pred = mlp.forward(&Tensor::constant(xs));
            let loss = ops::mse_loss(&pred, &ys);
            last = loss.value_clone().get(0, 0);
            loss.backward();
            opt.step();
        }
        assert!(last < 1e-3, "MLP failed to fit linear target, loss={last}");
    }
}
