#!/bin/bash
# Compiles and runs one test file against the offline-built workspace
# (scripts/offline_build.sh must have run first).
# Usage: scripts/offline_test.sh [-O] <file.rs> [test-runner-args...]
set -e
OPT=""
if [ "$1" = "-O" ]; then OPT="-O"; shift; fi
OUT=${OUT:-/tmp/preqr-offline/out$OPT}
SRC=$1; shift
NAME=$(basename "$SRC" .rs | tr '-' '_')
BIN=${TEST_OUT:-/tmp/preqr-offline/tests}/$NAME$OPT
mkdir -p "$(dirname "$BIN")"
EXTERNS=""
for c in serde rand proptest crossbeam parking_lot preqr_obs preqr_sql preqr_schema preqr_automaton preqr_nn preqr_train preqr_engine preqr_data preqr preqr_baselines preqr_tasks preqr_serve preqr_bench preqr_repro; do
  [ -f "$OUT/lib$c.rlib" ] && EXTERNS="$EXTERNS --extern $c=$OUT/lib$c.rlib"
done
rustc --edition 2021 $OPT -Awarnings --test "$SRC" -o "$BIN" -L "$OUT" $EXTERNS
"$BIN" "$@"
