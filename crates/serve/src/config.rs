//! Serving configuration.

/// Tuning knobs for a [`crate::Service`].
///
/// `queue_capacity` and `cache_capacity` are *global* budgets: the
/// service splits them evenly across `shards` (ceiling division), so
/// raising the shard count never shrinks the service below one queue
/// slot or cache entry per shard.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Most requests one micro-batch may carry (min 1).
    pub max_batch: usize,
    /// Logical ticks the oldest queued request may wait before a partial
    /// batch closes (see [`crate::clock::LogicalClock`]). 0 closes every
    /// batch as soon as any work is available. Each shard keeps its own
    /// clock, so one shard's traffic never ages another shard's batches.
    pub batch_timeout: u64,
    /// Global bounded-admission budget: each shard's queue holds at most
    /// [`ServeConfig::shard_queue_capacity`] requests, and a submission
    /// is rejected with `QueueFull` when its *target* shard is full.
    pub queue_capacity: usize,
    /// Global embedding-cache budget, keyed by normalized template and
    /// split into per-shard LRU slices. 0 disables caching entirely.
    pub cache_capacity: usize,
    /// Worker shards (min 1). Requests are routed to a shard by a
    /// deterministic hash of their normalized template text
    /// ([`crate::router::route`]), so each template's cache entries and
    /// counters live on exactly one shard.
    pub shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 16,
            batch_timeout: 2,
            queue_capacity: 256,
            cache_capacity: 1024,
            shards: 1,
        }
    }
}

impl ServeConfig {
    /// Copy with invalid fields clamped to their minimum legal values.
    pub(crate) fn normalized(self) -> Self {
        ServeConfig { max_batch: self.max_batch.max(1), shards: self.shards.max(1), ..self }
    }

    /// One shard's slice of the admission queue: `queue_capacity` split by
    /// ceiling division. A zero global budget stays zero (admission
    /// always rejects), matching the unsharded semantics.
    pub fn shard_queue_capacity(&self) -> usize {
        self.queue_capacity.div_ceil(self.shards.max(1))
    }

    /// One shard's slice of the template cache: `cache_capacity` split by
    /// ceiling division; 0 stays 0 (cache disabled on every shard).
    pub fn shard_cache_capacity(&self) -> usize {
        self.cache_capacity.div_ceil(self.shards.max(1))
    }

    /// Shard-count override from `PREQR_SERVE_SHARDS` (used by the CI
    /// shard matrix and the scaling bench); `None` when unset or invalid.
    pub fn shards_from_env() -> Option<usize> {
        std::env::var("PREQR_SERVE_SHARDS").ok()?.trim().parse().ok().filter(|&n| n >= 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_clamps_batch_and_shards_to_one() {
        let c = ServeConfig { max_batch: 0, shards: 0, ..ServeConfig::default() }.normalized();
        assert_eq!(c.max_batch, 1);
        assert_eq!(c.shards, 1);
        assert_eq!(ServeConfig::default().normalized().max_batch, 16);
        assert_eq!(ServeConfig::default().normalized().shards, 1);
    }

    #[test]
    fn capacity_splits_cover_the_budget_without_starving_a_shard() {
        let c = ServeConfig {
            queue_capacity: 10,
            cache_capacity: 10,
            shards: 4,
            ..ServeConfig::default()
        };
        // Ceiling split: 10 across 4 shards is 3 each (12 total ≥ 10).
        assert_eq!(c.shard_queue_capacity(), 3);
        assert_eq!(c.shard_cache_capacity(), 3);
        // More shards than budget: every shard still gets one slot.
        let tiny = ServeConfig { queue_capacity: 2, cache_capacity: 1, shards: 8, ..c };
        assert_eq!(tiny.shard_queue_capacity(), 1);
        assert_eq!(tiny.shard_cache_capacity(), 1);
    }

    #[test]
    fn single_shard_split_is_the_unsharded_capacity() {
        let c = ServeConfig::default();
        assert_eq!(c.shard_queue_capacity(), c.queue_capacity);
        assert_eq!(c.shard_cache_capacity(), c.cache_capacity);
    }

    #[test]
    fn zero_budgets_stay_zero_on_every_shard() {
        let c = ServeConfig {
            queue_capacity: 0,
            cache_capacity: 0,
            shards: 4,
            ..ServeConfig::default()
        };
        assert_eq!(c.shard_queue_capacity(), 0, "zero queue budget must still reject everything");
        assert_eq!(c.shard_cache_capacity(), 0, "zero cache budget must stay disabled");
    }
}
