//! Minimal proptest stand-in for the offline stub build: enough API
//! surface to compile and RUN the workspace's property tests with random
//! sampling (no shrinking).

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    pub use crate::{Just, ProptestConfig, Rng, Strategy};
}

/// splitmix64 RNG.
pub struct Rng(pub u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut Rng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut Rng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span.max(1)) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                let span = (*self.end() - *self.start()) as u64 + 1;
                *self.start() + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! sint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span.max(1)) as i128) as $t
            }
        }
    )*};
}
sint_range_strategy!(i8, i16, i32, i64);

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut Rng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// String "regex" strategy: the stub ignores the pattern and generates
/// short dotted lowercase identifiers (the shape every workspace test
/// pattern describes).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut Rng) -> String {
        let segments = 1 + (rng.next_u64() % 3) as usize;
        let mut s = String::new();
        for i in 0..segments {
            if i > 0 {
                s.push('.');
            }
            let len = 1 + (rng.next_u64() % 8) as usize;
            for _ in 0..len {
                s.push((b'a' + (rng.next_u64() % 26) as u8) as char);
            }
        }
        s
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

pub mod collection {
    use super::{Rng, Strategy};

    pub trait SizeRange {
        fn pick(&self, rng: &mut Rng) -> usize;
    }
    impl SizeRange for usize {
        fn pick(&self, _rng: &mut Rng) -> usize {
            *self
        }
    }
    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut Rng) -> usize {
            self.start + (rng.next_u64() as usize) % (self.end - self.start).max(1)
        }
    }

    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    pub fn vec<S: Strategy, R: SizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

#[derive(Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Sentinel error for rejected (assumed-away) cases.
pub const ASSUME_REJECT: &str = "__proptest_stub_assume__";

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::ASSUME_REJECT.to_string());
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!("assert_eq failed: {:?} != {:?}", a, b));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        let choices: Vec<(u32, Box<dyn $crate::Strategy<Value = _>>)> =
            vec![$(($weight, Box::new($strat))),+];
        $crate::OneOf { choices }
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

pub struct OneOf<T> {
    pub choices: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        let total: u32 = self.choices.iter().map(|(w, _)| w).sum();
        let mut pick = (rng.next_u64() % u64::from(total.max(1))) as u32;
        for (w, s) in &self.choices {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        self.choices.last().expect("prop_oneof is non-empty").1.generate(rng)
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::Rng::new(0xc0ffee ^ stringify!($name).len() as u64);
                let mut ran = 0u32;
                let mut attempts = 0u32;
                while ran < cfg.cases {
                    attempts += 1;
                    assert!(
                        attempts < cfg.cases * 20 + 100,
                        "too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: Result<(), String> = (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err(e) if e == $crate::ASSUME_REJECT => continue,
                        Err(e) => panic!("proptest case failed in {}: {}", stringify!($name), e),
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::proptest! { #![proptest_config($crate::ProptestConfig::default())] $($(#[$meta])* fn $name($($arg in $strat),*) $body)* }
    };
}
