//! SQLBERT (§3.5): the stack of `Trm_g` layers over composite input
//! embeddings and query-aware schema states, pre-trained with masked
//! language modelling (§3.5.2).

use preqr_obs as obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use preqr_nn::layers::{join, Linear, Module};
use preqr_nn::{ops, Matrix, Tensor};
use preqr_schema::Schema;
use preqr_sql::ast::Query;
use preqr_train::{
    CheckpointConfig, Plan, Schedule, StepOutput, TrainTask, Trainer, TrainerConfig,
};

use crate::config::PreqrConfig;
use crate::embedding::{InputEmbedding, PreparedQuery, ValueBuckets};
use crate::schema2graph::Schema2Graph;
use crate::trm_g::TrmG;

/// The full PreQR model.
pub struct SqlBert {
    /// Model configuration.
    pub config: PreqrConfig,
    input: InputEmbedding,
    schema2graph: Option<Schema2Graph>,
    layers: Vec<TrmG>,
    mlm_head: Linear,
    schema: Schema,
}

/// Per-epoch training statistics — the shared `preqr-train` report type
/// (re-exported here because pre-training has always returned it).
pub use preqr_train::EpochStats;

/// Options for [`SqlBert::pretrain_with`]: the plain epochs/lr pair plus
/// the trainer capabilities (checkpointing, halting) that
/// [`SqlBert::pretrain`] leaves off.
#[derive(Clone, Debug)]
pub struct PretrainOptions {
    /// Number of epochs.
    pub epochs: usize,
    /// Base learning rate (warmup-linear schedule over the real step
    /// count).
    pub lr: f32,
    /// Periodic checkpointing with crash-resume.
    pub checkpoint: Option<CheckpointConfig>,
    /// Stop once the global step counter reaches this value.
    pub halt_after_steps: Option<u64>,
}

impl PretrainOptions {
    /// Plain pre-training: no checkpointing, no halting.
    pub fn new(epochs: usize, lr: f32) -> Self {
        Self { epochs, lr, checkpoint: None, halt_after_steps: None }
    }
}

impl SqlBert {
    /// Builds the model: vocabulary + automaton from the corpus, the
    /// schema graph from the schema, fresh weights from `config.seed`.
    pub fn new(
        corpus: &[Query],
        schema: &Schema,
        buckets: ValueBuckets,
        config: PreqrConfig,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let input = InputEmbedding::build(corpus, schema, buckets, config, &mut rng);
        let schema2graph =
            config.use_schema.then(|| Schema2Graph::build(schema, &config, &mut rng));
        let layers = (0..config.layers.max(1))
            .map(|_| TrmG::new(config.d_model, config.heads, config.use_schema, &mut rng))
            .collect();
        let mlm_head = Linear::new(config.output_dim(), input.vocab().len(), &mut rng);
        Self { config, input, schema2graph, layers, mlm_head, schema: schema.clone() }
    }

    /// The input-embedding module.
    pub fn input(&self) -> &InputEmbedding {
        &self.input
    }

    /// Mutable input-embedding access (incremental updates).
    pub fn input_mut(&mut self) -> &mut InputEmbedding {
        &mut self.input
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The Schema2Graph module (when enabled).
    pub fn schema2graph(&self) -> Option<&Schema2Graph> {
        self.schema2graph.as_ref()
    }

    /// Applies a schema update (§3.6 Case 2).
    pub fn update_schema(&mut self, schema: &Schema) {
        self.schema = schema.clone();
        if let Some(s2g) = &mut self.schema2graph {
            s2g.update_schema(schema);
        }
    }

    /// Prepares a query for encoding.
    pub fn prepare(&self, q: &Query) -> PreparedQuery {
        self.input.prepare(q, &self.schema)
    }

    /// Current schema node states (with gradient tracking).
    pub fn node_states(&self) -> Option<Tensor> {
        self.schema2graph.as_ref().map(Schema2Graph::node_states)
    }

    /// Full forward pass to the final `n × output_dim` representation
    /// (Eq. 8: `y = Concat(e_q, e_g)` at the last layer).
    pub fn forward(
        &self,
        pq: &PreparedQuery,
        overrides: Option<&[Option<usize>]>,
        nodes: Option<&Tensor>,
        training: bool,
        rng: &mut StdRng,
    ) -> Tensor {
        let mut x = self.input.forward_with_override(pq, overrides, training, rng);
        let owned_nodes;
        let nodes_ref = match (nodes, &self.schema2graph) {
            (Some(n), _) => Some(n),
            (None, Some(s2g)) => {
                owned_nodes = s2g.node_states();
                Some(&owned_nodes)
            }
            (None, None) => None,
        };
        let mut last = None;
        let n_layers = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            let out = layer.forward(&x, nodes_ref);
            if i + 1 == n_layers {
                last = Some(out);
                break;
            }
            x = out.merged;
        }
        let last = last.expect("at least one layer");
        match last.e_g {
            Some(e_g) => ops::concat_cols(&last.e_q, &e_g),
            None => last.e_q,
        }
    }

    /// Builds an MLM example: masked positions (80 % `[MASK]`, 10 %
    /// random maskable token, 10 % unchanged) and per-position targets
    /// (`usize::MAX` = not predicted).
    pub fn mlm_corrupt(
        &self,
        pq: &PreparedQuery,
        rng: &mut StdRng,
    ) -> (Vec<Option<usize>>, Vec<usize>) {
        let n = pq.len();
        let mut overrides: Vec<Option<usize>> = vec![None; n];
        let mut targets: Vec<usize> = vec![usize::MAX; n];
        let candidates: Vec<usize> = (0..n).filter(|&i| pq.tokens[i].maskable).collect();
        if candidates.is_empty() {
            return (overrides, targets);
        }
        let mut chosen: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|_| rng.random::<f32>() < self.config.mask_prob)
            .collect();
        if chosen.is_empty() {
            chosen.push(candidates[rng.random_range(0..candidates.len())]);
        }
        for i in chosen {
            targets[i] = pq.tokens[i].vocab_id;
            let r: f32 = rng.random();
            overrides[i] = if r < 0.8 {
                Some(self.input.mask_id())
            } else if r < 0.9 {
                Some(self.input.random_maskable_id(rng))
            } else {
                None
            };
        }
        (overrides, targets)
    }

    /// One MLM loss computation (no optimizer step). Returns the loss
    /// tensor, the number of masked positions, and how many were
    /// predicted correctly (greedy).
    pub fn mlm_loss(
        &self,
        pq: &PreparedQuery,
        nodes: Option<&Tensor>,
        rng: &mut StdRng,
    ) -> (Tensor, usize, usize) {
        let (overrides, targets) = self.mlm_corrupt(pq, rng);
        let reps = self.forward(pq, Some(&overrides), nodes, true, rng);
        let masked: Vec<usize> = (0..targets.len()).filter(|&i| targets[i] != usize::MAX).collect();
        if masked.is_empty() {
            return (ops::sum_all(&ops::scale(&reps, 0.0)), 0, 0);
        }
        let rows = ops::gather_rows(&reps, &masked);
        let logits = self.mlm_head.forward(&rows);
        let masked_targets: Vec<usize> = masked.iter().map(|&i| targets[i]).collect();
        // Greedy accuracy for monitoring.
        let lv = logits.value_clone();
        let mut correct = 0;
        for (r, &t) in masked_targets.iter().enumerate() {
            let row = lv.row(r);
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(i, _)| i)
                .expect("non-empty row");
            if argmax == t {
                correct += 1;
            }
        }
        let loss = ops::cross_entropy_logits(&logits, &masked_targets);
        (loss, masked.len(), correct)
    }

    /// Pre-trains with MLM over the corpus (§3.5.2). Queries are prepared
    /// once; Adam with linear warmup; gradients accumulate over
    /// micro-batches of 8 (the schema node states are shared within a
    /// micro-batch). Returns per-epoch statistics.
    pub fn pretrain(&mut self, corpus: &[Query], epochs: usize, lr: f32) -> Vec<EpochStats> {
        self.pretrain_with(corpus, PretrainOptions::new(epochs, lr))
    }

    /// [`SqlBert::pretrain`] with the full trainer surface: periodic
    /// checkpointing with crash-resume, and halting at a step boundary.
    pub fn pretrain_with(&mut self, corpus: &[Query], opts: PretrainOptions) -> Vec<EpochStats> {
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let prepared: Vec<PreparedQuery> = corpus.iter().map(|q| self.prepare(q)).collect();
        let mut config = TrainerConfig::new(
            Plan::Epochs { epochs: opts.epochs, chunk: 8, shuffle: true },
            opts.lr,
        )
        .with_schedule(Schedule::bert(opts.epochs, corpus.len(), 8));
        config.checkpoint = opts.checkpoint;
        config.halt_after_steps = opts.halt_after_steps;
        let mut task = PretrainTask { model: &*self, prepared, nodes: None };
        let report = Trainer::new(config).fit(&mut task, &mut rng);
        obs::flush_metrics();
        report.stats
    }

    /// Encodes a query to its final representation matrix (eval mode,
    /// tape-free). `nodes` may be a cached detached node matrix.
    pub fn encode_with_nodes(&self, q: &Query, nodes: Option<&Tensor>) -> Matrix {
        preqr_nn::no_grad(|| {
            let pq = self.prepare(q);
            let mut rng = StdRng::seed_from_u64(0);
            self.forward(&pq, None, nodes, false, &mut rng).value_clone()
        })
    }

    /// Encodes one micro-batch of queries (eval mode, tape-free): the
    /// schema node states are computed once and shared across the batch,
    /// then each query runs an independent forward over them.
    ///
    /// Because the shared node states are detached *values* (identical to
    /// what a fresh single-query pass computes) and queries never attend
    /// to each other, every output is bit-identical to [`SqlBert::encode`]
    /// of that query alone — batch composition and order can never change
    /// an embedding. The serving layer's batching is built on this
    /// contract (`crates/serve`), and [`SqlBert::encode`] itself is the
    /// batch-of-one special case.
    pub fn encode_batch(&self, qs: &[Query]) -> Vec<Matrix> {
        preqr_nn::no_grad(|| {
            let nodes = self.cached_nodes();
            qs.iter()
                .map(|q| {
                    let pq = self.prepare(q);
                    let mut rng = StdRng::seed_from_u64(0);
                    self.forward(&pq, None, nodes.as_ref(), false, &mut rng).value_clone()
                })
                .collect()
        })
    }

    /// Encodes a query (recomputing schema node states).
    pub fn encode(&self, q: &Query) -> Matrix {
        self.encode_batch(std::slice::from_ref(q)).pop().expect("batch of one yields one")
    }

    /// Detached schema node states for fast repeated encoding.
    pub fn cached_nodes(&self) -> Option<Tensor> {
        self.schema2graph.as_ref().map(|s| Tensor::constant(s.node_states().value_clone()))
    }

    /// The `[CLS]` vector of a query — the aggregate sequence
    /// representation used for similarity and as downstream input.
    pub fn cls_vector(&self, q: &Query, nodes: Option<&Tensor>) -> Vec<f32> {
        let m = self.encode_with_nodes(q, nodes);
        m.row(0).to_vec()
    }

    /// Fine-tuning forward: the lower layers and schema module run
    /// detached (frozen); only the *last* `Trm_g` layer runs with
    /// gradients — the paper fine-tunes "the last layer of SQLBERT
    /// together with the SOTA model".
    pub fn encode_finetune(
        &self,
        pq: &PreparedQuery,
        frozen_nodes: &Option<Tensor>,
        rng: &mut StdRng,
    ) -> Tensor {
        let mut x = self.input.forward(pq, false, rng).detach();
        let n_layers = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            if i + 1 == n_layers {
                let out = layer.forward(&x, frozen_nodes.as_ref());
                return match out.e_g {
                    Some(e_g) => ops::concat_cols(&out.e_q, &e_g),
                    None => out.e_q,
                };
            }
            x = layer.forward(&x, frozen_nodes.as_ref()).merged.detach();
        }
        unreachable!("loop returns at the last layer");
    }

    /// Interpretability: the first layer's query→schema attention
    /// weights for a query, with vertex display names. Returns `None`
    /// when the schema module is disabled. Shape is `n_tokens × |V|`.
    pub fn schema_attention(&self, q: &Query) -> Option<(Vec<String>, Matrix)> {
        let s2g = self.schema2graph.as_ref()?;
        let nodes = s2g.node_states();
        let pq = self.prepare(q);
        let mut rng = StdRng::seed_from_u64(0);
        let x = self.input.forward(&pq, false, &mut rng);
        let attn = self.layers.first()?.schema_attention(&x, &nodes)?;
        let names = s2g
            .graph()
            .vertices()
            .iter()
            .map(|v| match &v.kind {
                preqr_schema::graph::VertexKind::Table { table } => table.clone(),
                preqr_schema::graph::VertexKind::Column { table, column } => {
                    format!("{table}.{column}")
                }
            })
            .collect();
        Some((names, attn.value_clone()))
    }

    /// Eval-mode output of all layers *below* the last one (the frozen
    /// prefix of fine-tuning). Deterministic, so it can be cached per
    /// query across fine-tuning epochs.
    pub fn lower_states(&self, pq: &PreparedQuery, nodes: Option<&Tensor>) -> Matrix {
        preqr_nn::no_grad(|| {
            let mut rng = StdRng::seed_from_u64(0);
            let mut x = self.input.forward(pq, false, &mut rng);
            for layer in &self.layers[..self.layers.len() - 1] {
                x = layer.forward(&x, nodes).merged;
            }
            x.value_clone()
        })
    }

    /// Runs only the last `Trm_g` layer on cached lower states, with
    /// gradients flowing into the last layer's parameters. Returns the
    /// final `n × output_dim` representation.
    pub fn last_layer_encode(&self, lower: &Matrix, nodes: Option<&Tensor>) -> Tensor {
        let x = Tensor::constant(lower.clone());
        let out = self.layers.last().expect("at least one layer").forward(&x, nodes);
        match out.e_g {
            Some(e_g) => ops::concat_cols(&out.e_q, &e_g),
            None => out.e_q,
        }
    }

    /// Parameters of the last `Trm_g` layer (the fine-tuned subset).
    pub fn last_layer_params(&self) -> Vec<Tensor> {
        self.layers.last().expect("at least one layer").params()
    }

    /// Parameters of the Input Embedding module (§3.6 Case 3 subset).
    pub fn input_params(&self) -> Vec<Tensor> {
        self.input.params()
    }

    /// Parameters of the Schema2Graph module (§3.6 Case 2 subset).
    pub fn schema_params(&self) -> Vec<Tensor> {
        self.schema2graph.as_ref().map(Module::params).unwrap_or_default()
    }

    /// Total scalar parameter count.
    pub fn num_parameters(&self) -> usize {
        self.param_count()
    }

    /// Saves all parameters to a checkpoint file.
    ///
    /// # Errors
    /// I/O failures.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        preqr_nn::serialize::save_to_file(path, &self.named_params("preqr"))
    }

    /// Loads parameters from a checkpoint created by [`SqlBert::save`]
    /// into this model. The model must have been built with the same
    /// corpus/schema/config (vocabulary and automaton construction are
    /// deterministic, so rebuilding reproduces the architecture).
    ///
    /// # Errors
    /// I/O failures, or an architecture mismatch.
    pub fn load(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        let loaded = preqr_nn::serialize::load_from_file(path).map_err(|e| e.to_string())?;
        preqr_nn::serialize::apply_params(&self.named_params("preqr"), &loaded)?;
        Ok(())
    }
}

/// The MLM pre-training workload (§3.5.2), driven by the shared
/// `preqr-train` Trainer: schema node states are recomputed once per
/// micro-batch and shared within it, each example masks tokens with the
/// trainer-owned rng, and the `pretrain.*` counters are bumped from the
/// epoch-end hook.
struct PretrainTask<'a> {
    model: &'a SqlBert,
    prepared: Vec<PreparedQuery>,
    nodes: Option<Tensor>,
}

impl TrainTask for PretrainTask<'_> {
    fn name(&self) -> &'static str {
        "pretrain"
    }

    fn len(&self) -> usize {
        self.prepared.len()
    }

    fn params(&self) -> Vec<Tensor> {
        self.model.params()
    }

    fn chunk_start(&mut self) {
        self.nodes = self.model.node_states();
    }

    fn step(&mut self, idx: usize, rng: &mut StdRng) -> StepOutput {
        let (loss, masked, correct) =
            self.model.mlm_loss(&self.prepared[idx], self.nodes.as_ref(), rng);
        let scalar = f64::from(loss.value_clone().get(0, 0));
        loss.backward();
        StepOutput { loss: scalar, masked, correct }
    }

    fn epoch_end(&mut self, st: &preqr_train::EpochStats) {
        obs::counter_add(obs::Metric::PretrainEpochs, 1);
        obs::counter_add(obs::Metric::PretrainSamples, st.samples as u64);
        obs::counter_add(obs::Metric::PretrainSteps, st.steps);
        obs::counter_add(obs::Metric::PretrainMaskedTokens, st.masked as u64);
        obs::counter_add(obs::Metric::PretrainCorrectTokens, st.correct as u64);
        obs::record_hist(obs::HistMetric::PretrainEpochLoss, st.loss);
    }
}

impl Module for SqlBert {
    fn collect_params(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        self.input.collect_params(&join(prefix, "input"), out);
        if let Some(s2g) = &self.schema2graph {
            s2g.collect_params(&join(prefix, "schema2graph"), out);
        }
        for (i, l) in self.layers.iter().enumerate() {
            l.collect_params(&join(prefix, &format!("layer{i}")), out);
        }
        self.mlm_head.collect_params(&join(prefix, "mlm_head"), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_schema::{Column, ColumnType, ForeignKey, Table};
    use preqr_sql::parser::parse;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_table(Table::new(
            "title",
            vec![
                Column::primary("id", ColumnType::Int),
                Column::new("production_year", ColumnType::Int),
                Column::new("kind_id", ColumnType::Int),
            ],
        ));
        s.add_table(Table::new(
            "movie_companies",
            vec![
                Column::primary("id", ColumnType::Int),
                Column::new("movie_id", ColumnType::Int),
                Column::new("company_id", ColumnType::Int),
            ],
        ));
        s.add_foreign_key(ForeignKey {
            from_table: "movie_companies".into(),
            from_column: "movie_id".into(),
            to_table: "title".into(),
            to_column: "id".into(),
        });
        s
    }

    fn corpus() -> Vec<Query> {
        let mut out = Vec::new();
        for y in [1990, 2000, 2005, 2010] {
            out.push(
                parse(&format!("SELECT COUNT(*) FROM title t WHERE t.production_year > {y}"))
                    .unwrap(),
            );
            out.push(
                parse(&format!(
                    "SELECT COUNT(*) FROM title t, movie_companies mc \
                     WHERE t.id = mc.movie_id AND t.production_year > {y}"
                ))
                .unwrap(),
            );
        }
        out
    }

    fn buckets() -> ValueBuckets {
        let mut b = ValueBuckets::new(4);
        b.insert("title", "production_year", (1930..2020).map(f64::from).collect());
        b.insert("title", "kind_id", (1..8).map(f64::from).collect());
        b.insert("movie_companies", "company_id", (1..100).map(f64::from).collect());
        b
    }

    fn model() -> SqlBert {
        SqlBert::new(&corpus(), &schema(), buckets(), PreqrConfig::test())
    }

    #[test]
    fn encode_shape_is_output_dim() {
        let m = model();
        let q = &corpus()[1];
        let e = m.encode(q);
        let pq = m.prepare(q);
        assert_eq!(e.shape(), (pq.len(), PreqrConfig::test().output_dim()));
    }

    #[test]
    fn mlm_corrupt_masks_only_maskable_positions() {
        let m = model();
        let pq = m.prepare(&corpus()[0]);
        let mut rng = StdRng::seed_from_u64(5);
        let (overrides, targets) = m.mlm_corrupt(&pq, &mut rng);
        let masked: Vec<usize> = (0..targets.len()).filter(|&i| targets[i] != usize::MAX).collect();
        assert!(!masked.is_empty(), "at least one position must be masked");
        for &i in &masked {
            assert!(pq.tokens[i].maskable, "masked a non-maskable position {i}");
            assert_eq!(targets[i], pq.tokens[i].vocab_id);
        }
        // Overrides only at masked positions.
        for (i, o) in overrides.iter().enumerate() {
            if o.is_some() {
                assert!(masked.contains(&i));
            }
        }
    }

    #[test]
    fn pretraining_reduces_loss_and_raises_accuracy() {
        let mut m = model();
        let stats = m.pretrain(&corpus(), 8, 5e-3);
        let first = stats.first().unwrap();
        let last = stats.last().unwrap();
        assert!(
            last.loss < first.loss * 0.8,
            "MLM loss should drop: {} → {}",
            first.loss,
            last.loss
        );
        assert!(last.accuracy > first.accuracy, "accuracy should rise");
    }

    #[test]
    fn equivalent_queries_embed_closer_than_unrelated_after_pretraining() {
        let mut m = model();
        let _ = m.pretrain(&corpus(), 6, 5e-3);
        let nodes = m.cached_nodes();
        let a = m.cls_vector(
            &parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 2000").unwrap(),
            nodes.as_ref(),
        );
        let b = m.cls_vector(
            &parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 2001").unwrap(),
            nodes.as_ref(),
        );
        let c = m.cls_vector(
            &parse(
                "SELECT COUNT(*) FROM title t, movie_companies mc \
                 WHERE t.id = mc.movie_id AND mc.company_id = 3",
            )
            .unwrap(),
            nodes.as_ref(),
        );
        let cos = |x: &[f32], y: &[f32]| {
            let dot: f32 = x.iter().zip(y).map(|(a, b)| a * b).sum();
            let nx: f32 = x.iter().map(|v| v * v).sum::<f32>().sqrt();
            let ny: f32 = y.iter().map(|v| v * v).sum::<f32>().sqrt();
            dot / (nx * ny).max(1e-9)
        };
        assert!(
            cos(&a, &b) > cos(&a, &c),
            "same-template queries should be closer: {} vs {}",
            cos(&a, &b),
            cos(&a, &c)
        );
    }

    #[test]
    fn finetune_gradients_touch_only_last_layer() {
        let m = model();
        let pq = m.prepare(&corpus()[0]);
        let nodes = m.cached_nodes();
        let mut rng = StdRng::seed_from_u64(7);
        let reps = m.encode_finetune(&pq, &nodes, &mut rng);
        ops::sum_all(&reps).backward();
        // Every last-layer parameter except the inter-layer merge (which
        // Eq. 8 bypasses at the last layer) must receive gradients.
        let with_grad = m
            .named_params("m")
            .into_iter()
            .filter(|(n, _)| n.contains("layer0") && !n.contains("g_merge"))
            .all(|(_, p)| p.grad().is_some());
        assert!(with_grad, "last layer must receive gradients");
        for p in m.input_params() {
            assert!(p.grad().is_none(), "input embedding must stay frozen");
        }
        for p in m.schema_params() {
            assert!(p.grad().is_none(), "schema module must stay frozen");
        }
    }

    #[test]
    fn bert_only_ablation_runs_without_schema() {
        let m = SqlBert::new(&corpus(), &schema(), buckets(), PreqrConfig::test().bert_only());
        assert!(m.schema2graph().is_none());
        let e = m.encode(&corpus()[0]);
        assert_eq!(e.cols(), PreqrConfig::test().d_model);
    }

    #[test]
    fn cached_nodes_match_fresh_encoding() {
        let m = model();
        let q = &corpus()[0];
        let cached = m.cached_nodes();
        assert_eq!(m.encode(q), m.encode_with_nodes(q, cached.as_ref()));
    }

    #[test]
    fn encode_batch_matches_single_encodes_bit_exactly() {
        let m = model();
        let qs = corpus();
        let batched = m.encode_batch(&qs);
        assert_eq!(batched.len(), qs.len());
        for (q, b) in qs.iter().zip(&batched) {
            assert_eq!(&m.encode(q), b, "batched embedding must equal the single-query one");
        }
        assert!(m.encode_batch(&[]).is_empty(), "empty batch is a no-op");
    }

    #[test]
    fn no_grad_encode_matches_tracked_eval_forward_bit_exactly() {
        // The inference mode must gate bookkeeping only: an eval forward
        // with the tape recording produces the same bytes as the
        // tape-free path `encode` takes.
        let m = model();
        let q = &corpus()[1];
        let pq = m.prepare(q);
        let mut rng = StdRng::seed_from_u64(0);
        let tracked = m.forward(&pq, None, m.cached_nodes().as_ref(), false, &mut rng);
        assert!(!preqr_nn::no_grad_active());
        assert_eq!(tracked.value_clone(), m.encode(q));
    }

    #[test]
    fn parameter_count_is_substantial_and_named() {
        let m = model();
        assert!(m.num_parameters() > 10_000);
        let names: Vec<String> = m.named_params("preqr").into_iter().map(|(n, _)| n).collect();
        assert!(names.iter().any(|n| n.contains("input.tok")));
        assert!(names.iter().any(|n| n.contains("schema2graph.gcn0")));
        assert!(names.iter().any(|n| n.contains("layer0.g_attn")));
        let unique: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "parameter names must be unique");
    }
}
