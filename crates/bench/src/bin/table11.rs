//! Table 11 — cost q-errors on the JOB workload with string predicates
//! (PG, LSTM, PreQR).

use preqr::PreqrConfig;
use preqr_bench::runner::{run_estimation, RowSelection};
use preqr_bench::Ctx;
use preqr_tasks::estimation::Target;

fn main() {
    let ctx = Ctx::build();
    let model = ctx.pretrained("main", PreqrConfig::small());
    let (train, valid) = ctx.job_train();
    let tests = vec![("JOB (strings)", ctx.job_workload())];
    run_estimation(
        &ctx,
        &model,
        Target::Cost,
        &train,
        &valid,
        &tests,
        RowSelection { mscn: false, neurocard: false },
        "PreQRCost",
    );
    println!("\npaper means: PG 105 / LSTM 9.4 / PreQR 6.5");
}
