//! Pipeline performance trajectory: appends timing/counter entries to
//! `results/BENCH_pipeline.json`.
//!
//! The file mirrors the `BENCH_kernels.json` layout — a schema header
//! plus one entry object per line — so entries stay diff-friendly and
//! greppable. Entries accumulate across sessions: each optimisation or
//! instrumentation change appends `label`-tagged rows, and the file
//! becomes the before/after record (e.g. `pre_obs` vs `obs_off` rows
//! demonstrate the disabled-path overhead bound).
//!
//! Serde is unavailable in this workspace's offline build, so the writer
//! renders JSON by hand and the appender preserves existing entry lines
//! textually rather than round-tripping through a parser.

use std::fmt::Write as _;
use std::path::Path;

/// Schema tag written to the file header.
pub const SCHEMA: &str = "preqr-bench-pipeline-v1";

/// One timed pipeline phase under one configuration.
#[derive(Clone, Debug)]
pub struct PipelineEntry {
    /// Change label, e.g. `pre_obs` (baseline before this layer existed)
    /// or `obs_off` / `obs_on` (after, tracing disabled / enabled).
    pub label: String,
    /// Pipeline phase: `pretrain`, `execute`, `finetune`, …
    pub phase: String,
    /// Worker-thread setting the phase ran under.
    pub threads: usize,
    /// Whether a trace sink was installed during the run.
    pub trace: bool,
    /// Best-of-N wall-clock seconds for the phase.
    pub seconds: f64,
    /// Metric counters captured after the run (empty when tracing off).
    pub counters: Vec<(String, u64)>,
}

impl PipelineEntry {
    /// Renders the entry as a single JSON object line (no trailing comma).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"label\": \"{}\", \"phase\": \"{}\", \"threads\": {}, \"trace\": {}, \"seconds\": {:.6}",
            escape(&self.label),
            escape(&self.phase),
            self.threads,
            self.trace,
            self.seconds
        );
        if !self.counters.is_empty() {
            s.push_str(", \"counters\": {");
            for (i, (k, v)) in self.counters.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{}\": {}", escape(k), v);
            }
            s.push('}');
        }
        s.push('}');
        s
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Extracts the existing entry lines (raw JSON objects, commas stripped)
/// from a trajectory file's text.
fn existing_entries(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_entries = false;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("\"entries\"") {
            in_entries = true;
            continue;
        }
        if !in_entries {
            continue;
        }
        if t == "]" || t == "]," {
            break;
        }
        if t.starts_with('{') {
            out.push(t.trim_end_matches(',').to_string());
        }
    }
    out
}

/// Renders the full trajectory file from entry lines.
fn render(entries: &[String]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
    s.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(s, "    {e}{comma}");
    }
    s.push_str("  ]\n}\n");
    s
}

/// Appends entries to the trajectory file, preserving existing rows.
///
/// # Errors
/// Propagates I/O failures reading or writing the file.
pub fn append(path: &Path, new: &[PipelineEntry]) -> std::io::Result<()> {
    let mut entries = match std::fs::read_to_string(path) {
        Ok(text) => existing_entries(&text),
        Err(_) => Vec::new(),
    };
    entries.extend(new.iter().map(PipelineEntry::to_json));
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, render(&entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &str, secs: f64) -> PipelineEntry {
        PipelineEntry {
            label: label.to_string(),
            phase: "pretrain".to_string(),
            threads: 1,
            trace: false,
            seconds: secs,
            counters: vec![],
        }
    }

    #[test]
    fn entry_renders_flat_json() {
        let mut e = entry("obs_off", 0.5);
        e.counters.push(("nn.matmul.calls".to_string(), 42));
        let j = e.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"label\": \"obs_off\""));
        assert!(j.contains("\"seconds\": 0.500000"));
        assert!(j.contains("\"counters\": {\"nn.matmul.calls\": 42}"));
    }

    #[test]
    fn render_then_reextract_round_trips() {
        let lines = vec![entry("a", 1.0).to_json(), entry("b", 2.0).to_json()];
        let text = render(&lines);
        assert_eq!(existing_entries(&text), lines);
        assert!(text.contains(SCHEMA));
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
