//! `preqr-serve`: batched SQL-embedding inference service.
//!
//! Wraps a [`preqr::SqlBert`] encoder in a synchronous-API service with
//! an internal worker thread:
//!
//! * **Dynamic micro-batching** — requests queue into micro-batches of
//!   up to `max_batch`; a partial batch closes after `batch_timeout`
//!   ticks of a [`clock::LogicalClock`], so wall-time influences only
//!   batch *boundaries*, never responses.
//! * **Tape-free batched encoding** — forwards run under
//!   `preqr_nn::no_grad`, skipping autograd bookkeeping while staying
//!   bit-identical to the training-mode eval forward.
//! * **Template cache** — an exact-counter LRU ([`cache::LruCache`])
//!   keyed on [`preqr_sql::normalize::template_text`], so queries
//!   differing only in literals/whitespace/case share one embedding.
//! * **Admission control** — a bounded queue rejects overload with
//!   [`ServeError::Rejected`] backpressure, and shutdown drains every
//!   accepted request before the worker exits.
//!
//! See `DESIGN.md` §9 for the determinism and failure contracts, and
//! [`service`] for the per-module details.
//!
//! # Quickstart
//!
//! ```no_run
//! use preqr_serve::{ServeConfig, Service};
//! # fn build_model() -> preqr::SqlBert { unimplemented!() }
//!
//! let service = Service::spawn(ServeConfig::default(), || build_model());
//! let embedding = service.encode_blocking("SELECT a FROM t WHERE b > 7").unwrap();
//! println!("CLS dim = {}", embedding.cls().len());
//! let stats = service.shutdown();
//! assert_eq!(stats.processed, stats.accepted);
//! ```

pub mod cache;
pub mod clock;
pub mod config;
pub mod service;

pub use cache::{CacheCounters, LruCache};
pub use clock::LogicalClock;
pub use config::ServeConfig;
pub use service::{Embedding, RejectReason, ServeError, ServeResult, ServeStats, Service, Ticket};
