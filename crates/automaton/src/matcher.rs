//! Walking a query's state-key stream through the automaton.

use serde::{Deserialize, Serialize};

use preqr_sql::normalize::StateKey;

use crate::{Automaton, UNKNOWN_STATE};

/// Result of matching a token stream against the automaton.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchResult {
    /// Per-token state ids — the SQL state embedding (Table 2). Same
    /// length as the input key stream.
    pub states: Vec<usize>,
    /// True when every consecutive transition exists and the walk ends in
    /// a final state.
    pub accepted: bool,
    /// Number of tokens whose state key was never seen in any template.
    pub unknown_tokens: usize,
    /// Number of consecutive state pairs with no registered transition.
    pub missing_transitions: usize,
}

impl MatchResult {
    /// Fraction of tokens with known states, in `[0, 1]` (a soft
    /// structural-coverage score used by downstream featurization).
    pub fn coverage(&self) -> f64 {
        if self.states.is_empty() {
            return 0.0;
        }
        1.0 - self.unknown_tokens as f64 / self.states.len() as f64
    }
}

pub(crate) fn match_keys(fa: &Automaton, keys: &[StateKey]) -> MatchResult {
    let states: Vec<usize> = keys.iter().map(|k| fa.state_of(k)).collect();
    let unknown_tokens = states.iter().filter(|&&s| s == UNKNOWN_STATE).count();
    let missing_transitions = states
        .windows(2)
        .filter(|w| {
            w[0] != UNKNOWN_STATE && w[1] != UNKNOWN_STATE && !fa.has_transition(w[0], w[1])
        })
        .count();
    let accepted = unknown_tokens == 0
        && missing_transitions == 0
        && states.last().is_some_and(|&s| fa.is_final(s));
    MatchResult { states, accepted, unknown_tokens, missing_transitions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_sql::normalize::state_keys;
    use preqr_sql::parser::parse;
    use preqr_sql::template::TemplateSet;

    #[test]
    fn coverage_reflects_unknowns() {
        let corpus = vec![parse("SELECT * FROM t").unwrap()];
        let fa = Automaton::from_templates(&TemplateSet::extract(&corpus, 0.0));
        let full = fa.match_keys(&state_keys(&corpus[0]));
        assert!((full.coverage() - 1.0).abs() < 1e-12);
        let other = fa.match_keys(&state_keys(&parse("SELECT * FROM t WHERE a = 1").unwrap()));
        assert!(other.coverage() < 1.0);
        assert!(other.coverage() > 0.0);
    }

    #[test]
    fn empty_stream_is_not_accepted() {
        let fa = Automaton::new();
        let m = fa.match_keys(&[]);
        assert!(!m.accepted);
        assert_eq!(m.coverage(), 0.0);
    }

    #[test]
    fn missing_transition_detected_between_known_states() {
        // Train two templates, then present a key order neither template
        // produced: states exist but a transition may be missing.
        let a = parse("SELECT * FROM t ORDER BY x").unwrap();
        let b = parse("SELECT * FROM t GROUP BY y").unwrap();
        let fa = Automaton::from_templates(&TemplateSet::extract(&[a, b], 0.0));
        // GROUP BY followed by ORDER BY was never observed together.
        let c = parse("SELECT * FROM t GROUP BY y ORDER BY x").unwrap();
        let m = fa.match_keys(&state_keys(&c));
        assert_eq!(m.unknown_tokens, 0, "all individual states are known");
        assert!(m.missing_transitions > 0);
        assert!(!m.accepted);
    }
}
