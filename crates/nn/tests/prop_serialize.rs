//! Property-based tests for the checkpoint format (`preqr_nn::serialize`):
//! round-trips are bit-exact, and corrupted buffers — truncated at any
//! point or with any single bit flipped — are rejected with `Err`, never
//! a panic and never a silently mis-applied parameter set.

use proptest::prelude::*;

use preqr_nn::serialize::{apply_params, read_params, write_params};
use preqr_nn::{Matrix, Tensor};

/// A named parameter list with random shapes and values (including the
/// non-finite floats a checksum must still protect).
fn params() -> impl Strategy<Value = Vec<(String, Tensor)>> {
    proptest::collection::vec(
        (
            "[a-z]{1,12}(\\.[a-z]{1,8}){0,2}",
            1usize..5,
            1usize..5,
            proptest::collection::vec(
                prop_oneof![
                    8 => -100.0f32..100.0,
                    1 => Just(f32::NAN),
                    1 => Just(f32::INFINITY),
                ],
                16,
            ),
        )
            .prop_map(|(name, r, c, data)| {
                (name, Tensor::param(Matrix::from_vec(r, c, data[..r * c].to_vec())))
            }),
        0..6,
    )
    .prop_map(|mut v| {
        // Duplicate names would make the round-trip map lossy by design;
        // keep names unique so equality is assertable.
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v.dedup_by(|a, b| a.0 == b.0);
        v
    })
}

fn encode(params: &[(String, Tensor)]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_params(&mut buf, params).expect("writing to a Vec cannot fail");
    buf
}

/// Bit-exact equality (NaN bit patterns included).
fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// write → read recovers every tensor bit-for-bit.
    #[test]
    fn round_trip_is_bit_exact(ps in params()) {
        let buf = encode(&ps);
        let loaded = read_params(&mut buf.as_slice()).expect("round trip");
        prop_assert_eq!(loaded.len(), ps.len());
        for (name, t) in &ps {
            let m = loaded.get(name).expect("name survives round trip");
            prop_assert!(bits_equal(m, &t.value_clone()), "bits diverged for {}", name);
        }
    }

    /// Applying a round-tripped checkpoint restores parameter values.
    #[test]
    fn apply_restores_values(ps in params()) {
        let buf = encode(&ps);
        let loaded = read_params(&mut buf.as_slice()).expect("round trip");
        // Scramble the in-memory parameters, then restore from the map.
        for (_, t) in &ps {
            let v = t.value_clone();
            t.set_value(v.map(|x| x + 1.0));
        }
        apply_params(&ps, &loaded).expect("apply round-tripped params");
        for (name, t) in &ps {
            prop_assert!(
                bits_equal(&t.value_clone(), &loaded[name]),
                "apply did not restore {}",
                name
            );
        }
    }

    /// Every strict prefix of a checkpoint is rejected (EOF mid-header,
    /// mid-payload, or mid-checksum — all of them), without panicking.
    #[test]
    fn truncation_always_errs(ps in params(), frac in 0.0f64..1.0) {
        let buf = encode(&ps);
        let cut = (((buf.len() as f64) * frac) as usize).min(buf.len() - 1);
        prop_assert!(
            read_params(&mut buf[..cut].as_ref()).is_err(),
            "truncation to {} of {} bytes must be detected",
            cut,
            buf.len()
        );
    }

    /// Any single bit flip anywhere in the buffer is rejected: the FNV-1a
    /// update is invertible per byte, so one changed byte always changes
    /// the trailing checksum.
    #[test]
    fn single_bit_flip_always_errs(ps in params(), pos in 0.0f64..1.0, bit in 0u8..8) {
        let mut buf = encode(&ps);
        let idx = ((buf.len() as f64) * pos) as usize % buf.len();
        buf[idx] ^= 1 << bit;
        prop_assert!(
            read_params(&mut buf.as_slice()).is_err(),
            "bit {} of byte {} flipped without detection",
            bit,
            idx
        );
    }

    /// Corrupted input never half-applies: if `read_params` errs, the
    /// parameters passed to a prior `apply_params` stay untouched.
    #[test]
    fn corrupt_reads_never_mutate(ps in params(), pos in 0.0f64..1.0) {
        prop_assume!(!ps.is_empty());
        let mut buf = encode(&ps);
        let idx = ((buf.len() as f64) * pos) as usize % buf.len();
        buf[idx] ^= 0x55;
        let before: Vec<Matrix> = ps.iter().map(|(_, t)| t.value_clone()).collect();
        if let Ok(loaded) = read_params(&mut buf.as_slice()) {
            // Checksum collisions are impossible for single-byte edits;
            // reaching here would itself be the bug.
            prop_assert!(false, "corrupt buffer decoded: {} entries", loaded.len());
        }
        for ((_, t), b) in ps.iter().zip(&before) {
            prop_assert!(bits_equal(&t.value_clone(), b), "parameters mutated by a failed read");
        }
    }
}
