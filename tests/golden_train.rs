//! Golden-trajectory tests for the `preqr-train` Trainer.
//!
//! `preqr_train::reference` keeps an independently written copy of the
//! legacy hand-rolled loop shape (Fisher–Yates shuffle, fixed-chunk
//! gradient accumulation, per-item f64 loss accumulation, patience-3
//! early stopping with best-snapshot restore). These tests rebuild the
//! migrated workloads' task closures by hand, run them through the
//! reference loop, and pin the production paths — `SqlBert::pretrain`
//! and the estimation fine-tuners — against it **bit-for-bit**: same
//! loss curves, same validation history, same final parameters.

use rand::rngs::StdRng;
use rand::SeedableRng;

use preqr::{PreqrConfig, SqlBert};
use preqr_baselines::lstm_est::{LstmEstimator, LstmVocab};
use preqr_baselines::mscn::{MscnFeaturizer, MscnModel};
use preqr_data::imdb::{generate, ImdbConfig};
use preqr_data::workloads::{self, LabeledQuery};
use preqr_engine::{CostModel, Database};
use preqr_nn::layers::Module;
use preqr_nn::{ops, Matrix, Tensor};
use preqr_sql::ast::Query;
use preqr_tasks::estimation::{self, Estimator, Normalizer, Target};
use preqr_tasks::metrics::qerror;
use preqr_train::{reference, FnTask, Plan, Schedule, StepOutput, TrainerConfig};

fn assert_params_bit_identical(a: &[Tensor], b: &[Tensor]) {
    assert_eq!(a.len(), b.len(), "parameter count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let (xv, yv) = (x.value_clone(), y.value_clone());
        assert_eq!(xv.shape(), yv.shape(), "param {i} shape");
        let same = xv.data().iter().zip(yv.data()).all(|(p, q)| p.to_bits() == q.to_bits());
        assert!(same, "param {i} diverged");
    }
}

fn setup() -> (Database, Vec<LabeledQuery>) {
    let db = generate(ImdbConfig::tiny());
    let qs = workloads::synthetic(&db, 90, 3);
    let labeled = workloads::label(&db, &qs, &CostModel::default());
    (db, labeled)
}

/// `SqlBert::pretrain` (Trainer path) against the hand-rolled legacy
/// loop shape: same shuffled visit order, same warmup-linear schedule,
/// same per-epoch stats, same final weights. The corpus length is
/// deliberately not a multiple of the chunk size (22 % 8 != 0) so the
/// schedule's `scheduled_steps` chunk counting is exercised end to end.
#[test]
fn pretrain_matches_legacy_reference_bit_for_bit() {
    const EPOCHS: usize = 2;
    const LR: f32 = 1e-3;
    let db = generate(ImdbConfig::tiny());
    let corpus = workloads::pretrain_corpus(&db, 22, 7);
    assert_ne!(corpus.len() % 8, 0, "corpus must not align with the chunk size");
    let buckets = preqr_tasks::setup::value_buckets_from_db(&db, 8);
    let mut trained = SqlBert::new(&corpus, db.schema(), buckets.clone(), PreqrConfig::test());
    let legacy = SqlBert::new(&corpus, db.schema(), buckets, PreqrConfig::test());

    // Production path.
    let stats = trained.pretrain(&corpus, EPOCHS, LR);

    // Legacy path: the same task closures, run by the reference loop.
    let mut rng = StdRng::seed_from_u64(legacy.config.seed.wrapping_add(1));
    let prepared: Vec<_> = corpus.iter().map(|q| legacy.prepare(q)).collect();
    let nodes = std::cell::RefCell::new(None);
    let mut task = FnTask::new("pretrain", prepared.len(), legacy.params(), |idx, rng| {
        let (loss, masked, correct) = legacy.mlm_loss(&prepared[idx], nodes.borrow().as_ref(), rng);
        let scalar = f64::from(loss.value_clone().get(0, 0));
        loss.backward();
        StepOutput { loss: scalar, masked, correct }
    })
    .with_chunk_start(|| *nodes.borrow_mut() = legacy.node_states());
    let config = TrainerConfig::new(Plan::Epochs { epochs: EPOCHS, chunk: 8, shuffle: true }, LR)
        .with_schedule(Schedule::bert(EPOCHS, corpus.len(), 8));
    let report = reference::run(&mut task, &config, &mut rng);

    assert_eq!(stats, report.stats, "per-epoch loss/accuracy trajectory");
    assert_params_bit_identical(&trained.params(), &legacy.params());
}

/// The MSCN fine-tuner against the reference loop: bit-identical
/// validation q-error history and predictions.
#[test]
fn mscn_finetune_matches_legacy_reference_bit_for_bit() {
    const EPOCHS: usize = 5;
    const SEED: u64 = 9;
    let (db, labeled) = setup();
    let (train, rest) = labeled.split_at(60);
    let valid = &rest[..20];

    // Production path.
    let pred = estimation::train_mscn(&db, None, train, valid, Target::Cardinality, EPOCHS, SEED);

    // Legacy path: rebuild the identical model/featurizer/normalizer and
    // run the same closures through the reference loop.
    let featurizer = MscnFeaturizer::new(&db, 0);
    let mut rng = StdRng::seed_from_u64(SEED);
    let model = MscnModel::new(&featurizer, 32, &mut rng);
    let norm = Normalizer::fit(
        &train.iter().map(|l| Target::Cardinality.log_truth(l)).collect::<Vec<_>>(),
    );
    let feats: Vec<_> = train.iter().map(|l| featurizer.featurize(&db, &l.query, None)).collect();
    let targets: Vec<f32> =
        train.iter().map(|l| norm.encode(Target::Cardinality.log_truth(l))).collect();
    let predict = |model: &MscnModel, q: &Query| -> f64 {
        let f = featurizer.featurize(&db, q, None);
        norm.decode(model.forward(&f, &featurizer).value_clone().get(0, 0))
    };
    let mut task = FnTask::new("est.mscn", train.len(), model.params(), |idx, _rng| {
        let p = model.forward(&feats[idx], &featurizer);
        let loss = ops::huber_loss(&p, &Matrix::full(1, 1, targets[idx]), 1.0);
        let scalar = f64::from(loss.value_clone().get(0, 0));
        loss.backward();
        StepOutput { loss: scalar, ..StepOutput::default() }
    })
    .with_eval(|| {
        valid
            .iter()
            .map(|lq| qerror(predict(&model, &lq.query), Target::Cardinality.truth(lq)))
            .sum::<f64>()
            / valid.len() as f64
    });
    let mut config =
        TrainerConfig::new(Plan::Epochs { epochs: EPOCHS, chunk: 16, shuffle: false }, 1e-3);
    config.patience = Some(3);
    let report = reference::run(&mut task, &config, &mut rng);

    let ref_history = report.val_history();
    assert_eq!(pred.history.len(), ref_history.len(), "epoch count");
    for (a, b) in pred.history.iter().zip(&ref_history) {
        assert_eq!(a.to_bits(), b.to_bits(), "validation q-error history diverged");
    }
    for lq in valid.iter().take(8) {
        assert_eq!(
            pred.predict(&lq.query).to_bits(),
            predict(&model, &lq.query).to_bits(),
            "post-restore predictions diverged"
        );
    }
}

/// The LSTM fine-tuner against the reference loop.
#[test]
fn lstm_finetune_matches_legacy_reference_bit_for_bit() {
    const EPOCHS: usize = 4;
    const SEED: u64 = 11;
    let (db, labeled) = setup();
    let (train, rest) = labeled.split_at(48);
    let valid = &rest[..16];

    // Production path.
    let pred = estimation::train_lstm(&db, None, train, valid, Target::Cardinality, EPOCHS, SEED);

    // Legacy path. With no sampler and the cardinality target the side
    // channels are all-zero / empty, exactly as in the fine-tuner.
    let corpus: Vec<Query> = train.iter().map(|l| l.query.clone()).collect();
    let vocab = LstmVocab::build(&corpus);
    let mut rng = StdRng::seed_from_u64(SEED);
    let model = LstmEstimator::new(&vocab, 24, 32, 0, &mut rng);
    let norm = Normalizer::fit(
        &train.iter().map(|l| Target::Cardinality.log_truth(l)).collect::<Vec<_>>(),
    );
    let encoded: Vec<(Vec<usize>, Vec<f32>, Vec<f32>, f32)> = train
        .iter()
        .map(|l| {
            let (ids, nums) = vocab.encode(&l.query);
            let channel = vec![0.0; ids.len()];
            (ids, nums, channel, norm.encode(Target::Cardinality.log_truth(l)))
        })
        .collect();
    let predict = |q: &Query| -> f64 {
        let (ids, nums) = vocab.encode(q);
        let channel = vec![0.0; ids.len()];
        norm.decode(model.forward(&ids, &nums, &channel, Some(&[])).value_clone().get(0, 0))
    };
    let mut task = FnTask::new("est.lstm", train.len(), model.params(), |idx, _rng| {
        let (ids, nums, channel, t) = &encoded[idx];
        let p = model.forward(ids, nums, channel, Some(&[]));
        let loss = ops::huber_loss(&p, &Matrix::full(1, 1, *t), 1.0);
        let scalar = f64::from(loss.value_clone().get(0, 0));
        loss.backward();
        StepOutput { loss: scalar, ..StepOutput::default() }
    })
    .with_eval(|| {
        valid
            .iter()
            .map(|lq| qerror(predict(&lq.query), Target::Cardinality.truth(lq)))
            .sum::<f64>()
            / valid.len() as f64
    });
    let mut config =
        TrainerConfig::new(Plan::Epochs { epochs: EPOCHS, chunk: 8, shuffle: false }, 1e-3);
    config.patience = Some(3);
    let report = reference::run(&mut task, &config, &mut rng);

    let ref_history = report.val_history();
    assert_eq!(pred.history.len(), ref_history.len(), "epoch count");
    for (a, b) in pred.history.iter().zip(&ref_history) {
        assert_eq!(a.to_bits(), b.to_bits(), "validation q-error history diverged");
    }
    for lq in valid.iter().take(8) {
        assert_eq!(
            pred.predict(&lq.query).to_bits(),
            predict(&lq.query).to_bits(),
            "post-restore predictions diverged"
        );
    }
}
