//! Shared estimation-experiment runner used by the table/figure binaries.

use preqr::SqlBert;
use preqr_data::workloads::LabeledQuery;
use preqr_tasks::estimation::{
    evaluate, train_corrected, train_lstm, train_mscn, train_preqr, Estimator, NeuroCardPredictor,
    PgBaseline, Target,
};
use preqr_tasks::metrics::QErrorStats;

use crate::Ctx;

/// Result rows of one estimation table: `(method, workload, stats)`.
pub type TableRows = Vec<(String, String, QErrorStats)>;

/// Which rows to include.
#[derive(Clone, Copy, Debug)]
pub struct RowSelection {
    /// Include MSCN (absent on JOB per the paper: "current MSCN model
    /// does not support string predicates").
    pub mscn: bool,
    /// Include the NeuroCard rows (cardinality + numeric workloads only).
    pub neurocard: bool,
}

/// Runs the full method battery for one target over test workloads,
/// printing rows as they complete and returning them.
pub fn run_estimation(
    ctx: &Ctx,
    model: &SqlBert,
    target: Target,
    train: &[LabeledQuery],
    valid: &[LabeledQuery],
    tests: &[(&str, Vec<LabeledQuery>)],
    rows: RowSelection,
    preqr_label: &str,
) -> TableRows {
    let _span = preqr_obs::span("bench.run_estimation")
        .field("label", preqr_label)
        .field("workloads", tests.len());
    let mut out = TableRows::new();
    let sampler = Some(&ctx.sampler);
    let epochs = ctx.sizes.est_epochs;

    let pg = PgBaseline::new(&ctx.db, &ctx.stats, target);
    let mscn = rows.mscn.then(|| {
        eprintln!("[run] training MSCN…");
        train_mscn(&ctx.db, sampler, train, valid, target, epochs, 7)
    });
    eprintln!("[run] training LSTM…");
    let lstm = train_lstm(&ctx.db, sampler, train, valid, target, epochs, 7);
    eprintln!("[run] fine-tuning PreQR…");
    let preqr = train_preqr(&ctx.db, model, sampler, train, valid, target, epochs, 7, preqr_label);
    let neurocard = (rows.neurocard && target == Target::Cardinality)
        .then(|| NeuroCardPredictor::new(&ctx.db, ctx.sizes.nc_samples, 7));
    let corrected = (rows.neurocard && target == Target::Cardinality).then(|| {
        eprintln!("[run] training NeuroCard+PreQR correction…");
        train_corrected(&ctx.db, model, sampler, train, valid, ctx.sizes.nc_samples, epochs, 7)
    });

    for (wname, workload) in tests {
        let mut methods: Vec<&dyn Estimator> = vec![&pg];
        if let Some(m) = &mscn {
            methods.push(m);
        }
        methods.push(&lstm);
        methods.push(&preqr);
        if let Some(n) = &neurocard {
            methods.push(n);
        }
        if let Some(c) = &corrected {
            methods.push(c);
        }
        crate::print_qerror_header(&format!("{wname} ({target:?})"));
        for m in methods {
            let stats = evaluate(m, target, workload);
            println!("{}", stats.row(&m.name()));
            out.push((m.name(), (*wname).to_string(), stats));
        }
    }
    out
}
