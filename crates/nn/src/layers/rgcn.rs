//! Relational graph convolution (Eq. 3 of the paper).
//!
//! `h_i^{l+1} = σ( Σ_r Σ_{j ∈ N_i^r} (1/λ_{i,r}) W_r h_j^l  +  W_self h_i^l )`
//!
//! The normalization constant λ is `|N_i^r|` as suggested by the paper; the
//! self-connection edge the paper adds per vertex is the `W_self` term.

use std::rc::Rc;

use rand::Rng;

use crate::init;
use crate::layers::{join, Module};
use crate::ops;
use crate::tensor::Tensor;

/// Pre-normalized adjacency for one relation type: `adj[i]` lists the
/// weighted in-neighbours of vertex `i`.
#[derive(Clone, Debug, Default)]
pub struct RelAdjacency {
    adj: Rc<Vec<Vec<(usize, f32)>>>,
}

impl RelAdjacency {
    /// Builds a normalized adjacency over `n` vertices from directed edges
    /// `(src, dst)`; each in-neighbour of `dst` gets weight `1/|N_dst|`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut lists: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n];
        for &(src, dst) in edges {
            assert!(src < n && dst < n, "edge ({src},{dst}) out of range for {n} vertices");
            lists[dst].push((src, 1.0));
        }
        for nbrs in &mut lists {
            let lambda = nbrs.len() as f32;
            if lambda > 0.0 {
                for (_, w) in nbrs.iter_mut() {
                    *w = 1.0 / lambda;
                }
            }
        }
        Self { adj: Rc::new(lists) }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Total number of stored (normalized) edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    pub(crate) fn lists(&self) -> Rc<Vec<Vec<(usize, f32)>>> {
        Rc::clone(&self.adj)
    }
}

/// One R-GCN layer with per-relation weight matrices plus a self-loop
/// weight.
pub struct RgcnLayer {
    w_rel: Vec<Tensor>,
    w_self: Tensor,
    relations: usize,
}

impl RgcnLayer {
    /// Creates a layer mapping `in_dim` vertex states to `out_dim`, with
    /// one weight matrix per relation type.
    pub fn new(in_dim: usize, out_dim: usize, relations: usize, rng: &mut impl Rng) -> Self {
        let w_rel = (0..relations)
            .map(|_| Tensor::param(init::xavier_uniform(in_dim, out_dim, rng)))
            .collect();
        Self { w_rel, w_self: Tensor::param(init::xavier_uniform(in_dim, out_dim, rng)), relations }
    }

    /// Forward pass: `h` is `n × in_dim`, `adjs` has one adjacency per
    /// relation (same vertex count), output is `relu`-activated `n × out_dim`.
    ///
    /// # Panics
    /// Panics if `adjs.len()` differs from the layer's relation count.
    pub fn forward(&self, h: &Tensor, adjs: &[RelAdjacency]) -> Tensor {
        assert_eq!(adjs.len(), self.relations, "relation count mismatch");
        let mut acc = ops::matmul(h, &self.w_self);
        for (w, adj) in self.w_rel.iter().zip(adjs.iter()) {
            if adj.edge_count() == 0 {
                continue;
            }
            let agg = ops::neighbor_agg(h, adj.lists());
            acc = ops::add(&acc, &ops::matmul(&agg, w));
        }
        ops::relu(&acc)
    }

    /// Number of relation types.
    pub fn relations(&self) -> usize {
        self.relations
    }
}

impl Module for RgcnLayer {
    fn collect_params(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        for (i, w) in self.w_rel.iter().enumerate() {
            out.push((join(prefix, &format!("w_rel{i}")), w.clone()));
        }
        out.push((join(prefix, "w_self"), self.w_self.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn adjacency_normalizes_by_in_degree() {
        let adj = RelAdjacency::from_edges(3, &[(0, 2), (1, 2), (2, 0)]);
        let lists = adj.lists();
        assert_eq!(lists[2], vec![(0, 0.5), (1, 0.5)]);
        assert_eq!(lists[0], vec![(2, 1.0)]);
        assert!(lists[1].is_empty());
        assert_eq!(adj.edge_count(), 3);
    }

    #[test]
    fn forward_shape_and_isolated_vertices() {
        let mut rng = StdRng::seed_from_u64(41);
        let layer = RgcnLayer::new(4, 6, 2, &mut rng);
        let h = Tensor::constant(Matrix::from_fn(5, 4, |r, c| (r + c) as f32 * 0.1));
        let adjs =
            vec![RelAdjacency::from_edges(5, &[(0, 1), (1, 2)]), RelAdjacency::from_edges(5, &[])];
        let out = layer.forward(&h, &adjs);
        assert_eq!(out.shape(), (5, 6));
    }

    #[test]
    fn information_propagates_along_edges() {
        let mut rng = StdRng::seed_from_u64(41);
        let layer = RgcnLayer::new(2, 2, 1, &mut rng);
        // Force positive weights so the ReLU cannot mask the propagation.
        for (_, p) in layer.named_params("") {
            let (r, c) = p.shape();
            p.set_value(Matrix::full(r, c, 0.5));
        }
        // Vertex 1 receives from vertex 0. Changing vertex 0's features must
        // change vertex 1's output; vertex 2 is isolated and must not change.
        let base = Matrix::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        let mut changed = base.clone();
        changed.set(0, 0, 5.0);
        let adjs = vec![RelAdjacency::from_edges(3, &[(0, 1)])];
        let out_a = layer.forward(&Tensor::constant(base), &adjs).value_clone();
        let out_b = layer.forward(&Tensor::constant(changed), &adjs).value_clone();
        assert_ne!(out_a.row(1), out_b.row(1), "edge should propagate change");
        assert_eq!(out_a.row(2), out_b.row(2), "isolated vertex must be unaffected");
    }

    #[test]
    #[should_panic(expected = "relation count mismatch")]
    fn rejects_wrong_relation_count() {
        let mut rng = StdRng::seed_from_u64(41);
        let layer = RgcnLayer::new(2, 2, 2, &mut rng);
        let h = Tensor::constant(Matrix::zeros(1, 2));
        let _ = layer.forward(&h, &[RelAdjacency::from_edges(1, &[])]);
    }

    #[test]
    fn gradients_reach_relation_weights() {
        let mut rng = StdRng::seed_from_u64(41);
        let layer = RgcnLayer::new(3, 3, 2, &mut rng);
        let h = Tensor::constant(Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.1 + 0.1));
        let adjs = vec![
            RelAdjacency::from_edges(4, &[(0, 1), (2, 3)]),
            RelAdjacency::from_edges(4, &[(3, 0)]),
        ];
        ops::sum_all(&layer.forward(&h, &adjs)).backward();
        for (name, p) in layer.named_params("g") {
            assert!(p.grad().is_some(), "missing grad for {name}");
        }
    }
}
