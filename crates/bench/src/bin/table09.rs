//! Table 9 — cost q-errors on the numeric workloads for PG, MSCN, LSTM
//! and PreQR.
//!
//! Expected shape (paper): PG ≫ MSCN > LSTM > PreQR, with PreQR's tail
//! percentiles improving the most.

use preqr::PreqrConfig;
use preqr_bench::runner::{run_estimation, RowSelection};
use preqr_bench::Ctx;
use preqr_tasks::estimation::Target;

fn main() {
    let ctx = Ctx::build();
    let model = ctx.pretrained("main", PreqrConfig::small());
    let (train, valid) = ctx.estimation_train();
    let tests = ctx.test_workloads();
    run_estimation(
        &ctx,
        &model,
        Target::Cost,
        &train,
        &valid,
        &tests,
        RowSelection { mscn: true, neurocard: false },
        "PreQRCost",
    );
    println!("\npaper means: JOB-light PG 173 / MSCN 27.4 / LSTM 17 / PreQR 5.25");
    println!("             Synthetic PG 62.7 / MSCN 10.3 / LSTM 4.45 / PreQR 1.09");
    println!("             Scale     PG 35.7 / MSCN 8.22 / LSTM 5.21 / PreQR 4.15");
}
