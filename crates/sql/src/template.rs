//! Query-template extraction (§3.3.1).
//!
//! Popular queries are clustered with the hybrid distance metric and one
//! template is created per cluster. Two levels exist:
//!
//! * exact template *occurrence* groups — queries with identical
//!   [`crate::normalize::template_text`] (literals abstracted), and
//! * *clusters* of occurrence groups merged by hybrid distance; each
//!   cluster yields one [`Template`] whose state-key sequence seeds a
//!   sub-automaton.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::ast::Query;
use crate::distance::hybrid_distance;
use crate::normalize::{state_keys, template_text, StateKey};

/// One extracted query template.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Template {
    /// Normalized template text of the representative query.
    pub text: String,
    /// State-key sequence of the representative query (automaton seed).
    pub keys: Vec<StateKey>,
    /// Number of corpus queries covered by this template.
    pub support: usize,
}

/// A set of templates extracted from a workload.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TemplateSet {
    templates: Vec<Template>,
}

impl TemplateSet {
    /// Extracts templates from a query corpus.
    ///
    /// Queries are first grouped by exact normalized text; group
    /// representatives are then greedily clustered: a representative joins
    /// the first existing cluster whose centroid is within
    /// `merge_threshold` hybrid distance, else it opens a new cluster.
    ///
    /// A `merge_threshold` of `0.0` keeps every distinct normalized shape
    /// as its own template; the paper's semi-automatic procedure
    /// corresponds to a small positive threshold (default `0.25` works
    /// well for the workloads in this repository).
    pub fn extract(queries: &[Query], merge_threshold: f64) -> Self {
        // Phase 1: exact occurrence groups.
        let mut groups: Vec<(String, &Query, usize)> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        for q in queries {
            let text = template_text(q);
            match index.get(&text) {
                Some(&i) => groups[i].2 += 1,
                None => {
                    index.insert(text.clone(), groups.len());
                    groups.push((text, q, 1));
                }
            }
        }
        // Deterministic order: by descending support, then text.
        groups.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));

        // Phase 2: greedy clustering of representatives.
        let mut templates: Vec<Template> = Vec::new();
        let mut reps: Vec<&Query> = Vec::new();
        for (text, q, support) in groups {
            let mut joined = false;
            for (i, rep) in reps.iter().enumerate() {
                if hybrid_distance(rep, q) <= merge_threshold {
                    templates[i].support += support;
                    joined = true;
                    break;
                }
            }
            if !joined {
                templates.push(Template { text, keys: state_keys(q), support });
                reps.push(q);
            }
        }
        Self { templates }
    }

    /// Number of templates (compare Table 3 of the paper).
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// True when no templates were extracted.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Iterates over the templates.
    pub fn iter(&self) -> impl Iterator<Item = &Template> {
        self.templates.iter()
    }

    /// Template by index.
    pub fn get(&self, i: usize) -> Option<&Template> {
        self.templates.get(i)
    }

    /// Total corpus queries covered.
    pub fn total_support(&self) -> usize {
        self.templates.iter().map(|t| t.support).sum()
    }
}

impl<'a> IntoIterator for &'a TemplateSet {
    type Item = &'a Template;
    type IntoIter = std::slice::Iter<'a, Template>;

    fn into_iter(self) -> Self::IntoIter {
        self.templates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn q(sql: &str) -> Query {
        parse(sql).unwrap()
    }

    #[test]
    fn identical_shapes_collapse_to_one_template() {
        let queries = vec![
            q("SELECT COUNT(*) FROM title t WHERE t.year > 2000"),
            q("SELECT COUNT(*) FROM title t WHERE t.year > 2010"),
            q("SELECT COUNT(*) FROM title t WHERE t.year > 1990"),
        ];
        let ts = TemplateSet::extract(&queries, 0.0);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.get(0).unwrap().support, 3);
    }

    #[test]
    fn distinct_structures_stay_separate_at_zero_threshold() {
        let queries = vec![
            q("SELECT COUNT(*) FROM title t WHERE t.year > 2000"),
            q("SELECT name FROM company_name ORDER BY name LIMIT 5"),
        ];
        let ts = TemplateSet::extract(&queries, 0.0);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn close_variants_merge_with_positive_threshold() {
        // Same shape except one extra predicate: close under the hybrid
        // metric, so a modest threshold merges them.
        let queries = vec![
            q("SELECT COUNT(*) FROM title t WHERE t.year > 2000"),
            q("SELECT COUNT(*) FROM title t WHERE t.year > 2000 AND t.kind_id = 1"),
        ];
        let strict = TemplateSet::extract(&queries, 0.0);
        let loose = TemplateSet::extract(&queries, 0.3);
        assert_eq!(strict.len(), 2);
        assert_eq!(loose.len(), 1);
        assert_eq!(loose.total_support(), 2);
    }

    #[test]
    fn templates_record_state_keys() {
        let queries = vec![q("SELECT * FROM t WHERE a = 1")];
        let ts = TemplateSet::extract(&queries, 0.0);
        let t = ts.get(0).unwrap();
        assert!(t.keys.len() > 5);
        assert_eq!(t.keys, state_keys(&queries[0]));
    }

    #[test]
    fn extraction_is_deterministic() {
        let queries = vec![
            q("SELECT * FROM a WHERE x = 1"),
            q("SELECT * FROM b WHERE y = 2"),
            q("SELECT * FROM a WHERE x = 3"),
        ];
        let a = TemplateSet::extract(&queries, 0.1);
        let b = TemplateSet::extract(&queries, 0.1);
        let texts_a: Vec<&str> = a.iter().map(|t| t.text.as_str()).collect();
        let texts_b: Vec<&str> = b.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts_a, texts_b);
    }

    #[test]
    fn empty_corpus_gives_empty_set() {
        let ts = TemplateSet::extract(&[], 0.2);
        assert!(ts.is_empty());
        assert_eq!(ts.total_support(), 0);
    }
}
