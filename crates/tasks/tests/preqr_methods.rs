//! Integration of the PreQR encoder with the clustering and generation
//! pipelines (the library paths the Table 7 binaries exercise at scale).

use preqr::{PreqrConfig, SqlBert};
use preqr_data::chdb::{generate, ChConfig};
use preqr_data::clustering::iit_bombay;
use preqr_data::text::{corpus, TextStyle};
use preqr_sql::ast::Query;
use preqr_tasks::clustering::{betacv_of, SimilarityMethod};
use preqr_tasks::setup::value_buckets_from_db;
use preqr_tasks::textgen::{train_generator, GenEncoder};

fn ch_model(extra: &[Query]) -> SqlBert {
    let db = generate(ChConfig::tiny());
    let mut corpus_q = iit_bombay().queries;
    corpus_q.extend(extra.iter().cloned());
    let buckets = value_buckets_from_db(&db, 6);
    let mut m = SqlBert::new(&corpus_q, db.schema(), buckets, PreqrConfig::test());
    m.pretrain(&corpus_q[..corpus_q.len().min(30)], 1, 2e-3);
    m
}

#[test]
fn preqr_similarity_separates_clusters_better_than_chance() {
    let ds = iit_bombay();
    let model = ch_model(&[]);
    let b = betacv_of(&SimilarityMethod::Preqr(&model), &ds.queries, &ds.labels);
    assert!(b.is_finite() && b > 0.0);
    assert!(b < 1.0, "within-cluster distances must beat between-cluster: {b}");
}

#[test]
fn preqr2seq_trains_and_generates() {
    let pairs = corpus(TextStyle::WikiSql, 12, 1);
    let queries: Vec<Query> = pairs.iter().map(|p| p.query.clone()).collect();
    let model = ch_model(&queries);
    let gen = train_generator(GenEncoder::Preqr2Seq(&model), &pairs, 16, 3, 5);
    assert_eq!(gen.name, "PreQR2Seq");
    let bleu = gen.evaluate(&pairs);
    assert!((0.0..=1.0).contains(&bleu));
    let words = gen.generate(&pairs[0].query, 16);
    assert!(words.len() <= 16);
}
