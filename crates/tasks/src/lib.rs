//! `preqr-tasks` — downstream task pipelines and evaluation metrics for
//! the PreQR reproduction.
//!
//! * [`metrics`] — q-error (Eq. 9), BetaCV, NDCG, BLEU (Eq. 10);
//! * [`estimation`] — the shared cardinality/cost pipeline: PG, MSCN,
//!   LSTM, PreQR (fine-tuned last layer + FC head), NeuroCard and
//!   NeuroCard+PreQR error correction, with validation early stopping;
//! * [`clustering`] — BetaCV over the labelled log datasets and
//!   NDCG / group distances on the CH workload;
//! * [`textgen`] — SQL-to-Text training/evaluation for every encoder
//!   variant;
//! * [`setup`] — convenience builders (value buckets from data,
//!   pre-trained models).

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index-heavy numeric kernels read clearer with explicit indices
pub mod clustering;
pub mod estimation;
pub mod metrics;
pub mod setup;
pub mod textgen;
