//! `preqr-sql` — SQL front-end for the PreQR reproduction.
//!
//! Provides the lexer ([`token`]), a typed AST with a round-tripping
//! pretty-printer ([`ast`]), a recursive-descent parser ([`parser`]) for
//! the SQL subset used by every workload in the paper, query
//! linearization into the canonical token stream with automaton state
//! keys ([`normalize`]), the hybrid clause similarity metric and template
//! clustering of §3.3.1 ([`distance`], [`template`]), and the two-
//! dictionary vocabulary plus value-range bucketing of §3.3.2 ([`vocab`]).
//!
//! # Example
//!
//! ```
//! use preqr_sql::parser::parse;
//! use preqr_sql::normalize::linearize;
//!
//! let q = parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 2010").unwrap();
//! let tokens = linearize(&q);
//! assert_eq!(tokens.first().unwrap().text, "[CLS]");
//! assert!(tokens.iter().any(|t| t.value.is_some())); // the literal 2010
//! ```

#![warn(missing_docs)]
pub mod ast;
pub mod distance;
pub mod normalize;
pub mod parser;
pub mod template;
pub mod token;
pub mod vocab;

pub use ast::Query;
pub use parser::parse;
