//! Property-level integration tests: every semantics-preserving rewrite
//! must agree with its seed when executed on the engine.

use preqr_data::chdb::{generate, ChConfig};
use preqr_data::rewrites;
use preqr_engine::execute;
use preqr_sql::parser::parse;
use preqr_sql::Query;

fn seeds() -> Vec<Query> {
    [
        "SELECT name FROM customer WHERE balance > 250",
        "SELECT id FROM orders WHERE carrier_id IN (1, 3, 5)",
        "SELECT id FROM order_line WHERE quantity BETWEEN 2 AND 6",
        "SELECT name FROM item WHERE category IN ('food', 'books')",
        "SELECT o.id FROM orders o WHERE o.customer_id IN \
         (SELECT c.id FROM customer c WHERE c.balance > 100)",
        "SELECT c.name FROM customer c, orders o WHERE c.id = o.customer_id \
         AND o.carrier_id = 2",
    ]
    .iter()
    .map(|s| parse(s).unwrap())
    .collect()
}

/// Signature on the tables shared by both queries (a rewrite may add a
/// join table, e.g. IN-subquery ↔ join).
fn shared_signature(
    a: &preqr_engine::QueryResult,
    b: &preqr_engine::QueryResult,
) -> (Vec<(String, Vec<u32>)>, Vec<(String, Vec<u32>)>) {
    let names_b: std::collections::HashSet<&String> =
        b.table_row_ids.iter().map(|(t, _)| t).collect();
    let sa: Vec<(String, Vec<u32>)> =
        a.table_row_ids.iter().filter(|(t, _)| names_b.contains(t)).cloned().collect();
    let names_a: std::collections::HashSet<&String> =
        a.table_row_ids.iter().map(|(t, _)| t).collect();
    let sb: Vec<(String, Vec<u32>)> =
        b.table_row_ids.iter().filter(|(t, _)| names_a.contains(t)).cloned().collect();
    (sa, sb)
}

#[test]
fn all_rewrites_preserve_result_signatures() {
    let db = generate(ChConfig::tiny());
    for seed in seeds() {
        let base = execute(&db, &seed).unwrap();
        let variants: Vec<(&str, Option<Query>)> = vec![
            ("in_list_to_union", rewrites::in_list_to_union(&seed)),
            ("between_to_range", rewrites::between_to_range(&seed)),
            ("subquery_to_join", rewrites::subquery_to_join(&seed)),
            ("shuffle_structure", Some(rewrites::shuffle_structure(&seed))),
            ("rename_aliases", Some(rewrites::rename_aliases(&seed, "z"))),
            ("duplicate_predicate", rewrites::duplicate_predicate(&seed)),
            ("add_aliases", rewrites::add_aliases(&seed)),
            ("eq_to_in_singleton", rewrites::eq_to_in_singleton(&seed)),
            ("negate_comparison", rewrites::negate_comparison(&seed)),
            ("add_not_null", rewrites::add_not_null(&seed)),
        ];
        for (name, v) in variants {
            let Some(v) = v else { continue };
            let got = execute(&db, &v).unwrap();
            let (sa, sb) = shared_signature(&base, &got);
            assert!(!sa.is_empty(), "{name}: no shared tables for {seed}");
            assert_eq!(sa, sb, "{name} changed semantics of {seed} → {v}");
        }
    }
}

#[test]
fn shift_constants_changes_results_but_keeps_template() {
    use preqr_sql::normalize::template_text;
    let db = generate(ChConfig::tiny());
    let seed = parse("SELECT name FROM customer WHERE balance > 250").unwrap();
    let shifted = rewrites::shift_constants(&seed, 200);
    assert_eq!(template_text(&seed), template_text(&shifted));
    let a = execute(&db, &seed).unwrap().base_row_ids;
    let b = execute(&db, &shifted).unwrap().base_row_ids;
    assert_ne!(a, b, "shifting constants must change the result");
}
