//! `preqr-serve`: batched, sharded SQL-embedding inference service.
//!
//! Wraps a [`preqr::SqlBert`] encoder in a synchronous-API service with
//! `shards` internal worker threads:
//!
//! * **Template-affinity sharding** — admission parses and normalizes
//!   each request, then routes it to a shard by a fixed hash of its
//!   template text ([`router`]). One template's cache entry and
//!   counters live on exactly one shard, which is what keeps sharded
//!   serving deterministic (see [`service`]).
//! * **Dynamic micro-batching** — each shard queues requests into
//!   micro-batches of up to `max_batch`; a partial batch closes after
//!   `batch_timeout` ticks of that shard's [`clock::LogicalClock`], so
//!   wall-time influences only batch *boundaries*, never responses.
//! * **Tape-free batched encoding** — forwards run under
//!   `preqr_nn::no_grad`, skipping autograd bookkeeping while staying
//!   bit-identical to the training-mode eval forward.
//! * **Template cache** — an exact-counter LRU ([`cache::LruCache`])
//!   keyed on [`preqr_sql::normalize::template_text`], split into
//!   per-shard slices, so queries differing only in
//!   literals/whitespace/case share one embedding.
//! * **Admission control and isolation** — each shard's bounded queue
//!   slice rejects overload with [`ServeError::Rejected`] backpressure;
//!   a panicking shard fails only its own requests; shutdown stops
//!   admission on all shards atomically and drains every accepted
//!   request before the workers exit.
//!
//! See `DESIGN.md` §9 for the determinism and failure contracts, and
//! [`service`] for the per-module details.
//!
//! # Quickstart
//!
//! ```no_run
//! use preqr_serve::{ServeConfig, Service};
//! # fn build_model() -> preqr::SqlBert { unimplemented!() }
//!
//! let config = ServeConfig { shards: 4, ..ServeConfig::default() };
//! let service = Service::spawn(config, |_shard| build_model());
//! let embedding = service.encode_blocking("SELECT a FROM t WHERE b > 7").unwrap();
//! println!("CLS dim = {}", embedding.cls().len());
//! let stats = service.shutdown();
//! assert_eq!(stats.processed, stats.accepted);
//! ```

pub mod cache;
pub mod clock;
pub mod config;
pub mod router;
pub mod service;
mod shard;

pub use cache::{CacheCounters, LruCache};
pub use clock::LogicalClock;
pub use config::ServeConfig;
pub use router::{affinity_hash, route};
pub use service::{Embedding, RejectReason, ServeError, ServeResult, ServeStats, Service, Ticket};
pub use shard::ShardStats;
