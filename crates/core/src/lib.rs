//! `preqr` — reproduction of **PreQR: Pre-training Representation for SQL
//! Understanding** (SIGMOD 2022).
//!
//! The model has three modules (Figure 3 of the paper):
//!
//! 1. **Input Embedding** ([`embedding`]) — composite token / SQL-state /
//!    position embeddings; literals are replaced by per-column value-range
//!    tokens; the SQL state comes from SQL2Automaton (crate
//!    `preqr-automaton`).
//! 2. **Query-Aware Schema** ([`schema2graph`]) — the database schema as a
//!    ten-relation graph, vertex names encoded with a BiLSTM, propagated
//!    with a relational GCN, linked to the query by scaled dot-product
//!    attention inside every transformer block.
//! 3. **SQLBERT** ([`sqlbert`]) — a stack of [`trm_g::TrmG`] layers
//!    pre-trained with masked language modelling; the final representation
//!    is `y = Concat(e_q, e_g)`.
//!
//! [`update`] implements the four incremental-update paths of §3.6.
//!
//! ```no_run
//! use preqr::{PreqrConfig, SqlBert, ValueBuckets};
//! use preqr_schema::{Column, ColumnType, Schema, Table};
//! use preqr_sql::parser::parse;
//!
//! let mut schema = Schema::new();
//! schema.add_table(Table::new("title", vec![
//!     Column::primary("id", ColumnType::Int),
//!     Column::new("production_year", ColumnType::Int),
//! ]));
//! let corpus = vec![
//!     parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 2000").unwrap(),
//! ];
//! let mut buckets = ValueBuckets::new(8);
//! buckets.insert("title", "production_year", (1930..2020).map(f64::from).collect());
//! let mut model = SqlBert::new(&corpus, &schema, buckets, PreqrConfig::small());
//! model.pretrain(&corpus, 3, 1e-3);
//! let embedding = model.cls_vector(&corpus[0], None);
//! assert_eq!(embedding.len(), PreqrConfig::small().output_dim());
//! ```

#![warn(missing_docs)]
pub mod config;
pub mod embedding;
pub mod schema2graph;
pub mod sqlbert;
pub mod trm_g;
pub mod update;

pub use config::PreqrConfig;
pub use embedding::{InputEmbedding, PreparedQuery, ValueBuckets};
pub use schema2graph::Schema2Graph;
pub use sqlbert::{EpochStats, PretrainOptions, SqlBert};
pub use trm_g::TrmG;
