//! Exact event-count tests for the observability layer.
//!
//! The determinism contract (see `preqr-obs` docs): spans sit at
//! deterministic program points and `flush_metrics` always emits the
//! full fixed registry, so the number of events a traced run emits is an
//! exact function of the work done — never of thread interleaving. These
//! tests pin that down across worker-pool widths (the CI thread matrix
//! re-runs the whole binary under `PREQR_THREADS=1,2,8`).

use std::sync::{Arc, Mutex, MutexGuard};

use preqr::{PreqrConfig, SqlBert};
use preqr_data::imdb::{generate, ImdbConfig};
use preqr_data::workloads;
use preqr_engine::execute;
use preqr_nn::parallel;
use preqr_obs as obs;
use preqr_obs::{EventKind, HistMetric, Metric};
use preqr_tasks::setup::value_buckets_from_db;

/// Obs state is process-global; tests in this binary serialize on it.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

const EPOCHS: usize = 2;

/// Runs a tiny traced pretrain under `threads` workers; returns the
/// emitted events, the final metric snapshot, and the loss trajectory.
fn traced_pretrain(threads: usize) -> (Vec<obs::Event>, obs::Snapshot, Vec<f64>) {
    parallel::set_thread_override(Some(threads));
    let sink = Arc::new(obs::TestSink::new());
    obs::reset_metrics();
    obs::install_sink(sink.clone());

    let db = generate(ImdbConfig::tiny());
    let corpus = workloads::pretrain_corpus(&db, 24, 7);
    let buckets = value_buckets_from_db(&db, 8);
    let mut m = SqlBert::new(&corpus, db.schema(), buckets, PreqrConfig::test());
    let stats = m.pretrain(&corpus, EPOCHS, 1e-3);

    obs::clear_sink();
    let snap = obs::snapshot();
    obs::set_metrics_enabled(false);
    obs::reset_metrics();
    parallel::set_thread_override(None);
    (sink.events(), snap, stats.into_iter().map(|s| s.loss).collect())
}

#[test]
fn traced_pretrain_event_stream_is_exact_and_thread_invariant() {
    let _g = lock();
    let widths = [1usize, 2, 8];
    let runs: Vec<_> = widths.iter().map(|&t| traced_pretrain(t)).collect();

    // `pretrain` emits one run span, one span per epoch, then flushes the
    // full registry: this count is exact, for every pool width.
    let expected = 1 + EPOCHS + Metric::ALL.len() + HistMetric::ALL.len();
    for ((events, _, _), &t) in runs.iter().zip(&widths) {
        assert_eq!(events.len(), expected, "event count at {t} threads");
        let spans = events.iter().filter(|e| e.kind == EventKind::Span).count();
        assert_eq!(spans, 1 + EPOCHS, "span count at {t} threads");
        assert_eq!(
            events.iter().filter(|e| e.kind == EventKind::Counter).count(),
            Metric::ALL.len()
        );
        assert_eq!(
            events.iter().filter(|e| e.kind == EventKind::Hist).count(),
            HistMetric::ALL.len()
        );
        // Span order is the program order: the shared Trainer emits one
        // `train.epoch` span per epoch and closes `train.run` after them.
        let span_names: Vec<&str> =
            events.iter().filter(|e| e.kind == EventKind::Span).map(|e| e.name).collect();
        assert_eq!(span_names, ["train.epoch", "train.epoch", "train.run"]);
    }

    // Work metrics are thread-count-invariant. The serial/pool dispatch
    // *split* legitimately varies with width, but the total does not.
    let (_, base, base_losses) = &runs[0];
    for ((_, snap, losses), &t) in runs.iter().zip(&widths).skip(1) {
        assert_eq!(losses, base_losses, "loss trajectory diverged at {t} threads");
        for name in [
            "pretrain.epochs",
            "pretrain.samples",
            "pretrain.steps",
            "pretrain.masked_tokens",
            "pretrain.correct_tokens",
            "train.runs",
            "train.epochs",
            "train.steps",
            "train.samples",
            "nn.matmul.calls",
        ] {
            assert_eq!(snap.counter(name), base.counter(name), "{name} at {t} threads");
        }
        let dispatch = |s: &obs::Snapshot| {
            s.counter("nn.dispatch.inline").unwrap() + s.counter("nn.dispatch.pool").unwrap()
        };
        let join = |s: &obs::Snapshot| {
            s.counter("nn.join.inline").unwrap() + s.counter("nn.join.pool").unwrap()
        };
        assert_eq!(dispatch(snap), dispatch(base), "total dispatches at {t} threads");
        assert_eq!(join(snap), join(base), "total joins at {t} threads");
        let mm = |s: &obs::Snapshot| s.hist("nn.matmul_us").unwrap().count;
        assert_eq!(mm(snap), mm(base), "matmul timer count at {t} threads");
    }
    let (_, snap, _) = &runs[0];
    assert_eq!(snap.counter("pretrain.epochs"), Some(EPOCHS as u64));
    assert_eq!(snap.counter("train.runs"), Some(1));
    assert_eq!(snap.counter("train.epochs"), Some(EPOCHS as u64));
    assert!(snap.counter("pretrain.samples").unwrap() > 0);
    assert!(snap.counter("nn.matmul.calls").unwrap() > 0);
}

/// Runs a tiny traced MSCN fine-tune under `threads` workers; returns
/// the emitted events and the final metric snapshot.
fn traced_finetune(threads: usize) -> (Vec<obs::Event>, obs::Snapshot) {
    parallel::set_thread_override(Some(threads));
    let sink = Arc::new(obs::TestSink::new());
    obs::reset_metrics();
    obs::install_sink(sink.clone());

    let db = generate(ImdbConfig::tiny());
    let qs = workloads::synthetic(&db, 40, 3);
    let labeled = workloads::label(&db, &qs, &preqr_engine::CostModel::default());
    let (train, valid) = labeled.split_at(32);
    let _pred = preqr_tasks::estimation::train_mscn(
        &db,
        None,
        train,
        valid,
        preqr_tasks::estimation::Target::Cardinality,
        FT_EPOCHS,
        5,
    );
    obs::flush_metrics();

    obs::clear_sink();
    let snap = obs::snapshot();
    obs::set_metrics_enabled(false);
    obs::reset_metrics();
    parallel::set_thread_override(None);
    (sink.events(), snap)
}

const FT_EPOCHS: usize = 2;

#[test]
fn traced_finetune_event_stream_is_exact_and_thread_invariant() {
    let _g = lock();
    let widths = [1usize, 2, 8];
    let runs: Vec<_> = widths.iter().map(|&t| traced_finetune(t)).collect();

    // Per epoch one `train.epoch` span, then the Trainer's `train.run`,
    // then the fine-tuner's own `est.train` wrapper span, then the full
    // registry flush. (2 epochs never trip patience-3 early stopping, so
    // the count is exact.)
    let expected = FT_EPOCHS + 2 + Metric::ALL.len() + HistMetric::ALL.len();
    let (base_events, base) = &runs[0];
    for ((events, snap), &t) in runs.iter().zip(&widths) {
        assert_eq!(events.len(), expected, "event count at {t} threads");
        let span_names: Vec<&str> =
            events.iter().filter(|e| e.kind == EventKind::Span).map(|e| e.name).collect();
        assert_eq!(span_names, ["train.epoch", "train.epoch", "train.run", "est.train"]);
        assert_eq!(snap.counter("train.runs"), Some(1), "train.runs at {t} threads");
        assert_eq!(
            snap.counter("train.epochs"),
            Some(FT_EPOCHS as u64),
            "train.epochs at {t} threads"
        );
        assert_eq!(snap.counter("est.train_runs"), Some(1));
        for name in ["train.steps", "train.samples", "est.epochs"] {
            assert_eq!(snap.counter(name), base.counter(name), "{name} at {t} threads");
        }
        assert_eq!(events.len(), base_events.len(), "event stream length at {t} threads");
    }
}

#[test]
fn engine_execution_emits_exact_counts() {
    let _g = lock();
    let sink = Arc::new(obs::TestSink::new());
    obs::reset_metrics();
    obs::install_sink(sink.clone());

    let db = generate(ImdbConfig::tiny());
    let queries = workloads::synthetic(&db, 20, 5);
    let ok = queries.iter().filter(|q| execute(&db, q).is_ok()).count();
    obs::flush_metrics();
    obs::clear_sink();
    let snap = obs::snapshot();
    obs::set_metrics_enabled(false);
    obs::reset_metrics();

    assert_eq!(snap.counter("engine.queries"), Some(queries.len() as u64));
    assert_eq!(snap.hist("engine.join_cardinality").unwrap().count, ok as u64);
    assert_eq!(
        snap.counter("engine.cap_hits").unwrap() + snap.counter("engine.errors").unwrap(),
        (queries.len() - ok) as u64
    );
    assert!(snap.counter("engine.rows_scanned").unwrap() > 0);
    // The flush is the entire event stream here — no spans in the engine.
    assert_eq!(sink.len(), Metric::ALL.len() + HistMetric::ALL.len());
}

#[test]
fn untraced_runs_stay_silent_and_free_of_state() {
    let _g = lock();
    obs::clear_sink();
    obs::set_metrics_enabled(false);
    obs::reset_metrics();

    let db = generate(ImdbConfig::tiny());
    let queries = workloads::synthetic(&db, 5, 5);
    for q in &queries {
        let _ = execute(&db, q);
    }
    let snap = obs::snapshot();
    assert_eq!(snap.counter("engine.queries"), Some(0), "disabled metrics must not aggregate");
    assert!(!obs::tracing_active());
}
