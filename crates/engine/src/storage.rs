//! Columnar in-memory storage.
//!
//! Tables are stored column-major: integers and floats as plain vectors,
//! strings dictionary-encoded. The executor works with row-id vectors over
//! these columns, so scans and joins never materialize row tuples until
//! projection.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use preqr_schema::{ColumnType, Schema};

/// A runtime value.
#[derive(Clone, Debug, PartialEq, PartialOrd, Serialize, Deserialize)]
pub enum Datum {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
}

impl Datum {
    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Datum::Int(v) => Some(*v as f64),
            Datum::Float(v) => Some(*v),
            Datum::Str(_) => None,
        }
    }
}

impl std::fmt::Display for Datum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Float(v) => write!(f, "{v}"),
            Datum::Str(s) => write!(f, "{s}"),
        }
    }
}

/// Per-column string dictionary.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StringDict {
    strings: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl StringDict {
    /// Interns a string, returning its code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&c) = self.index.get(s) {
            return c;
        }
        let c = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), c);
        c
    }

    /// Code of a string if interned.
    pub fn code(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// String for a code.
    pub fn string(&self, code: u32) -> &str {
        &self.strings[code as usize]
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates `(code, string)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (i as u32, s.as_str()))
    }
}

/// One column of data.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ColumnData {
    /// Integer column.
    Int(Vec<i64>),
    /// Float column.
    Float(Vec<f64>),
    /// Dictionary-encoded string column.
    Str {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// The dictionary.
        dict: StringDict,
    },
}

impl ColumnData {
    /// Creates an empty column of the given type.
    pub fn empty(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int | ColumnType::Bool => ColumnData::Int(Vec::new()),
            ColumnType::Float => ColumnData::Float(Vec::new()),
            ColumnType::Varchar => {
                ColumnData::Str { codes: Vec::new(), dict: StringDict::default() }
            }
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a datum.
    ///
    /// # Panics
    /// Panics on a type mismatch.
    pub fn push(&mut self, d: &Datum) {
        match (self, d) {
            (ColumnData::Int(v), Datum::Int(x)) => v.push(*x),
            (ColumnData::Float(v), Datum::Float(x)) => v.push(*x),
            (ColumnData::Float(v), Datum::Int(x)) => v.push(*x as f64),
            (ColumnData::Str { codes, dict }, Datum::Str(s)) => codes.push(dict.intern(s)),
            (col, d) => panic!("type mismatch pushing {d:?} into {}", col.type_name()),
        }
    }

    /// Value at a row.
    pub fn get(&self, row: usize) -> Datum {
        match self {
            ColumnData::Int(v) => Datum::Int(v[row]),
            ColumnData::Float(v) => Datum::Float(v[row]),
            ColumnData::Str { codes, dict } => Datum::Str(dict.string(codes[row]).to_string()),
        }
    }

    /// Numeric value at a row (`None` for strings).
    pub fn get_f64(&self, row: usize) -> Option<f64> {
        match self {
            ColumnData::Int(v) => Some(v[row] as f64),
            ColumnData::Float(v) => Some(v[row]),
            ColumnData::Str { .. } => None,
        }
    }

    /// Short type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            ColumnData::Int(_) => "int",
            ColumnData::Float(_) => "float",
            ColumnData::Str { .. } => "str",
        }
    }
}

/// One table's data (columns parallel the schema definition order).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TableData {
    /// Table name.
    pub name: String,
    /// Columns, parallel to the schema's column order.
    pub columns: Vec<ColumnData>,
}

impl TableData {
    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.columns.first().map_or(0, ColumnData::len)
    }
}

/// A database: a schema plus table data.
#[derive(Clone, Debug)]
pub struct Database {
    schema: Schema,
    tables: HashMap<String, TableData>,
}

impl Database {
    /// Creates a database with empty tables for every schema table.
    pub fn new(schema: Schema) -> Self {
        let tables = schema
            .tables()
            .iter()
            .map(|t| {
                let columns = t.columns.iter().map(|c| ColumnData::empty(c.ty)).collect();
                (t.name.clone(), TableData { name: t.name.clone(), columns })
            })
            .collect();
        Self { schema, tables }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Table data by name.
    pub fn table(&self, name: &str) -> Option<&TableData> {
        self.tables.get(name)
    }

    /// Appends a row to a table.
    ///
    /// # Panics
    /// Panics on unknown table or arity/type mismatch.
    pub fn insert(&mut self, table: &str, row: &[Datum]) {
        let t = self.tables.get_mut(table).unwrap_or_else(|| panic!("unknown table `{table}`"));
        assert_eq!(row.len(), t.columns.len(), "arity mismatch inserting into `{table}`");
        for (col, d) in t.columns.iter_mut().zip(row.iter()) {
            col.push(d);
        }
    }

    /// Bulk-append rows produced by a generator function (avoids building
    /// intermediate `Vec<Vec<Datum>>`).
    pub fn insert_many(&mut self, table: &str, n: usize, mut gen: impl FnMut(usize) -> Vec<Datum>) {
        for i in 0..n {
            let row = gen(i);
            self.insert(table, &row);
        }
    }

    /// Column data by table and column name.
    pub fn column(&self, table: &str, column: &str) -> Option<&ColumnData> {
        let idx = self.schema.table(table)?.column_index(column)?;
        self.tables.get(table).map(|t| &t.columns[idx])
    }

    /// Row count of a table (0 for unknown tables).
    pub fn row_count(&self, table: &str) -> usize {
        self.tables.get(table).map_or(0, TableData::row_count)
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(TableData::row_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_schema::{Column, Table};

    fn db() -> Database {
        let mut s = Schema::new();
        s.add_table(Table::new(
            "t",
            vec![
                Column::primary("id", ColumnType::Int),
                Column::new("score", ColumnType::Float),
                Column::new("name", ColumnType::Varchar),
            ],
        ));
        Database::new(s)
    }

    #[test]
    fn insert_and_read_back() {
        let mut db = db();
        db.insert("t", &[Datum::Int(1), Datum::Float(0.5), Datum::Str("a".into())]);
        db.insert("t", &[Datum::Int(2), Datum::Float(1.5), Datum::Str("b".into())]);
        assert_eq!(db.row_count("t"), 2);
        assert_eq!(db.column("t", "name").unwrap().get(1), Datum::Str("b".into()));
        assert_eq!(db.column("t", "score").unwrap().get_f64(0), Some(0.5));
        assert_eq!(db.total_rows(), 2);
    }

    #[test]
    fn dictionary_reuses_codes() {
        let mut db = db();
        for i in 0..4 {
            db.insert(
                "t",
                &[
                    Datum::Int(i),
                    Datum::Float(0.0),
                    Datum::Str(if i % 2 == 0 { "x" } else { "y" }.into()),
                ],
            );
        }
        match db.column("t", "name").unwrap() {
            ColumnData::Str { dict, codes } => {
                assert_eq!(dict.len(), 2);
                assert_eq!(codes[0], codes[2]);
            }
            _ => panic!("expected string column"),
        }
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn rejects_wrong_arity() {
        let mut db = db();
        db.insert("t", &[Datum::Int(1)]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn rejects_wrong_type() {
        let mut db = db();
        db.insert("t", &[Datum::Str("no".into()), Datum::Float(0.0), Datum::Str("a".into())]);
    }

    #[test]
    fn int_coerces_into_float_column() {
        let mut db = db();
        db.insert("t", &[Datum::Int(1), Datum::Int(3), Datum::Str("a".into())]);
        assert_eq!(db.column("t", "score").unwrap().get_f64(0), Some(3.0));
    }

    #[test]
    fn insert_many_generates_rows() {
        let mut db = db();
        db.insert_many("t", 10, |i| {
            vec![Datum::Int(i as i64), Datum::Float(i as f64), Datum::Str(format!("s{i}"))]
        });
        assert_eq!(db.row_count("t"), 10);
        assert_eq!(db.column("t", "id").unwrap().get(9), Datum::Int(9));
    }

    #[test]
    fn string_dict_round_trip() {
        let mut d = StringDict::default();
        let a = d.intern("alpha");
        let b = d.intern("beta");
        assert_eq!(d.intern("alpha"), a);
        assert_eq!(d.string(b), "beta");
        assert_eq!(d.code("beta"), Some(b));
        assert_eq!(d.code("missing"), None);
        assert_eq!(d.iter().count(), 2);
    }
}
