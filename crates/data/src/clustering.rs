//! Clustering datasets (§4.1.1).
//!
//! Two families, mirroring the paper:
//!
//! * **Labelled equivalence-cluster logs** — three profiles standing in
//!   for the IIT Bombay student queries, the UB Exam queries, and the
//!   PocketData mobile logs. Each dataset is a list of queries with a
//!   ground-truth cluster label; queries in one cluster are
//!   logically-equivalent rewrites of a seed intent. The profiles differ
//!   in how much *template overlap* exists between distinct clusters —
//!   template-based similarity metrics degrade as overlap rises, which is
//!   exactly the ordering the paper's Table 7 shows (IIT Bombay easiest,
//!   UB Exam / PocketData much harder).
//! * **CH-style similarity workload** — seed queries with an equivalent
//!   rewrite and same-template constant-shift variants; ground-truth
//!   similarity of any two queries is the row-id overlap of their result
//!   sets measured on the engine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use preqr_engine::{execute, Database};
use preqr_sql::ast::Query;
use preqr_sql::parser::parse;

use crate::rewrites;

/// A labelled clustering dataset.
#[derive(Clone, Debug)]
pub struct ClusteringDataset {
    /// Dataset name.
    pub name: String,
    /// The queries.
    pub queries: Vec<Query>,
    /// Ground-truth cluster label per query.
    pub labels: Vec<usize>,
}

impl ClusteringDataset {
    /// Number of distinct clusters.
    pub fn num_clusters(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }
}

fn q(sql: &str) -> Query {
    parse(sql).unwrap_or_else(|e| panic!("dataset seed failed to parse: {e}\n{sql}"))
}

/// Applies the full set of semantics-preserving rewrites to a seed and
/// returns up to `k` distinct variants (including the seed itself).
fn equivalent_variants(seed: &Query, k: usize) -> Vec<Query> {
    let mut out: Vec<Query> = vec![seed.clone()];
    let push = |v: Option<Query>, out: &mut Vec<Query>| {
        if let Some(v) = v {
            if !out.iter().any(|x| x.sql() == v.sql()) {
                out.push(v);
            }
        }
    };
    push(rewrites::in_list_to_union(seed), &mut out);
    push(rewrites::between_to_range(seed), &mut out);
    push(rewrites::subquery_to_join(seed), &mut out);
    push(Some(rewrites::shuffle_structure(seed)), &mut out);
    push(Some(rewrites::rename_aliases(seed, "x")), &mut out);
    push(rewrites::duplicate_predicate(seed), &mut out);
    push(rewrites::add_aliases(seed), &mut out);
    push(rewrites::eq_to_in_singleton(seed), &mut out);
    push(rewrites::negate_comparison(seed), &mut out);
    push(rewrites::add_not_null(seed), &mut out);
    // Second-order rewrites for more variety.
    if let Some(u) = rewrites::in_list_to_union(seed) {
        push(Some(rewrites::shuffle_structure(&u)), &mut out);
    }
    if let Some(j) = rewrites::subquery_to_join(seed) {
        push(Some(rewrites::rename_aliases(&j, "y")), &mut out);
    }
    out.truncate(k);
    out
}

/// IIT-Bombay-style dataset: distinct intents over distinct table sets —
/// clusters are well separated (the easiest profile; paper BetaCV ≈ 0.4–0.6).
pub fn iit_bombay() -> ClusteringDataset {
    let seeds = vec![
        q("SELECT name FROM customer WHERE balance > 500"),
        q("SELECT COUNT(*) FROM orders WHERE carrier_id IN (1, 2, 3)"),
        q("SELECT SUM(amount) FROM order_line WHERE quantity BETWEEN 3 AND 7"),
        q("SELECT name FROM item WHERE category IN ('food', 'toys')"),
        q("SELECT name FROM user WHERE rank IN ('adm', 'sup')"),
        q("SELECT SUM(balance) FROM accounts WHERE user_id IN \
           (SELECT id FROM user WHERE rank = 'adm')"),
        q("SELECT c.name FROM customer c, orders o WHERE c.id = o.customer_id \
           AND o.entry_date > 20200101"),
        q("SELECT i.name FROM item i, order_line ol WHERE i.id = ol.item_id \
           AND ol.quantity > 8"),
        q("SELECT COUNT(*) FROM district WHERE tax > 0.1"),
        q("SELECT name FROM customer WHERE discount BETWEEN 0.1 AND 0.2"),
        q("SELECT customer_id, COUNT(*) FROM orders GROUP BY customer_id \
           ORDER BY customer_id"),
        q("SELECT AVG(price) FROM item WHERE category = 'books'"),
    ];
    build_labelled("IIT Bombay", &seeds, 5)
}

/// UB-Exam-style dataset: intents deliberately share tables and
/// templates (different columns or constants express different exam
/// answers), so template metrics conflate clusters (paper BetaCV ≈ 0.6–0.9).
pub fn ub_exam() -> ClusteringDataset {
    let mut seeds = vec![
        q("SELECT name FROM customer WHERE balance > 500"),
        q("SELECT name FROM customer WHERE discount > 0.2"),
        q("SELECT name FROM customer WHERE balance < 0"),
        q("SELECT COUNT(*) FROM orders WHERE carrier_id = 1"),
        q("SELECT COUNT(*) FROM orders WHERE carrier_id = 9"),
        q("SELECT COUNT(*) FROM orders WHERE entry_date > 20220101"),
        q("SELECT SUM(amount) FROM order_line WHERE quantity > 5"),
        q("SELECT SUM(quantity) FROM order_line WHERE amount > 100"),
        q("SELECT name FROM item WHERE category = 'food'"),
        q("SELECT name FROM item WHERE category = 'garden'"),
        q("SELECT c.name FROM customer c, orders o WHERE c.id = o.customer_id \
           AND o.carrier_id = 2"),
        q("SELECT c.name FROM customer c, orders o WHERE c.id = o.customer_id \
           AND o.entry_date < 20190101"),
    ];
    // Same-template different-table confusers.
    seeds.push(rewrites::swap_table(&seeds[8], "item", "district"));
    build_labelled("UB Exam", &seeds, 4)
}

/// PocketData-style dataset: mobile key-value logs — very narrow,
/// highly-templated single-table queries where almost every cluster
/// shares the global template (the hardest profile; paper BetaCV ≈ 0.75–0.9).
pub fn pocketdata() -> ClusteringDataset {
    let mut seeds = Vec::new();
    for key in ["balance", "discount"] {
        for c in [100, 400, 700] {
            seeds.push(q(&format!("SELECT id FROM customer WHERE {key} > {c}")));
        }
    }
    for carrier in [0, 3, 6, 9] {
        seeds.push(q(&format!("SELECT id FROM orders WHERE carrier_id = {carrier}")));
    }
    for qty in [2, 5, 8] {
        seeds.push(q(&format!("SELECT id FROM order_line WHERE quantity = {qty}")));
    }
    for rank in ["adm", "usr", "gst"] {
        seeds.push(q(&format!("SELECT id FROM user WHERE rank = '{rank}'")));
    }
    build_labelled("PocketData", &seeds, 4)
}

fn build_labelled(name: &str, seeds: &[Query], per_cluster: usize) -> ClusteringDataset {
    let mut queries = Vec::new();
    let mut labels = Vec::new();
    for (label, seed) in seeds.iter().enumerate() {
        let vars = equivalent_variants(seed, per_cluster);
        for v in vars {
            queries.push(v);
            labels.push(label);
        }
    }
    ClusteringDataset { name: name.to_string(), queries, labels }
}

/// How two CH workload queries relate. Following §4.1.1 of the paper,
/// the classification is *measured*: queries are generated randomly and
/// pairs are classified by the row-id overlap of their executed results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairKind {
    /// Same seed and identical result sets (logically equivalent —
    /// structural rewrites and sub-bucket constant jitters both land
    /// here when the data has no rows between the constants).
    Equivalent,
    /// Same seed, overlapping but unequal results (same template,
    /// different constants).
    SameTemplate,
    /// Different seeds.
    Irrelevant,
}

/// The CH similarity workload.
#[derive(Clone, Debug)]
pub struct ChWorkload {
    /// All queries.
    pub queries: Vec<Query>,
    /// Seed id per query.
    pub seed_of: Vec<usize>,
    /// Ground-truth pairwise similarity: result row-id Jaccard overlap.
    pub overlap: Vec<Vec<f64>>,
}

impl ChWorkload {
    /// Relation between queries `i` and `j`, classified from the measured
    /// result overlap (§4.1.1).
    pub fn pair_kind(&self, i: usize, j: usize) -> PairKind {
        if self.seed_of[i] != self.seed_of[j] {
            PairKind::Irrelevant
        } else if self.overlap[i][j] >= 0.9999 {
            PairKind::Equivalent
        } else {
            PairKind::SameTemplate
        }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// CH seed templates (range predicates so constant shifts give partial
/// result overlap).
fn ch_seed(rng: &mut StdRng) -> Query {
    let balance = rng.random_range(-50..600);
    let qty = rng.random_range(2..8);
    let date = 20180601 + rng.random_range(0..5) * 10000;
    let cat_pairs = [("food", "toys"), ("books", "media"), ("tools", "garden"), ("food", "books")];
    let (c1, c2) = cat_pairs[rng.random_range(0..cat_pairs.len())];
    match rng.random_range(0..6) {
        0 => q(&format!("SELECT id FROM customer WHERE balance > {balance}")),
        1 => q(&format!(
            "SELECT c.id FROM customer c, orders o WHERE c.id = o.customer_id \
             AND o.entry_date > {date}"
        )),
        2 => q(&format!("SELECT id FROM order_line WHERE quantity >= {qty}")),
        3 => q(&format!("SELECT id FROM item WHERE category IN ('{c1}', '{c2}')")),
        4 => q(&format!(
            "SELECT o.id FROM orders o WHERE o.customer_id IN \
             (SELECT c.id FROM customer c WHERE c.balance > {balance})"
        )),
        _ => q(&format!("SELECT id FROM order_line WHERE amount > {}", rng.random_range(10..250))),
    }
}

/// Builds the CH workload: `n_seeds` random seeds, each expanded with
/// sub-bucket constant jitters (often result-identical on discrete
/// data), bucket-crossing constant shifts (same template, partial
/// overlap), and one structural rewrite; pairs are then classified by
/// executing every query on `db` and measuring result overlap, exactly
/// as §4.1.1 describes.
pub fn ch_workload(db: &Database, n_seeds: usize, seed: u64) -> ChWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::new();
    let mut seed_of = Vec::new();
    for s in 0..n_seeds {
        let base = ch_seed(&mut rng);
        let mut push = |q: Query, queries: &mut Vec<Query>, seed_of: &mut Vec<usize>| {
            if !queries.iter().any(|x| x.sql() == q.sql()) {
                queries.push(q);
                seed_of.push(s);
            }
        };
        push(base.clone(), &mut queries, &mut seed_of);
        // Sub-bucket jitters and bucket-crossing shifts.
        for delta in [1, 2, 41, 173] {
            push(rewrites::shift_constants(&base, delta), &mut queries, &mut seed_of);
        }
        // One structural rewrite when available.
        let structural = rewrites::in_list_to_union(&base)
            .or_else(|| rewrites::subquery_to_join(&base))
            .unwrap_or_else(|| rewrites::shuffle_structure(&base));
        push(structural, &mut queries, &mut seed_of);
    }
    // Measure ground-truth result overlap: Jaccard on the smallest table
    // name shared by both queries (stable across rewrites that add join
    // tables); queries with no shared table overlap 0.
    let ids: Vec<Vec<(String, Vec<u32>)>> = queries
        .iter()
        .map(|query| {
            execute(db, query)
                .unwrap_or_else(|e| panic!("CH query failed: {e}\n{query}"))
                .table_row_ids
        })
        .collect();
    let n = queries.len();
    let mut overlap = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        overlap[i][i] = 1.0;
        for j in i + 1..n {
            let common = ids[i]
                .iter()
                .find_map(|(t, v)| ids[j].iter().find(|(u, _)| u == t).map(|(_, w)| (v, w)));
            let o = match common {
                Some((a, b)) => jaccard_sorted(a, b),
                None => 0.0,
            };
            overlap[i][j] = o;
            overlap[j][i] = o;
        }
    }
    ChWorkload { queries, seed_of, overlap }
}

/// Jaccard of two sorted id lists.
fn jaccard_sorted(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chdb::{generate, ChConfig};

    #[test]
    fn labelled_datasets_have_consistent_shapes() {
        for ds in [iit_bombay(), ub_exam(), pocketdata()] {
            assert_eq!(ds.queries.len(), ds.labels.len());
            assert!(ds.num_clusters() >= 10, "{} too few clusters", ds.name);
            assert!(ds.queries.len() >= 3 * ds.num_clusters());
        }
    }

    #[test]
    fn variants_within_cluster_are_distinct_strings() {
        let ds = iit_bombay();
        for label in 0..ds.num_clusters() {
            let sqls: Vec<String> = ds
                .queries
                .iter()
                .zip(&ds.labels)
                .filter(|(_, &l)| l == label)
                .map(|(qq, _)| qq.sql())
                .collect();
            let distinct: std::collections::HashSet<&String> = sqls.iter().collect();
            assert_eq!(distinct.len(), sqls.len(), "cluster {label} has duplicate SQL");
        }
    }

    #[test]
    fn all_labelled_queries_execute_and_cluster_variants_agree() {
        let db = generate(ChConfig::tiny());
        let ds = iit_bombay();
        for label in 0..ds.num_clusters() {
            let members: Vec<&Query> = ds
                .queries
                .iter()
                .zip(&ds.labels)
                .filter(|(_, &l)| l == label)
                .map(|(qq, _)| qq)
                .collect();
            let first = execute(&db, members[0]).unwrap().base_row_ids;
            for m in &members[1..] {
                let ids = execute(&db, m).unwrap().base_row_ids;
                assert_eq!(ids, first, "variant not equivalent in cluster {label}: {m}");
            }
        }
    }

    #[test]
    fn ub_exam_has_cross_cluster_template_overlap() {
        use preqr_sql::normalize::template_text;
        let ds = ub_exam();
        // At least two different clusters must share a normalized template.
        let mut seen: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        let mut conflict = false;
        for (qq, &l) in ds.queries.iter().zip(&ds.labels) {
            let t = template_text(qq);
            if let Some(&other) = seen.get(&t) {
                if other != l {
                    conflict = true;
                    break;
                }
            }
            seen.insert(t, l);
        }
        assert!(conflict, "UB Exam profile must conflate templates across clusters");
    }

    #[test]
    fn ch_workload_overlap_structure() {
        let db = generate(ChConfig::tiny());
        let w = ch_workload(&db, 6, 3);
        assert!(w.len() >= 6 * 3, "got {} queries", w.len());
        let mut counts = [0usize; 3];
        let mut irrel_overlaps = Vec::new();
        for i in 0..w.len() {
            for jj in i + 1..w.len() {
                match w.pair_kind(i, jj) {
                    PairKind::Equivalent => {
                        counts[0] += 1;
                        assert!(w.overlap[i][jj] >= 0.9999, "by definition");
                    }
                    PairKind::SameTemplate => counts[1] += 1,
                    PairKind::Irrelevant => {
                        counts[2] += 1;
                        irrel_overlaps.push(w.overlap[i][jj]);
                    }
                }
            }
        }
        assert!(counts.iter().all(|&c| c > 0), "all three pair classes occur: {counts:?}");
        let ir_mean: f64 = irrel_overlaps.iter().sum::<f64>() / irrel_overlaps.len().max(1) as f64;
        assert!(ir_mean < 0.5, "irrelevant pairs should overlap weakly, got {ir_mean}");
    }

    #[test]
    fn jaccard_sorted_cases() {
        assert_eq!(jaccard_sorted(&[], &[]), 1.0);
        assert_eq!(jaccard_sorted(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(jaccard_sorted(&[1, 2], &[3]), 0.0);
        assert!((jaccard_sorted(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
    }
}
