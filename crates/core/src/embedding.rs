//! Input Embedding module (§3.3): composite token / SQL-state / position
//! embeddings with value-range tokens.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::Rng;

use preqr_automaton::Automaton;
use preqr_nn::layers::{join, Embedding, Linear, Module};
use preqr_nn::{ops, Tensor};
use preqr_schema::Schema;
use preqr_sql::ast::{Query, Value};
use preqr_sql::normalize::{linearize, state_keys};
use preqr_sql::template::TemplateSet;
use preqr_sql::vocab::{string_bucket, Bucketizer, Vocab, MASK};

use crate::config::PreqrConfig;

/// Per-column equi-depth value bucketizers (§3.3.2: "we transform
/// \[values\] into discrete ranges and use range tokens to denote them").
#[derive(Clone, Debug, Default)]
pub struct ValueBuckets {
    k: usize,
    map: HashMap<(String, String), Bucketizer>,
}

impl ValueBuckets {
    /// Creates an empty registry with `k` buckets per column.
    pub fn new(k: usize) -> Self {
        Self { k: k.max(1), map: HashMap::new() }
    }

    /// Registers a numeric column from value samples.
    pub fn insert(&mut self, table: &str, column: &str, samples: Vec<f64>) {
        self.map.insert(
            (table.to_string(), column.to_string()),
            Bucketizer::from_samples(samples, self.k),
        );
    }

    /// Number of buckets per column.
    pub fn buckets(&self) -> usize {
        self.k
    }

    /// The range token for a literal compared against `table.column`.
    /// Strings hash into `k` buckets; numeric literals use the column's
    /// equi-depth ranges (magnitude-based fallback when the column is
    /// unregistered).
    pub fn token_for(&self, table: &str, column: &str, v: &Value) -> String {
        match v {
            Value::Str(s) => format!("[STR#{}]", string_bucket(s, self.k)),
            other => {
                let x = other.as_f64().unwrap_or(0.0);
                match self.map.get(&(table.to_string(), column.to_string())) {
                    Some(b) => format!("{table}.{column}#r{}", b.bucket(x)),
                    None => {
                        let mag = x.abs().max(1.0).log10().floor() as i64;
                        format!("[NUM#m{mag}]")
                    }
                }
            }
        }
    }

    /// All possible range tokens (for vocabulary registration).
    pub fn all_tokens(&self) -> Vec<String> {
        let mut out = Vec::new();
        for b in 0..self.k {
            out.push(format!("[STR#{b}]"));
        }
        for m in 0..12 {
            out.push(format!("[NUM#m{m}]"));
        }
        for (t, c) in self.map.keys() {
            for b in 0..self.k {
                out.push(format!("{t}.{c}#r{b}"));
            }
        }
        out.sort();
        out
    }
}

/// A token prepared for the model: vocabulary id, automaton state, and
/// whether the MLM may mask it.
#[derive(Clone, Debug)]
pub struct PreparedToken {
    /// Vocabulary id (after value-range replacement).
    pub vocab_id: usize,
    /// Automaton state id.
    pub state_id: usize,
    /// Surface text after replacement.
    pub text: String,
    /// True when the token belongs to the database-specific mask
    /// dictionary.
    pub maskable: bool,
}

/// A query prepared for encoding.
#[derive(Clone, Debug)]
pub struct PreparedQuery {
    /// The tokens, `[CLS] … [END]`.
    pub tokens: Vec<PreparedToken>,
    /// Fraction of tokens with known automaton states.
    pub structure_coverage: f64,
}

impl PreparedQuery {
    /// Sequence length.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when the query produced no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// The Input Embedding module: vocabulary + automaton + value buckets +
/// the three learned embedding tables, combined by concatenation and a
/// linear projection to `d_model` (Figure 4).
pub struct InputEmbedding {
    vocab: Vocab,
    automaton: Automaton,
    buckets: ValueBuckets,
    tok_emb: Embedding,
    state_emb: Embedding,
    pos_emb: Embedding,
    proj: Linear,
    config: PreqrConfig,
}

/// Extra state-embedding rows reserved for templates added later
/// (§3.6 Case 3 incremental updates).
const STATE_SLACK: usize = 32;

impl InputEmbedding {
    /// Builds vocabulary and automaton from a pre-training corpus, a
    /// schema, and value bucketizers, then initializes the embedding
    /// tables.
    pub fn build(
        corpus: &[Query],
        schema: &Schema,
        buckets: ValueBuckets,
        config: PreqrConfig,
        rng: &mut StdRng,
    ) -> Self {
        // Templates → automaton (one sub-automaton per template, merged).
        let templates = TemplateSet::extract(corpus, 0.25);
        let automaton = Automaton::from_templates(&templates);

        // Vocabulary from the value-replaced token stream.
        let mut texts: Vec<String> = Vec::new();
        for q in corpus {
            for t in linearize(q) {
                texts.push(replaced_text(&t, q, schema, &buckets));
            }
        }
        let mut vocab = Vocab::build(texts.iter().map(String::as_str), 1);
        // Database-specific mask dictionary: keywords, schema tokens,
        // value-range tokens (§3.3.2).
        for kw in ["SELECT", "FROM", "WHERE", "AND", "OR", "IN", "LIKE", "UNION", "COUNT(*)"] {
            vocab.add_maskable(kw);
        }
        for t in schema.tables() {
            vocab.add_maskable(&t.name);
            for c in &t.columns {
                vocab.add_maskable(&c.name);
                vocab.add_maskable(&format!("{}.{}", t.name, c.name));
            }
        }
        for tok in buckets.all_tokens() {
            vocab.add_maskable(&tok);
        }

        let d = config.d_model;
        let state_rows = automaton.num_states() + STATE_SLACK;
        Self {
            tok_emb: Embedding::new(vocab.len(), d, rng),
            state_emb: Embedding::new(state_rows, d, rng),
            pos_emb: Embedding::new(config.max_seq, d, rng),
            proj: Linear::new(3 * d, d, rng),
            vocab,
            automaton,
            buckets,
            config,
        }
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The automaton.
    pub fn automaton(&self) -> &Automaton {
        &self.automaton
    }

    /// Mutable automaton access (incremental template updates, §3.6
    /// Case 3). New states must fit in the reserved slack.
    pub fn automaton_mut(&mut self) -> &mut Automaton {
        &mut self.automaton
    }

    /// The value bucketizers.
    pub fn buckets(&self) -> &ValueBuckets {
        &self.buckets
    }

    /// Prepares a query: linearize, replace literals with range tokens,
    /// attach automaton states and mask-dictionary membership.
    pub fn prepare(&self, q: &Query, schema: &Schema) -> PreparedQuery {
        let lin = linearize(q);
        let m = self.automaton.match_keys(&state_keys(q));
        let max_state = self.state_emb.vocab();
        let tokens = lin
            .iter()
            .zip(&m.states)
            .take(self.config.max_seq)
            .map(|(t, &state)| {
                let text = replaced_text(t, q, schema, &self.buckets);
                let vocab_id = self.vocab.encode_primary(&text);
                PreparedToken {
                    vocab_id,
                    state_id: if self.config.use_automaton { state.min(max_state - 1) } else { 0 },
                    maskable: self.vocab.is_maskable(vocab_id),
                    text,
                }
            })
            .collect();
        PreparedQuery { tokens, structure_coverage: m.coverage() }
    }

    /// Composite embedding forward pass: `n × d_model`.
    pub fn forward(&self, pq: &PreparedQuery, training: bool, rng: &mut StdRng) -> Tensor {
        self.forward_with_override(pq, None, training, rng)
    }

    /// Forward pass with some token ids overridden (the MLM's
    /// masked/corrupted inputs). `overrides[i] = Some(id)` replaces token
    /// `i`'s vocabulary id.
    pub fn forward_with_override(
        &self,
        pq: &PreparedQuery,
        overrides: Option<&[Option<usize>]>,
        training: bool,
        rng: &mut StdRng,
    ) -> Tensor {
        assert!(!pq.is_empty(), "cannot embed an empty query");
        let n = pq.len();
        let tok_ids: Vec<usize> = pq
            .tokens
            .iter()
            .enumerate()
            .map(|(i, t)| overrides.and_then(|o| o.get(i).copied().flatten()).unwrap_or(t.vocab_id))
            .collect();
        let state_ids: Vec<usize> = pq.tokens.iter().map(|t| t.state_id).collect();
        let pos_ids: Vec<usize> = (0..n).map(|i| i.min(self.config.max_seq - 1)).collect();
        let tok = self.tok_emb.forward(&tok_ids);
        let state = if self.config.use_automaton {
            self.state_emb.forward(&state_ids)
        } else {
            // Ablation: constant zero state channel.
            Tensor::constant(preqr_nn::Matrix::zeros(n, self.config.d_model))
        };
        let pos = self.pos_emb.forward(&pos_ids);
        let composite = ops::concat_cols(&ops::concat_cols(&tok, &state), &pos);
        let projected = self.proj.forward(&composite);
        ops::dropout(&projected, self.config.dropout, training, rng)
    }

    /// The `[MASK]` vocabulary id.
    pub fn mask_id(&self) -> usize {
        MASK
    }

    /// Random *maskable* vocabulary id (for the 10 % random-replacement
    /// branch of MLM).
    pub fn random_maskable_id(&self, rng: &mut StdRng) -> usize {
        let ids = self.vocab.maskable_ids();
        if ids.is_empty() {
            MASK
        } else {
            ids[rng.random_range(0..ids.len())]
        }
    }
}

impl Module for InputEmbedding {
    fn collect_params(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        self.tok_emb.collect_params(&join(prefix, "tok"), out);
        self.state_emb.collect_params(&join(prefix, "state"), out);
        self.pos_emb.collect_params(&join(prefix, "pos"), out);
        self.proj.collect_params(&join(prefix, "proj"), out);
    }
}

/// Replaces a literal token's text with its value-range token; resolves
/// the alias-qualified column to `(table, column)` through the query's
/// FROM lists.
fn replaced_text(
    t: &preqr_sql::normalize::LinToken,
    q: &Query,
    schema: &Schema,
    buckets: &ValueBuckets,
) -> String {
    let Some(v) = &t.value else {
        return t.text.clone();
    };
    let Some(col) = &t.value_col else {
        // Bare literal (e.g. LIMIT count).
        return buckets.token_for("", "", v);
    };
    let alias_map = alias_map(q);
    let table = match &col.table {
        Some(binding) => alias_map.get(binding).cloned().unwrap_or_else(|| binding.clone()),
        None => {
            // Unqualified: first query table containing the column.
            alias_map
                .values()
                .find(|t| schema.column(t, &col.column).is_some())
                .cloned()
                .unwrap_or_default()
        }
    };
    buckets.token_for(&table, &col.column, v)
}

fn alias_map(q: &Query) -> HashMap<String, String> {
    let mut map = HashMap::new();
    fn walk(stmt: &preqr_sql::ast::SelectStmt, map: &mut HashMap<String, String>) {
        for t in stmt.tables() {
            map.insert(t.binding().to_string(), t.table.clone());
        }
        if let Some(w) = &stmt.where_clause {
            walk_expr(w, map);
        }
    }
    fn walk_expr(e: &preqr_sql::ast::Expr, map: &mut HashMap<String, String>) {
        use preqr_sql::ast::Expr;
        match e {
            Expr::And(a, b) | Expr::Or(a, b) => {
                walk_expr(a, map);
                walk_expr(b, map);
            }
            Expr::Not(a) => walk_expr(a, map),
            Expr::InSubquery { subquery, .. } => {
                for s in subquery.selects() {
                    walk(s, map);
                }
            }
            _ => {}
        }
    }
    for s in q.selects() {
        walk(s, &mut map);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_schema::{Column, ColumnType, Table};
    use preqr_sql::parser::parse;
    use rand::SeedableRng;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_table(Table::new(
            "title",
            vec![
                Column::primary("id", ColumnType::Int),
                Column::new("production_year", ColumnType::Int),
            ],
        ));
        s
    }

    fn corpus() -> Vec<Query> {
        vec![
            parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 2000").unwrap(),
            parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 1990 AND t.id = 5")
                .unwrap(),
            parse("SELECT id FROM title WHERE production_year BETWEEN 1990 AND 2000").unwrap(),
        ]
    }

    fn build() -> InputEmbedding {
        let mut buckets = ValueBuckets::new(4);
        buckets.insert("title", "production_year", (1900..2020).map(f64::from).collect());
        let mut rng = StdRng::seed_from_u64(1);
        InputEmbedding::build(&corpus(), &schema(), buckets, PreqrConfig::test(), &mut rng)
    }

    #[test]
    fn literals_become_range_tokens() {
        let ie = build();
        let q = parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 2010").unwrap();
        let pq = ie.prepare(&q, &schema());
        let texts: Vec<&str> = pq.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(
            texts.iter().any(|t| t.starts_with("title.production_year#r")),
            "expected a range token in {texts:?}"
        );
        assert!(!texts.contains(&"2010"), "raw literal must be replaced");
    }

    #[test]
    fn same_bucket_values_share_tokens_different_buckets_differ() {
        let ie = build();
        let sch = schema();
        let tok = |y: i64| {
            let q = parse(&format!("SELECT COUNT(*) FROM title t WHERE t.production_year > {y}"))
                .unwrap();
            ie.prepare(&q, &sch)
                .tokens
                .iter()
                .find(|t| t.text.contains("#r"))
                .map(|t| t.text.clone())
                .expect("range token")
        };
        assert_eq!(tok(2011), tok(2015), "nearby years share a range");
        assert_ne!(tok(1905), tok(2015), "distant years differ");
    }

    #[test]
    fn prepare_attaches_states_and_maskability() {
        let ie = build();
        let q = parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 2000").unwrap();
        let pq = ie.prepare(&q, &schema());
        assert!(pq.structure_coverage > 0.99, "corpus query must match automaton");
        assert!(pq.tokens.iter().any(|t| t.maskable), "keywords are maskable");
        assert!(pq.tokens.iter().any(|t| t.state_id != 0));
    }

    #[test]
    fn forward_shape_and_determinism() {
        let ie = build();
        let q = parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 2000").unwrap();
        let pq = ie.prepare(&q, &schema());
        let mut rng = StdRng::seed_from_u64(2);
        let out = ie.forward(&pq, false, &mut rng);
        assert_eq!(out.shape(), (pq.len(), PreqrConfig::test().d_model));
        let out2 = ie.forward(&pq, false, &mut StdRng::seed_from_u64(99));
        assert_eq!(out.value_clone(), out2.value_clone(), "eval mode is deterministic");
    }

    #[test]
    fn override_changes_embedding() {
        let ie = build();
        let q = parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 2000").unwrap();
        let pq = ie.prepare(&q, &schema());
        let mut rng = StdRng::seed_from_u64(2);
        let clean = ie.forward(&pq, false, &mut rng).value_clone();
        let mut ov: Vec<Option<usize>> = vec![None; pq.len()];
        ov[1] = Some(ie.mask_id());
        let masked = ie.forward_with_override(&pq, Some(&ov), false, &mut rng).value_clone();
        assert_ne!(clean.row(1), masked.row(1), "masked row must change");
        assert_eq!(clean.row(0), masked.row(0), "other rows unchanged");
    }

    #[test]
    fn ablation_without_automaton_ignores_states() {
        let mut buckets = ValueBuckets::new(4);
        buckets.insert("title", "production_year", (1900..2020).map(f64::from).collect());
        let mut rng = StdRng::seed_from_u64(1);
        let ie = InputEmbedding::build(
            &corpus(),
            &schema(),
            buckets,
            PreqrConfig::test().without_automaton(),
            &mut rng,
        );
        let q = parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 2000").unwrap();
        let pq = ie.prepare(&q, &schema());
        assert!(pq.tokens.iter().all(|t| t.state_id == 0));
    }

    #[test]
    fn value_bucket_fallbacks() {
        let b = ValueBuckets::new(3);
        let s = b.token_for("x", "y", &Value::Str("abc".into()));
        assert!(s.starts_with("[STR#"));
        let n = b.token_for("x", "y", &Value::Int(5000));
        assert!(n.starts_with("[NUM#m"));
        assert!(b.all_tokens().iter().any(|t| t.starts_with("[STR#")));
    }
}
