//! `preqr-bench` — the reproduction harness.
//!
//! One binary per paper table/figure (run with
//! `cargo run --release -p preqr-bench --bin <id>`), plus criterion
//! micro-benchmarks under `benches/`. The shared context here builds the
//! mini-IMDB database, the pre-training corpus, the pre-trained PreQR
//! model (cached on disk under `artifacts/`), and the labelled
//! workloads, at a scale controlled by the `PREQR_SCALE` environment
//! variable (`small` default, `full` for longer runs closer to the
//! paper's sizes).

#![warn(missing_docs)]
use std::path::PathBuf;
use std::time::Instant;

use preqr::{PreqrConfig, SqlBert};
use preqr_data::imdb::{generate, ImdbConfig};
use preqr_data::workloads::{self, LabeledQuery};
use preqr_engine::{BitmapSampler, CostModel, Database, TableStats};
use preqr_nn::layers::Module;
use preqr_nn::serialize;
use preqr_obs as obs;
use preqr_sql::ast::Query;
use preqr_tasks::setup::value_buckets_from_db;

/// Run scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-per-binary defaults.
    Small,
    /// Larger corpora/epochs, closer to the paper's sizes.
    Full,
}

/// Reads `PREQR_SCALE` (`small` | `full`).
pub fn scale() -> Scale {
    match std::env::var("PREQR_SCALE").as_deref() {
        Ok("full") => Scale::Full,
        _ => Scale::Small,
    }
}

/// Scale-dependent experiment sizes.
#[derive(Clone, Copy, Debug)]
pub struct Sizes {
    /// `title` rows of the mini-IMDB.
    pub movies: usize,
    /// Pre-training corpus size (paper: 100,000).
    pub pretrain: usize,
    /// Pre-training epochs.
    pub pretrain_epochs: usize,
    /// Estimation training queries (paper: 90% of 100,000).
    pub train: usize,
    /// Validation queries.
    pub valid: usize,
    /// Synthetic test workload size (paper: 5,000).
    pub synthetic: usize,
    /// JOB-style test workload size.
    pub job: usize,
    /// Fine-tuning epochs for learned estimators.
    pub est_epochs: usize,
    /// SQL-to-Text corpus size per style.
    pub text_pairs: usize,
    /// SQL-to-Text training epochs.
    pub text_epochs: usize,
    /// NeuroCard sampling budget.
    pub nc_samples: usize,
}

impl Sizes {
    /// Sizes for a scale.
    pub fn of(scale: Scale) -> Self {
        match scale {
            Scale::Small => Self {
                movies: 4_000,
                pretrain: 1_500,
                pretrain_epochs: 4,
                train: 1_000,
                valid: 120,
                synthetic: 400,
                job: 50,
                est_epochs: 16,
                text_pairs: 160,
                text_epochs: 24,
                nc_samples: 600,
            },
            Scale::Full => Self {
                movies: 20_000,
                pretrain: 6_000,
                pretrain_epochs: 5,
                train: 4_000,
                valid: 400,
                synthetic: 2_000,
                job: 100,
                est_epochs: 16,
                text_pairs: 600,
                text_epochs: 40,
                nc_samples: 2_000,
            },
        }
    }
}

/// Shared experiment context.
pub struct Ctx {
    /// The mini-IMDB database.
    pub db: Database,
    /// Analyzed statistics.
    pub stats: TableStats,
    /// Materialized sample bitmaps.
    pub sampler: BitmapSampler,
    /// The engine cost model.
    pub cost_model: CostModel,
    /// Scale sizes.
    pub sizes: Sizes,
}

impl Ctx {
    /// Builds the context for the current scale.
    pub fn build() -> Self {
        let sizes = Sizes::of(scale());
        let _span = obs::span("bench.ctx_build").field("movies", sizes.movies);
        eprintln!("[ctx] generating mini-IMDB ({} movies)…", sizes.movies);
        let db = generate(ImdbConfig { movies: sizes.movies, ..ImdbConfig::default() });
        let stats = TableStats::analyze(&db);
        let sampler = BitmapSampler::new(&db, 64, 1);
        Self { db, stats, sampler, cost_model: CostModel::default(), sizes }
    }

    /// The MLM pre-training corpus.
    pub fn pretrain_corpus(&self) -> Vec<Query> {
        workloads::pretrain_corpus(&self.db, self.sizes.pretrain, 11)
    }

    /// Labels a workload with ground truth (executes every query).
    pub fn label(&self, queries: &[Query]) -> Vec<LabeledQuery> {
        workloads::label(&self.db, queries, &self.cost_model)
    }

    /// The estimation training/validation sets (numeric star workload,
    /// disjoint seed from every test workload).
    pub fn estimation_train(&self) -> (Vec<LabeledQuery>, Vec<LabeledQuery>) {
        let train = self.label(&workloads::synthetic(&self.db, self.sizes.train, 21));
        let valid = self.label(&workloads::synthetic(&self.db, self.sizes.valid, 22));
        (train, valid)
    }

    /// The mixed-predicate (JOB) training/validation sets.
    pub fn job_train(&self) -> (Vec<LabeledQuery>, Vec<LabeledQuery>) {
        let train = self.label(&workloads::job_full(&self.db, self.sizes.train / 2, 31));
        let valid = self.label(&workloads::job_full(&self.db, self.sizes.valid / 2 + 10, 32));
        (train, valid)
    }

    /// Test workloads `(name, labeled)` in paper order.
    pub fn test_workloads(&self) -> Vec<(&'static str, Vec<LabeledQuery>)> {
        vec![
            ("JOB-light", self.label(&workloads::job_light(&self.db, 41))),
            ("Synthetic", self.label(&workloads::synthetic(&self.db, self.sizes.synthetic, 42))),
            ("Scale", self.label(&workloads::scale(&self.db, 43))),
        ]
    }

    /// The string-predicate JOB test workload.
    pub fn job_workload(&self) -> Vec<LabeledQuery> {
        self.label(&workloads::job_full(&self.db, self.sizes.job, 44))
    }

    /// Builds (or loads from the artifact cache) a pre-trained PreQR
    /// model. The cache key covers the scale and the configuration tag,
    /// and vocabulary/automaton construction is deterministic, so cached
    /// parameters always match the freshly-built architecture.
    pub fn pretrained(&self, tag: &str, config: PreqrConfig) -> SqlBert {
        let _span = obs::span("bench.pretrained").field("tag", tag);
        let corpus = self.pretrain_corpus();
        let buckets = value_buckets_from_db(&self.db, config.value_buckets);
        let mut model = SqlBert::new(&corpus, self.db.schema(), buckets, config);
        let path = artifact_path(&format!(
            "preqr_{tag}_{:?}_{}x{}x{}.bin",
            scale(),
            config.layers,
            config.d_model,
            config.heads
        ));
        if let Ok(loaded) = serialize::load_from_file(&path) {
            if serialize::apply_params(&model.named_params("m"), &loaded).is_ok() {
                eprintln!("[ctx] loaded cached model {}", path.display());
                return model;
            }
        }
        eprintln!(
            "[ctx] pre-training PreQR[{tag}] (L={}, H={}, A={}) on {} queries…",
            config.layers,
            config.d_model,
            config.heads,
            corpus.len()
        );
        let t0 = Instant::now();
        let stats = model.pretrain(&corpus, self.sizes.pretrain_epochs, 1e-3);
        if let Some(last) = stats.last() {
            eprintln!(
                "[ctx] pre-training done in {:.1}s (loss {:.3}, mask acc {:.2})",
                t0.elapsed().as_secs_f64(),
                last.loss,
                last.accuracy
            );
        }
        let _ = std::fs::create_dir_all(path.parent().expect("artifact dir"));
        if let Err(e) = serialize::save_to_file(&path, &model.named_params("m")) {
            eprintln!("[ctx] warning: could not cache model: {e}");
        }
        model
    }
}

/// Artifact cache location (`artifacts/` at the workspace root).
pub fn artifact_path(name: &str) -> PathBuf {
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    root.join("artifacts").join(name)
}

/// Prints a table header in the Tables 8–11 format.
pub fn print_qerror_header(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:<20} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8}",
        "method", "median", "90th", "95th", "99th", "max", "mean"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale_up() {
        let s = Sizes::of(Scale::Small);
        let f = Sizes::of(Scale::Full);
        assert!(f.movies > s.movies);
        assert!(f.pretrain > s.pretrain);
    }

    #[test]
    fn scale_env_default_is_small() {
        // Note: assumes PREQR_SCALE is unset in the test environment.
        if std::env::var("PREQR_SCALE").is_err() {
            assert_eq!(scale(), Scale::Small);
        }
    }

    #[test]
    fn artifact_path_is_under_artifacts() {
        let p = artifact_path("x.bin");
        assert!(p.to_string_lossy().contains("artifacts"));
    }
}

pub mod runner;
pub mod trajectory;
