//! Event sinks: where completed events go.
//!
//! Three implementations cover the use cases in the issue: a JSONL
//! writer (`PREQR_TRACE=<path>`), an in-memory [`TestSink`] that tests
//! assert against, and — when no sink is installed — a no-op path whose
//! only cost is one relaxed atomic load per would-be event.

use std::io::Write;
use std::sync::Mutex;

use crate::event::Event;

/// Why a sink rejected an event. A failing sink is uninstalled by the
/// dispatcher and the layer degrades to no-op (see `crate::emit`).
#[derive(Debug)]
pub struct SinkError {
    /// Human-readable cause, carried into the degradation warning event.
    pub message: String,
}

impl std::fmt::Display for SinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SinkError {}

/// A destination for completed events.
pub trait Sink: Send + Sync {
    /// Records one event. Returning `Err` permanently degrades the
    /// tracing layer to no-op (one warning is kept, training continues).
    fn record(&self, event: &Event) -> Result<(), SinkError>;

    /// Flushes buffered output (best effort).
    fn flush(&self) -> Result<(), SinkError> {
        Ok(())
    }
}

/// In-memory sink for assertions in tests.
#[derive(Default)]
pub struct TestSink {
    events: Mutex<Vec<Event>>,
}

impl TestSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out every recorded event.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events with the given kind and name.
    pub fn count(&self, kind: crate::event::EventKind, name: &str) -> usize {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|e| e.kind == kind && e.name == name)
            .count()
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

impl Sink for TestSink {
    fn record(&self, event: &Event) -> Result<(), SinkError> {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).push(event.clone());
        Ok(())
    }
}

/// Writes one JSON object per line (schema v1, see `Event::to_jsonl`).
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer: Mutex::new(writer) }
    }
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) a JSONL trace file.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(JsonlSink::new(std::io::BufWriter::new(f)))
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&self, event: &Event) -> Result<(), SinkError> {
        let mut line = event.to_jsonl();
        line.push('\n');
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        w.write_all(line.as_bytes()).map_err(|e| SinkError { message: e.to_string() })
    }

    fn flush(&self) -> Result<(), SinkError> {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        w.flush().map_err(|e| SinkError { message: e.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn jsonl_sink_writes_lines() {
        let sink = JsonlSink::new(Vec::new());
        sink.record(&Event::new(EventKind::Counter, "a.b", 1.0)).unwrap();
        sink.record(&Event::new(EventKind::Counter, "a.b", 2.0)).unwrap();
        let buf = sink.writer.into_inner().unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn test_sink_counts_by_kind_and_name() {
        let sink = TestSink::new();
        sink.record(&Event::new(EventKind::Span, "s", 1.0)).unwrap();
        sink.record(&Event::new(EventKind::Span, "s", 2.0)).unwrap();
        sink.record(&Event::new(EventKind::Counter, "s", 1.0)).unwrap();
        assert_eq!(sink.count(EventKind::Span, "s"), 2);
        assert_eq!(sink.count(EventKind::Counter, "s"), 1);
        assert_eq!(sink.len(), 3);
    }

    /// Writer that fails after a byte budget — models a full disk.
    struct FailingWriter {
        budget: usize,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if buf.len() > self.budget {
                return Err(std::io::Error::other("disk full"));
            }
            self.budget -= buf.len();
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_surfaces_writer_errors() {
        let sink = JsonlSink::new(FailingWriter { budget: 64 });
        let ev = Event::new(EventKind::Counter, "some.counter.name", 1.0);
        assert!(sink.record(&ev).is_ok());
        assert!(sink.record(&ev).is_err(), "second write must exceed the budget");
    }
}
