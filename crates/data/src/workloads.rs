//! Workload generators mirroring §4.1.2 and Table 6 of the paper.
//!
//! * **Synthetic** — 5,000 unique queries, conjunctive equality/range
//!   predicates on non-key numeric columns, 0–2 joins (1636/1407/1957).
//! * **Scale** — 500 queries, 100 per join count 0–4, showing
//!   generalization to more joins than trained on.
//! * **JOB-light** — 70 queries, numeric predicates only, ≤ 4 joins with
//!   the distribution 0/3/32/23/12.
//! * **JOB-full** — string *and* numeric predicates, 4+ joins through the
//!   dimension tables (the paper's JOB with 4–28 joins, scaled to this
//!   schema).
//! * **Pre-training corpus** — the large mixed-shape query set PreQR's
//!   MLM is trained on (the paper uses 100,000 queries; the scale here is
//!   configurable).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use preqr_engine::{execute, CostModel, Database};
use preqr_sql::ast::{
    AggFunc, CmpOp, ColumnRef, Expr, Query, Scalar, SelectItem, SelectStmt, TableRef, Value,
};

/// A query labelled with its ground truth.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LabeledQuery {
    /// The query.
    pub query: Query,
    /// True join cardinality (≥ 1 for log-space learning).
    pub card: u64,
    /// True plan cost from the engine cost model on true intermediate
    /// sizes.
    pub cost: f64,
    /// Number of equi-join predicates.
    pub num_joins: usize,
}

/// The fact tables joined to `title` through `movie_id`, with their
/// standard aliases and numeric predicate columns.
const FACTS: [(&str, &str, &[&str]); 5] = [
    ("movie_companies", "mc", &["company_id", "company_type_id"]),
    ("movie_info", "mi", &["info_type_id"]),
    ("movie_info_idx", "mii", &["info_type_id", "info"]),
    ("movie_keyword", "mk", &["keyword_id"]),
    ("cast_info", "ci", &["person_id", "role_id"]),
];

const TITLE_COLS: [&str; 4] = ["production_year", "kind_id", "season_nr", "episode_nr"];

fn col(alias: &str, name: &str) -> ColumnRef {
    ColumnRef::qualified(alias, name)
}

/// Samples a literal from the actual column data (so predicates hit
/// realistic values).
fn sample_value(db: &Database, table: &str, column: &str, rng: &mut StdRng) -> i64 {
    let data = db.column(table, column).expect("numeric workload column");
    let n = data.len();
    if n == 0 {
        return 0;
    }
    data.get_f64(rng.random_range(0..n)).unwrap_or(0.0) as i64
}

fn numeric_predicate(
    db: &Database,
    table: &str,
    alias: &str,
    column: &str,
    rng: &mut StdRng,
) -> Expr {
    let v = sample_value(db, table, column, rng);
    let op = match rng.random_range(0..5) {
        0 => CmpOp::Eq,
        1 => CmpOp::Lt,
        2 => CmpOp::Le,
        3 => CmpOp::Gt,
        _ => CmpOp::Ge,
    };
    Expr::Cmp { left: Scalar::Column(col(alias, column)), op, right: Scalar::Value(Value::Int(v)) }
}

fn count_star() -> Vec<SelectItem> {
    vec![SelectItem::Aggregate { func: AggFunc::Count, arg: None, distinct: false }]
}

/// Builds a star query: `title` joined with `n_joins` distinct fact
/// tables, plus `n_preds` numeric predicates spread over the chosen
/// tables. With `n_joins == 0` a single table is used (title or a fact).
fn star_query(db: &Database, n_joins: usize, n_preds: usize, rng: &mut StdRng) -> Query {
    assert!(n_joins <= FACTS.len(), "at most {} star joins", FACTS.len());
    let mut stmt = SelectStmt { projections: count_star(), ..Default::default() };
    let mut preds: Vec<Expr> = Vec::new();
    // Choose tables.
    let mut fact_idx: Vec<usize> = (0..FACTS.len()).collect();
    for i in (1..fact_idx.len()).rev() {
        let j = rng.random_range(0..=i);
        fact_idx.swap(i, j);
    }
    let facts = &fact_idx[..n_joins];
    // Predicate site list: (table, alias, columns).
    let mut sites: Vec<(&str, &str, Vec<&str>)> = Vec::new();
    if n_joins == 0 && rng.random::<f64>() < 0.4 {
        // Single fact table.
        let (t, a, cols) = FACTS[fact_idx[0]];
        stmt.from.push(TableRef::aliased(t, a));
        sites.push((t, a, cols.to_vec()));
    } else {
        stmt.from.push(TableRef::aliased("title", "t"));
        sites.push(("title", "t", TITLE_COLS.to_vec()));
        for &f in facts {
            let (t, a, cols) = FACTS[f];
            stmt.from.push(TableRef::aliased(t, a));
            preds.push(Expr::Cmp {
                left: Scalar::Column(col("t", "id")),
                op: CmpOp::Eq,
                right: Scalar::Column(col(a, "movie_id")),
            });
            sites.push((t, a, cols.to_vec()));
        }
    }
    // Numeric predicates.
    for _ in 0..n_preds.max(1) {
        let (t, a, cols) = &sites[rng.random_range(0..sites.len())];
        let c = cols[rng.random_range(0..cols.len())];
        preds.push(numeric_predicate(db, t, a, c, rng));
    }
    stmt.where_clause = Some(Expr::and_all(preds));
    Query::single(stmt)
}

/// The Synthetic workload: `n` queries, join distribution of Table 6
/// (1636 : 1407 : 1957 over 0/1/2 joins).
pub fn synthetic(db: &Database, n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let r: f64 = rng.random();
            let joins = if r < 1636.0 / 5000.0 {
                0
            } else if r < (1636.0 + 1407.0) / 5000.0 {
                1
            } else {
                2
            };
            star_query(db, joins, rng.random_range(1..=3), &mut rng)
        })
        .collect()
}

/// The Scale workload: 100 queries per join count 0–4 (Table 6).
pub fn scale(db: &Database, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(500);
    for joins in 0..=4 {
        for _ in 0..100 {
            out.push(star_query(db, joins, rng.random_range(1..=3), &mut rng));
        }
    }
    out
}

/// The JOB-light-style workload: 70 queries with the join distribution
/// 0/3/32/23/12 over 0–4 joins (Table 6), numeric predicates only.
pub fn job_light(db: &Database, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist: [(usize, usize); 5] = [(0, 0), (1, 3), (2, 32), (3, 23), (4, 12)];
    let mut out = Vec::with_capacity(70);
    for (joins, count) in dist {
        for _ in 0..count {
            out.push(star_query(db, joins, rng.random_range(1..=4), &mut rng));
        }
    }
    out
}

const LIKE_FRAGMENTS: [&str; 6] =
    ["%drama%", "%comedy%", "%action%", "studio 0%", "%kw-0%", "%series%"];
const COUNTRY_CODES: [&str; 8] = ["us", "gb", "de", "fr", "jp", "in", "cn", "br"];
const INFO_VALUES: [&str; 6] = ["drama", "comedy", "english", "german", "french", "action"];

/// The JOB-style workload with string predicates: each query joins
/// `title` with 2–4 fact tables *and* their dimension tables (4–8 joins
/// total) and mixes LIKE / equality / IN string predicates with numeric
/// ones.
pub fn job_full(db: &Database, n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| job_full_query(db, &mut rng)).collect()
}

fn job_full_query(db: &Database, rng: &mut StdRng) -> Query {
    let mut stmt = SelectStmt { projections: count_star(), ..Default::default() };
    let mut preds: Vec<Expr> = Vec::new();
    stmt.from.push(TableRef::aliased("title", "t"));

    // Always join kind_type (a dimension) half of the time.
    if rng.random::<f64>() < 0.5 {
        stmt.from.push(TableRef::aliased("kind_type", "kt"));
        preds.push(Expr::Cmp {
            left: Scalar::Column(col("t", "kind_id")),
            op: CmpOp::Eq,
            right: Scalar::Column(col("kt", "id")),
        });
        let kinds = ["movie", "tv series", "tv movie", "episode"];
        preds.push(Expr::Cmp {
            left: Scalar::Column(col("kt", "kind")),
            op: CmpOp::Eq,
            right: Scalar::Value(Value::Str(kinds[rng.random_range(0..kinds.len())].into())),
        });
    }

    // 2–4 facts with optional dimensions.
    let mut fact_idx: Vec<usize> = (0..FACTS.len()).collect();
    for i in (1..fact_idx.len()).rev() {
        let j = rng.random_range(0..=i);
        fact_idx.swap(i, j);
    }
    let n_facts = rng.random_range(2..=4);
    for &f in fact_idx.iter().take(n_facts) {
        let (t, a, cols) = FACTS[f];
        stmt.from.push(TableRef::aliased(t, a));
        preds.push(Expr::Cmp {
            left: Scalar::Column(col("t", "id")),
            op: CmpOp::Eq,
            right: Scalar::Column(col(a, "movie_id")),
        });
        match t {
            "movie_companies" if rng.random::<f64>() < 0.7 => {
                stmt.from.push(TableRef::aliased("company_name", "cn"));
                preds.push(Expr::Cmp {
                    left: Scalar::Column(col(a, "company_id")),
                    op: CmpOp::Eq,
                    right: Scalar::Column(col("cn", "id")),
                });
                if rng.random::<f64>() < 0.6 {
                    preds.push(Expr::Cmp {
                        left: Scalar::Column(col("cn", "country_code")),
                        op: CmpOp::Eq,
                        right: Scalar::Value(Value::Str(
                            COUNTRY_CODES[rng.random_range(0..COUNTRY_CODES.len())].into(),
                        )),
                    });
                } else {
                    preds.push(Expr::Like {
                        col: col("cn", "name"),
                        pattern: LIKE_FRAGMENTS[rng.random_range(0..LIKE_FRAGMENTS.len())].into(),
                        negated: false,
                    });
                }
            }
            "movie_keyword" if rng.random::<f64>() < 0.7 => {
                stmt.from.push(TableRef::aliased("keyword", "k"));
                preds.push(Expr::Cmp {
                    left: Scalar::Column(col(a, "keyword_id")),
                    op: CmpOp::Eq,
                    right: Scalar::Column(col("k", "id")),
                });
                preds.push(Expr::Like {
                    col: col("k", "keyword"),
                    pattern: format!("{}%", INFO_VALUES[rng.random_range(0..INFO_VALUES.len())]),
                    negated: false,
                });
            }
            "movie_info" if rng.random::<f64>() < 0.6 => {
                if rng.random::<f64>() < 0.5 {
                    preds.push(Expr::Cmp {
                        left: Scalar::Column(col(a, "info")),
                        op: CmpOp::Eq,
                        right: Scalar::Value(Value::Str(
                            INFO_VALUES[rng.random_range(0..INFO_VALUES.len())].into(),
                        )),
                    });
                } else {
                    let a_v = INFO_VALUES[rng.random_range(0..INFO_VALUES.len())];
                    let b_v = INFO_VALUES[rng.random_range(0..INFO_VALUES.len())];
                    preds.push(Expr::InList {
                        col: col(a, "info"),
                        values: vec![Value::Str(a_v.into()), Value::Str(b_v.into())],
                        negated: false,
                    });
                }
            }
            _ => {
                let c = cols[rng.random_range(0..cols.len())];
                preds.push(numeric_predicate(db, t, a, c, rng));
            }
        }
    }
    // A numeric title predicate to anchor selectivity.
    preds.push(numeric_predicate(db, "title", "t", "production_year", rng));
    stmt.where_clause = Some(Expr::and_all(preds));
    Query::single(stmt)
}

/// The MLM pre-training corpus: a mixed-shape set covering all workload
/// families (star joins with 0–5 joins, string-heavy dimension joins,
/// BETWEEN/IN forms) so the automaton and vocabulary cover every
/// downstream query shape.
pub fn pretrain_corpus(db: &Database, n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| match i % 10 {
            0..=3 => star_query(db, rng.random_range(0..=2), rng.random_range(1..=3), &mut rng),
            4..=5 => star_query(db, rng.random_range(3..=5), rng.random_range(1..=3), &mut rng),
            6..=7 => job_full_query(db, &mut rng),
            8 => between_query(db, &mut rng),
            _ => in_list_query(db, &mut rng),
        })
        .collect()
}

fn between_query(db: &Database, rng: &mut StdRng) -> Query {
    let lo = sample_value(db, "title", "production_year", rng);
    let hi = lo + rng.random_range(1..=20);
    let mut stmt = SelectStmt { projections: count_star(), ..Default::default() };
    stmt.from.push(TableRef::aliased("title", "t"));
    stmt.where_clause = Some(Expr::Between {
        col: col("t", "production_year"),
        low: Value::Int(lo),
        high: Value::Int(hi),
    });
    Query::single(stmt)
}

fn in_list_query(db: &Database, rng: &mut StdRng) -> Query {
    let mut stmt = SelectStmt { projections: count_star(), ..Default::default() };
    stmt.from.push(TableRef::aliased("title", "t"));
    let k = rng.random_range(2..=4);
    let values = (0..k).map(|_| Value::Int(sample_value(db, "title", "kind_id", rng))).collect();
    stmt.where_clause = Some(Expr::InList { col: col("t", "kind_id"), values, negated: false });
    Query::single(stmt)
}

/// Number of equi-join predicates in a query.
pub fn num_joins(q: &Query) -> usize {
    let mut joins = 0;
    for s in q.selects() {
        let mut conjs: Vec<&Expr> = Vec::new();
        if let Some(w) = &s.where_clause {
            conjs.extend(w.conjuncts());
        }
        for j in &s.joins {
            conjs.extend(j.on.conjuncts());
        }
        for c in conjs {
            if let Expr::Cmp { left: Scalar::Column(a), op: CmpOp::Eq, right: Scalar::Column(b) } =
                c
            {
                if a.table != b.table {
                    joins += 1;
                }
            }
        }
    }
    joins
}

/// Executes every query to produce ground-truth labels.
///
/// # Panics
/// Panics if any generated query fails to execute — generated workloads
/// must be valid by construction.
pub fn label(db: &Database, queries: &[Query], cost_model: &CostModel) -> Vec<LabeledQuery> {
    queries
        .iter()
        .map(|q| {
            let r = execute(db, q).unwrap_or_else(|e| panic!("workload query failed: {e}\n{q}"));
            let ntables = q.body.tables().len();
            let base_rows: Vec<f64> =
                q.body.tables().iter().map(|t| db.row_count(&t.table) as f64).collect();
            let cost = cost_model.cost_from_steps(&base_rows, &r.step_cardinalities, ntables);
            LabeledQuery {
                query: q.clone(),
                card: r.join_cardinality.max(1),
                cost,
                num_joins: num_joins(q),
            }
        })
        .collect()
}

/// Join-count histogram of a workload (Table 6 reproduction).
pub fn join_distribution(queries: &[Query]) -> Vec<usize> {
    let mut hist = vec![0usize; 8];
    for q in queries {
        let j = num_joins(q).min(hist.len() - 1);
        hist[j] += 1;
    }
    while hist.len() > 1 && *hist.last().expect("non-empty") == 0 {
        hist.pop();
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::{generate, ImdbConfig};

    fn tiny_db() -> Database {
        generate(ImdbConfig::tiny())
    }

    #[test]
    fn synthetic_join_distribution_matches_table6() {
        let db = tiny_db();
        let qs = synthetic(&db, 1000, 1);
        let hist = join_distribution(&qs);
        let frac0 = hist[0] as f64 / 1000.0;
        let frac2 = hist[2] as f64 / 1000.0;
        assert!((frac0 - 1636.0 / 5000.0).abs() < 0.06, "0-join frac {frac0}");
        assert!((frac2 - 1957.0 / 5000.0).abs() < 0.06, "2-join frac {frac2}");
    }

    #[test]
    fn scale_has_100_queries_per_join_count() {
        let db = tiny_db();
        let qs = scale(&db, 1);
        assert_eq!(qs.len(), 500);
        let hist = join_distribution(&qs);
        assert_eq!(&hist[..5], &[100, 100, 100, 100, 100]);
    }

    #[test]
    fn job_light_distribution_matches_table6() {
        let db = tiny_db();
        let qs = job_light(&db, 1);
        assert_eq!(qs.len(), 70);
        let hist = join_distribution(&qs);
        assert_eq!(&hist[..5], &[0, 3, 32, 23, 12]);
    }

    #[test]
    fn job_full_has_string_predicates_and_many_joins() {
        let db = tiny_db();
        let qs = job_full(&db, 40, 1);
        assert!(qs.iter().all(|q| num_joins(q) >= 2));
        assert!(qs.iter().any(|q| num_joins(q) >= 4), "some queries should have ≥4 joins");
        let has_string = qs.iter().any(|q| q.sql().contains("LIKE") || q.sql().contains('\''));
        assert!(has_string, "JOB workload must contain string predicates");
    }

    #[test]
    fn all_workload_queries_execute() {
        let db = tiny_db();
        let cm = CostModel::default();
        let mut qs = synthetic(&db, 30, 2);
        qs.extend(scale(&db, 3).into_iter().take(30));
        qs.extend(job_light(&db, 4).into_iter().take(20));
        qs.extend(job_full(&db, 20, 5));
        qs.extend(pretrain_corpus(&db, 30, 6));
        let labeled = label(&db, &qs, &cm);
        assert_eq!(labeled.len(), qs.len());
        assert!(labeled.iter().all(|l| l.card >= 1));
        assert!(labeled.iter().all(|l| l.cost.is_finite() && l.cost > 0.0));
    }

    #[test]
    fn labels_have_variance() {
        let db = tiny_db();
        let cm = CostModel::default();
        let labeled = label(&db, &synthetic(&db, 80, 7), &cm);
        let cards: std::collections::HashSet<u64> = labeled.iter().map(|l| l.card).collect();
        assert!(cards.len() > 20, "cardinalities too uniform: {} distinct", cards.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let db = tiny_db();
        let a = synthetic(&db, 20, 9);
        let b = synthetic(&db, 20, 9);
        assert_eq!(
            a.iter().map(Query::sql).collect::<Vec<_>>(),
            b.iter().map(Query::sql).collect::<Vec<_>>()
        );
        let c = synthetic(&db, 20, 10);
        assert_ne!(
            a.iter().map(Query::sql).collect::<Vec<_>>(),
            c.iter().map(Query::sql).collect::<Vec<_>>()
        );
    }

    #[test]
    fn num_joins_counts_equijoins_only() {
        let db = tiny_db();
        let q = preqr_sql::parser::parse(
            "SELECT COUNT(*) FROM title t, movie_companies mc \
             WHERE t.id = mc.movie_id AND t.kind_id = 1",
        )
        .unwrap();
        assert_eq!(num_joins(&q), 1);
        let q0 =
            preqr_sql::parser::parse("SELECT COUNT(*) FROM title WHERE title.kind_id = 1").unwrap();
        assert_eq!(num_joins(&q0), 0);
        let _ = db;
    }
}
