//! Criterion micro-benchmarks over the hot paths of every reproduced
//! pipeline — one group per experiment family, so `cargo bench` tracks
//! regressions in the components each table/figure depends on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use preqr::{PreqrConfig, SqlBert};
use preqr_automaton::Automaton;
use preqr_data::imdb::{generate, ImdbConfig};
use preqr_data::workloads;
use preqr_engine::{execute, BitmapSampler, Database, PgEstimator, TableStats};
use preqr_sql::normalize::{linearize, state_keys};
use preqr_sql::parser::parse;
use preqr_sql::template::TemplateSet;
use preqr_tasks::setup::value_buckets_from_db;

const SQL: &str = "SELECT COUNT(*) FROM title t, movie_companies mc \
                   WHERE t.id = mc.movie_id AND t.production_year > 2010 \
                   AND mc.company_id = 5";

fn tiny_db() -> Database {
    generate(ImdbConfig::tiny())
}

fn bench_sql_frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("sql_frontend");
    g.bench_function("parse", |b| b.iter(|| parse(black_box(SQL)).unwrap()));
    let q = parse(SQL).unwrap();
    g.bench_function("linearize", |b| b.iter(|| linearize(black_box(&q))));
    g.finish();
}

fn bench_automaton(c: &mut Criterion) {
    let db = tiny_db();
    let corpus = workloads::pretrain_corpus(&db, 60, 11);
    let templates = TemplateSet::extract(&corpus, 0.25);
    let mut g = c.benchmark_group("automaton");
    g.bench_function("build_from_templates", |b| {
        b.iter(|| Automaton::from_templates(black_box(&templates)))
    });
    let fa = Automaton::from_templates(&templates);
    let keys = state_keys(&parse(SQL).unwrap());
    g.bench_function("match_query", |b| b.iter(|| fa.match_keys(black_box(&keys))));
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let db = tiny_db();
    let stats = TableStats::analyze(&db);
    let q = parse(SQL).unwrap();
    let mut g = c.benchmark_group("engine");
    g.bench_function("execute_join", |b| b.iter(|| execute(&db, black_box(&q)).unwrap()));
    g.bench_function("pg_estimate", |b| {
        b.iter(|| PgEstimator::new(&db, &stats).estimate(black_box(&q)).unwrap())
    });
    let sampler = BitmapSampler::new(&db, 64, 1);
    g.bench_function("bitmap_features", |b| {
        b.iter(|| sampler.bitmap_for(&db, black_box(&q), 0).unwrap())
    });
    g.finish();
}

fn bench_model(c: &mut Criterion) {
    let db = tiny_db();
    let corpus = workloads::pretrain_corpus(&db, 12, 11);
    let buckets = value_buckets_from_db(&db, 8);
    let mut model = SqlBert::new(&corpus, db.schema(), buckets, PreqrConfig::test());
    let q = parse(SQL).unwrap();
    let mut g = c.benchmark_group("preqr_model");
    g.sample_size(10);
    let nodes = model.cached_nodes();
    g.bench_function("encode_query", |b| {
        b.iter(|| model.encode_with_nodes(black_box(&q), nodes.as_ref()))
    });
    g.bench_function("schema_node_states", |b| {
        b.iter(|| model.schema2graph().unwrap().node_states().value_clone())
    });
    g.bench_function("mlm_pretrain_epoch_12q", |b| {
        b.iter(|| model.pretrain(black_box(&corpus), 1, 1e-3))
    });
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let db = tiny_db();
    let q = parse(SQL).unwrap();
    let mut g = c.benchmark_group("baselines");
    let featurizer = preqr_baselines::mscn::MscnFeaturizer::new(&db, 0);
    g.bench_function("mscn_featurize", |b| {
        b.iter(|| featurizer.featurize(&db, black_box(&q), None))
    });
    let nc = preqr_baselines::neurocard::SamplingEstimator::new(&db, 200, 7);
    g.bench_function("neurocard_estimate", |b| {
        b.iter(|| nc.estimate(black_box(&q)).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sql_frontend,
    bench_automaton,
    bench_engine,
    bench_model,
    bench_baselines
);
criterion_main!(benches);
