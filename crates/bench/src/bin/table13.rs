//! Table 13 — ablation over model size (#L, #H, #A) on the cost task.
//!
//! Expected shape (paper): accuracy improves monotonically with model
//! size, with diminishing returns (the paper picks L=4/H=256/A=4 as the
//! cost/quality sweet spot).

use preqr::PreqrConfig;
use preqr_bench::Ctx;
use preqr_tasks::estimation::{evaluate, train_preqr, Target};

fn main() {
    let ctx = Ctx::build();
    // CPU-scaled sweep mirroring the paper's (2,256,4)/(4,256,4)/
    // (6,256,8)/(12,256,8) ladder.
    let ladder: Vec<(usize, usize, usize)> = vec![(1, 32, 2), (2, 64, 4), (3, 64, 4), (4, 96, 4)];
    let (train, valid) = ctx.estimation_train();
    let tests = ctx.test_workloads();
    println!("=== Table 13: ablation over model size (cost estimation, mean q-error) ===");
    println!(
        "{:<4} {:<5} {:<4} {:>10} {:>10} {:>10}",
        "#L", "#H", "#A", "JOB-light", "Synthetic", "Scale"
    );
    for (l, h, a) in ladder {
        let config = PreqrConfig { layers: l, d_model: h, heads: a, ..PreqrConfig::small() };
        let model = ctx.pretrained(&format!("size_{l}_{h}_{a}"), config);
        let pred = train_preqr(
            &ctx.db,
            &model,
            Some(&ctx.sampler),
            &train,
            &valid,
            Target::Cost,
            ctx.sizes.est_epochs,
            7,
            "PreQRCost",
        );
        let means: Vec<f64> =
            tests.iter().map(|(_, w)| evaluate(&pred, Target::Cost, w).mean).collect();
        println!(
            "{:<4} {:<5} {:<4} {:>10.2} {:>10.2} {:>10.2}",
            l, h, a, means[0], means[1], means[2]
        );
    }
    println!("\npaper (JOB-light/Synthetic/Scale/JOB): 2,256,4→5.63/1.16/4.52/8.5; 4,256,4→5.25/1.09/4.15/8.0;");
    println!("                                       6,256,8→5.03/1.05/4.10/7.8; 12,256,8→4.94/1.04/4.07/7.7");
}
