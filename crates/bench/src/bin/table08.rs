//! Table 8 — cardinality q-errors on the numeric workloads (JOB-light /
//! Synthetic / Scale) for PG, MSCN, LSTM, PreQR, NeuroCard and
//! NeuroCard+PreQR.
//!
//! Expected shape (paper): PG ≫ MSCN > LSTM > PreQR on the query-driven
//! rows; NeuroCard best on JOB-light but worse than the query-driven
//! models on Synthetic/Scale; NeuroCard+PreQR improves NeuroCard.

use preqr::PreqrConfig;
use preqr_bench::runner::{run_estimation, RowSelection};
use preqr_bench::Ctx;
use preqr_tasks::estimation::Target;

fn main() {
    let ctx = Ctx::build();
    let model = ctx.pretrained("main", PreqrConfig::small());
    let (train, valid) = ctx.estimation_train();
    let tests = ctx.test_workloads();
    run_estimation(
        &ctx,
        &model,
        Target::Cardinality,
        &train,
        &valid,
        &tests,
        RowSelection { mscn: true, neurocard: true },
        "PreQRCard",
    );
    println!("\npaper means: JOB-light PG 174 / MSCN 57.9 / LSTM 24.9 / PreQR 11.5 / NeuroCard 2.33 / NC+PreQR 2.16");
    println!("             Synthetic PG 154 / MSCN 2.89 / LSTM 2.87 / PreQR 2.86 / NeuroCard 6.25 / NC+PreQR 2.83");
    println!("             Scale     PG 568 / MSCN 35.1 / LSTM 28.1 / PreQR 25.8 / NeuroCard 21.1 / NC+PreQR 18.5");
}
