//! The paper's full configuration (L=4, H=256, A=4) must build and
//! encode (pre-training at that size is a long-run job, exercised by the
//! PREQR_SCALE=full reproduction binaries).

use preqr::{PreqrConfig, SqlBert, ValueBuckets};
use preqr_schema::{Column, ColumnType, ForeignKey, Schema, Table};
use preqr_sql::parser::parse;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_table(Table::new(
        "title",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("production_year", ColumnType::Int),
        ],
    ));
    s.add_table(Table::new(
        "movie_companies",
        vec![Column::primary("id", ColumnType::Int), Column::new("movie_id", ColumnType::Int)],
    ));
    s.add_foreign_key(ForeignKey {
        from_table: "movie_companies".into(),
        from_column: "movie_id".into(),
        to_table: "title".into(),
        to_column: "id".into(),
    });
    s
}

#[test]
fn paper_configuration_builds_and_encodes() {
    let corpus = vec![
        parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 2000").unwrap(),
        parse(
            "SELECT COUNT(*) FROM title t, movie_companies mc \
             WHERE t.id = mc.movie_id AND t.production_year > 2010",
        )
        .unwrap(),
    ];
    let mut buckets = ValueBuckets::new(10);
    buckets.insert("title", "production_year", (1930..2020).map(f64::from).collect());
    let config = PreqrConfig::paper();
    assert_eq!((config.layers, config.d_model, config.heads), (4, 256, 4));
    let model = SqlBert::new(&corpus, &schema(), buckets, config);
    // The paper reports ~40M parameters with the 30k WordPiece vocab; at
    // this tiny vocabulary the transformer stack alone is ~6M.
    assert!(model.num_parameters() > 3_000_000, "{}", model.num_parameters());
    let e = model.encode(&corpus[1]);
    assert_eq!(e.cols(), config.output_dim());
    assert!(e.data().iter().all(|v| v.is_finite()));
}

#[test]
fn encoding_is_deterministic_across_identical_builds() {
    let corpus =
        vec![parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 2000").unwrap()];
    let mut buckets = ValueBuckets::new(6);
    buckets.insert("title", "production_year", (1930..2020).map(f64::from).collect());
    let a = SqlBert::new(&corpus, &schema(), buckets.clone(), PreqrConfig::test());
    let b = SqlBert::new(&corpus, &schema(), buckets, PreqrConfig::test());
    assert_eq!(a.encode(&corpus[0]), b.encode(&corpus[0]));
}
