//! Vocabularies and value bucketing (§3.3.2).
//!
//! The paper uses two dictionaries: a WordPiece-style sub-word vocabulary
//! for input tokens and a database-specific vocabulary (schema tokens, SQL
//! keywords, value-range tokens) for the MLM mask layer. [`Vocab`]
//! implements the sub-word dictionary with greedy longest-match-first
//! encoding; [`Bucketizer`] maps literals to per-column equi-depth
//! value-range tokens (e.g. `2010 → year₃`).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Padding token id.
pub const PAD: usize = 0;
/// Unknown token id.
pub const UNK: usize = 1;
/// Classification token id (`[CLS]`).
pub const CLS: usize = 2;
/// End-of-query token id (`[END]`).
pub const END: usize = 3;
/// Mask token id (`[MASK]`).
pub const MASK: usize = 4;

const SPECIALS: [&str; 5] = ["[PAD]", "[UNK]", "[CLS]", "[END]", "[MASK]"];

/// A sub-word vocabulary with special tokens.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Vocab {
    token_to_id: HashMap<String, usize>,
    id_to_token: Vec<String>,
    /// Ids that the MLM head may be asked to predict (database-specific
    /// dictionary: schema tokens, keywords, value-range tokens).
    maskable: Vec<bool>,
}

impl Vocab {
    /// Builds a vocabulary from a token corpus.
    ///
    /// Words occurring at least `min_freq` times become whole-word units;
    /// every distinct character of the corpus additionally becomes a
    /// continuation piece (`##c`) plus a word-initial piece (`c`) so that
    /// unseen words decompose instead of collapsing to `[UNK]`.
    pub fn build<'a>(corpus: impl IntoIterator<Item = &'a str>, min_freq: usize) -> Self {
        let mut freq: HashMap<&str, usize> = HashMap::new();
        let mut chars: Vec<char> = Vec::new();
        for tok in corpus {
            *freq.entry(tok).or_default() += 1;
            for c in tok.chars() {
                if !chars.contains(&c) {
                    chars.push(c);
                }
            }
        }
        chars.sort_unstable();
        let mut words: Vec<&str> =
            freq.iter().filter(|(_, &c)| c >= min_freq).map(|(&w, _)| w).collect();
        words.sort_unstable();

        let mut v =
            Self { token_to_id: HashMap::new(), id_to_token: Vec::new(), maskable: Vec::new() };
        for s in SPECIALS {
            v.push(s.to_string(), false);
        }
        for c in &chars {
            v.push(c.to_string(), false);
            v.push(format!("##{c}"), false);
        }
        for w in words {
            if !v.token_to_id.contains_key(w) {
                v.push(w.to_string(), false);
            }
        }
        v
    }

    fn push(&mut self, token: String, maskable: bool) -> usize {
        let id = self.id_to_token.len();
        self.token_to_id.insert(token.clone(), id);
        self.id_to_token.push(token);
        self.maskable.push(maskable);
        id
    }

    /// Adds a token (idempotent) and returns its id.
    pub fn add(&mut self, token: &str) -> usize {
        match self.token_to_id.get(token) {
            Some(&id) => id,
            None => self.push(token.to_string(), false),
        }
    }

    /// Adds a token to the *mask* dictionary (idempotent): it becomes a
    /// candidate output of the MLM softmax.
    pub fn add_maskable(&mut self, token: &str) -> usize {
        let id = self.add(token);
        self.maskable[id] = true;
        id
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True when only the specials exist.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.len() <= SPECIALS.len()
    }

    /// Id of a token if present.
    pub fn id(&self, token: &str) -> Option<usize> {
        self.token_to_id.get(token).copied()
    }

    /// Token text of an id.
    pub fn token(&self, id: usize) -> Option<&str> {
        self.id_to_token.get(id).map(String::as_str)
    }

    /// Whether an id belongs to the mask dictionary.
    pub fn is_maskable(&self, id: usize) -> bool {
        self.maskable.get(id).copied().unwrap_or(false)
    }

    /// All maskable ids.
    pub fn maskable_ids(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.maskable[i]).collect()
    }

    /// Encodes a word into sub-word ids: whole-word match first, then
    /// greedy longest-match-first decomposition, `[UNK]` as last resort.
    pub fn encode_word(&self, word: &str) -> Vec<usize> {
        if let Some(&id) = self.token_to_id.get(word) {
            return vec![id];
        }
        let chars: Vec<char> = word.chars().collect();
        let mut out = Vec::new();
        let mut start = 0;
        while start < chars.len() {
            let mut matched = None;
            // Longest match first.
            for end in (start + 1..=chars.len()).rev() {
                let piece: String = chars[start..end].iter().collect();
                let key = if start == 0 { piece } else { format!("##{piece}") };
                if let Some(&id) = self.token_to_id.get(&key) {
                    matched = Some((id, end));
                    break;
                }
            }
            match matched {
                Some((id, end)) => {
                    out.push(id);
                    start = end;
                }
                None => {
                    out.push(UNK);
                    start += 1;
                }
            }
        }
        if out.is_empty() {
            out.push(UNK);
        }
        out
    }

    /// Encodes a word to a single id: whole-word match, else the first
    /// sub-word piece (this keeps the 1:1 token/state/position alignment
    /// the composite embedding needs).
    pub fn encode_primary(&self, word: &str) -> usize {
        self.encode_word(word)[0]
    }
}

/// Equi-depth value bucketizer for one column: maps a numeric literal to
/// one of `k` range tokens.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Bucketizer {
    /// Upper boundaries of buckets `0..k-1` (last bucket is unbounded).
    boundaries: Vec<f64>,
}

impl Bucketizer {
    /// Builds `k` equi-depth buckets from a sample of column values.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn from_samples(mut samples: Vec<f64>, k: usize) -> Self {
        assert!(k > 0, "need at least one bucket");
        samples.retain(|v| v.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        if samples.is_empty() {
            return Self { boundaries: vec![0.0; k.saturating_sub(1)] };
        }
        let mut boundaries = Vec::with_capacity(k - 1);
        for i in 1..k {
            let idx = (i * samples.len() / k).min(samples.len() - 1);
            boundaries.push(samples[idx]);
        }
        Self { boundaries }
    }

    /// Bucket index of a value, in `0..k`.
    pub fn bucket(&self, v: f64) -> usize {
        self.boundaries.iter().take_while(|&&b| v > b).count()
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.boundaries.len() + 1
    }
}

/// Deterministic hash bucket for string literals (FNV-1a).
pub fn string_bucket(s: &str, k: usize) -> usize {
    assert!(k > 0, "need at least one bucket");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % k as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_have_fixed_ids() {
        let v = Vocab::build(["SELECT"], 1);
        assert_eq!(v.id("[PAD]"), Some(PAD));
        assert_eq!(v.id("[UNK]"), Some(UNK));
        assert_eq!(v.id("[CLS]"), Some(CLS));
        assert_eq!(v.id("[END]"), Some(END));
        assert_eq!(v.id("[MASK]"), Some(MASK));
    }

    #[test]
    fn frequent_words_are_whole_units() {
        let corpus = ["title", "title", "movie", "movie", "rare"];
        let v = Vocab::build(corpus, 2);
        assert_eq!(v.encode_word("title").len(), 1);
        assert!(v.encode_word("rare").len() > 1, "rare word should decompose");
    }

    #[test]
    fn unseen_words_decompose_to_char_pieces_not_unk() {
        let v = Vocab::build(["abc"], 1);
        let pieces = v.encode_word("cab");
        assert!(!pieces.contains(&UNK), "known chars should avoid [UNK]: {pieces:?}");
        // First piece is word-initial ('c'), rest are continuations.
        assert_eq!(v.token(pieces[0]), Some("c"));
        assert_eq!(v.token(pieces[1]), Some("##a"));
    }

    #[test]
    fn unknown_chars_fall_back_to_unk() {
        let v = Vocab::build(["abc"], 1);
        assert_eq!(v.encode_word("質"), vec![UNK]);
    }

    #[test]
    fn encode_primary_is_single_id() {
        let v = Vocab::build(["production_year"], 1);
        let id = v.encode_primary("production_year");
        assert_eq!(v.token(id), Some("production_year"));
    }

    #[test]
    fn maskable_dictionary_is_separate() {
        let mut v = Vocab::build(["SELECT", "title"], 1);
        let kw = v.add_maskable("SELECT");
        let t = v.id("title").unwrap();
        assert!(v.is_maskable(kw));
        assert!(!v.is_maskable(t));
        assert_eq!(v.maskable_ids(), vec![kw]);
    }

    #[test]
    fn add_is_idempotent() {
        let mut v = Vocab::build(["x"], 1);
        let a = v.add("newtok");
        let b = v.add("newtok");
        assert_eq!(a, b);
    }

    #[test]
    fn bucketizer_equi_depth() {
        // Paper example: years partitioned into three ranges; 2010 lands in
        // the third.
        let years: Vec<f64> = (0..300)
            .map(|i| match i % 3 {
                0 => 1950.0,
                1 => 2005.0,
                _ => 2015.0,
            })
            .collect();
        let b = Bucketizer::from_samples(years, 3);
        assert_eq!(b.buckets(), 3);
        assert_eq!(b.bucket(1900.0), 0);
        assert_eq!(b.bucket(2006.0), 1);
        assert_eq!(b.bucket(2016.0), 2);
    }

    #[test]
    fn bucketizer_handles_empty_and_constant_samples() {
        let b = Bucketizer::from_samples(vec![], 4);
        assert_eq!(b.buckets(), 4);
        let c = Bucketizer::from_samples(vec![5.0; 100], 4);
        assert_eq!(c.bucket(5.0), 0);
        assert!(c.bucket(6.0) > 0);
    }

    #[test]
    fn string_bucket_is_stable_and_in_range() {
        for s in ["adm", "sup", "movie", ""] {
            let b = string_bucket(s, 7);
            assert!(b < 7);
            assert_eq!(b, string_bucket(s, 7));
        }
        assert_ne!(string_bucket("adm", 64), string_bucket("sup", 64));
    }
}
