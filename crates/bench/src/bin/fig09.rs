//! Figure 9 — q-error variance on JOB-light: box-plot statistics
//! (min / q1 / median / q3 / max) per method for cardinality and cost.
//!
//! Expected shape (paper): PreQR's errors stay within a small range
//! while the MSCN-based approaches are much more spread out.

use preqr::PreqrConfig;
use preqr_bench::Ctx;
use preqr_tasks::estimation::{train_lstm, train_mscn, train_preqr, Estimator, PgBaseline, Target};
use preqr_tasks::metrics::qerror;

fn box_stats(errs: &mut Vec<f64>) -> (f64, f64, f64, f64, f64) {
    errs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = |p: f64| errs[((errs.len() - 1) as f64 * p).round() as usize];
    (q(0.0), q(0.25), q(0.5), q(0.75), q(1.0))
}

fn main() {
    let ctx = Ctx::build();
    let model = ctx.pretrained("main", PreqrConfig::small());
    let (train, valid) = ctx.estimation_train();
    let job_light = ctx
        .test_workloads()
        .into_iter()
        .find(|(n, _)| *n == "JOB-light")
        .expect("JOB-light workload")
        .1;
    let sampler = Some(&ctx.sampler);
    for target in [Target::Cardinality, Target::Cost] {
        let pg = PgBaseline::new(&ctx.db, &ctx.stats, target);
        let mscn = train_mscn(&ctx.db, sampler, &train, &valid, target, ctx.sizes.est_epochs, 7);
        let lstm = train_lstm(&ctx.db, sampler, &train, &valid, target, ctx.sizes.est_epochs, 7);
        let preqr = train_preqr(
            &ctx.db,
            &model,
            sampler,
            &train,
            &valid,
            target,
            ctx.sizes.est_epochs,
            7,
            "PreQR",
        );
        println!("\n=== Figure 9 ({target:?}): q-error spread on JOB-light ===");
        println!(
            "{:<10} {:>8} {:>8} {:>8} {:>8} {:>9}",
            "method", "min", "q1", "median", "q3", "max"
        );
        let methods: Vec<&dyn Estimator> = vec![&pg, &mscn, &lstm, &preqr];
        for m in methods {
            let mut errs: Vec<f64> =
                job_light.iter().map(|lq| qerror(m.predict(&lq.query), target.truth(lq))).collect();
            let (min, q1, med, q3, max) = box_stats(&mut errs);
            println!(
                "{:<10} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>9.2}",
                m.name(),
                min,
                q1,
                med,
                q3,
                max
            );
        }
    }
    println!("\npaper: PreQR's box is the tightest; MSCN-based methods show the widest spread.");
}
