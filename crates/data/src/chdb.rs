//! A compact CH-benchmark-style database (TPC-C entities with TPC-H-ish
//! analytics columns), used by the clustering evaluation (§4.1.1): the
//! paper generates 600 random queries on the CH-benchmark and grades
//! similarity by result-set row-id overlap.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use preqr_engine::{Database, Datum};
use preqr_schema::{Column, ColumnType, ForeignKey, Schema, Table};

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct ChConfig {
    /// Number of customers; other tables scale with it.
    pub customers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChConfig {
    fn default() -> Self {
        Self { customers: 2_000, seed: 7 }
    }
}

impl ChConfig {
    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self { customers: 120, seed: 7 }
    }
}

/// The CH-style schema: customer / orders / order_line / item / district,
/// plus the `user` + `accounts` pair from Figure 2 of the paper.
pub fn ch_schema() -> Schema {
    let mut s = Schema::new();
    s.add_table(Table::new(
        "district",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("name", ColumnType::Varchar),
            Column::new("tax", ColumnType::Float),
        ],
    ));
    s.add_table(Table::new(
        "customer",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("district_id", ColumnType::Int),
            Column::new("name", ColumnType::Varchar),
            Column::new("balance", ColumnType::Float),
            Column::new("discount", ColumnType::Float),
        ],
    ));
    s.add_table(Table::new(
        "item",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("name", ColumnType::Varchar),
            Column::new("price", ColumnType::Float),
            Column::new("category", ColumnType::Varchar),
        ],
    ));
    s.add_table(Table::new(
        "orders",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("customer_id", ColumnType::Int),
            Column::new("entry_date", ColumnType::Int),
            Column::new("carrier_id", ColumnType::Int),
        ],
    ));
    s.add_table(Table::new(
        "order_line",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("order_id", ColumnType::Int),
            Column::new("item_id", ColumnType::Int),
            Column::new("quantity", ColumnType::Int),
            Column::new("amount", ColumnType::Float),
        ],
    ));
    s.add_table(Table::new(
        "user",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("name", ColumnType::Varchar),
            Column::new("rank", ColumnType::Varchar),
        ],
    ));
    s.add_table(Table::new(
        "accounts",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("user_id", ColumnType::Int),
            Column::new("balance", ColumnType::Float),
        ],
    ));
    for (from, from_col, to) in [
        ("customer", "district_id", "district"),
        ("orders", "customer_id", "customer"),
        ("order_line", "order_id", "orders"),
        ("order_line", "item_id", "item"),
        ("accounts", "user_id", "user"),
    ] {
        s.add_foreign_key(ForeignKey {
            from_table: from.into(),
            from_column: from_col.into(),
            to_table: to.into(),
            to_column: "id".into(),
        });
    }
    s
}

const CATEGORIES: [&str; 6] = ["food", "tools", "toys", "books", "media", "garden"];
const RANKS: [&str; 4] = ["adm", "sup", "usr", "gst"];

/// Generates the CH-style database.
pub fn generate(config: ChConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Database::new(ch_schema());
    let districts = 10usize;
    for d in 0..districts {
        db.insert(
            "district",
            &[
                Datum::Int(d as i64 + 1),
                Datum::Str(format!("district-{d}")),
                Datum::Float(0.05 + 0.01 * d as f64),
            ],
        );
    }
    let items = config.customers / 2 + 20;
    for i in 0..items {
        db.insert(
            "item",
            &[
                Datum::Int(i as i64 + 1),
                Datum::Str(format!("item-{i:05}")),
                Datum::Float(1.0 + rng.random::<f64>() * 99.0),
                Datum::Str(CATEGORIES[i % CATEGORIES.len()].to_string()),
            ],
        );
    }
    for c in 0..config.customers {
        db.insert(
            "customer",
            &[
                Datum::Int(c as i64 + 1),
                Datum::Int(rng.random_range(1..=districts as i64)),
                Datum::Str(format!("cust-{c:05}")),
                Datum::Float(-100.0 + rng.random::<f64>() * 1000.0),
                Datum::Float(rng.random::<f64>() * 0.3),
            ],
        );
    }
    let (mut order_id, mut ol_id) = (0i64, 0i64);
    for c in 0..config.customers {
        for _ in 0..rng.random_range(0..5) {
            order_id += 1;
            db.insert(
                "orders",
                &[
                    Datum::Int(order_id),
                    Datum::Int(c as i64 + 1),
                    Datum::Int(rng.random_range(20180101..20240101)),
                    Datum::Int(rng.random_range(0..10)),
                ],
            );
            for _ in 0..rng.random_range(1..6) {
                ol_id += 1;
                let item = rng.random_range(1..=items as i64);
                let qty = rng.random_range(1..10);
                db.insert(
                    "order_line",
                    &[
                        Datum::Int(ol_id),
                        Datum::Int(order_id),
                        Datum::Int(item),
                        Datum::Int(qty),
                        Datum::Float(qty as f64 * (1.0 + rng.random::<f64>() * 50.0)),
                    ],
                );
            }
        }
    }
    let users = config.customers / 4 + 10;
    for u in 0..users {
        // Rank is skewed: most users are `usr`.
        let rank = if u % 10 == 0 { RANKS[u % 2] } else { RANKS[2 + u % 2] };
        db.insert(
            "user",
            &[
                Datum::Int(u as i64 + 1),
                Datum::Str(format!("user-{u:04}")),
                Datum::Str(rank.to_string()),
            ],
        );
        for _ in 0..rng.random_range(1..4) {
            let id = db.row_count("accounts") as i64 + 1;
            db.insert(
                "accounts",
                &[
                    Datum::Int(id),
                    Datum::Int(u as i64 + 1),
                    Datum::Float(rng.random::<f64>() * 5000.0),
                ],
            );
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_engine::execute;
    use preqr_sql::parser::parse;

    #[test]
    fn all_tables_populated_and_deterministic() {
        let a = generate(ChConfig::tiny());
        let b = generate(ChConfig::tiny());
        for t in a.schema().tables() {
            assert!(a.row_count(&t.name) > 0, "{} empty", t.name);
            assert_eq!(a.row_count(&t.name), b.row_count(&t.name));
        }
    }

    #[test]
    fn figure2_queries_run_and_agree() {
        let db = generate(ChConfig::tiny());
        let q1 = parse("SELECT name FROM user WHERE rank IN ('adm', 'sup')").unwrap();
        let q3 = parse(
            "SELECT name FROM user WHERE rank = 'adm' \
             UNION SELECT name FROM user WHERE rank = 'sup'",
        )
        .unwrap();
        let r1 = execute(&db, &q1).unwrap();
        let r3 = execute(&db, &q3).unwrap();
        assert!(!r1.rows.is_empty());
        assert_eq!(r1.base_row_ids, r3.base_row_ids, "q1 and q3 are logically equal");
        let q4 = parse(
            "SELECT SUM(balance) FROM accounts WHERE user_id IN \
             (SELECT id FROM user WHERE rank = 'adm')",
        )
        .unwrap();
        let q5 = parse(
            "SELECT SUM(accounts.balance) FROM accounts, user \
             WHERE accounts.user_id = user.id AND user.rank = 'adm'",
        )
        .unwrap();
        assert_eq!(execute(&db, &q4).unwrap().rows, execute(&db, &q5).unwrap().rows);
    }

    #[test]
    fn order_lines_join_through_orders() {
        let db = generate(ChConfig::tiny());
        let q = parse(
            "SELECT COUNT(*) FROM customer c, orders o, order_line ol \
             WHERE c.id = o.customer_id AND o.id = ol.order_id AND c.balance > 0",
        )
        .unwrap();
        let r = execute(&db, &q).unwrap();
        assert!(r.join_cardinality > 0);
    }
}
