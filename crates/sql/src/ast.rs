//! Typed AST for the SQL subset used across the PreQR reproduction, with a
//! canonical pretty-printer (the printer output round-trips through the
//! parser).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A literal value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String.
    Str(String),
}

impl Value {
    /// Numeric view (strings are `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Str(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            // Keep a decimal point so floats re-parse as floats.
            Value::Float(v) if v.fract() == 0.0 && v.is_finite() => write!(f, "{v:.1}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

/// A possibly-qualified column reference.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Table name or alias qualifier.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn bare(column: impl Into<String>) -> Self {
        Self { table: None, column: column.into() }
    }

    /// Qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self { table: Some(table.into()), column: column.into() }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// All six operators (used by workload generators).
    pub fn all() -> [CmpOp; 6] {
        [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge]
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// A scalar operand in a comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Scalar {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value.
    Value(Value),
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Column(c) => write!(f, "{c}"),
            Scalar::Value(v) => write!(f, "{v}"),
        }
    }
}

/// Boolean predicate expressions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Binary comparison.
    Cmp {
        /// Left operand.
        left: Scalar,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: Scalar,
    },
    /// `col BETWEEN low AND high`.
    Between {
        /// Column tested.
        col: ColumnRef,
        /// Inclusive lower bound.
        low: Value,
        /// Inclusive upper bound.
        high: Value,
    },
    /// `col [NOT] IN (v1, v2, …)`.
    InList {
        /// Column tested.
        col: ColumnRef,
        /// Candidate values.
        values: Vec<Value>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `col [NOT] IN (SELECT …)`.
    InSubquery {
        /// Column tested.
        col: ColumnRef,
        /// The subquery; must project one column.
        subquery: Box<Query>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `col [NOT] LIKE 'pattern'` (`%` and `_` wildcards).
    Like {
        /// Column tested.
        col: ColumnRef,
        /// Pattern.
        pattern: String,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// `col IS [NOT] NULL`.
    IsNull {
        /// Column tested.
        col: ColumnRef,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl Expr {
    /// Builds the conjunction of a non-empty list of predicates.
    ///
    /// # Panics
    /// Panics on an empty list.
    pub fn and_all(mut exprs: Vec<Expr>) -> Expr {
        assert!(!exprs.is_empty(), "and_all needs at least one predicate");
        let mut acc = exprs.remove(0);
        for e in exprs {
            acc = Expr::And(Box::new(acc), Box::new(e));
        }
        acc
    }

    /// Flattens nested conjunctions into a list (non-AND nodes become
    /// single-element conjuncts).
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// All column references mentioned anywhere in this expression.
    pub fn columns(&self) -> Vec<&ColumnRef> {
        let mut out = Vec::new();
        fn scalar<'a>(s: &'a Scalar, out: &mut Vec<&'a ColumnRef>) {
            if let Scalar::Column(c) = s {
                out.push(c);
            }
        }
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a ColumnRef>) {
            match e {
                Expr::And(a, b) | Expr::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Expr::Not(a) => walk(a, out),
                Expr::Cmp { left, right, .. } => {
                    scalar(left, out);
                    scalar(right, out);
                }
                Expr::Between { col, .. }
                | Expr::InList { col, .. }
                | Expr::Like { col, .. }
                | Expr::IsNull { col, .. } => out.push(col),
                Expr::InSubquery { col, subquery, .. } => {
                    out.push(col);
                    for sel in subquery.selects() {
                        if let Some(w) = &sel.where_clause {
                            walk(w, out);
                        }
                    }
                }
            }
        }
        walk(self, &mut out);
        out
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::And(a, b) => write!(f, "{a} AND {b}"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "NOT ({a})"),
            Expr::Cmp { left, op, right } => write!(f, "{left} {op} {right}"),
            Expr::Between { col, low, high } => write!(f, "{col} BETWEEN {low} AND {high}"),
            Expr::InList { col, values, negated } => {
                let vs: Vec<String> = values.iter().map(Value::to_string).collect();
                write!(f, "{col} {}IN ({})", if *negated { "NOT " } else { "" }, vs.join(", "))
            }
            Expr::InSubquery { col, subquery, negated } => {
                write!(f, "{col} {}IN ({subquery})", if *negated { "NOT " } else { "" })
            }
            Expr::Like { col, pattern, negated } => {
                write!(f, "{col} {}LIKE '{pattern}'", if *negated { "NOT " } else { "" })
            }
            Expr::IsNull { col, negated } => {
                write!(f, "{col} IS {}NULL", if *negated { "NOT " } else { "" })
            }
        }
    }
}

/// Aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One item of the projection list.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*`.
    Star,
    /// Plain column.
    Column(ColumnRef),
    /// Aggregate call; `arg = None` means `COUNT(*)`.
    Aggregate {
        /// Function.
        func: AggFunc,
        /// Argument column (`None` only valid for COUNT).
        arg: Option<ColumnRef>,
        /// DISTINCT modifier.
        distinct: bool,
    },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Star => write!(f, "*"),
            SelectItem::Column(c) => write!(f, "{c}"),
            SelectItem::Aggregate { func, arg, distinct } => {
                let d = if *distinct { "DISTINCT " } else { "" };
                match arg {
                    Some(c) => write!(f, "{}({d}{c})", func.as_str()),
                    None => write!(f, "{}({d}*)", func.as_str()),
                }
            }
        }
    }
}

/// A table reference with an optional alias.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias, if any.
    pub alias: Option<String>,
}

impl TableRef {
    /// Reference without an alias.
    pub fn new(table: impl Into<String>) -> Self {
        Self { table: table.into(), alias: None }
    }

    /// Reference with an alias.
    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> Self {
        Self { table: table.into(), alias: Some(alias.into()) }
    }

    /// The name predicates use to refer to this table (alias if present).
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} {a}", self.table),
            None => write!(f, "{}", self.table),
        }
    }
}

/// An explicit `JOIN … ON …` clause.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JoinClause {
    /// Joined table.
    pub table: TableRef,
    /// Join condition.
    pub on: Expr,
}

/// One SELECT statement (no set operators).
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct SelectStmt {
    /// Projection list.
    pub projections: Vec<SelectItem>,
    /// FROM list (implicit cross-join style).
    pub from: Vec<TableRef>,
    /// Explicit JOIN clauses following the FROM list.
    pub joins: Vec<JoinClause>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY list; `true` = descending.
    pub order_by: Vec<(ColumnRef, bool)>,
    /// LIMIT count.
    pub limit: Option<u64>,
}

impl SelectStmt {
    /// All table references (FROM list plus JOINs).
    pub fn tables(&self) -> Vec<&TableRef> {
        self.from.iter().chain(self.joins.iter().map(|j| &j.table)).collect()
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let proj: Vec<String> = self.projections.iter().map(SelectItem::to_string).collect();
        write!(f, "SELECT {}", proj.join(", "))?;
        if !self.from.is_empty() {
            let from: Vec<String> = self.from.iter().map(TableRef::to_string).collect();
            write!(f, " FROM {}", from.join(", "))?;
        }
        for j in &self.joins {
            write!(f, " JOIN {} ON {}", j.table, j.on)?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            let g: Vec<String> = self.group_by.iter().map(ColumnRef::to_string).collect();
            write!(f, " GROUP BY {}", g.join(", "))?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            let o: Vec<String> = self
                .order_by
                .iter()
                .map(|(c, desc)| format!("{c}{}", if *desc { " DESC" } else { "" }))
                .collect();
            write!(f, " ORDER BY {}", o.join(", "))?;
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

/// A full query: a SELECT optionally UNIONed with further SELECTs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// The first SELECT.
    pub body: SelectStmt,
    /// Further SELECTs combined with `UNION` (set semantics).
    pub unions: Vec<SelectStmt>,
}

impl Query {
    /// Wraps a single SELECT.
    pub fn single(body: SelectStmt) -> Self {
        Self { body, unions: Vec::new() }
    }

    /// All member SELECTs in order.
    pub fn selects(&self) -> Vec<&SelectStmt> {
        std::iter::once(&self.body).chain(self.unions.iter()).collect()
    }

    /// The canonical SQL text of this query.
    pub fn sql(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.body)?;
        for u in &self.unions {
            write!(f, " UNION {u}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_select() -> SelectStmt {
        SelectStmt {
            projections: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
            }],
            from: vec![TableRef::aliased("title", "t"), TableRef::aliased("movie_companies", "mc")],
            joins: vec![],
            where_clause: Some(Expr::and_all(vec![
                Expr::Cmp {
                    left: Scalar::Column(ColumnRef::qualified("t", "id")),
                    op: CmpOp::Eq,
                    right: Scalar::Column(ColumnRef::qualified("mc", "movie_id")),
                },
                Expr::Cmp {
                    left: Scalar::Column(ColumnRef::qualified("t", "production_year")),
                    op: CmpOp::Gt,
                    right: Scalar::Value(Value::Int(2010)),
                },
            ])),
            ..Default::default()
        }
    }

    #[test]
    fn display_matches_expected_sql() {
        let q = Query::single(sample_select());
        assert_eq!(
            q.sql(),
            "SELECT COUNT(*) FROM title t, movie_companies mc \
             WHERE t.id = mc.movie_id AND t.production_year > 2010"
        );
    }

    #[test]
    fn conjuncts_flatten() {
        let s = sample_select();
        let w = s.where_clause.unwrap();
        assert_eq!(w.conjuncts().len(), 2);
    }

    #[test]
    fn expr_columns_collects_all() {
        let s = sample_select();
        let w = s.where_clause.unwrap();
        let cols = w.columns();
        assert_eq!(cols.len(), 3);
        assert!(cols.contains(&&ColumnRef::qualified("mc", "movie_id")));
    }

    #[test]
    fn and_all_single_is_identity() {
        let e = Expr::IsNull { col: ColumnRef::bare("x"), negated: false };
        assert_eq!(Expr::and_all(vec![e.clone()]), e);
    }

    #[test]
    fn value_as_f64() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn string_value_display_escapes_quotes() {
        assert_eq!(Value::Str("O'Brien".into()).to_string(), "'O''Brien'");
    }

    #[test]
    fn binding_prefers_alias() {
        assert_eq!(TableRef::aliased("title", "t").binding(), "t");
        assert_eq!(TableRef::new("title").binding(), "title");
    }

    #[test]
    fn union_display() {
        let mut a = SelectStmt::default();
        a.projections.push(SelectItem::Column(ColumnRef::bare("name")));
        a.from.push(TableRef::new("u"));
        let q = Query { body: a.clone(), unions: vec![a] };
        assert_eq!(q.sql(), "SELECT name FROM u UNION SELECT name FROM u");
    }

    #[test]
    fn in_list_display() {
        let e = Expr::InList {
            col: ColumnRef::bare("rank"),
            values: vec![Value::Str("adm".into()), Value::Str("sup".into())],
            negated: false,
        };
        assert_eq!(e.to_string(), "rank IN ('adm', 'sup')");
    }
}
