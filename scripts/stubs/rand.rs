//! Minimal functional stand-in for the `rand 0.9` API surface this
//! workspace uses: `StdRng` (xoshiro256** seeded via splitmix64),
//! `SeedableRng::seed_from_u64`, `Rng::{random, random_range, random_bool}`
//! and `seq::SliceRandom::shuffle`. Deterministic per seed.

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

#[derive(Clone, Debug)]
pub struct StdRngImpl {
    s: [u64; 4],
}

pub mod rngs {
    pub type StdRng = super::StdRngImpl;
}

impl SeedableRng for StdRngImpl {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }
}

impl StdRngImpl {
    fn next_raw(&mut self) -> u64 {
        // xoshiro256**
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types producible by `Rng::random`.
pub trait Standard: Sized {
    fn from_u64(v: u64) -> Self;
}

impl Standard for f32 {
    fn from_u64(v: u64) -> f32 {
        ((v >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}
impl Standard for f64 {
    fn from_u64(v: u64) -> f64 {
        ((v >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for u64 {
    fn from_u64(v: u64) -> u64 {
        v
    }
}
impl Standard for u32 {
    fn from_u64(v: u64) -> u32 {
        (v >> 32) as u32
    }
}
impl Standard for bool {
    fn from_u64(v: u64) -> bool {
        v & 1 == 1
    }
}

/// Scalar types usable as `random_range` bounds.
pub trait UniformSampled: Copy + PartialOrd {
    fn sample_between(lo: Self, hi: Self, inclusive: bool, raw: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_between(lo: Self, hi: Self, inclusive: bool, raw: u64) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "empty random_range");
                (lo_w + (raw as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_between(lo: Self, hi: Self, _inclusive: bool, raw: u64) -> Self {
                let unit = ((raw >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                (lo as f64 + (hi as f64 - lo as f64) * unit) as $t
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range-like arguments to `random_range`.
pub trait SampleRange<T> {
    fn sample_one(self, raw: u64) -> T;
}

impl<T: UniformSampled> SampleRange<T> for std::ops::Range<T> {
    fn sample_one(self, raw: u64) -> T {
        T::sample_between(self.start, self.end, false, raw)
    }
}

impl<T: UniformSampled> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_one(self, raw: u64) -> T {
        T::sample_between(*self.start(), *self.end(), true, raw)
    }
}

pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn random<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_one(self.next_u64())
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl Rng for StdRngImpl {
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod seq {
    use super::Rng;

    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}
