//! Scaled dot-product and multi-head attention (Eq. 5 of the paper).

use rand::Rng;

use crate::layers::{join, Linear, Module};
use crate::ops;
use crate::tensor::Tensor;

/// Multi-head attention supporting both self-attention (`q == kv`) and
/// cross-attention (query-aware schema linking uses the query sequence as
/// `q` and the schema node embeddings as `kv`).
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Creates `heads`-head attention over `dim`-dimensional inputs.
    ///
    /// # Panics
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(dim: usize, heads: usize, rng: &mut impl Rng) -> Self {
        assert!(heads > 0 && dim.is_multiple_of(heads), "dim {dim} must divide into {heads} heads");
        Self {
            wq: Linear::new(dim, dim, rng),
            wk: Linear::new(dim, dim, rng),
            wv: Linear::new(dim, dim, rng),
            wo: Linear::new(dim, dim, rng),
            heads,
            head_dim: dim / heads,
        }
    }

    /// Attention with separate query and key/value sequences.
    ///
    /// `q` is `n_q × dim`, `kv` is `n_kv × dim`; the result is `n_q × dim`.
    pub fn forward(&self, q: &Tensor, kv: &Tensor) -> Tensor {
        let qp = self.wq.forward(q);
        let kp = self.wk.forward(kv);
        let vp = self.wv.forward(kv);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut head_outs: Option<Tensor> = None;
        for h in 0..self.heads {
            let c0 = h * self.head_dim;
            let c1 = c0 + self.head_dim;
            let qh = ops::slice_cols(&qp, c0, c1);
            let kh = ops::slice_cols(&kp, c0, c1);
            let vh = ops::slice_cols(&vp, c0, c1);
            let scores = ops::scale(&ops::matmul_transpose_b(&qh, &kh), scale);
            let attn = ops::softmax_rows(&scores);
            let out = ops::matmul(&attn, &vh);
            head_outs = Some(match head_outs {
                Some(acc) => ops::concat_cols(&acc, &out),
                None => out,
            });
        }
        self.wo.forward(&head_outs.expect("at least one head"))
    }

    /// Self-attention convenience wrapper.
    pub fn forward_self(&self, x: &Tensor) -> Tensor {
        self.forward(x, x)
    }

    /// Returns the raw attention weights of the first head for
    /// interpretability (e.g. inspecting query→schema linking). Shape is
    /// `n_q × n_kv`.
    pub fn attention_weights(&self, q: &Tensor, kv: &Tensor) -> Tensor {
        let qp = self.wq.forward(q);
        let kp = self.wk.forward(kv);
        let qh = ops::slice_cols(&qp, 0, self.head_dim);
        let kh = ops::slice_cols(&kp, 0, self.head_dim);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        ops::softmax_rows(&ops::scale(&ops::matmul_transpose_b(&qh, &kh), scale))
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }
}

impl Module for MultiHeadAttention {
    fn collect_params(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        self.wq.collect_params(&join(prefix, "wq"), out);
        self.wk.collect_params(&join(prefix, "wk"), out);
        self.wv.collect_params(&join(prefix, "wv"), out);
        self.wo.collect_params(&join(prefix, "wo"), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn self_attention_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(11);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Tensor::constant(Matrix::from_fn(5, 8, |r, c| ((r + c) % 3) as f32 * 0.3));
        assert_eq!(attn.forward_self(&x).shape(), (5, 8));
    }

    #[test]
    fn cross_attention_output_rows_follow_query() {
        let mut rng = StdRng::seed_from_u64(11);
        let attn = MultiHeadAttention::new(4, 1, &mut rng);
        let q = Tensor::constant(Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.1));
        let kv = Tensor::constant(Matrix::from_fn(7, 4, |r, c| (r + c) as f32 * 0.05));
        assert_eq!(attn.forward(&q, &kv).shape(), (3, 4));
    }

    #[test]
    fn attention_weights_are_a_distribution() {
        let mut rng = StdRng::seed_from_u64(11);
        let attn = MultiHeadAttention::new(4, 2, &mut rng);
        let q = Tensor::constant(Matrix::from_fn(2, 4, |r, c| (r + c) as f32 * 0.2));
        let kv = Tensor::constant(Matrix::from_fn(5, 4, |r, c| (r * c) as f32 * 0.1));
        let w = attn.attention_weights(&q, &kv).value_clone();
        assert_eq!(w.shape(), (2, 5));
        for r in 0..2 {
            let s: f32 = w.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
            assert!(w.row(r).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_indivisible_heads() {
        let mut rng = StdRng::seed_from_u64(11);
        let _ = MultiHeadAttention::new(6, 4, &mut rng);
    }

    #[test]
    fn gradients_reach_all_projections() {
        let mut rng = StdRng::seed_from_u64(11);
        let attn = MultiHeadAttention::new(4, 2, &mut rng);
        let x = Tensor::constant(Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.1));
        ops::sum_all(&attn.forward_self(&x)).backward();
        for (name, p) in attn.named_params("a") {
            assert!(p.grad().is_some(), "no grad for {name}");
        }
    }
}
