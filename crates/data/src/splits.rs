//! Deterministic train/validation/test splitting.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A three-way index split.
#[derive(Clone, Debug)]
pub struct Split {
    /// Training indices.
    pub train: Vec<usize>,
    /// Validation indices.
    pub valid: Vec<usize>,
    /// Test indices.
    pub test: Vec<usize>,
}

/// Splits `n` items into train/valid/test by the given fractions
/// (test takes the remainder), shuffled with `seed`.
///
/// # Panics
/// Panics if the fractions are negative or sum above 1.
pub fn split(n: usize, train_frac: f64, valid_frac: f64, seed: u64) -> Split {
    assert!(train_frac >= 0.0 && valid_frac >= 0.0 && train_frac + valid_frac <= 1.0);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let n_train = (n as f64 * train_frac).round() as usize;
    let n_valid = (n as f64 * valid_frac).round() as usize;
    let train = idx[..n_train.min(n)].to_vec();
    let valid = idx[n_train.min(n)..(n_train + n_valid).min(n)].to_vec();
    let test = idx[(n_train + n_valid).min(n)..].to_vec();
    Split { train, valid, test }
}

/// Selects items by index.
pub fn take<T: Clone>(items: &[T], indices: &[usize]) -> Vec<T> {
    indices.iter().map(|&i| items[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_partitions_everything() {
        let s = split(100, 0.8, 0.1, 1);
        assert_eq!(s.train.len(), 80);
        assert_eq!(s.valid.len(), 10);
        assert_eq!(s.test.len(), 10);
        let mut all: Vec<usize> = s.train.iter().chain(&s.valid).chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        assert_eq!(split(50, 0.5, 0.2, 9).train, split(50, 0.5, 0.2, 9).train);
        assert_ne!(split(50, 0.5, 0.2, 9).train, split(50, 0.5, 0.2, 10).train);
    }

    #[test]
    fn take_selects_in_order() {
        let items = vec!["a", "b", "c", "d"];
        assert_eq!(take(&items, &[3, 0]), vec!["d", "a"]);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_fractions() {
        let _ = split(10, 0.9, 0.2, 1);
    }
}
