//! `preqr-automaton` — SQL2Automaton (§3.3.1 of the paper).
//!
//! Query structure is represented by a finite-state automaton. A
//! sub-automaton is built for each query template; the final automaton is
//! the merge of all sub-automatons. States are identified by the
//! `(clause region, symbol class, nesting depth)` [`StateKey`] of each
//! linearized token, so templates sharing a prefix automatically share
//! state sequences — the paper's "maximal prefix" merging strategy.
//!
//! Matching a query walks its state-key stream and returns the per-token
//! state ids (the *SQL state embedding* of Table 2); acceptance requires
//! every consecutive transition to have been introduced by some template
//! and the walk to end in a final state.
//!
//! ```
//! use preqr_automaton::Automaton;
//! use preqr_sql::parser::parse;
//! use preqr_sql::normalize::state_keys;
//! use preqr_sql::template::TemplateSet;
//!
//! let corpus = vec![parse("SELECT COUNT(*) FROM title t WHERE t.year > 2000").unwrap()];
//! let templates = TemplateSet::extract(&corpus, 0.0);
//! let fa = Automaton::from_templates(&templates);
//! let m = fa.match_keys(&state_keys(&corpus[0]));
//! assert!(m.accepted);
//! ```

#![warn(missing_docs)]
mod matcher;

pub use matcher::MatchResult;

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use preqr_sql::normalize::{ClauseRegion, StateKey, SymbolClass};
use preqr_sql::template::TemplateSet;

/// Reserved state id for tokens whose state key was never seen in any
/// template.
pub const UNKNOWN_STATE: usize = 0;

/// The merged finite-state automaton over SQL structure.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Automaton {
    key_to_state: HashMap<StateKey, usize>,
    state_keys: Vec<Option<StateKey>>,
    transitions: HashSet<(usize, usize)>,
    final_states: HashSet<usize>,
    templates: usize,
}

impl Automaton {
    /// Creates an empty automaton (only the unknown state exists).
    pub fn new() -> Self {
        Self {
            key_to_state: HashMap::new(),
            state_keys: vec![None],
            transitions: HashSet::new(),
            final_states: HashSet::new(),
            templates: 0,
        }
    }

    /// Builds the automaton by merging one sub-automaton per template.
    pub fn from_templates(templates: &TemplateSet) -> Self {
        let mut fa = Self::new();
        for t in templates {
            fa.add_template(&t.keys);
        }
        fa
    }

    /// Adds a sub-automaton for one template's state-key sequence. This is
    /// also the incremental path of §3.6 Case 3 (query patterns change):
    /// new templates extend the automaton without touching existing state
    /// ids, so previously-learned state embeddings stay valid.
    pub fn add_template(&mut self, keys: &[StateKey]) {
        if keys.is_empty() {
            return;
        }
        let ids: Vec<usize> = keys.iter().map(|k| self.intern(*k)).collect();
        for w in ids.windows(2) {
            self.transitions.insert((w[0], w[1]));
        }
        // Allow region-internal repetition: a state may repeat (e.g. the
        // FROM-list table region of Figure 4 covers several tokens).
        for &id in &ids {
            self.transitions.insert((id, id));
        }
        if let Some(&last) = ids.last() {
            self.final_states.insert(last);
        }
        self.templates += 1;
    }

    fn intern(&mut self, key: StateKey) -> usize {
        match self.key_to_state.get(&key) {
            Some(&id) => id,
            None => {
                let id = self.state_keys.len();
                self.key_to_state.insert(key, id);
                self.state_keys.push(Some(key));
                id
            }
        }
    }

    /// State id for a key, or [`UNKNOWN_STATE`].
    pub fn state_of(&self, key: &StateKey) -> usize {
        self.key_to_state.get(key).copied().unwrap_or(UNKNOWN_STATE)
    }

    /// The key of a state id, if it is a known state.
    pub fn key_of(&self, state: usize) -> Option<&StateKey> {
        self.state_keys.get(state).and_then(Option::as_ref)
    }

    /// Number of states including the unknown state.
    pub fn num_states(&self) -> usize {
        self.state_keys.len()
    }

    /// Number of distinct transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Number of templates merged in.
    pub fn num_templates(&self) -> usize {
        self.templates
    }

    /// Whether a transition between two states was introduced by any
    /// template.
    pub fn has_transition(&self, from: usize, to: usize) -> bool {
        self.transitions.contains(&(from, to))
    }

    /// Whether a state is final (some template ends there).
    pub fn is_final(&self, state: usize) -> bool {
        self.final_states.contains(&state)
    }

    /// Matches a query's state-key stream against the automaton; see
    /// [`MatchResult`].
    pub fn match_keys(&self, keys: &[StateKey]) -> MatchResult {
        matcher::match_keys(self, keys)
    }

    /// One-hot encoding of a state id (`num_states` wide).
    pub fn one_hot(&self, state: usize) -> Vec<f32> {
        let mut v = vec![0.0; self.num_states()];
        if state < v.len() {
            v[state] = 1.0;
        }
        v
    }

    /// States that can directly follow the given state (useful for MLM:
    /// the paper notes state transitions "optimize the prediction of mask
    /// words").
    pub fn successors(&self, state: usize) -> Vec<usize> {
        let mut out: Vec<usize> =
            self.transitions.iter().filter(|(f, _)| *f == state).map(|(_, t)| *t).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Convenience: whether the automaton contains a key for the given
    /// clause region and symbol class at depth 0.
    pub fn has_symbol(&self, region: ClauseRegion, symbol: SymbolClass) -> bool {
        self.key_to_state.contains_key(&StateKey::new(region, symbol, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_sql::normalize::state_keys;
    use preqr_sql::parser::parse;
    use preqr_sql::Query;

    fn q(sql: &str) -> Query {
        parse(sql).unwrap()
    }

    fn fa_of(sqls: &[&str], threshold: f64) -> Automaton {
        let queries: Vec<Query> = sqls.iter().map(|s| q(s)).collect();
        Automaton::from_templates(&TemplateSet::extract(&queries, threshold))
    }

    #[test]
    fn template_query_is_accepted() {
        let fa = fa_of(&["SELECT COUNT(*) FROM title t WHERE t.year > 2000"], 0.0);
        let m = fa.match_keys(&state_keys(&q("SELECT COUNT(*) FROM title t WHERE t.year > 1999")));
        assert!(m.accepted);
        assert_eq!(m.unknown_tokens, 0);
    }

    #[test]
    fn more_tables_and_predicates_still_match_via_repetition() {
        // The automaton allows region-internal repetition, so a query with
        // more joined tables / predicates than the template still walks
        // known states (Figure 4's a4 region spans five tokens).
        let fa = fa_of(
            &["SELECT COUNT(*) FROM title t, movie_companies mc \
               WHERE t.id = mc.movie_id AND t.year > 2000"],
            0.0,
        );
        let bigger = q("SELECT COUNT(*) FROM title t, movie_companies mc, movie_info mi \
                        WHERE t.id = mc.movie_id AND t.id = mi.movie_id AND t.year > 2000");
        let m = fa.match_keys(&state_keys(&bigger));
        assert!(m.accepted, "repetition within regions should be accepted");
    }

    #[test]
    fn logically_equal_in_and_union_share_prefix_states() {
        // Figure 2's q1 and q3: the automaton should give them a shared
        // state prefix and q3 a repeated block (Table 2).
        let q1 = q("SELECT name FROM user WHERE rank IN ('adm', 'sup')");
        let q3 = q("SELECT name FROM user WHERE rank = 'adm' \
                    UNION SELECT name FROM user WHERE rank = 'sup'");
        let queries = vec![q1.clone(), q3.clone()];
        let fa = Automaton::from_templates(&TemplateSet::extract(&queries, 0.0));
        let s1 = fa.match_keys(&state_keys(&q1)).states;
        let s3 = fa.match_keys(&state_keys(&q3)).states;
        // Shared prefix: [CLS] SELECT name FROM user WHERE rank.
        let shared = s1.iter().zip(s3.iter()).take_while(|(a, b)| a == b).count();
        assert!(shared >= 6, "expected long shared prefix, got {shared}");
        // q3's two branches repeat the same state block. After stripping
        // [CLS], the layout is `block1 UNION block2 [END]` with equal-size
        // blocks.
        let states = &s3[1..];
        let n = (states.len() - 2) / 2;
        assert_eq!(&states[..n], &states[n + 1..2 * n + 1]);
    }

    #[test]
    fn unseen_structure_yields_unknown_tokens() {
        let fa = fa_of(&["SELECT COUNT(*) FROM title t WHERE t.year > 2000"], 0.0);
        let m = fa.match_keys(&state_keys(&q(
            "SELECT kind_id FROM title GROUP BY kind_id ORDER BY kind_id",
        )));
        assert!(!m.accepted);
        assert!(m.unknown_tokens > 0);
    }

    #[test]
    fn incremental_template_add_preserves_state_ids() {
        let mut fa = fa_of(&["SELECT COUNT(*) FROM title t WHERE t.year > 2000"], 0.0);
        let before: Vec<usize> = fa
            .match_keys(&state_keys(&q("SELECT COUNT(*) FROM title t WHERE t.year > 2000")))
            .states;
        fa.add_template(&state_keys(&q(
            "SELECT kind_id FROM title GROUP BY kind_id ORDER BY kind_id",
        )));
        let after: Vec<usize> = fa
            .match_keys(&state_keys(&q("SELECT COUNT(*) FROM title t WHERE t.year > 2000")))
            .states;
        assert_eq!(before, after, "existing state ids must be stable");
        let m = fa.match_keys(&state_keys(&q(
            "SELECT kind_id FROM title GROUP BY kind_id ORDER BY kind_id",
        )));
        assert!(m.accepted, "new template should now match");
    }

    #[test]
    fn one_hot_width_tracks_states() {
        let fa = fa_of(&["SELECT * FROM t"], 0.0);
        let v = fa.one_hot(1);
        assert_eq!(v.len(), fa.num_states());
        assert_eq!(v.iter().filter(|&&x| x == 1.0).count(), 1);
        assert!(fa.one_hot(fa.num_states() + 5).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn successors_include_self_loops() {
        let fa = fa_of(&["SELECT * FROM title t, movie_companies mc"], 0.0);
        let table_state =
            fa.match_keys(&state_keys(&q("SELECT * FROM title t, movie_companies mc"))).states[4];
        assert!(fa.successors(table_state).contains(&table_state));
    }

    #[test]
    fn empty_template_is_ignored() {
        let mut fa = Automaton::new();
        fa.add_template(&[]);
        assert_eq!(fa.num_templates(), 0);
        assert_eq!(fa.num_states(), 1);
    }

    #[test]
    fn merged_templates_share_prefix_states() {
        // "Maximal prefix" merging: two templates differing only after the
        // WHERE clause reuse all earlier states.
        let a = q("SELECT COUNT(*) FROM title t WHERE t.year > 2000");
        let b = q("SELECT COUNT(*) FROM title t WHERE t.name LIKE '%x%'");
        let fa = Automaton::from_templates(&TemplateSet::extract(&[a.clone(), b.clone()], 0.0));
        let sa = fa.match_keys(&state_keys(&a)).states;
        let sb = fa.match_keys(&state_keys(&b)).states;
        let shared = sa.iter().zip(sb.iter()).take_while(|(x, y)| x == y).count();
        assert!(shared >= 7, "prefix states must be shared, got {shared}");
    }
}
