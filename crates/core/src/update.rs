//! Model update paths (§3.6, Table 5).
//!
//! | Case | Trigger | What retrains |
//! |---|---|---|
//! | 1 | data distribution changed | last SQLBERT layer (incremental) |
//! | 2 | schema updated | Schema2Graph (graph rebuilt + its params) |
//! | 3 | query patterns changed | automaton extended + Input Embedding |
//! | 4 | from scratch | everything |
//!
//! Each path is a thin wrapper that runs MLM steps while the optimizer
//! only owns the affected parameter subset — the paper's Table 5 point is
//! the cost *ordering* of these subsets, which [`UpdateReport`] captures.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use preqr_nn::layers::Module;
use preqr_sql::ast::Query;
use preqr_sql::normalize::state_keys;
use preqr_sql::Query as SqlQuery;
use preqr_train::{FnTask, Plan, StepOutput, Trainer, TrainerConfig};

use crate::sqlbert::SqlBert;

/// The four update cases of §3.6.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateCase {
    /// Incremental learning for the last layer of SQLBERT.
    DataDistribution,
    /// Incremental learning for the Schema2Graph part.
    SchemaChange,
    /// Retraining the Input Embedding module (new query patterns).
    QueryPatterns,
    /// Training from scratch.
    FromScratch,
}

impl UpdateCase {
    /// Paper's description (Table 5).
    pub fn description(&self) -> &'static str {
        match self {
            UpdateCase::DataDistribution => "Incremental learning for the last layer of SQLBERT",
            UpdateCase::SchemaChange => "Incremental Learning for the Schema2Graph part",
            UpdateCase::QueryPatterns => "Incremental learning for the Input Embedding module",
            UpdateCase::FromScratch => "Train from scratch",
        }
    }
}

/// Outcome of one update run.
#[derive(Clone, Copy, Debug)]
pub struct UpdateReport {
    /// Which case ran.
    pub case: UpdateCase,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Number of parameters the optimizer owned.
    pub trained_params: usize,
    /// Final mean MLM loss over the sample set.
    pub final_loss: f64,
}

/// Runs MLM steps over `samples` with the optimizer owning only `params`,
/// via the shared Trainer in its sliding-window plan: one optimizer step
/// per window of up to 4 samples, schema node states refreshed per step.
fn train_subset(
    model: &SqlBert,
    params: Vec<preqr_nn::Tensor>,
    samples: &[Query],
    steps: usize,
    lr: f32,
    seed: u64,
) -> (usize, f64) {
    let trained = params.iter().map(|p| p.value().len()).sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let prepared: Vec<_> = samples.iter().map(|q| model.prepare(q)).collect();
    let nodes = std::cell::RefCell::new(None);
    let mut task = FnTask::new("update", prepared.len(), params, |idx, rng| {
        let (loss, _, _) = model.mlm_loss(&prepared[idx], nodes.borrow().as_ref(), rng);
        let scalar = f64::from(loss.value_clone().get(0, 0));
        loss.backward();
        StepOutput { loss: scalar, ..StepOutput::default() }
    })
    .with_chunk_start(|| *nodes.borrow_mut() = model.node_states())
    .with_post_step(|| {
        // Gradients accumulated into frozen params are discarded by
        // construction: the optimizer never owns them, and each
        // backward clears interior grads. Clear leaf grads globally
        // to avoid unbounded accumulation on frozen leaves.
        for p in model.params() {
            p.zero_grad();
        }
    });
    let config = TrainerConfig::new(Plan::Window { steps, take: 4 }, lr);
    let report = Trainer::new(config).fit(&mut task, &mut rng);
    (trained, report.last_chunk_loss)
}

/// Case 1: data distribution changed — refresh value-range semantics by
/// incrementally training the last SQLBERT layer on fresh samples.
pub fn update_data_distribution(
    model: &mut SqlBert,
    samples: &[Query],
    steps: usize,
) -> UpdateReport {
    let t0 = Instant::now();
    let params = model.last_layer_params();
    let (trained_params, final_loss) = train_subset(model, params, samples, steps, 1e-3, 11);
    UpdateReport {
        case: UpdateCase::DataDistribution,
        seconds: t0.elapsed().as_secs_f64(),
        trained_params,
        final_loss,
    }
}

/// Case 2: the schema changed — rebuild the schema graph and
/// incrementally train the Schema2Graph parameters.
pub fn update_schema(
    model: &mut SqlBert,
    new_schema: &preqr_schema::Schema,
    samples: &[Query],
    steps: usize,
) -> UpdateReport {
    let t0 = Instant::now();
    model.update_schema(new_schema);
    let params = model.schema_params();
    let (trained_params, final_loss) = train_subset(model, params, samples, steps, 1e-3, 12);
    UpdateReport {
        case: UpdateCase::SchemaChange,
        seconds: t0.elapsed().as_secs_f64(),
        trained_params,
        final_loss,
    }
}

/// Case 3: query patterns changed — extend the automaton with the new
/// templates and retrain the Input Embedding module.
pub fn update_query_patterns(
    model: &mut SqlBert,
    new_queries: &[SqlQuery],
    steps: usize,
) -> UpdateReport {
    let t0 = Instant::now();
    for q in new_queries {
        let keys = state_keys(q);
        model.input_mut().automaton_mut().add_template(&keys);
    }
    let params = model.input_params();
    let (trained_params, final_loss) = train_subset(model, params, new_queries, steps, 1e-3, 13);
    UpdateReport {
        case: UpdateCase::QueryPatterns,
        seconds: t0.elapsed().as_secs_f64(),
        trained_params,
        final_loss,
    }
}

/// Case 4: full retraining from scratch.
pub fn retrain_from_scratch(
    corpus: &[Query],
    schema: &preqr_schema::Schema,
    buckets: crate::embedding::ValueBuckets,
    config: crate::config::PreqrConfig,
    epochs: usize,
) -> (SqlBert, UpdateReport) {
    let t0 = Instant::now();
    let mut model = SqlBert::new(corpus, schema, buckets, config);
    let stats = model.pretrain(corpus, epochs, 1e-3);
    let trained_params = model.num_parameters();
    let final_loss = stats.last().map_or(f64::NAN, |s| s.loss);
    (
        model,
        UpdateReport {
            case: UpdateCase::FromScratch,
            seconds: t0.elapsed().as_secs_f64(),
            trained_params,
            final_loss,
        },
    )
}

/// Deterministically subsamples a corpus (for incremental-update sample
/// sets).
pub fn subsample(corpus: &[Query], n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..corpus.len()).collect();
    for i in (1..idx.len()).rev() {
        idx.swap(i, rng.random_range(0..=i));
    }
    idx.into_iter().take(n).map(|i| corpus[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PreqrConfig;
    use crate::embedding::ValueBuckets;
    use preqr_schema::{Column, ColumnType, Schema, Table};
    use preqr_sql::parser::parse;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_table(Table::new(
            "title",
            vec![
                Column::primary("id", ColumnType::Int),
                Column::new("production_year", ColumnType::Int),
            ],
        ));
        s
    }

    fn corpus() -> Vec<SqlQuery> {
        (0..6)
            .map(|i| {
                parse(&format!(
                    "SELECT COUNT(*) FROM title t WHERE t.production_year > {}",
                    1990 + i
                ))
                .unwrap()
            })
            .collect()
    }

    fn model() -> SqlBert {
        let mut b = ValueBuckets::new(4);
        b.insert("title", "production_year", (1930..2020).map(f64::from).collect());
        SqlBert::new(&corpus(), &schema(), b, PreqrConfig::test())
    }

    #[test]
    fn case1_trains_fewest_params() {
        let mut m = model();
        let r1 = update_data_distribution(&mut m, &corpus(), 2);
        assert_eq!(r1.case, UpdateCase::DataDistribution);
        assert!(r1.trained_params > 0);
        assert!(r1.trained_params < m.num_parameters() / 2);
        assert!(r1.final_loss.is_finite());
    }

    #[test]
    fn case2_rebuilds_graph_and_trains_schema_params() {
        let mut m = model();
        let mut s2 = schema();
        s2.add_table(Table::new("movie_companies", vec![Column::primary("id", ColumnType::Int)]));
        let before = m.schema2graph().unwrap().graph().len();
        let r = update_schema(&mut m, &s2, &corpus(), 2);
        assert!(m.schema2graph().unwrap().graph().len() > before);
        assert_eq!(r.case, UpdateCase::SchemaChange);
    }

    #[test]
    fn case3_extends_automaton_for_new_patterns() {
        let mut m = model();
        let new_q = parse("SELECT kind_id FROM title GROUP BY kind_id ORDER BY kind_id").unwrap();
        // New pattern is initially unknown.
        let cov_before = m.prepare(&new_q).structure_coverage;
        let r = update_query_patterns(&mut m, std::slice::from_ref(&new_q), 2);
        let cov_after = m.prepare(&new_q).structure_coverage;
        assert!(cov_after > cov_before, "automaton must learn the new template");
        assert_eq!(r.case, UpdateCase::QueryPatterns);
    }

    #[test]
    fn update_costs_are_ordered_like_table5() {
        // Incremental cases train strict parameter subsets of the full
        // retrain (Case 4). The paper's full Case 1 < Case 3 wall-clock
        // ordering additionally depends on the 30k-token vocabulary,
        // which the paper-scale reproduction binary (table05) measures.
        let mut m = model();
        let r1 = update_data_distribution(&mut m, &corpus(), 1);
        let r3 = update_query_patterns(&mut m, &corpus(), 1);
        let (_, r4) = retrain_from_scratch(
            &corpus(),
            &schema(),
            {
                let mut b = ValueBuckets::new(4);
                b.insert("title", "production_year", (1930..2020).map(f64::from).collect());
                b
            },
            PreqrConfig::test(),
            1,
        );
        assert!(r1.trained_params < r4.trained_params);
        assert!(r3.trained_params < r4.trained_params);
        assert_eq!(r4.trained_params, m.num_parameters());
    }

    #[test]
    fn subsample_is_deterministic_and_bounded() {
        let c = corpus();
        let a = subsample(&c, 3, 5);
        let b = subsample(&c, 3, 5);
        assert_eq!(
            a.iter().map(SqlQuery::sql).collect::<Vec<_>>(),
            b.iter().map(SqlQuery::sql).collect::<Vec<_>>()
        );
        assert_eq!(a.len(), 3);
        assert_eq!(subsample(&c, 100, 5).len(), c.len());
    }
}
