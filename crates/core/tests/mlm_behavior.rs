//! Behavioral tests of the MLM pre-training procedure (§3.5.2).

use preqr::{PreqrConfig, SqlBert, ValueBuckets};
use preqr_schema::{Column, ColumnType, Schema, Table};
use preqr_sql::parser::parse;
use preqr_sql::Query;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_table(Table::new(
        "title",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("production_year", ColumnType::Int),
            Column::new("kind_id", ColumnType::Int),
        ],
    ));
    s
}

fn corpus() -> Vec<Query> {
    (0..12)
        .map(|i| {
            parse(&format!(
                "SELECT COUNT(*) FROM title t WHERE t.production_year > {} AND t.kind_id = {}",
                1960 + i * 5,
                1 + i % 4
            ))
            .unwrap()
        })
        .collect()
}

fn model() -> SqlBert {
    let mut b = ValueBuckets::new(8);
    b.insert("title", "production_year", (1930..2020).map(f64::from).collect());
    b.insert("title", "kind_id", (1..8).map(f64::from).collect());
    SqlBert::new(&corpus(), &schema(), b, PreqrConfig::test())
}

#[test]
fn masking_follows_the_80_10_10_split() {
    // Over many corruption draws, ~80% of selected positions become
    // [MASK], ~10% a random maskable token, ~10% stay unchanged.
    let m = model();
    let pq = m.prepare(&corpus()[0]);
    let mut rng = StdRng::seed_from_u64(42);
    let (mut masked, mut random, mut unchanged, mut total) = (0u32, 0u32, 0u32, 0u32);
    for _ in 0..800 {
        let (overrides, targets) = m.mlm_corrupt(&pq, &mut rng);
        for (i, &t) in targets.iter().enumerate() {
            if t == usize::MAX {
                continue;
            }
            total += 1;
            match overrides[i] {
                Some(id) if id == m.input().mask_id() => masked += 1,
                Some(_) => random += 1,
                None => unchanged += 1,
            }
        }
    }
    let f = |x: u32| f64::from(x) / f64::from(total);
    assert!((f(masked) - 0.8).abs() < 0.05, "mask fraction {}", f(masked));
    // The 10% "random token" draw can coincide with [MASK]'s bucket only
    // if [MASK] were maskable; it is not, so random+unchanged ≈ 20%.
    assert!((f(random) - 0.1).abs() < 0.04, "random fraction {}", f(random));
    assert!((f(unchanged) - 0.1).abs() < 0.04, "unchanged fraction {}", f(unchanged));
}

#[test]
fn mask_rate_is_about_15_percent_of_maskable_positions() {
    let m = model();
    let pq = m.prepare(&corpus()[1]);
    let maskable = pq.tokens.iter().filter(|t| t.maskable).count() as f64;
    let mut rng = StdRng::seed_from_u64(9);
    let mut chosen = 0.0f64;
    let rounds = 600;
    for _ in 0..rounds {
        let (_, targets) = m.mlm_corrupt(&pq, &mut rng);
        chosen += targets.iter().filter(|&&t| t != usize::MAX).count() as f64;
    }
    let rate = chosen / (maskable * f64::from(rounds));
    // The floor of "at least one mask" nudges the effective rate above
    // 0.15 on short sequences.
    assert!((0.13..0.30).contains(&rate), "mask rate {rate}");
}

#[test]
fn mlm_predictions_become_confident_on_a_memorizable_corpus() {
    let mut m = model();
    let stats = m.pretrain(&corpus(), 10, 5e-3);
    let last = stats.last().unwrap();
    assert!(last.accuracy > 0.8, "a 12-query corpus should be memorized: acc {}", last.accuracy);
}

#[test]
fn targets_are_never_special_tokens() {
    let m = model();
    let mut rng = StdRng::seed_from_u64(3);
    for q in corpus() {
        let pq = m.prepare(&q);
        let (_, targets) = m.mlm_corrupt(&pq, &mut rng);
        for &t in targets.iter().filter(|&&t| t != usize::MAX) {
            let tok = m.input().vocab().token(t).unwrap();
            assert!(
                !["[PAD]", "[UNK]", "[CLS]", "[END]", "[MASK]"].contains(&tok),
                "special token {tok} became an MLM target"
            );
        }
    }
}
