//! No-op serde derive stubs: the workspace only uses serde derives
//! decoratively (serde_json is not a dependency), so empty expansions
//! are enough to typecheck and run.
extern crate proc_macro;
use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
