//! Serving configuration.

/// Tuning knobs for a [`crate::Service`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Most requests one micro-batch may carry (min 1).
    pub max_batch: usize,
    /// Logical ticks the oldest queued request may wait before a partial
    /// batch closes (see [`crate::clock::LogicalClock`]). 0 closes every
    /// batch as soon as any work is available.
    pub batch_timeout: u64,
    /// Bounded admission queue: submissions beyond this depth are
    /// rejected with `QueueFull` instead of queueing unboundedly.
    pub queue_capacity: usize,
    /// Embedding-cache entries, keyed by normalized template. 0 disables
    /// caching entirely.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { max_batch: 16, batch_timeout: 2, queue_capacity: 256, cache_capacity: 1024 }
    }
}

impl ServeConfig {
    /// Copy with invalid fields clamped to their minimum legal values.
    pub(crate) fn normalized(self) -> Self {
        ServeConfig { max_batch: self.max_batch.max(1), ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_clamps_batch_to_one() {
        let c = ServeConfig { max_batch: 0, ..ServeConfig::default() }.normalized();
        assert_eq!(c.max_batch, 1);
        assert_eq!(ServeConfig::default().normalized().max_batch, 16);
    }
}
