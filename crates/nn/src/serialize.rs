//! Checkpoint format: named parameter matrices in a small binary container.
//!
//! Layout (version 2): magic `PRQR`, version u32, count u32, then per entry
//! `name_len u32 | name bytes | rows u32 | cols u32 | f32 LE data`, then a
//! trailing FNV-1a-64 checksum (u64 LE) over every preceding byte.
//!
//! The checksum makes corruption detection exact: two byte streams that
//! differ in any single byte hash differently (each FNV step is an
//! invertible map of the running state, so a difference can never cancel),
//! so truncated or bit-flipped checkpoints always fail with an error —
//! never a panic, and never silently loading wrong weights. Header fields
//! are also bounds-checked before any allocation so a corrupt length can't
//! trigger a huge allocation. Property-tested in `tests/prop_serialize.rs`.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::matrix::Matrix;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"PRQR";
const VERSION: u32 = 2;

/// Largest accepted parameter-name length in bytes.
const MAX_NAME_LEN: usize = 1 << 16;
/// Largest accepted matrix dimension.
const MAX_DIM: usize = 1 << 24;
/// Largest accepted element count per matrix (256 MiB of f32).
const MAX_ELEMS: usize = 1 << 26;
/// Largest accepted parameter count.
const MAX_COUNT: usize = 1 << 20;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Incremental FNV-1a-64.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
}

/// Write adapter that hashes everything passing through.
struct HashingWriter<'a, W: Write> {
    inner: &'a mut W,
    hash: Fnv,
}

impl<W: Write> Write for HashingWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Read adapter that hashes everything passing through.
struct HashingReader<'a, R: Read> {
    inner: &'a mut R,
    hash: Fnv,
}

impl<R: Read> Read for HashingReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hash.update(&buf[..n]);
        Ok(n)
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes named parameters to `w` (format v2, checksummed).
pub fn write_params<W: Write>(w: &mut W, params: &[(String, Tensor)]) -> io::Result<()> {
    let mut hw = HashingWriter { inner: w, hash: Fnv::new() };
    hw.write_all(MAGIC)?;
    hw.write_all(&VERSION.to_le_bytes())?;
    hw.write_all(&(params.len() as u32).to_le_bytes())?;
    for (name, t) in params {
        let bytes = name.as_bytes();
        hw.write_all(&(bytes.len() as u32).to_le_bytes())?;
        hw.write_all(bytes)?;
        let v = t.value();
        hw.write_all(&(v.rows() as u32).to_le_bytes())?;
        hw.write_all(&(v.cols() as u32).to_le_bytes())?;
        for &x in v.data() {
            hw.write_all(&x.to_le_bytes())?;
        }
    }
    let digest = hw.hash.0;
    hw.inner.write_all(&digest.to_le_bytes())
}

/// Reads named matrices from `r`, verifying the trailing checksum.
///
/// # Errors
/// Any structural problem — bad magic, unsupported version, out-of-range
/// lengths, truncation, checksum mismatch — returns `InvalidData` /
/// `UnexpectedEof`; this function never panics on malformed input.
pub fn read_params<R: Read>(r: &mut R) -> io::Result<HashMap<String, Matrix>> {
    let mut hr = HashingReader { inner: r, hash: Fnv::new() };
    let mut magic = [0u8; 4];
    hr.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad_data("bad checkpoint magic"));
    }
    let version = read_u32(&mut hr)?;
    if version != VERSION {
        return Err(bad_data(format!("unsupported checkpoint version {version}")));
    }
    let count = read_u32(&mut hr)? as usize;
    if count > MAX_COUNT {
        return Err(bad_data(format!("checkpoint parameter count {count} exceeds {MAX_COUNT}")));
    }
    let mut out = HashMap::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(&mut hr)? as usize;
        if name_len > MAX_NAME_LEN {
            return Err(bad_data(format!(
                "parameter name length {name_len} exceeds {MAX_NAME_LEN}"
            )));
        }
        let mut name = vec![0u8; name_len];
        hr.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|e| bad_data(e.to_string()))?;
        let rows = read_u32(&mut hr)? as usize;
        let cols = read_u32(&mut hr)? as usize;
        if rows > MAX_DIM || cols > MAX_DIM {
            return Err(bad_data(format!("matrix dimension {rows}x{cols} exceeds {MAX_DIM}")));
        }
        let elems = rows.checked_mul(cols).filter(|&n| n <= MAX_ELEMS).ok_or_else(|| {
            bad_data(format!("matrix {rows}x{cols} exceeds {MAX_ELEMS} elements"))
        })?;
        let mut data = vec![0f32; elems];
        let mut buf = [0u8; 4];
        for x in data.iter_mut() {
            hr.read_exact(&mut buf)?;
            *x = f32::from_le_bytes(buf);
        }
        out.insert(name, Matrix::from_vec(rows, cols, data));
    }
    let computed = hr.hash.0;
    let mut digest = [0u8; 8];
    hr.inner.read_exact(&mut digest)?;
    if u64::from_le_bytes(digest) != computed {
        return Err(bad_data("checkpoint checksum mismatch"));
    }
    Ok(out)
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Saves named parameters to a file.
pub fn save_to_file(path: impl AsRef<Path>, params: &[(String, Tensor)]) -> io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_params(&mut f, params)?;
    f.flush()
}

/// Loads named matrices from a file.
pub fn load_from_file(path: impl AsRef<Path>) -> io::Result<HashMap<String, Matrix>> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    read_params(&mut f)
}

/// Copies loaded matrices into matching parameters.
///
/// Returns the number of applied parameters. Errors if a named parameter is
/// missing from the checkpoint or has a mismatched shape — checked for
/// **every** parameter before anything is written, so a failed apply never
/// leaves the model half-loaded.
pub fn apply_params(
    params: &[(String, Tensor)],
    loaded: &HashMap<String, Matrix>,
) -> Result<usize, String> {
    for (name, t) in params {
        let m =
            loaded.get(name).ok_or_else(|| format!("checkpoint is missing parameter `{name}`"))?;
        if m.shape() != t.shape() {
            return Err(format!(
                "shape mismatch for `{name}`: checkpoint {:?} vs model {:?}",
                m.shape(),
                t.shape()
            ));
        }
    }
    for (name, t) in params {
        t.set_value(loaded[name].clone());
    }
    Ok(params.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_params() -> Vec<(String, Tensor)> {
        vec![
            ("a.w".to_string(), Tensor::param(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]))),
            ("a.b".to_string(), Tensor::param(Matrix::from_vec(1, 2, vec![-0.5, 0.25]))),
        ]
    }

    #[test]
    fn round_trip_in_memory() {
        let params = sample_params();
        let mut buf = Vec::new();
        write_params(&mut buf, &params).unwrap();
        let loaded = read_params(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded["a.w"], params[0].1.value_clone());
        assert_eq!(loaded["a.b"], params[1].1.value_clone());
    }

    #[test]
    fn apply_restores_values() {
        let params = sample_params();
        let mut buf = Vec::new();
        write_params(&mut buf, &params).unwrap();
        // Perturb, then restore.
        params[0].1.set_value(Matrix::zeros(2, 2));
        let loaded = read_params(&mut buf.as_slice()).unwrap();
        let n = apply_params(&params, &loaded).unwrap();
        assert_eq!(n, 2);
        assert_eq!(params[0].1.value_clone().data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn apply_rejects_missing_and_mismatched() {
        let params = sample_params();
        let mut loaded = HashMap::new();
        loaded.insert("a.w".to_string(), Matrix::zeros(2, 2));
        assert!(apply_params(&params, &loaded).unwrap_err().contains("missing"));
        loaded.insert("a.b".to_string(), Matrix::zeros(3, 3));
        assert!(apply_params(&params, &loaded).unwrap_err().contains("shape mismatch"));
    }

    #[test]
    fn failed_apply_leaves_params_untouched() {
        let params = sample_params();
        let mut loaded = HashMap::new();
        // First parameter present, second mismatched: nothing may change.
        loaded.insert("a.w".to_string(), Matrix::zeros(2, 2));
        loaded.insert("a.b".to_string(), Matrix::zeros(3, 3));
        assert!(apply_params(&params, &loaded).is_err());
        assert_eq!(params[0].1.value_clone().data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn rejects_bad_magic() {
        let bytes = b"NOPE\0\0\0\0";
        assert!(read_params(&mut &bytes[..]).is_err());
    }

    #[test]
    fn rejects_old_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_params(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn rejects_every_truncation() {
        let params = sample_params();
        let mut buf = Vec::new();
        write_params(&mut buf, &params).unwrap();
        for len in 0..buf.len() {
            assert!(read_params(&mut &buf[..len]).is_err(), "prefix of {len} bytes must fail");
        }
    }

    #[test]
    fn rejects_every_single_bit_flip() {
        let params = sample_params();
        let mut buf = Vec::new();
        write_params(&mut buf, &params).unwrap();
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut corrupt = buf.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    read_params(&mut corrupt.as_slice()).is_err(),
                    "flip of byte {byte} bit {bit} must fail"
                );
            }
        }
    }

    #[test]
    fn rejects_absurd_lengths_without_allocating() {
        // count = u32::MAX
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_params(&mut buf.as_slice()).is_err());
        // name_len = u32::MAX
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_params(&mut buf.as_slice()).is_err());
        // rows × cols overflowing the element cap
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(b'x');
        buf.extend_from_slice(&16_000_000u32.to_le_bytes());
        buf.extend_from_slice(&16_000_000u32.to_le_bytes());
        assert!(read_params(&mut buf.as_slice()).is_err());
    }
}
