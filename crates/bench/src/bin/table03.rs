//! Table 3 — the number of query templates per dataset.
//!
//! Paper reference: JOB-light 1, Synthetic 1, Scale 1, WikiSQL 2, JOB 3,
//! UB Exam 3, IIT Bombay 4, PocketData 4, StackOverflow 8 — the point
//! being that a small number of templates covers each workload, so
//! building and matching the automaton is cheap.

use preqr_bench::Ctx;
use preqr_data::clustering::{iit_bombay, pocketdata, ub_exam};
use preqr_data::text::{corpus, TextStyle};
use preqr_data::workloads;
use preqr_sql::ast::Query;
use preqr_sql::template::TemplateSet;

fn count(name: &str, queries: &[Query], paper: usize) {
    // The paper's template extraction is semi-automatic and coarse (one
    // template covers all of JOB-light). A merge threshold of 0.5 on the
    // hybrid distance reproduces that granularity; override with THR=…
    let thr: f64 = std::env::var("THR").ok().and_then(|v| v.parse().ok()).unwrap_or(0.5);
    let t = TemplateSet::extract(queries, thr);
    println!("{name:<14} {:>10} {:>8}", t.len(), paper);
}

fn main() {
    let ctx = Ctx::build();
    println!("=== Table 3: number of query templates ===");
    println!("{:<14} {:>10} {:>8}", "dataset", "measured", "paper");
    count("JOB-light", &workloads::job_light(&ctx.db, 41), 1);
    count("Synthetic", &workloads::synthetic(&ctx.db, 600, 42), 1);
    count("Scale", &workloads::scale(&ctx.db, 43), 1);
    let wiki: Vec<Query> =
        corpus(TextStyle::WikiSql, 200, 5).into_iter().map(|p| p.query).collect();
    count("WikiSQL", &wiki, 2);
    count("JOB", &workloads::job_full(&ctx.db, 120, 44), 3);
    count("UB Exam", &ub_exam().queries, 3);
    count("IIT Bombay", &iit_bombay().queries, 4);
    count("PocketData", &pocketdata().queries, 4);
    let stack: Vec<Query> =
        corpus(TextStyle::StackOverflow, 200, 6).into_iter().map(|p| p.query).collect();
    count("StackOverflow", &stack, 8);
}
