//! Property-based tests on the evaluation metrics.

use proptest::prelude::*;

use preqr_tasks::metrics::{betacv, bleu, ndcg_at_k, qerror, QErrorStats};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// q-error is symmetric, ≥ 1, and multiplicative-scale invariant.
    #[test]
    fn qerror_properties(pred in 0.0f64..1e9, truth in 0.0f64..1e9, s in 1.0f64..100.0) {
        let q = qerror(pred, truth);
        prop_assert!(q >= 1.0);
        prop_assert!((qerror(truth, pred) - q).abs() < 1e-9 * q);
        // Scaling both sides leaves q-error unchanged (above the clamp).
        if pred >= 1.0 && truth >= 1.0 {
            let qs = qerror(pred * s, truth * s);
            prop_assert!((qs - q).abs() < 1e-6 * q.max(qs));
        }
    }

    /// Percentiles are monotone: median ≤ p90 ≤ p95 ≤ p99 ≤ max, and the
    /// mean lies within [1, max].
    #[test]
    fn qerror_stats_monotone(
        preds in proptest::collection::vec(0.5f64..1e6, 1..60),
        truths in proptest::collection::vec(0.5f64..1e6, 1..60),
    ) {
        let n = preds.len().min(truths.len());
        let s = QErrorStats::compute(&preds[..n], &truths[..n]);
        prop_assert!(s.median <= s.p90 + 1e-9);
        prop_assert!(s.p90 <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.p99 + 1e-9);
        prop_assert!(s.p99 <= s.max + 1e-9);
        prop_assert!(s.mean >= 1.0 - 1e-9 && s.mean <= s.max + 1e-9);
    }

    /// BetaCV of an all-equal distance matrix is 1; scaling distances
    /// leaves it unchanged.
    #[test]
    fn betacv_scale_invariant(
        labels in proptest::collection::vec(0usize..3, 4..20),
        scale in 0.1f64..10.0,
    ) {
        let n = labels.len();
        prop_assume!(labels.iter().any(|&l| l != labels[0]));
        // Distance = |i - j| (an arbitrary but symmetric metric-ish matrix).
        let d: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| (i as f64 - j as f64).abs()).collect())
            .collect();
        let ds: Vec<Vec<f64>> =
            d.iter().map(|r| r.iter().map(|&x| x * scale).collect()).collect();
        let a = betacv(&d, &labels);
        let b = betacv(&ds, &labels);
        prop_assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
    }

    /// NDCG is in [0, 1], and the identity ranking of sorted relevance is
    /// optimal.
    #[test]
    fn ndcg_bounds_and_optimality(
        mut rel in proptest::collection::vec(0.0f64..10.0, 2..15),
        k in 1usize..15,
    ) {
        rel.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let ideal: Vec<usize> = (0..rel.len()).collect();
        let best = ndcg_at_k(&rel, &ideal, k);
        prop_assert!(best >= 1.0 - 1e-9 && best <= 1.0 + 1e-9);
        let reversed: Vec<usize> = (0..rel.len()).rev().collect();
        let worst = ndcg_at_k(&rel, &reversed, k);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&worst));
        prop_assert!(worst <= best + 1e-9);
    }

    /// BLEU is in [0, 1] and equals 1 only for exact matches.
    #[test]
    fn bleu_bounds(words in proptest::collection::vec("[a-e]{1,3}", 1..12)) {
        let cand = vec![words.clone()];
        let refs = vec![vec![words.clone()]];
        prop_assert!((bleu(&cand, &refs) - 1.0).abs() < 1e-9);
        let mut other = words.clone();
        other.push("zzz".to_string());
        let b = bleu(&vec![other], &refs);
        prop_assert!((0.0..1.0 + 1e-9).contains(&b));
    }
}
