//! Row-partitioned dense helpers shared by the autograd ops.
//!
//! These free functions operate on raw `f32` buffers (no tensor graph), so
//! they can be driven by the worker pool: rows are partitioned across
//! tasks, each row's math is byte-for-byte the serial loop, and the
//! dispatch blocks until every chunk completes — results are bit-identical
//! at any thread count.

use std::ops::Range;

use crate::matrix::Matrix;
use crate::parallel;

/// Row-partitioned layer-norm forward: returns `(xhat, inv_std, out)`.
/// Each row's statistics and normalization are computed independently, so
/// the parallel partition is bit-identical to the serial loop.
pub(crate) fn layer_norm_forward(
    xs: &[f32],
    rows: usize,
    d: usize,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) -> (Matrix, Vec<f32>, Matrix) {
    let mut xhat = Matrix::zeros(rows, d);
    let mut inv_std = vec![0.0f32; rows];
    let mut out = Matrix::zeros(rows, d);
    let run = |range: Range<usize>, xhat_c: &mut [f32], istd_c: &mut [f32], out_c: &mut [f32]| {
        for (local, r) in range.enumerate() {
            let row = &xs[r * d..(r + 1) * d];
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + eps).sqrt();
            istd_c[local] = istd;
            let xh = &mut xhat_c[local * d..(local + 1) * d];
            let o = &mut out_c[local * d..(local + 1) * d];
            for c in 0..d {
                xh[c] = (row[c] - mean) * istd;
                o[c] = xh[c] * gamma[c] + beta[c];
            }
        }
    };
    if rows * d < parallel::PAR_MIN_ELEMS || rows < 2 {
        run(0..rows, xhat.data_mut(), &mut inv_std, out.data_mut());
    } else {
        let xhat_ptr = parallel::SharedMut::new(xhat.data_mut().as_mut_ptr());
        let istd_ptr = parallel::SharedMut::new(inv_std.as_mut_ptr());
        let out_ptr = parallel::SharedMut::new(out.data_mut().as_mut_ptr());
        parallel::for_each_row_chunk(rows, 4, |range| {
            let len = range.len();
            // SAFETY: row ranges are disjoint across tasks and the dispatch
            // blocks until every task completes, so each task has exclusive
            // access to its slice of all three buffers.
            unsafe {
                let xh =
                    std::slice::from_raw_parts_mut(xhat_ptr.get().add(range.start * d), len * d);
                let istd = std::slice::from_raw_parts_mut(istd_ptr.get().add(range.start), len);
                let o = std::slice::from_raw_parts_mut(out_ptr.get().add(range.start * d), len * d);
                run(range, xh, istd, o);
            }
        });
    }
    (xhat, inv_std, out)
}

/// Row-partitioned layer-norm input gradient (same per-row math as the
/// original serial loop, hence bit-identical at any thread count).
pub(crate) fn layer_norm_backward_dx(
    g: &[f32],
    rows: usize,
    d: usize,
    gamma: &[f32],
    xhat: &Matrix,
    inv_std: &[f32],
) -> Matrix {
    let mut dx = Matrix::zeros(rows, d);
    let xh = xhat.data();
    let run = |range: Range<usize>, dx_c: &mut [f32]| {
        let mut dxhat = vec![0.0f32; d];
        for (local, r) in range.enumerate() {
            let gr = &g[r * d..(r + 1) * d];
            let xr = &xh[r * d..(r + 1) * d];
            for c in 0..d {
                dxhat[c] = gr[c] * gamma[c];
            }
            let mean_dxhat = dxhat.iter().sum::<f32>() / d as f32;
            let mean_dxhat_xhat =
                dxhat.iter().zip(xr.iter()).map(|(&v, &x)| v * x).sum::<f32>() / d as f32;
            let istd = inv_std[r];
            let o = &mut dx_c[local * d..(local + 1) * d];
            for c in 0..d {
                o[c] = istd * (dxhat[c] - mean_dxhat - xr[c] * mean_dxhat_xhat);
            }
        }
    };
    if rows * d < parallel::PAR_MIN_ELEMS || rows < 2 {
        run(0..rows, dx.data_mut());
    } else {
        let dx_ptr = parallel::SharedMut::new(dx.data_mut().as_mut_ptr());
        parallel::for_each_row_chunk(rows, 4, |range| {
            let len = range.len();
            // SAFETY: disjoint row ranges; dispatch blocks until completion.
            unsafe {
                let o = std::slice::from_raw_parts_mut(dx_ptr.get().add(range.start * d), len * d);
                run(range, o);
            }
        });
    }
    dx
}
