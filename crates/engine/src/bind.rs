//! Name resolution: table bindings (aliases) and column references.

use std::collections::HashMap;
use std::fmt;

use preqr_schema::Schema;
use preqr_sql::ast::{ColumnRef, SelectStmt};

/// Execution/binding error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Unknown table name.
    UnknownTable(String),
    /// Unresolvable column reference.
    UnknownColumn(String),
    /// Ambiguous unqualified column.
    AmbiguousColumn(String),
    /// Unsupported query shape.
    Unsupported(String),
    /// Intermediate result exceeded the safety cap.
    TooLarge(u64),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            ExecError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            ExecError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            ExecError::TooLarge(n) => write!(f, "intermediate result too large ({n} rows)"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A bound column: `(binding index, column index within the table)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BoundColumn {
    /// Index into the binding list (the query's table order).
    pub table: usize,
    /// Column index within that table's schema definition.
    pub column: usize,
}

/// Table bindings of one SELECT: maps aliases to schema tables.
#[derive(Clone, Debug)]
pub struct Bindings {
    /// `(binding name, table name)` in FROM/JOIN order.
    entries: Vec<(String, String)>,
    by_name: HashMap<String, usize>,
}

impl Bindings {
    /// Builds bindings for a SELECT against a schema.
    ///
    /// # Errors
    /// [`ExecError::UnknownTable`] if any referenced table is undefined.
    pub fn of(stmt: &SelectStmt, schema: &Schema) -> Result<Self, ExecError> {
        let mut entries = Vec::new();
        let mut by_name = HashMap::new();
        for tref in stmt.tables() {
            if schema.table(&tref.table).is_none() {
                return Err(ExecError::UnknownTable(tref.table.clone()));
            }
            let name = tref.binding().to_string();
            by_name.insert(name.clone(), entries.len());
            entries.push((name, tref.table.clone()));
        }
        Ok(Self { entries, by_name })
    }

    /// Number of bound tables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no tables are bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Schema table name of binding `i`.
    pub fn table_name(&self, i: usize) -> &str {
        &self.entries[i].1
    }

    /// Binding (alias) name of binding `i`.
    pub fn binding_name(&self, i: usize) -> &str {
        &self.entries[i].0
    }

    /// Resolves a column reference.
    ///
    /// # Errors
    /// Unknown or ambiguous references.
    pub fn resolve(&self, col: &ColumnRef, schema: &Schema) -> Result<BoundColumn, ExecError> {
        match &col.table {
            Some(binding) => {
                let &t = self
                    .by_name
                    .get(binding)
                    .ok_or_else(|| ExecError::UnknownTable(binding.clone()))?;
                let table = schema.table(self.table_name(t)).expect("bound table exists");
                let c = table
                    .column_index(&col.column)
                    .ok_or_else(|| ExecError::UnknownColumn(col.to_string()))?;
                Ok(BoundColumn { table: t, column: c })
            }
            None => {
                let mut found = None;
                for (i, (_, table_name)) in self.entries.iter().enumerate() {
                    let table = schema.table(table_name).expect("bound table exists");
                    if let Some(c) = table.column_index(&col.column) {
                        if found.is_some() {
                            return Err(ExecError::AmbiguousColumn(col.column.clone()));
                        }
                        found = Some(BoundColumn { table: i, column: c });
                    }
                }
                found.ok_or_else(|| ExecError::UnknownColumn(col.column.clone()))
            }
        }
    }
}

impl PartialEq for Bindings {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_schema::{Column, ColumnType, Table};
    use preqr_sql::parser::parse;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_table(Table::new(
            "title",
            vec![Column::primary("id", ColumnType::Int), Column::new("year", ColumnType::Int)],
        ));
        s.add_table(Table::new(
            "movie_companies",
            vec![Column::primary("id", ColumnType::Int), Column::new("movie_id", ColumnType::Int)],
        ));
        s
    }

    #[test]
    fn binds_aliases_and_resolves_qualified() {
        let q =
            parse("SELECT t.id FROM title t, movie_companies mc WHERE t.id = mc.movie_id").unwrap();
        let b = Bindings::of(&q.body, &schema()).unwrap();
        assert_eq!(b.len(), 2);
        let r = b.resolve(&ColumnRef::qualified("mc", "movie_id"), &schema()).unwrap();
        assert_eq!(r, BoundColumn { table: 1, column: 1 });
    }

    #[test]
    fn resolves_unqualified_unique_column() {
        let q = parse("SELECT year FROM title").unwrap();
        let b = Bindings::of(&q.body, &schema()).unwrap();
        let r = b.resolve(&ColumnRef::bare("year"), &schema()).unwrap();
        assert_eq!(r, BoundColumn { table: 0, column: 1 });
    }

    #[test]
    fn reports_ambiguous_unqualified_column() {
        let q = parse("SELECT id FROM title, movie_companies").unwrap();
        let b = Bindings::of(&q.body, &schema()).unwrap();
        assert_eq!(
            b.resolve(&ColumnRef::bare("id"), &schema()),
            Err(ExecError::AmbiguousColumn("id".into()))
        );
    }

    #[test]
    fn reports_unknown_table_and_column() {
        let q = parse("SELECT x FROM nope").unwrap();
        assert_eq!(Bindings::of(&q.body, &schema()), Err(ExecError::UnknownTable("nope".into())));
        let q2 = parse("SELECT nope_col FROM title").unwrap();
        let b = Bindings::of(&q2.body, &schema()).unwrap();
        assert!(matches!(
            b.resolve(&ColumnRef::bare("nope_col"), &schema()),
            Err(ExecError::UnknownColumn(_))
        ));
    }

    #[test]
    fn join_clause_tables_are_bound() {
        let q =
            parse("SELECT * FROM title t JOIN movie_companies mc ON t.id = mc.movie_id").unwrap();
        let b = Bindings::of(&q.body, &schema()).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.table_name(1), "movie_companies");
        assert_eq!(b.binding_name(1), "mc");
    }
}
