//! Query execution: filters, hash joins, aggregation, set operations.
//!
//! The executor produces both query answers and the ground truth the
//! learned-estimator experiments need: the pre-aggregation join
//! cardinality, the per-join-step intermediate cardinalities (input to the
//! true-cost model), and the surviving base-table row ids (input to the
//! CH-workload result-overlap similarity).

use std::collections::{HashMap, HashSet};

use preqr_obs as obs;
use preqr_sql::ast::{AggFunc, Expr, Query, Scalar, SelectItem, SelectStmt};

use crate::bind::{Bindings, BoundColumn, ExecError};
use crate::filter::{compile, filter_rows};
use crate::storage::{ColumnData, Database, Datum};

/// Safety cap on intermediate join results.
const MAX_INTERMEDIATE: u64 = 50_000_000;

/// A hashable join/group key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Key {
    /// Integer key.
    I(i64),
    /// Dictionary code key (strings joined by equality only make sense
    /// within one column's dictionary, so keys also carry the string).
    S(String),
    /// Float key by bit pattern.
    F(u64),
}

impl Key {
    fn of(d: &Datum) -> Key {
        match d {
            Datum::Int(v) => Key::I(*v),
            Datum::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 9e15 {
                    Key::I(*v as i64)
                } else {
                    Key::F(v.to_bits())
                }
            }
            Datum::Str(s) => Key::S(s.clone()),
        }
    }
}

/// Result of executing a query.
#[derive(Clone, Debug, Default)]
pub struct QueryResult {
    /// Final projected rows (after aggregation / ORDER BY / LIMIT).
    pub rows: Vec<Vec<Datum>>,
    /// Cardinality of the joined, filtered relation before aggregation and
    /// LIMIT — the quantity cardinality estimators predict.
    pub join_cardinality: u64,
    /// Intermediate cardinalities: filtered sizes of each base table in
    /// join order, then the result size after each join step.
    pub step_cardinalities: Vec<u64>,
    /// Distinct surviving row ids of the canonical base table (result
    /// signature used by the CH clustering workload).
    pub base_row_ids: Vec<u32>,
    /// Distinct surviving row ids per bound table name (sorted). Lets
    /// consumers compare result signatures across rewrites that add or
    /// remove join tables (e.g. IN-subquery ↔ join).
    pub table_row_ids: Vec<(String, Vec<u32>)>,
}

/// Executes a query against a database.
///
/// # Errors
/// Name-resolution failures, unsupported shapes, or blowing the
/// intermediate-size cap.
pub fn execute(db: &Database, q: &Query) -> Result<QueryResult, ExecError> {
    obs::counter_add(obs::Metric::EngineQueries, 1);
    let result = execute_query(db, q);
    match &result {
        Ok(r) => obs::record_hist(obs::HistMetric::EngineJoinCard, r.join_cardinality as f64),
        Err(ExecError::TooLarge(_)) => obs::counter_add(obs::Metric::EngineCapHits, 1),
        Err(_) => obs::counter_add(obs::Metric::EngineErrors, 1),
    }
    result
}

fn execute_query(db: &Database, q: &Query) -> Result<QueryResult, ExecError> {
    let mut result = execute_select(db, &q.body)?;
    if !q.unions.is_empty() {
        // UNION has set semantics: duplicates are removed across *and*
        // within branches.
        let mut seen: HashSet<String> = HashSet::new();
        result.rows.retain(|r| seen.insert(row_key(r)));
        let mut ids: HashSet<u32> = result.base_row_ids.iter().copied().collect();
        let mut by_table: HashMap<String, HashSet<u32>> =
            result.table_row_ids.drain(..).map(|(t, v)| (t, v.into_iter().collect())).collect();
        for u in &q.unions {
            let part = execute_select(db, u)?;
            result.join_cardinality += part.join_cardinality;
            result.step_cardinalities.extend(part.step_cardinalities);
            for row in part.rows {
                if seen.insert(row_key(&row)) {
                    result.rows.push(row);
                }
            }
            ids.extend(part.base_row_ids);
            for (t, v) in part.table_row_ids {
                by_table.entry(t).or_default().extend(v);
            }
        }
        let mut ids: Vec<u32> = ids.into_iter().collect();
        ids.sort_unstable();
        result.base_row_ids = ids;
        let mut merged: Vec<(String, Vec<u32>)> = by_table
            .into_iter()
            .map(|(t, set)| {
                let mut v: Vec<u32> = set.into_iter().collect();
                v.sort_unstable();
                (t, v)
            })
            .collect();
        merged.sort();
        result.table_row_ids = merged;
    }
    Ok(result)
}

fn row_key(row: &[Datum]) -> String {
    let mut s = String::new();
    for d in row {
        s.push_str(&d.to_string());
        s.push('\u{1f}');
    }
    s
}

/// The joined intermediate relation: per bound table, aligned row ids.
struct Intermediate {
    /// `cols[t][i]` = row id of binding `t` in intermediate row `i`.
    cols: Vec<Vec<u32>>,
    bound: Vec<bool>,
    len: usize,
}

fn execute_select(db: &Database, stmt: &SelectStmt) -> Result<QueryResult, ExecError> {
    let bindings = Bindings::of(stmt, db.schema())?;
    if bindings.is_empty() {
        return Err(ExecError::Unsupported("SELECT without FROM".to_string()));
    }

    // Partition predicates.
    let mut table_preds: Vec<Vec<Expr>> = vec![Vec::new(); bindings.len()];
    let mut join_preds: Vec<(BoundColumn, BoundColumn)> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    let mut conjuncts: Vec<Expr> = Vec::new();
    if let Some(w) = &stmt.where_clause {
        conjuncts.extend(w.conjuncts().into_iter().cloned());
    }
    for j in &stmt.joins {
        conjuncts.extend(j.on.conjuncts().into_iter().cloned());
    }
    for c in conjuncts {
        classify_conjunct(db, &bindings, c, &mut table_preds, &mut join_preds, &mut residual)?;
    }

    // Filter base tables.
    let mut filtered: Vec<Vec<u32>> = Vec::with_capacity(bindings.len());
    for t in 0..bindings.len() {
        let table = db
            .table(bindings.table_name(t))
            .ok_or_else(|| ExecError::UnknownTable(bindings.table_name(t).to_string()))?;
        obs::counter_add(obs::Metric::EngineRowsScanned, table.row_count() as u64);
        if table_preds[t].is_empty() {
            filtered.push((0..table.row_count() as u32).collect());
        } else {
            let expr = Expr::and_all(table_preds[t].clone());
            let pred = compile(&expr, t, &bindings, db)?;
            filtered.push(filter_rows(table, &pred));
        }
    }
    let mut steps: Vec<u64> = filtered.iter().map(|f| f.len() as u64).collect();

    // Join. Start from the first FROM table, then greedily attach tables
    // connected by an equi-join predicate; cross join as a last resort.
    let mut inter = Intermediate {
        cols: vec![Vec::new(); bindings.len()],
        bound: vec![false; bindings.len()],
        len: filtered[0].len(),
    };
    inter.cols[0] = filtered[0].clone();
    inter.bound[0] = true;
    let mut used_joins = vec![false; join_preds.len()];
    while inter.bound.iter().any(|b| !b) {
        // Find a join predicate connecting a bound and an unbound table.
        let next = join_preds
            .iter()
            .enumerate()
            .find(|(i, (a, b))| !used_joins[*i] && (inter.bound[a.table] != inter.bound[b.table]));
        match next {
            Some((i, &(a, b))) => {
                used_joins[i] = true;
                let (bound_side, new_side) = if inter.bound[a.table] { (a, b) } else { (b, a) };
                hash_join(db, &bindings, &mut inter, &filtered, bound_side, new_side)?;
                // Apply any other join predicates that became checkable.
                for (j, &(x, y)) in join_preds.iter().enumerate() {
                    if !used_joins[j] && inter.bound[x.table] && inter.bound[y.table] {
                        used_joins[j] = true;
                        apply_bound_join_filter(db, &bindings, &mut inter, x, y);
                    }
                }
                steps.push(inter.len as u64);
            }
            None => {
                // Cross join the first unbound table.
                let t = inter.bound.iter().position(|b| !b).expect("unbound table exists");
                cross_join(&mut inter, &filtered, t)?;
                // Join predicates among now-bound tables.
                for (j, &(x, y)) in join_preds.iter().enumerate() {
                    if !used_joins[j] && inter.bound[x.table] && inter.bound[y.table] {
                        used_joins[j] = true;
                        apply_bound_join_filter(db, &bindings, &mut inter, x, y);
                    }
                }
                steps.push(inter.len as u64);
            }
        }
        if inter.len as u64 > MAX_INTERMEDIATE {
            return Err(ExecError::TooLarge(inter.len as u64));
        }
    }

    // Residual predicates (IN subqueries, cross-table non-equi).
    for r in &residual {
        apply_residual(db, &bindings, &mut inter, r)?;
    }

    let join_cardinality = inter.len as u64;

    // Base row ids: distinct surviving rows of the *canonical* base table
    // — the lexicographically-smallest table name among the bound tables.
    // Using a canonical table (rather than FROM order) makes the result
    // signature invariant under semantics-preserving FROM reordering,
    // which the CH clustering ground truth relies on.
    let base_t =
        (0..bindings.len()).min_by_key(|&t| bindings.table_name(t)).expect("at least one table");
    let mut base: Vec<u32> = inter.cols[base_t].clone();
    base.sort_unstable();
    base.dedup();
    // Per-table surviving ids (first binding wins when a table is bound
    // twice under different aliases).
    let mut table_row_ids: Vec<(String, Vec<u32>)> = Vec::with_capacity(bindings.len());
    for t in 0..bindings.len() {
        let name = bindings.table_name(t).to_string();
        if table_row_ids.iter().any(|(n, _)| *n == name) {
            continue;
        }
        let mut v = inter.cols[t].clone();
        v.sort_unstable();
        v.dedup();
        table_row_ids.push((name, v));
    }
    table_row_ids.sort();

    // Projection and aggregation.
    let rows = project(db, &bindings, stmt, &inter)?;

    Ok(QueryResult {
        rows,
        join_cardinality,
        step_cardinalities: steps,
        base_row_ids: base,
        table_row_ids,
    })
}

fn classify_conjunct(
    db: &Database,
    bindings: &Bindings,
    c: Expr,
    table_preds: &mut [Vec<Expr>],
    join_preds: &mut Vec<(BoundColumn, BoundColumn)>,
    residual: &mut Vec<Expr>,
) -> Result<(), ExecError> {
    // Equi-join predicate?
    if let Expr::Cmp {
        left: Scalar::Column(a),
        op: preqr_sql::ast::CmpOp::Eq,
        right: Scalar::Column(b),
    } = &c
    {
        let ba = bindings.resolve(a, db.schema())?;
        let bb = bindings.resolve(b, db.schema())?;
        if ba.table != bb.table {
            join_preds.push((ba, bb));
            return Ok(());
        }
    }
    if matches!(c, Expr::InSubquery { .. }) {
        residual.push(c);
        return Ok(());
    }
    // Single-table if every column resolves to one binding.
    let mut tables: Vec<usize> = Vec::new();
    for col in c.columns() {
        let bc = bindings.resolve(col, db.schema())?;
        if !tables.contains(&bc.table) {
            tables.push(bc.table);
        }
    }
    match tables.len() {
        0 | 1 => {
            let t = tables.first().copied().unwrap_or(0);
            table_preds[t].push(c);
            Ok(())
        }
        _ => {
            residual.push(c);
            Ok(())
        }
    }
}

fn datum_at(db: &Database, bindings: &Bindings, bc: BoundColumn, row: u32) -> Datum {
    let table = db.table(bindings.table_name(bc.table)).expect("bound table exists");
    table.columns[bc.column].get(row as usize)
}

fn column_of<'a>(db: &'a Database, bindings: &Bindings, bc: BoundColumn) -> &'a ColumnData {
    &db.table(bindings.table_name(bc.table)).expect("bound table exists").columns[bc.column]
}

fn hash_join(
    db: &Database,
    bindings: &Bindings,
    inter: &mut Intermediate,
    filtered: &[Vec<u32>],
    bound_side: BoundColumn,
    new_side: BoundColumn,
) -> Result<(), ExecError> {
    let new_t = new_side.table;
    let new_col = column_of(db, bindings, new_side);
    // Build: key → row ids of the new table.
    let mut build: HashMap<Key, Vec<u32>> = HashMap::with_capacity(filtered[new_t].len());
    for &rid in &filtered[new_t] {
        let key = Key::of(&new_col.get(rid as usize));
        build.entry(key).or_default().push(rid);
    }
    // Probe.
    let bound_col = column_of(db, bindings, bound_side);
    let bound_rows = &inter.cols[bound_side.table];
    let mut out_cols: Vec<Vec<u32>> = vec![Vec::new(); inter.cols.len()];
    let mut out_len: u64 = 0;
    for i in 0..inter.len {
        let key = Key::of(&bound_col.get(bound_rows[i] as usize));
        if let Some(matches) = build.get(&key) {
            out_len += matches.len() as u64;
            if out_len > MAX_INTERMEDIATE {
                return Err(ExecError::TooLarge(out_len));
            }
            for &m in matches {
                for (t, col) in out_cols.iter_mut().enumerate() {
                    if t == new_t {
                        col.push(m);
                    } else if inter.bound[t] {
                        col.push(inter.cols[t][i]);
                    }
                }
            }
        }
    }
    inter.cols = out_cols;
    inter.bound[new_t] = true;
    inter.len = inter.cols[bound_side.table].len();
    Ok(())
}

fn cross_join(
    inter: &mut Intermediate,
    filtered: &[Vec<u32>],
    new_t: usize,
) -> Result<(), ExecError> {
    let new_rows = &filtered[new_t];
    let total = inter.len as u64 * new_rows.len() as u64;
    if total > MAX_INTERMEDIATE {
        return Err(ExecError::TooLarge(total));
    }
    let mut out_cols: Vec<Vec<u32>> = vec![Vec::new(); inter.cols.len()];
    for i in 0..inter.len {
        for &m in new_rows {
            for (t, col) in out_cols.iter_mut().enumerate() {
                if t == new_t {
                    col.push(m);
                } else if inter.bound[t] {
                    col.push(inter.cols[t][i]);
                }
            }
        }
    }
    inter.cols = out_cols;
    inter.bound[new_t] = true;
    inter.len = total as usize;
    Ok(())
}

fn apply_bound_join_filter(
    db: &Database,
    bindings: &Bindings,
    inter: &mut Intermediate,
    x: BoundColumn,
    y: BoundColumn,
) {
    let cx = column_of(db, bindings, x);
    let cy = column_of(db, bindings, y);
    let keep: Vec<usize> = (0..inter.len)
        .filter(|&i| {
            Key::of(&cx.get(inter.cols[x.table][i] as usize))
                == Key::of(&cy.get(inter.cols[y.table][i] as usize))
        })
        .collect();
    retain_rows(inter, &keep);
}

fn retain_rows(inter: &mut Intermediate, keep: &[usize]) {
    for (t, col) in inter.cols.iter_mut().enumerate() {
        if inter.bound[t] {
            *col = keep.iter().map(|&i| col[i]).collect();
        }
    }
    inter.len = keep.len();
}

fn apply_residual(
    db: &Database,
    bindings: &Bindings,
    inter: &mut Intermediate,
    expr: &Expr,
) -> Result<(), ExecError> {
    match expr {
        Expr::InSubquery { col, subquery, negated } => {
            let bc = bindings.resolve(col, db.schema())?;
            let sub = execute(db, subquery)?;
            let set: HashSet<Key> =
                sub.rows.iter().filter_map(|r| r.first()).map(Key::of).collect();
            let column = column_of(db, bindings, bc);
            let keep: Vec<usize> = (0..inter.len)
                .filter(|&i| {
                    let k = Key::of(&column.get(inter.cols[bc.table][i] as usize));
                    set.contains(&k) != *negated
                })
                .collect();
            retain_rows(inter, &keep);
            Ok(())
        }
        Expr::Cmp { left: Scalar::Column(a), op, right: Scalar::Column(b) } => {
            let ba = bindings.resolve(a, db.schema())?;
            let bb = bindings.resolve(b, db.schema())?;
            let ca = column_of(db, bindings, ba);
            let cb = column_of(db, bindings, bb);
            let keep: Vec<usize> = (0..inter.len)
                .filter(|&i| {
                    let va = ca.get_f64(inter.cols[ba.table][i] as usize);
                    let vb = cb.get_f64(inter.cols[bb.table][i] as usize);
                    match (va, vb) {
                        (Some(x), Some(y)) => match op {
                            preqr_sql::ast::CmpOp::Eq => x == y,
                            preqr_sql::ast::CmpOp::Ne => x != y,
                            preqr_sql::ast::CmpOp::Lt => x < y,
                            preqr_sql::ast::CmpOp::Le => x <= y,
                            preqr_sql::ast::CmpOp::Gt => x > y,
                            preqr_sql::ast::CmpOp::Ge => x >= y,
                        },
                        _ => false,
                    }
                })
                .collect();
            retain_rows(inter, &keep);
            Ok(())
        }
        other => Err(ExecError::Unsupported(format!("residual predicate {other}"))),
    }
}

/// Aggregate accumulator.
#[derive(Clone, Debug)]
enum AggState {
    Count(u64),
    CountDistinct(HashSet<Key>),
    Sum(f64),
    Avg(f64, u64),
    Min(Option<Datum>),
    Max(Option<Datum>),
}

impl AggState {
    fn new(func: AggFunc, distinct: bool) -> Self {
        match (func, distinct) {
            (AggFunc::Count, true) => AggState::CountDistinct(HashSet::new()),
            (AggFunc::Count, false) => AggState::Count(0),
            (AggFunc::Sum, _) => AggState::Sum(0.0),
            (AggFunc::Avg, _) => AggState::Avg(0.0, 0),
            (AggFunc::Min, _) => AggState::Min(None),
            (AggFunc::Max, _) => AggState::Max(None),
        }
    }

    fn update(&mut self, value: Option<&Datum>) {
        match self {
            AggState::Count(c) => *c += 1,
            AggState::CountDistinct(set) => {
                if let Some(v) = value {
                    set.insert(Key::of(v));
                }
            }
            AggState::Sum(s) => {
                if let Some(v) = value.and_then(Datum::as_f64) {
                    *s += v;
                }
            }
            AggState::Avg(s, n) => {
                if let Some(v) = value.and_then(Datum::as_f64) {
                    *s += v;
                    *n += 1;
                }
            }
            AggState::Min(m) => {
                if let Some(v) = value {
                    let replace = m.as_ref().is_none_or(|cur| datum_lt(v, cur));
                    if replace {
                        *m = Some(v.clone());
                    }
                }
            }
            AggState::Max(m) => {
                if let Some(v) = value {
                    let replace = m.as_ref().is_none_or(|cur| datum_lt(cur, v));
                    if replace {
                        *m = Some(v.clone());
                    }
                }
            }
        }
    }

    fn finish(self) -> Datum {
        match self {
            AggState::Count(c) => Datum::Int(c as i64),
            AggState::CountDistinct(set) => Datum::Int(set.len() as i64),
            AggState::Sum(s) => Datum::Float(s),
            AggState::Avg(s, n) => Datum::Float(if n == 0 { 0.0 } else { s / n as f64 }),
            AggState::Min(m) => m.unwrap_or(Datum::Int(0)),
            AggState::Max(m) => m.unwrap_or(Datum::Int(0)),
        }
    }
}

fn datum_lt(a: &Datum, b: &Datum) -> bool {
    match (a, b) {
        (Datum::Str(x), Datum::Str(y)) => x < y,
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x < y,
            _ => false,
        },
    }
}

fn project(
    db: &Database,
    bindings: &Bindings,
    stmt: &SelectStmt,
    inter: &Intermediate,
) -> Result<Vec<Vec<Datum>>, ExecError> {
    let has_agg = stmt.projections.iter().any(|p| matches!(p, SelectItem::Aggregate { .. }));
    let mut rows: Vec<Vec<Datum>>;
    if has_agg || !stmt.group_by.is_empty() {
        rows = aggregate(db, bindings, stmt, inter)?;
    } else {
        rows = Vec::with_capacity(inter.len);
        let cols: Vec<Option<BoundColumn>> = stmt
            .projections
            .iter()
            .map(|p| match p {
                SelectItem::Column(c) => bindings.resolve(c, db.schema()).map(Some),
                SelectItem::Star => Ok(None),
                SelectItem::Aggregate { .. } => unreachable!("no aggregates on this path"),
            })
            .collect::<Result<_, _>>()?;
        for i in 0..inter.len {
            let mut row = Vec::new();
            for c in &cols {
                match c {
                    Some(bc) => row.push(datum_at(db, bindings, *bc, inter.cols[bc.table][i])),
                    None => {
                        // `*`: expand to all columns of all bound tables.
                        for t in 0..bindings.len() {
                            let table =
                                db.table(bindings.table_name(t)).expect("bound table exists");
                            for col in &table.columns {
                                row.push(col.get(inter.cols[t][i] as usize));
                            }
                        }
                    }
                }
            }
            rows.push(row);
        }
    }

    // ORDER BY over projected/grouping columns.
    if !stmt.order_by.is_empty() {
        let sort_cols: Vec<(usize, bool)> = stmt
            .order_by
            .iter()
            .map(|(c, desc)| {
                let idx = stmt
                    .projections
                    .iter()
                    .position(|p| matches!(p, SelectItem::Column(pc) if pc.column == c.column))
                    .or_else(|| stmt.group_by.iter().position(|g| g.column == c.column))
                    .ok_or_else(|| {
                        ExecError::Unsupported(format!("ORDER BY on unprojected column {c}"))
                    })?;
                Ok((idx, *desc))
            })
            .collect::<Result<_, ExecError>>()?;
        rows.sort_by(|a, b| {
            for &(idx, desc) in &sort_cols {
                let ord = a[idx].partial_cmp(&b[idx]).unwrap_or(std::cmp::Ordering::Equal);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(limit) = stmt.limit {
        rows.truncate(limit as usize);
    }
    Ok(rows)
}

fn aggregate(
    db: &Database,
    bindings: &Bindings,
    stmt: &SelectStmt,
    inter: &Intermediate,
) -> Result<Vec<Vec<Datum>>, ExecError> {
    let group_cols: Vec<BoundColumn> =
        stmt.group_by.iter().map(|c| bindings.resolve(c, db.schema())).collect::<Result<_, _>>()?;
    // Resolve projection plan: either a group column or an aggregate.
    enum Proj {
        Group(usize),
        Agg { func: AggFunc, arg: Option<BoundColumn>, distinct: bool },
    }
    let plan: Vec<Proj> = stmt
        .projections
        .iter()
        .map(|p| match p {
            SelectItem::Column(c) => {
                let bc = bindings.resolve(c, db.schema())?;
                let gi = group_cols.iter().position(|g| *g == bc).ok_or_else(|| {
                    ExecError::Unsupported(format!("non-grouped column {c} in aggregate query"))
                })?;
                Ok(Proj::Group(gi))
            }
            SelectItem::Aggregate { func, arg, distinct } => {
                let arg = match arg {
                    Some(c) => Some(bindings.resolve(c, db.schema())?),
                    None => None,
                };
                Ok(Proj::Agg { func: *func, arg, distinct: *distinct })
            }
            SelectItem::Star => Err(ExecError::Unsupported("* in aggregate query".to_string())),
        })
        .collect::<Result<_, _>>()?;

    let mut groups: HashMap<Vec<Key>, (Vec<Datum>, Vec<AggState>)> = HashMap::new();
    for i in 0..inter.len {
        let key: Vec<Key> = group_cols
            .iter()
            .map(|bc| Key::of(&datum_at(db, bindings, *bc, inter.cols[bc.table][i])))
            .collect();
        let entry = groups.entry(key).or_insert_with(|| {
            let reprs = group_cols
                .iter()
                .map(|bc| datum_at(db, bindings, *bc, inter.cols[bc.table][i]))
                .collect();
            let states = plan
                .iter()
                .filter_map(|p| match p {
                    Proj::Agg { func, distinct, .. } => Some(AggState::new(*func, *distinct)),
                    Proj::Group(_) => None,
                })
                .collect();
            (reprs, states)
        });
        let mut agg_idx = 0;
        for p in &plan {
            if let Proj::Agg { arg, .. } = p {
                let value = arg.map(|bc| datum_at(db, bindings, bc, inter.cols[bc.table][i]));
                entry.1[agg_idx].update(value.as_ref());
                agg_idx += 1;
            }
        }
    }
    // Aggregate without GROUP BY over an empty input still yields one row.
    if groups.is_empty() && group_cols.is_empty() {
        let states: Vec<AggState> = plan
            .iter()
            .filter_map(|p| match p {
                Proj::Agg { func, distinct, .. } => Some(AggState::new(*func, *distinct)),
                Proj::Group(_) => None,
            })
            .collect();
        groups.insert(Vec::new(), (Vec::new(), states));
    }

    if stmt.having.is_some() {
        // No workload in this repository executes HAVING; the parser keeps
        // it for the clustering datasets, which never reach the engine.
        return Err(ExecError::Unsupported("HAVING is not executed".to_string()));
    }

    let mut rows: Vec<Vec<Datum>> = groups
        .into_values()
        .map(|(reprs, mut states)| {
            let mut agg_idx = 0;
            plan.iter()
                .map(|p| match p {
                    Proj::Group(gi) => reprs[*gi].clone(),
                    Proj::Agg { .. } => {
                        let d =
                            std::mem::replace(&mut states[agg_idx], AggState::Count(0)).finish();
                        agg_idx += 1;
                        d
                    }
                })
                .collect()
        })
        .collect();
    // Deterministic order for grouped output (ORDER BY may re-sort later).
    rows.sort_by_key(|a| row_key(a));
    Ok(rows)
}
