//! Evaluation metrics (§4.2): q-error, BetaCV, NDCG, BLEU.

/// Q-error of one prediction: `max(ŷ, y) / min(ŷ, y)` with both clamped
/// to ≥ 1.
pub fn qerror(pred: f64, truth: f64) -> f64 {
    let p = pred.max(1.0);
    let t = truth.max(1.0);
    (p / t).max(t / p)
}

/// Percentile summary of a q-error distribution (the row format of
/// Tables 8–11).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QErrorStats {
    /// 50th percentile.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Mean (the paper's Eq. 9).
    pub mean: f64,
}

impl QErrorStats {
    /// Computes the summary from paired predictions and truths.
    ///
    /// # Panics
    /// Panics on empty or mismatched inputs.
    pub fn compute(preds: &[f64], truths: &[f64]) -> Self {
        assert_eq!(preds.len(), truths.len(), "pred/truth length mismatch");
        assert!(!preds.is_empty(), "no predictions");
        let mut errs: Vec<f64> = preds.iter().zip(truths).map(|(&p, &t)| qerror(p, t)).collect();
        errs.sort_by(|a, b| a.partial_cmp(b).expect("finite q-errors"));
        let pct = |p: f64| -> f64 {
            let idx = ((errs.len() as f64 - 1.0) * p).round() as usize;
            errs[idx.min(errs.len() - 1)]
        };
        Self {
            median: pct(0.50),
            p90: pct(0.90),
            p95: pct(0.95),
            p99: pct(0.99),
            max: *errs.last().expect("non-empty"),
            mean: errs.iter().sum::<f64>() / errs.len() as f64,
        }
    }

    /// Formats like a Tables 8–11 row.
    pub fn row(&self, name: &str) -> String {
        format!(
            "{name:<20} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>9.2} {:>8.2}",
            self.median, self.p90, self.p95, self.p99, self.max, self.mean
        )
    }
}

/// BetaCV (Zaki & Meira): mean intra-cluster distance over mean
/// inter-cluster distance. Smaller is better.
///
/// # Panics
/// Panics when labels and the distance matrix disagree in size.
pub fn betacv(dist: &[Vec<f64>], labels: &[usize]) -> f64 {
    let n = labels.len();
    assert!(dist.len() == n && dist.iter().all(|r| r.len() == n), "bad distance matrix");
    let (mut intra, mut n_intra) = (0.0f64, 0usize);
    let (mut inter, mut n_inter) = (0.0f64, 0usize);
    for i in 0..n {
        for j in i + 1..n {
            if labels[i] == labels[j] {
                intra += dist[i][j];
                n_intra += 1;
            } else {
                inter += dist[i][j];
                n_inter += 1;
            }
        }
    }
    if n_intra == 0 || n_inter == 0 {
        return f64::NAN;
    }
    (intra / n_intra as f64) / (inter / n_inter as f64).max(1e-12)
}

/// NDCG@k of a predicted ranking against graded relevance scores.
///
/// `relevance[i]` is the true gain of item `i`; `ranking` lists item
/// indices in predicted order.
pub fn ndcg_at_k(relevance: &[f64], ranking: &[usize], k: usize) -> f64 {
    let k = k.min(ranking.len());
    let dcg: f64 = ranking
        .iter()
        .take(k)
        .enumerate()
        .map(|(pos, &item)| relevance[item] / ((pos + 2) as f64).log2())
        .sum();
    let mut ideal: Vec<f64> = relevance.to_vec();
    ideal.sort_by(|a, b| b.partial_cmp(a).expect("finite relevance"));
    let idcg: f64 =
        ideal.iter().take(k).enumerate().map(|(pos, &g)| g / ((pos + 2) as f64).log2()).sum();
    if idcg <= 0.0 {
        1.0
    } else {
        dcg / idcg
    }
}

/// Corpus BLEU (Papineni et al., Eq. 10 of the paper): up-to-4-gram
/// modified precision with brevity penalty, multi-reference.
pub fn bleu(candidates: &[Vec<String>], references: &[Vec<Vec<String>>]) -> f64 {
    assert_eq!(candidates.len(), references.len(), "candidate/reference mismatch");
    let max_n = 4;
    let mut match_counts = vec![0usize; max_n];
    let mut total_counts = vec![0usize; max_n];
    let mut cand_len = 0usize;
    let mut ref_len = 0usize;
    for (cand, refs) in candidates.iter().zip(references) {
        cand_len += cand.len();
        // Closest reference length.
        ref_len += refs
            .iter()
            .map(Vec::len)
            .min_by_key(|&l| (l as i64 - cand.len() as i64).abs() * 2 + i64::from(l < cand.len()))
            .unwrap_or(0);
        for n in 1..=max_n {
            if cand.len() < n {
                continue;
            }
            let cand_ngrams = ngram_counts(cand, n);
            let mut max_ref: std::collections::HashMap<&[String], usize> =
                std::collections::HashMap::new();
            for r in refs {
                if r.len() < n {
                    continue;
                }
                for (g, c) in ngram_counts(r, n) {
                    let e = max_ref.entry(g).or_insert(0);
                    *e = (*e).max(c);
                }
            }
            for (g, c) in &cand_ngrams {
                total_counts[n - 1] += c;
                match_counts[n - 1] += (*c).min(max_ref.get(g).copied().unwrap_or(0));
            }
        }
    }
    if cand_len == 0 {
        return 0.0;
    }
    // Smoothed geometric mean of modified precisions. Orders with no
    // candidate n-grams at all (candidates shorter than n) are excluded
    // from the mean, per standard corpus-BLEU practice.
    let mut log_sum = 0.0f64;
    let mut orders = 0usize;
    for n in 0..max_n {
        if total_counts[n] == 0 {
            continue;
        }
        let p = (match_counts[n] as f64).max(1e-9) / total_counts[n] as f64;
        log_sum += p.ln();
        orders += 1;
    }
    if orders == 0 {
        return 0.0;
    }
    let bp = if cand_len >= ref_len { 1.0 } else { (1.0 - ref_len as f64 / cand_len as f64).exp() };
    bp * (log_sum / orders as f64).exp()
}

fn ngram_counts(words: &[String], n: usize) -> std::collections::HashMap<&[String], usize> {
    let mut out = std::collections::HashMap::new();
    for w in words.windows(n) {
        *out.entry(w).or_insert(0) += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn qerror_is_symmetric_and_clamped() {
        assert_eq!(qerror(10.0, 100.0), 10.0);
        assert_eq!(qerror(100.0, 10.0), 10.0);
        assert_eq!(qerror(0.0, 1.0), 1.0);
        assert_eq!(qerror(5.0, 5.0), 1.0);
    }

    #[test]
    fn qerror_stats_percentiles() {
        let truths = vec![1.0; 100];
        let preds: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = QErrorStats::compute(&preds, &truths);
        assert!((s.median - 50.0).abs() <= 1.0);
        assert!((s.p90 - 90.0).abs() <= 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 0.01);
        assert!(s.row("x").contains("x"));
    }

    #[test]
    fn betacv_prefers_tight_clusters() {
        // Two perfect clusters: intra 0.1, inter 1.0.
        let labels = vec![0, 0, 1, 1];
        let mut d = vec![vec![0.0; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    d[i][j] = if labels[i] == labels[j] { 0.1 } else { 1.0 };
                }
            }
        }
        let good = betacv(&d, &labels);
        assert!((good - 0.1).abs() < 1e-9);
        // Random distances → ratio near 1.
        let uniform = vec![vec![0.5; 4]; 4];
        assert!((betacv(&uniform, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ndcg_perfect_and_inverted() {
        let rel = vec![3.0, 2.0, 1.0, 0.0];
        assert!((ndcg_at_k(&rel, &[0, 1, 2, 3], 4) - 1.0).abs() < 1e-9);
        let inv = ndcg_at_k(&rel, &[3, 2, 1, 0], 4);
        assert!(inv < 0.8);
        assert!(ndcg_at_k(&[0.0, 0.0], &[0, 1], 2) == 1.0, "all-zero relevance");
    }

    #[test]
    fn bleu_identity_is_one() {
        let cand = vec![w("how many customers have balance above 500")];
        let refs = vec![vec![w("how many customers have balance above 500")]];
        assert!((bleu(&cand, &refs) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bleu_partial_overlap_is_between_zero_and_one() {
        let cand = vec![w("how many customers exist")];
        let refs = vec![vec![w("how many customers have balance above 500")]];
        let b = bleu(&cand, &refs);
        assert!(b > 0.0 && b < 1.0, "bleu {b}");
    }

    #[test]
    fn bleu_brevity_penalty_hits_short_candidates() {
        let full = vec![w("how many customers have balance above 500")];
        let short = vec![w("how many")];
        let refs = vec![vec![w("how many customers have balance above 500")]];
        assert!(bleu(&short, &refs) < bleu(&full, &refs));
    }

    #[test]
    fn bleu_uses_best_reference() {
        let cand = vec![w("count the customers")];
        let refs = vec![vec![w("how many customers"), w("count the customers")]];
        assert!((bleu(&cand, &refs) - 1.0).abs() < 1e-9);
    }
}
