//! Kernel benchmark (not a paper artifact): serial reference kernels vs the
//! packed/parallel fast paths in `preqr-nn`, written to
//! `results/BENCH_kernels.json`.
//!
//! Run via `scripts/bench_kernels.sh` (which sets
//! `RUSTFLAGS="-C target-cpu=native"` so the microkernel's register tile
//! lands in the widest available vector registers, and falls back to a
//! plain-rustc harness when the cargo registry is unreachable). Every timed
//! pair is also checked bit-identical before timing: thread count and code
//! path never change results.

use std::time::Instant;

use preqr_nn::parallel;
use preqr_nn::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.random_range(-1.0f32..1.0)).collect();
    Matrix::from_vec(rows, cols, data)
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.data().iter().map(|x| x.to_bits()).collect()
}

/// Times `f` (ns/iter): two warmup calls, then batches until ≥250 ms total.
fn time_ns(mut f: impl FnMut()) -> f64 {
    f();
    f();
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        if start.elapsed().as_secs_f64() >= 0.25 && iters >= 3 {
            return start.elapsed().as_nanos() as f64 / iters as f64;
        }
        if iters >= 1_000_000 {
            return start.elapsed().as_nanos() as f64 / iters as f64;
        }
    }
}

struct Entry {
    method: &'static str,
    shape: String,
    variant: &'static str,
    threads: usize,
    ns_per_iter: f64,
    speedup: f64,
}

fn push_sweep(
    entries: &mut Vec<Entry>,
    method: &'static str,
    shape: String,
    serial: impl Fn() -> Matrix,
    parallel_run: impl Fn() -> Matrix,
) {
    // Bit-identity gate before timing anything.
    let want = bits(&serial());
    for threads in [1usize, 2, 4, 8] {
        parallel::set_thread_override(Some(threads));
        assert_eq!(bits(&parallel_run()), want, "{method} {shape} differs at {threads} threads");
        parallel::set_thread_override(None);
    }

    let serial_ns = time_ns(|| {
        std::hint::black_box(serial());
    });
    entries.push(Entry {
        method,
        shape: shape.clone(),
        variant: "serial",
        threads: 1,
        ns_per_iter: serial_ns,
        speedup: 1.0,
    });
    for threads in [1usize, 2, 4, 8] {
        parallel::set_thread_override(Some(threads));
        let ns = time_ns(|| {
            std::hint::black_box(parallel_run());
        });
        parallel::set_thread_override(None);
        let speedup = serial_ns / ns;
        println!(
            "{method:>18} {shape:>14} threads={threads}: {ns:.0} ns/iter \
             (serial {serial_ns:.0}), speedup {speedup:.2}x"
        );
        entries.push(Entry {
            method,
            shape: shape.clone(),
            variant: "parallel",
            threads,
            ns_per_iter: ns,
            speedup,
        });
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut entries = Vec::new();

    for &s in &[64usize, 128, 256, 384] {
        let a = random_matrix(&mut rng, s, s);
        let b = random_matrix(&mut rng, s, s);
        push_sweep(
            &mut entries,
            "matmul",
            format!("{s}x{s}x{s}"),
            || a.matmul_serial(&b),
            || a.matmul(&b),
        );
    }

    // Attention-scores shape: seq=128, head_dim=64 → q @ kᵀ.
    let q = random_matrix(&mut rng, 128, 64);
    let kmat = random_matrix(&mut rng, 128, 64);
    push_sweep(
        &mut entries,
        "matmul_transpose_b",
        "128x64x128".to_string(),
        || q.matmul_transpose_b_serial(&kmat),
        || q.matmul_transpose_b(&kmat),
    );

    for &(r, c) in &[(256usize, 256usize), (1024, 256)] {
        let base = random_matrix(&mut rng, r, c);
        push_sweep(
            &mut entries,
            "softmax_rows",
            format!("{r}x{c}"),
            || {
                let mut m = base.clone();
                m.softmax_rows_inplace_serial();
                m
            },
            || {
                let mut m = base.clone();
                m.softmax_rows_inplace();
                m
            },
        );
    }

    // Single-head attention core: softmax(q kᵀ / √d) @ v.
    let v = random_matrix(&mut rng, 128, 64);
    let scale = 1.0 / (64f32).sqrt();
    push_sweep(
        &mut entries,
        "attention_core",
        "seq128_d64".to_string(),
        || {
            let mut scores = q.matmul_transpose_b_serial(&kmat);
            scores.scale_assign(scale);
            scores.softmax_rows_inplace_serial();
            scores.matmul_serial(&v)
        },
        || {
            let mut scores = q.matmul_transpose_b(&kmat);
            scores.scale_assign(scale);
            scores.softmax_rows_inplace();
            scores.matmul(&v)
        },
    );

    let mut json = String::from("{\n  \"schema\": \"preqr-bench-kernels-v1\",\n");
    json.push_str("  \"generated_by\": \"crates/bench/src/bin/bench_kernels.rs\",\n");
    json.push_str(&format!(
        "  \"host_available_parallelism\": {},\n  \"entries\": [\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"method\": \"{}\", \"shape\": \"{}\", \"variant\": \"{}\", \
             \"threads\": {}, \"ns_per_iter\": {:.1}, \"speedup\": {:.3}}}{}\n",
            e.method,
            e.shape,
            e.variant,
            e.threads,
            e.ns_per_iter,
            e.speedup,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote results/BENCH_kernels.json ({} entries)", entries.len());
}
