//! Dense row-major `f32` matrix used as the storage type of the autograd
//! tensor.
//!
//! The hot kernels (`matmul`, `matmul_transpose_b`, `transpose_a_matmul`,
//! `softmax_rows_inplace`, large element-wise maps) dispatch on problem
//! size: small shapes run the straightforward serial reference kernels
//! (`*_serial`), large shapes run a cache-blocked, packed microkernel whose
//! output rows are partitioned across the [`crate::parallel`] worker pool.
//! Row partitioning and a fixed ascending-`k` accumulation order keep every
//! per-element reduction in exactly the same floating-point order as the
//! serial references, so the two paths are **bit-identical** at any thread
//! count (property-tested in `tests/prop_parallel.rs`).

use preqr_obs as obs;
use serde::{Deserialize, Serialize};

use crate::parallel;

/// Microkernel tile height (rows of `A` per register block). An 8×16 tile
/// keeps 128 accumulators live, which AVX2/AVX-512 builds
/// (`RUSTFLAGS="-C target-cpu=native"`) hold entirely in vector registers.
const MR: usize = 8;
/// Microkernel tile width (columns of `B` per packed panel).
const NR: usize = 16;
/// Minimum output rows per pool task for matmul-family kernels.
const MATMUL_MIN_CHUNK_ROWS: usize = 8;
/// Minimum elements per pool task for element-wise kernels.
const ELEMWISE_MIN_CHUNK: usize = 4096;

/// A dense row-major matrix of `f32` values.
///
/// Vectors are represented as `1 × n` (row) matrices throughout the crate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a `1 × n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Builds a matrix by evaluating `f(row, col)` for every cell.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self @ other`.
    ///
    /// Small shapes run [`Matrix::matmul_serial`]; above
    /// [`parallel::PAR_MIN_FMAS`] fused multiply-adds the packed,
    /// row-parallel kernel takes over (bit-identical results either way).
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        obs::counter_add(obs::Metric::NnMatmulCalls, 1);
        let _t = obs::timer(obs::HistMetric::NnMatmulUs);
        let (m, k, n) = (self.rows, self.cols, other.cols);
        if m * k * n < parallel::PAR_MIN_FMAS || m < 2 * MR {
            return self.matmul_serial(other);
        }
        matmul_packed(&self.data, m, k, &other.data, n)
    }

    /// Serial reference for [`Matrix::matmul`]: cache-friendly `ikj`
    /// ordering on the calling thread. Retained as the bit-exactness
    /// baseline for the packed/parallel path and as the benchmark baseline.
    pub fn matmul_serial(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                let b_row = &other.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b;
                }
            }
        }
        out
    }

    /// `self @ other^T` without materializing the transpose. Large shapes
    /// partition output rows across the worker pool (bit-identical to
    /// [`Matrix::matmul_transpose_b_serial`]).
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b shape mismatch: {}x{} @ ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        obs::counter_add(obs::Metric::NnMatmulCalls, 1);
        let _t = obs::timer(obs::HistMetric::NnMatmulUs);
        let (m, k, n) = (self.rows, self.cols, other.rows);
        if m * k * n < parallel::PAR_MIN_FMAS || m < 2 {
            return self.matmul_transpose_b_serial(other);
        }
        let mut out = Matrix::zeros(m, n);
        let a = &self.data;
        let b = &other.data;
        parallel::for_each_row_chunk_mut(
            &mut out.data,
            n,
            MATMUL_MIN_CHUNK_ROWS,
            |start, chunk| {
                for (i, out_row) in chunk.chunks_exact_mut(n).enumerate() {
                    let a_row = &a[(start + i) * k..(start + i + 1) * k];
                    for (j, o) in out_row.iter_mut().enumerate() {
                        *o = dot(a_row, &b[j * k..(j + 1) * k]);
                    }
                }
            },
        );
        out
    }

    /// Serial reference for [`Matrix::matmul_transpose_b`].
    pub fn matmul_transpose_b_serial(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b shape mismatch: {}x{} @ ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                *o = dot(a_row, b_row);
            }
        }
        out
    }

    /// `self^T @ other` without materializing the transpose in the serial
    /// path. The fast path transposes `self` once (the packing step) and
    /// reuses the packed matmul kernel; the ascending-`k` accumulation
    /// order matches [`Matrix::transpose_a_matmul_serial`] exactly.
    pub fn transpose_a_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transpose_a_matmul shape mismatch: ({}x{})^T @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        obs::counter_add(obs::Metric::NnMatmulCalls, 1);
        let _t = obs::timer(obs::HistMetric::NnMatmulUs);
        let (k, m, n) = (self.rows, self.cols, other.cols);
        if m * k * n < parallel::PAR_MIN_FMAS || m < 2 * MR {
            return self.transpose_a_matmul_serial(other);
        }
        let at = self.transpose();
        matmul_packed(&at.data, m, k, &other.data, n)
    }

    /// Serial reference for [`Matrix::transpose_a_matmul`]: `k`-outer
    /// scatter into the output rows.
    pub fn transpose_a_matmul_serial(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transpose_a_matmul shape mismatch: ({}x{})^T @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        let n = other.cols;
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = &other.data[k * n..(k + 1) * n];
            for (i, &a_ki) in a_row.iter().enumerate() {
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ki * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise addition in place (row-parallel above the element
    /// threshold; element-wise ops have no cross-element reductions, so any
    /// partition is bit-identical to the serial loop).
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        if self.data.len() < parallel::PAR_MIN_ELEMS {
            for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
                *a += b;
            }
            return;
        }
        let src = &other.data;
        parallel::for_each_row_chunk_mut(&mut self.data, 1, ELEMWISE_MIN_CHUNK, |start, chunk| {
            for (a, &b) in chunk.iter_mut().zip(&src[start..]) {
                *a += b;
            }
        });
    }

    /// Elementwise `self += scale * other` in place (row-parallel above the
    /// element threshold).
    pub fn add_scaled_assign(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled_assign shape mismatch");
        if self.data.len() < parallel::PAR_MIN_ELEMS {
            for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
                *a += scale * b;
            }
            return;
        }
        let src = &other.data;
        parallel::for_each_row_chunk_mut(&mut self.data, 1, ELEMWISE_MIN_CHUNK, |start, chunk| {
            for (a, &b) in chunk.iter_mut().zip(&src[start..]) {
                *a += scale * b;
            }
        });
    }

    /// Elementwise binary map producing a new matrix (parallel above the
    /// element threshold, hence the `Sync` bound).
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32 + Sync) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        if self.data.len() < parallel::PAR_MIN_ELEMS {
            let data = self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect();
            return Matrix { rows: self.rows, cols: self.cols, data };
        }
        let mut data = vec![0.0f32; self.data.len()];
        let (a_src, b_src) = (&self.data, &other.data);
        parallel::for_each_row_chunk_mut(&mut data, 1, ELEMWISE_MIN_CHUNK, |start, chunk| {
            for (i, o) in chunk.iter_mut().enumerate() {
                *o = f(a_src[start + i], b_src[start + i]);
            }
        });
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Elementwise unary map producing a new matrix (parallel above the
    /// element threshold, hence the `Sync` bound).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        if self.data.len() < parallel::PAR_MIN_ELEMS {
            return Matrix {
                rows: self.rows,
                cols: self.cols,
                data: self.data.iter().map(|&a| f(a)).collect(),
            };
        }
        let mut data = vec![0.0f32; self.data.len()];
        let src = &self.data;
        parallel::for_each_row_chunk_mut(&mut data, 1, ELEMWISE_MIN_CHUNK, |start, chunk| {
            for (o, &x) in chunk.iter_mut().zip(&src[start..]) {
                *o = f(x);
            }
        });
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Multiplies every element by `s` in place (row-parallel above the
    /// element threshold).
    pub fn scale_assign(&mut self, s: f32) {
        if self.data.len() < parallel::PAR_MIN_ELEMS {
            for a in self.data.iter_mut() {
                *a *= s;
            }
            return;
        }
        parallel::for_each_row_chunk_mut(&mut self.data, 1, ELEMWISE_MIN_CHUNK, |_, chunk| {
            for a in chunk.iter_mut() {
                *a *= s;
            }
        });
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements. Returns 0 for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&a| a * a).sum::<f32>().sqrt()
    }

    /// Concatenates two matrices with equal row counts along the column axis.
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Concatenates two matrices with equal column counts along the row axis.
    pub fn concat_rows(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "concat_rows col mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Copy of columns `c0..c1` of every row.
    pub fn slice_cols(&self, c0: usize, c1: usize) -> Matrix {
        assert!(c0 <= c1 && c1 <= self.cols, "slice_cols out of range");
        let mut out = Matrix::zeros(self.rows, c1 - c0);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[c0..c1]);
        }
        out
    }

    /// Copy of the given rows, in order (rows may repeat).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows, "gather_rows index {idx} out of range ({})", self.rows);
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Row-wise softmax in place. Large matrices partition rows across the
    /// worker pool; each row's computation is unchanged, so results are
    /// bit-identical to [`Matrix::softmax_rows_inplace_serial`].
    pub fn softmax_rows_inplace(&mut self) {
        if self.data.len() < parallel::PAR_MIN_ELEMS || self.rows < 2 {
            self.softmax_rows_inplace_serial();
            return;
        }
        let cols = self.cols;
        parallel::for_each_row_chunk_mut(&mut self.data, cols, 4, |_, chunk| {
            for row in chunk.chunks_exact_mut(cols) {
                softmax_slice(row);
            }
        });
    }

    /// Serial reference for [`Matrix::softmax_rows_inplace`].
    pub fn softmax_rows_inplace_serial(&mut self) {
        for r in 0..self.rows {
            softmax_slice(self.row_mut(r));
        }
    }
}

/// `a @ b` for large shapes: packs `b` into `NR`-wide column panels once,
/// then partitions output rows across the worker pool. Each row chunk runs
/// the cache-blocked microkernel over the shared packed panels.
fn matmul_packed(a: &[f32], m: usize, k: usize, b: &[f32], n: usize) -> Matrix {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let packed = pack_b_panels(b, k, n);
    let mut out = Matrix::zeros(m, n);
    parallel::for_each_row_chunk_mut(&mut out.data, n, MATMUL_MIN_CHUNK_ROWS, |start, chunk| {
        let rows = chunk.len() / n;
        kernel_row_block(&a[start * k..(start + rows) * k], k, &packed, n, chunk);
    });
    out
}

/// Packs `b` (`k × n` row-major) into column panels of width `NR`: panel
/// `p` holds columns `p·NR ..` stored `k`-major, zero-padded to `NR` so the
/// microkernel always reads full panel rows. Packed once per call and
/// shared read-only across all row chunks.
fn pack_b_panels(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let panels = n.div_ceil(NR);
    let mut packed = vec![0.0f32; panels * k * NR];
    for p in 0..panels {
        let c0 = p * NR;
        let w = NR.min(n - c0);
        let dst = &mut packed[p * k * NR..(p + 1) * k * NR];
        for kk in 0..k {
            dst[kk * NR..kk * NR + w].copy_from_slice(&b[kk * n + c0..kk * n + c0 + w]);
        }
    }
    packed
}

/// Computes a block of output rows (`out` is `rows × n`, rows of `a` are
/// contiguous) against the packed panels. Panels stay L1-resident while the
/// row blocks stream past them.
fn kernel_row_block(a: &[f32], k: usize, packed: &[f32], n: usize, out: &mut [f32]) {
    if k == 0 || n == 0 {
        return;
    }
    let rows = a.len() / k;
    let panels = n.div_ceil(NR);
    for p in 0..panels {
        let c0 = p * NR;
        let w = NR.min(n - c0);
        let panel = &packed[p * k * NR..(p + 1) * k * NR];
        let mut i = 0;
        while i < rows {
            let mr = MR.min(rows - i);
            let tile_out = &mut out[i * n + c0..];
            match mr {
                8 => microkernel::<8>(&a[i * k..], k, panel, tile_out, n, w),
                7 => microkernel::<7>(&a[i * k..], k, panel, tile_out, n, w),
                6 => microkernel::<6>(&a[i * k..], k, panel, tile_out, n, w),
                5 => microkernel::<5>(&a[i * k..], k, panel, tile_out, n, w),
                4 => microkernel::<4>(&a[i * k..], k, panel, tile_out, n, w),
                3 => microkernel::<3>(&a[i * k..], k, panel, tile_out, n, w),
                2 => microkernel::<2>(&a[i * k..], k, panel, tile_out, n, w),
                _ => microkernel::<1>(&a[i * k..], k, panel, tile_out, n, w),
            }
            i += mr;
        }
    }
}

/// `M × NR` register tile: accumulates the full `k` reduction in ascending
/// order (the same floating-point order as the serial `ikj` reference) and
/// stores each output element exactly once.
#[inline(always)]
fn microkernel<const M: usize>(
    a: &[f32],
    k: usize,
    panel: &[f32],
    out: &mut [f32],
    ldo: usize,
    w: usize,
) {
    debug_assert!(a.len() >= M * k);
    debug_assert_eq!(panel.len(), k * NR);
    debug_assert!(w >= 1 && w <= NR);
    let mut acc = [[0.0f32; NR]; M];
    for (kk, b) in panel.chunks_exact(NR).enumerate() {
        for m in 0..M {
            // SAFETY: `m < M`, `kk < k`, and `a` holds at least `M * k`
            // elements (debug-asserted above).
            let a_mk = unsafe { *a.get_unchecked(m * k + kk) };
            let acc_m = &mut acc[m];
            for (j, &b_j) in b.iter().enumerate() {
                acc_m[j] += a_mk * b_j;
            }
        }
    }
    for (m, acc_m) in acc.iter().enumerate() {
        out[m * ldo..m * ldo + w].copy_from_slice(&acc_m[..w]);
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Numerically-stable softmax over a mutable slice.
pub fn softmax_slice(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_contents() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_round_trips() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.clone().into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn packed_parallel_kernels_match_serial_bitwise() {
        // 48·64·64 FMAs is above PAR_MIN_FMAS, so the packed/parallel path
        // runs; results must equal the serial references bit for bit.
        let a = Matrix::from_fn(48, 64, |r, c| ((r * 37 + c * 11) % 23) as f32 * 0.13 - 1.4);
        let b = Matrix::from_fn(64, 64, |r, c| ((r * 5 + c * 29) % 19) as f32 * 0.21 - 1.9);
        crate::parallel::set_thread_override(Some(3));
        let fast = a.matmul(&b);
        let tb = a.matmul_transpose_b(&b);
        let ta = a.transpose_a_matmul(&a.matmul(&b));
        crate::parallel::set_thread_override(None);
        assert_eq!(fast, a.matmul_serial(&b));
        assert_eq!(tb, a.matmul_transpose_b_serial(&b));
        assert_eq!(ta, a.transpose_a_matmul_serial(&a.matmul_serial(&b)));
    }

    #[test]
    fn matmul_keeps_nan_and_inf_contributions() {
        // IEEE semantics: 0·inf = NaN must propagate (the old zero-skip
        // silently dropped it).
        let a = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Matrix::from_vec(2, 1, vec![f32::INFINITY, 1.0]);
        assert!(a.matmul(&b).get(0, 0).is_nan());
        assert!(a.matmul_serial(&b).get(0, 0).is_nan());
        let c = Matrix::from_vec(2, 1, vec![2.0, 3.0]);
        let inf_a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 0.0, 1.0]);
        let t = inf_a.transpose_a_matmul_serial(&c);
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.get(1, 0), 5.0);
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let b = Matrix::from_fn(5, 4, |r, c| (r + c) as f32 * 0.5);
        assert_eq!(a.matmul_transpose_b(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_a_matmul_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 - 5.0);
        let b = Matrix::from_fn(4, 2, |r, c| (r + 2 * c) as f32);
        assert_eq!(a.transpose_a_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 7 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn concat_cols_layout() {
        let a = Matrix::from_vec(2, 1, vec![1.0, 3.0]);
        let b = Matrix::from_vec(2, 2, vec![10.0, 11.0, 30.0, 31.0]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 10.0, 11.0]);
        assert_eq!(c.row(1), &[3.0, 30.0, 31.0]);
    }

    #[test]
    fn concat_rows_layout() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let c = a.concat_rows(&b);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn slice_cols_extracts_range() {
        let a = Matrix::from_fn(2, 4, |r, c| (r * 4 + c) as f32);
        let s = a.slice_cols(1, 3);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[1.0, 2.0]);
        assert_eq!(s.row(1), &[5.0, 6.0]);
    }

    #[test]
    fn gather_rows_with_repeats() {
        let a = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.row(0), &[4.0, 5.0]);
        assert_eq!(g.row(1), &[0.0, 1.0]);
        assert_eq!(g.row(2), &[4.0, 5.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        m.softmax_rows_inplace();
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(m.get(0, 2) > m.get(0, 1));
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let mut xs = [1000.0, 1000.0, 1000.0];
        softmax_slice(&mut xs);
        for x in xs {
            assert!((x - 1.0 / 3.0).abs() < 1e-5);
        }
    }

    #[test]
    fn sum_mean_norm() {
        let m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert!((m.norm() - 30.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn add_scaled_assign_accumulates() {
        let mut a = Matrix::zeros(1, 2);
        let b = Matrix::from_vec(1, 2, vec![2.0, 4.0]);
        a.add_scaled_assign(&b, 0.5);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a.data(), &[2.0, 4.0]);
    }
}
