//! SQL-to-Text corpora (§4.1.3).
//!
//! WikiSQL and StackOverflow are hand-annotated (SQL, natural-language
//! question) corpora; this module generates the synthetic equivalent:
//! simple queries paired with templated natural-language descriptions in
//! two styles — question-form ("wikisql") and imperative-form
//! ("stackoverflow") — with lexical variation so the task is non-trivial
//! and BLEU-measurable. Each pair carries two reference renderings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use preqr_sql::ast::{
    AggFunc, CmpOp, ColumnRef, Expr, Query, Scalar, SelectItem, SelectStmt, TableRef, Value,
};

/// One SQL ↔ text pair.
#[derive(Clone, Debug)]
pub struct TextPair {
    /// The query.
    pub query: Query,
    /// Tokenized reference descriptions (≥ 1; the first is the canonical
    /// training target, all are BLEU references).
    pub references: Vec<Vec<String>>,
}

/// Corpus style.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TextStyle {
    /// Question form ("how many customers have a balance above 500").
    WikiSql,
    /// Imperative form ("count the customers whose balance exceeds 500").
    StackOverflow,
}

const TABLE_NOUNS: [(&str, &str); 6] = [
    ("customer", "customers"),
    ("orders", "orders"),
    ("item", "items"),
    ("order_line", "order lines"),
    ("user", "users"),
    ("district", "districts"),
];

const NUM_COLS: [(&str, &str, &str); 6] = [
    ("customer", "balance", "balance"),
    ("customer", "discount", "discount"),
    ("orders", "carrier_id", "carrier id"),
    ("order_line", "quantity", "quantity"),
    ("item", "price", "price"),
    ("district", "tax", "tax rate"),
];

const STR_COLS: [(&str, &str, &str, &[&str]); 2] = [
    ("item", "category", "category", &["food", "toys", "books", "media"]),
    ("user", "rank", "rank", &["adm", "sup", "usr", "gst"]),
];

fn noun(table: &str) -> &'static str {
    TABLE_NOUNS.iter().find(|(t, _)| *t == table).map_or("rows", |(_, n)| n)
}

fn words(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_string).collect()
}

/// Generates `n` pairs in the given style.
pub fn corpus(style: TextStyle, n: usize, seed: u64) -> Vec<TextPair> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| generate_pair(style, &mut rng)).collect()
}

fn generate_pair(style: TextStyle, rng: &mut StdRng) -> TextPair {
    // Pick table + predicate.
    let use_string = rng.random::<f64>() < 0.3;
    let (table, pred, cond_a, cond_b) = if use_string {
        let (t, col, phrase, vals) = STR_COLS[rng.random_range(0..STR_COLS.len())];
        let v = vals[rng.random_range(0..vals.len())];
        let pred = Expr::Cmp {
            left: Scalar::Column(ColumnRef::bare(col)),
            op: CmpOp::Eq,
            right: Scalar::Value(Value::Str(v.to_string())),
        };
        (t, pred, format!("with {phrase} {v}"), format!("whose {phrase} is {v}"))
    } else {
        let (t, col, phrase) = NUM_COLS[rng.random_range(0..NUM_COLS.len())];
        let v = rng.random_range(1..900);
        let (op, op_a, op_b): (CmpOp, &str, &str) = match rng.random_range(0..3) {
            0 => (CmpOp::Gt, "greater than", "above"),
            1 => (CmpOp::Lt, "less than", "below"),
            _ => (CmpOp::Eq, "equal to", "of exactly"),
        };
        let pred = Expr::Cmp {
            left: Scalar::Column(ColumnRef::bare(col)),
            op,
            right: Scalar::Value(Value::Int(v)),
        };
        (t, pred, format!("with {phrase} {op_a} {v}"), format!("whose {phrase} is {op_b} {v}"))
    };

    // Pick projection.
    let proj_kind = rng.random_range(0..3);
    let (projections, verb_a, verb_b): (Vec<SelectItem>, String, String) = match proj_kind {
        0 => (
            vec![SelectItem::Aggregate { func: AggFunc::Count, arg: None, distinct: false }],
            format!("how many {}", noun(table)),
            format!("count the {}", noun(table)),
        ),
        1 => (
            vec![SelectItem::Column(ColumnRef::bare("name"))],
            format!("what are the names of {}", noun(table)),
            format!("list the names of {}", noun(table)),
        ),
        _ => {
            let (_, col, phrase) = NUM_COLS
                .iter()
                .find(|(t, _, _)| *t == table)
                .copied()
                .unwrap_or(("customer", "id", "id"));
            (
                vec![SelectItem::Aggregate {
                    func: AggFunc::Avg,
                    arg: Some(ColumnRef::bare(col)),
                    distinct: false,
                }],
                format!("what is the average {phrase} of {}", noun(table)),
                format!("compute the average {phrase} of {}", noun(table)),
            )
        }
    };

    let stmt = SelectStmt {
        projections,
        from: vec![TableRef::new(table)],
        where_clause: Some(pred),
        ..Default::default()
    };
    let query = Query::single(stmt);

    let references = match style {
        TextStyle::WikiSql => {
            vec![words(&format!("{verb_a} {cond_a}")), words(&format!("{verb_a} {cond_b}"))]
        }
        TextStyle::StackOverflow => {
            vec![words(&format!("{verb_b} {cond_b}")), words(&format!("{verb_b} {cond_a}"))]
        }
    };
    TextPair { query, references }
}

/// All target-side words that can appear in any reference (the decoder
/// vocabulary).
pub fn target_vocabulary(pairs: &[TextPair]) -> Vec<String> {
    let mut set: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for p in pairs {
        for r in &p.references {
            set.extend(r.iter().cloned());
        }
    }
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_parses() {
        let a = corpus(TextStyle::WikiSql, 50, 1);
        let b = corpus(TextStyle::WikiSql, 50, 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.query.sql(), y.query.sql());
            assert_eq!(x.references, y.references);
        }
        for p in &a {
            assert!(preqr_sql::parser::parse(&p.query.sql()).is_ok());
            assert_eq!(p.references.len(), 2);
            assert!(!p.references[0].is_empty());
        }
    }

    #[test]
    fn styles_differ_lexically() {
        let wiki = corpus(TextStyle::WikiSql, 30, 2);
        let stack = corpus(TextStyle::StackOverflow, 30, 2);
        let wiki_words: std::collections::HashSet<String> =
            wiki.iter().flat_map(|p| p.references[0].clone()).collect();
        let stack_words: std::collections::HashSet<String> =
            stack.iter().flat_map(|p| p.references[0].clone()).collect();
        assert!(wiki_words.contains("how") || wiki_words.contains("what"));
        assert!(stack_words.contains("count") || stack_words.contains("list"));
    }

    #[test]
    fn descriptions_reflect_query_contents() {
        for p in corpus(TextStyle::WikiSql, 80, 3) {
            let sql = p.query.sql();
            let text = p.references[0].join(" ");
            if sql.contains("COUNT(*)") {
                assert!(text.starts_with("how many"), "{sql} → {text}");
            }
            if sql.contains("AVG(") {
                assert!(text.contains("average"), "{sql} → {text}");
            }
            // The literal value must appear in the text.
            if let Some(Expr::Cmp { right: Scalar::Value(Value::Int(v)), .. }) =
                &p.query.body.where_clause
            {
                assert!(text.contains(&v.to_string()), "{sql} → {text}");
            }
        }
    }

    #[test]
    fn target_vocabulary_is_compact() {
        let pairs = corpus(TextStyle::StackOverflow, 200, 4);
        let vocab = target_vocabulary(&pairs);
        assert!(vocab.len() > 20);
        assert!(vocab.len() < 1200, "vocabulary should be compact, got {}", vocab.len());
    }
}
