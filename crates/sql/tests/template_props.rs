//! Property-based tests over template extraction.

use proptest::prelude::*;

use preqr_sql::parser::parse;
use preqr_sql::template::TemplateSet;
use preqr_sql::Query;

fn workload() -> impl Strategy<Value = Vec<Query>> {
    let table = prop_oneof![Just("title"), Just("orders"), Just("item")];
    let col = prop_oneof![Just("id"), Just("year"), Just("price")];
    let one = (table, col, -500i64..500, prop_oneof![Just(">"), Just("="), Just("<")]).prop_map(
        |(t, c, v, op)| parse(&format!("SELECT COUNT(*) FROM {t} WHERE {t}.{c} {op} {v}")).unwrap(),
    );
    proptest::collection::vec(one, 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Support is conserved: the template supports sum to the corpus size.
    #[test]
    fn support_is_conserved(queries in workload(), thr in 0.0f64..0.6) {
        let ts = TemplateSet::extract(&queries, thr);
        prop_assert_eq!(ts.total_support(), queries.len());
    }

    /// Raising the merge threshold never increases the template count.
    #[test]
    fn threshold_is_monotone(queries in workload(), a in 0.0f64..0.5, b in 0.0f64..0.5) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let n_lo = TemplateSet::extract(&queries, lo).len();
        let n_hi = TemplateSet::extract(&queries, hi).len();
        prop_assert!(n_hi <= n_lo, "threshold {hi} gave {n_hi} > {n_lo} at {lo}");
    }

    /// Extraction never produces more templates than distinct normalized
    /// shapes, and at least one template for a non-empty corpus.
    #[test]
    fn template_count_bounds(queries in workload(), thr in 0.0f64..0.6) {
        use preqr_sql::normalize::template_text;
        let distinct: std::collections::HashSet<String> =
            queries.iter().map(template_text).collect();
        let ts = TemplateSet::extract(&queries, thr);
        prop_assert!(ts.len() >= 1);
        prop_assert!(ts.len() <= distinct.len());
    }
}
