//! Figure 7 — query-similarity validation on the CH workload:
//! (a) NDCG ranking validation per similarity method;
//! (b) mean distances within equivalent / same-template / irrelevant
//! query groups.
//!
//! Expected shape (paper): PreQR has the highest NDCG; its equivalent-
//! group distance < same-template distance < irrelevant distance.

use preqr::PreqrConfig;
use preqr_bench::{artifact_path, Scale};
use preqr_data::chdb::{self, ChConfig};
use preqr_data::clustering::ch_workload;
use preqr_data::workloads;
use preqr_nn::layers::Module;
use preqr_nn::serialize;
use preqr_sql::ast::Query;
use preqr_tasks::clustering::{ch_group_distances, ch_ndcg, Seq2SeqEmbedder, SimilarityMethod};
use preqr_tasks::setup::value_buckets_from_db;

fn main() {
    let scale = preqr_bench::scale();
    let ch_db = chdb::generate(if scale == Scale::Full {
        ChConfig::default()
    } else {
        ChConfig { customers: 400, seed: 7 }
    });
    let n_seeds = if scale == Scale::Full { 60 } else { 20 };
    eprintln!("[fig07] building CH workload ({n_seeds} seeds)…");
    let ch = ch_workload(&ch_db, n_seeds, 3);
    eprintln!("[fig07] {} queries with measured result overlap", ch.len());

    // Pre-train PreQR on the CH schema: clustering queries + CH workload
    // shapes form the corpus.
    let mut corpus: Vec<Query> = ch.queries.clone();
    corpus.extend(preqr_data::clustering::iit_bombay().queries);
    let buckets = value_buckets_from_db(&ch_db, 10);
    let config = PreqrConfig::small();
    let mut model = preqr::SqlBert::new(&corpus, ch_db.schema(), buckets, config);
    let path = artifact_path(&format!("preqr_ch_{scale:?}.bin"));
    let cached = serialize::load_from_file(&path)
        .ok()
        .and_then(|l| serialize::apply_params(&model.named_params("m"), &l).ok());
    if cached.is_none() {
        eprintln!("[fig07] pre-training PreQR on the CH schema…");
        let epochs = if scale == Scale::Full { 5 } else { 3 };
        model.pretrain(&corpus, epochs, 1e-3);
        let _ = std::fs::create_dir_all(path.parent().expect("dir"));
        let _ = serialize::save_to_file(&path, &model.named_params("m"));
    }

    eprintln!("[fig07] training Seq2Seq auto-encoder…");
    let s2s = Seq2SeqEmbedder::train(&corpus[..corpus.len().min(120)], 32, 6, 9);

    let methods: Vec<SimilarityMethod> = vec![
        SimilarityMethod::Aouiche,
        SimilarityMethod::Aligon,
        SimilarityMethod::Makiyama,
        SimilarityMethod::OneHot(&ch_db),
        SimilarityMethod::Seq2Seq(Box::new(s2s)),
        SimilarityMethod::Preqr(&model),
    ];
    println!("\n=== Figure 7a: NDCG@(n/3) on the CH workload ===");
    println!("{:<12} {:>8}", "method", "NDCG");
    for m in &methods {
        println!("{:<12} {:>8.3}", m.name(), ch_ndcg(m, &ch, ch.len() / 3));
    }
    println!("\npaper NDCG: Aouiche 0.131, Aligon 0.120, Makiyama 0.214, One-hot 0.191, Seq2Seq 0.584, PreQR 0.710");

    println!("\n=== Figure 7b: mean group distances (PreQR) ===");
    for m in &methods {
        let g = ch_group_distances(m, &ch);
        println!(
            "{:<12} equivalent {:.3}  same-template {:.3}  irrelevant {:.3}",
            m.name(),
            g.equivalent,
            g.same_template,
            g.irrelevant
        );
    }
    println!("\npaper: PreQR orders the groups equivalent < same-template < irrelevant.");
    let _ = workloads::num_joins; // keep the workloads crate linked for doc parity
}
