//! Cross-crate integration tests: the full PreQR pipeline from data
//! generation through pre-training to downstream evaluation.

use preqr::{PreqrConfig, SqlBert};
use preqr_data::imdb::{generate, ImdbConfig};
use preqr_data::workloads;
use preqr_engine::{execute, BitmapSampler, CostModel, TableStats};
use preqr_tasks::estimation::{evaluate, train_preqr, Estimator, PgBaseline, Target};
use preqr_tasks::setup::{build_pretrained, value_buckets_from_db};

#[test]
fn pretrain_encode_finetune_evaluate() {
    let db = generate(ImdbConfig::tiny());
    let corpus = workloads::pretrain_corpus(&db, 60, 7);
    let (model, stats) = build_pretrained(&db, &corpus, PreqrConfig::test(), 2, 2e-3);
    assert!(stats[1].loss <= stats[0].loss * 1.1, "pre-training must not diverge");

    let cm = CostModel::default();
    let labeled = workloads::label(&db, &workloads::synthetic(&db, 120, 21), &cm);
    let (train, valid) = labeled.split_at(100);
    let sampler = BitmapSampler::new(&db, 32, 1);
    let pred = train_preqr(
        &db,
        &model,
        Some(&sampler),
        train,
        valid,
        Target::Cardinality,
        3,
        7,
        "PreQRCard",
    );
    let test = workloads::label(&db, &workloads::job_light(&db, 41), &cm);
    let s = evaluate(&pred, Target::Cardinality, &test);
    assert!(s.mean.is_finite() && s.median >= 1.0);

    // Fine-tuning must beat the untrained head (which decodes to the
    // training geometric mean), and land in the same order of magnitude
    // as the PG baseline even at this tiny test scale. (The full-scale
    // PG-beating result is the table08 reproduction binary's job.)
    let untrained = train_preqr(
        &db,
        &model,
        Some(&sampler),
        train,
        valid,
        Target::Cardinality,
        0,
        7,
        "untrained",
    );
    let u = evaluate(&untrained, Target::Cardinality, &test);
    assert!(s.mean < u.mean, "training must help: {} vs {}", s.mean, u.mean);
    let tstats = TableStats::analyze(&db);
    let pg = PgBaseline::new(&db, &tstats, Target::Cardinality);
    let pg_stats = evaluate(&pg, Target::Cardinality, &test);
    assert!(
        s.mean < pg_stats.mean * 3.0,
        "PreQR ({}) should be within 3x of PG ({}) even at toy scale",
        s.mean,
        pg_stats.mean
    );
}

#[test]
fn shared_model_predictors_do_not_interfere() {
    // Two heads fine-tuned from one shared model must keep their own
    // last-layer weights (regression test for the weight-clobbering bug).
    let db = generate(ImdbConfig::tiny());
    let corpus = workloads::pretrain_corpus(&db, 40, 7);
    let (model, _) = build_pretrained(&db, &corpus, PreqrConfig::test(), 1, 2e-3);
    let cm = CostModel::default();
    let labeled = workloads::label(&db, &workloads::synthetic(&db, 80, 21), &cm);
    let (train, valid) = labeled.split_at(64);
    let a = train_preqr(&db, &model, None, train, valid, Target::Cardinality, 2, 7, "A");
    let q = &labeled[0].query;
    let before = a.predict(q);
    // Train a second head (mutates and restores the shared last layer).
    let _b = train_preqr(&db, &model, None, train, valid, Target::Cost, 2, 9, "B");
    let after = a.predict(q);
    assert!(
        (before - after).abs() < 1e-6 * before.abs().max(1.0),
        "predictor A changed after training B: {before} vs {after}"
    );
}

#[test]
fn automaton_covers_generated_workloads() {
    let db = generate(ImdbConfig::tiny());
    let corpus = workloads::pretrain_corpus(&db, 80, 7);
    let buckets = value_buckets_from_db(&db, 8);
    let model = SqlBert::new(&corpus, db.schema(), buckets, PreqrConfig::test());
    // Unseen queries from the same families should have high structural
    // coverage through the merged automaton.
    let unseen = workloads::synthetic(&db, 40, 999);
    let mean_cov: f64 = unseen.iter().map(|q| model.prepare(q).structure_coverage).sum::<f64>()
        / unseen.len() as f64;
    assert!(mean_cov > 0.95, "automaton coverage too low: {mean_cov}");
}

#[test]
fn ground_truth_labels_are_execution_results() {
    let db = generate(ImdbConfig::tiny());
    let cm = CostModel::default();
    let qs = workloads::job_light(&db, 41);
    let labeled = workloads::label(&db, &qs, &cm);
    for lq in labeled.iter().take(10) {
        let r = execute(&db, &lq.query).unwrap();
        assert_eq!(lq.card, r.join_cardinality.max(1));
    }
}
