//! Deterministic, deliberately *correlated* mini-IMDB database.
//!
//! The paper evaluates estimation tasks on IMDB because "columns and
//! tables have high correlations, and therefore the dataset proves to be
//! very challenging". This generator reproduces that property
//! synthetically:
//!
//! * `production_year` is skewed toward recent years;
//! * `kind_id` correlates with year (series are recent);
//! * the *number* of company/info/keyword/cast rows per movie grows with
//!   year and depends on kind;
//! * `company_id`, `keyword_id` and info values correlate with year and
//!   kind (Zipf-like popularity).
//!
//! These correlations are exactly what breaks the independence assumption
//! of the PG estimator and what learned estimators can pick up.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use preqr_engine::{Database, Datum};
use preqr_schema::{Column, ColumnType, ForeignKey, Schema, Table};

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct ImdbConfig {
    /// Number of `title` rows. Fact-table sizes scale with this.
    pub movies: usize,
    /// Number of distinct companies.
    pub companies: usize,
    /// Number of distinct keywords.
    pub keywords: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        Self { movies: 20_000, companies: 800, keywords: 600, seed: 42 }
    }
}

impl ImdbConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self { movies: 400, companies: 40, keywords: 30, seed: 42 }
    }
}

/// The mini-IMDB schema: 9 tables connected by PK–FK relationships
/// (paper: "22 tables, connected by the primary-foreign key
/// relationships" — this keeps the JOB-light-relevant core).
pub fn imdb_schema() -> Schema {
    let mut s = Schema::new();
    s.add_table(Table::new(
        "kind_type",
        vec![Column::primary("id", ColumnType::Int), Column::new("kind", ColumnType::Varchar)],
    ));
    s.add_table(Table::new(
        "company_name",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("name", ColumnType::Varchar),
            Column::new("country_code", ColumnType::Varchar),
        ],
    ));
    s.add_table(Table::new(
        "info_type",
        vec![Column::primary("id", ColumnType::Int), Column::new("info", ColumnType::Varchar)],
    ));
    s.add_table(Table::new(
        "keyword",
        vec![Column::primary("id", ColumnType::Int), Column::new("keyword", ColumnType::Varchar)],
    ));
    s.add_table(Table::new(
        "title",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("title", ColumnType::Varchar),
            Column::new("kind_id", ColumnType::Int),
            Column::new("production_year", ColumnType::Int),
            Column::new("season_nr", ColumnType::Int),
            Column::new("episode_nr", ColumnType::Int),
        ],
    ));
    s.add_table(Table::new(
        "movie_companies",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("movie_id", ColumnType::Int),
            Column::new("company_id", ColumnType::Int),
            Column::new("company_type_id", ColumnType::Int),
        ],
    ));
    s.add_table(Table::new(
        "movie_info",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("movie_id", ColumnType::Int),
            Column::new("info_type_id", ColumnType::Int),
            Column::new("info", ColumnType::Varchar),
        ],
    ));
    s.add_table(Table::new(
        "movie_info_idx",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("movie_id", ColumnType::Int),
            Column::new("info_type_id", ColumnType::Int),
            Column::new("info", ColumnType::Int),
        ],
    ));
    s.add_table(Table::new(
        "movie_keyword",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("movie_id", ColumnType::Int),
            Column::new("keyword_id", ColumnType::Int),
        ],
    ));
    s.add_table(Table::new(
        "cast_info",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("movie_id", ColumnType::Int),
            Column::new("person_id", ColumnType::Int),
            Column::new("role_id", ColumnType::Int),
        ],
    ));
    for (from, to) in [
        ("title", "kind_type"),
        ("movie_companies", "title"),
        ("movie_companies", "company_name"),
        ("movie_info", "title"),
        ("movie_info", "info_type"),
        ("movie_info_idx", "title"),
        ("movie_info_idx", "info_type"),
        ("movie_keyword", "title"),
        ("movie_keyword", "keyword"),
        ("cast_info", "title"),
    ] {
        let from_column = match (from, to) {
            ("title", "kind_type") => "kind_id",
            ("movie_companies", "company_name") => "company_id",
            ("movie_info", "info_type") | ("movie_info_idx", "info_type") => "info_type_id",
            ("movie_keyword", "keyword") => "keyword_id",
            _ => "movie_id",
        };
        s.add_foreign_key(ForeignKey {
            from_table: from.into(),
            from_column: from_column.into(),
            to_table: to.into(),
            to_column: "id".into(),
        });
    }
    s
}

const KINDS: [&str; 7] =
    ["movie", "tv series", "tv movie", "video movie", "tv mini series", "video game", "episode"];
const COUNTRIES: [&str; 8] = ["us", "gb", "de", "fr", "jp", "in", "cn", "br"];
const INFO_KINDS: [&str; 10] = [
    "genres",
    "languages",
    "runtimes",
    "color info",
    "countries",
    "sound mix",
    "rating",
    "votes",
    "budget",
    "release dates",
];
const GENRES: [&str; 12] = [
    "drama",
    "comedy",
    "action",
    "thriller",
    "documentary",
    "horror",
    "romance",
    "animation",
    "crime",
    "adventure",
    "fantasy",
    "mystery",
];

/// Zipf-like index in `0..n`: small indices are much more likely.
fn zipf(rng: &mut StdRng, n: usize) -> usize {
    let u: f64 = rng.random::<f64>();
    let skew = 1.1f64;
    let x = (u.powf(skew) * n as f64) as usize;
    x.min(n - 1)
}

/// Generates the mini-IMDB database.
pub fn generate(config: ImdbConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Database::new(imdb_schema());

    for (i, kind) in KINDS.iter().enumerate() {
        db.insert("kind_type", &[Datum::Int(i as i64 + 1), Datum::Str((*kind).to_string())]);
    }
    for (i, info) in INFO_KINDS.iter().enumerate() {
        db.insert("info_type", &[Datum::Int(i as i64 + 1), Datum::Str((*info).to_string())]);
    }
    for i in 0..config.companies {
        // Company country correlates with id block.
        let country = COUNTRIES[(i * COUNTRIES.len()) / config.companies.max(1)];
        db.insert(
            "company_name",
            &[
                Datum::Int(i as i64 + 1),
                Datum::Str(format!("{country} studio {i:04}")),
                Datum::Str(country.to_string()),
            ],
        );
    }
    for i in 0..config.keywords {
        let theme = GENRES[i % GENRES.len()];
        db.insert("keyword", &[Datum::Int(i as i64 + 1), Datum::Str(format!("{theme}-kw-{i:04}"))]);
    }

    let (mut mc_id, mut mi_id, mut mii_id, mut mk_id, mut ci_id) = (0i64, 0i64, 0i64, 0i64, 0i64);
    for m in 0..config.movies {
        let id = m as i64 + 1;
        // Year: skewed toward recent (1930..2020), quadratic density.
        let u: f64 = rng.random::<f64>();
        let year = 1930 + (u.sqrt() * 90.0) as i64;
        // Kind correlates with year: series/video games concentrate after
        // 1990; early movies are almost always kind 1.
        let kind = if year < 1990 {
            if rng.random::<f64>() < 0.85 {
                1
            } else {
                rng.random_range(2..=3)
            }
        } else {
            1 + zipf(&mut rng, 7) as i64
        };
        let is_series = kind == 2 || kind == 5 || kind == 7;
        let season = if is_series { rng.random_range(1..=15) } else { 0 };
        let episode = if is_series { rng.random_range(1..=24) } else { 0 };
        let genre = GENRES[zipf(&mut rng, GENRES.len())];
        db.insert(
            "title",
            &[
                Datum::Int(id),
                Datum::Str(format!("{genre} {} no{m:05}", KINDS[(kind - 1) as usize])),
                Datum::Int(kind),
                Datum::Int(year),
                Datum::Int(season),
                Datum::Int(episode),
            ],
        );

        // Companies per movie: recent movies have more (0..=5).
        let recency = ((year - 1930) as f64 / 90.0).clamp(0.0, 1.0);
        let n_mc = (rng.random::<f64>() * (1.0 + 4.0 * recency)) as usize;
        for _ in 0..n_mc {
            mc_id += 1;
            // Companies cluster by era: a movie's company is drawn near
            // the id block proportional to its year.
            let base = (recency * (config.companies as f64 - 1.0)) as i64;
            let jitter =
                rng.random_range(-(config.companies as i64) / 8..=(config.companies as i64) / 8);
            let company = (base + jitter).clamp(0, config.companies as i64 - 1) + 1;
            db.insert(
                "movie_companies",
                &[
                    Datum::Int(mc_id),
                    Datum::Int(id),
                    Datum::Int(company),
                    Datum::Int(1 + zipf(&mut rng, 4) as i64),
                ],
            );
        }

        // movie_info: 1..4 rows; info kind correlates with movie kind.
        let n_mi = 1 + rng.random_range(0..4);
        for _ in 0..n_mi {
            mi_id += 1;
            let it = if is_series {
                1 + zipf(&mut rng, 4) as i64
            } else {
                1 + zipf(&mut rng, 10) as i64
            };
            let val = match it {
                1 => GENRES[zipf(&mut rng, GENRES.len())].to_string(),
                2 => ["english", "french", "german", "japanese"][zipf(&mut rng, 4)].to_string(),
                _ => format!("v{}", rng.random_range(0..50)),
            };
            db.insert(
                "movie_info",
                &[Datum::Int(mi_id), Datum::Int(id), Datum::Int(it), Datum::Str(val)],
            );
        }

        // movie_info_idx: ratings/votes; value correlates with year & kind.
        if rng.random::<f64>() < 0.8 {
            mii_id += 1;
            let it = if rng.random::<f64>() < 0.5 { 7 } else { 8 };
            let info = if it == 7 {
                // Rating 10..100, older movies rated slightly higher.
                (55.0 + 20.0 * rng.random::<f64>() + 15.0 * (1.0 - recency)) as i64
            } else {
                // Votes: recent movies get many more.
                (10.0 + 5000.0 * recency * rng.random::<f64>()) as i64
            };
            db.insert(
                "movie_info_idx",
                &[Datum::Int(mii_id), Datum::Int(id), Datum::Int(it), Datum::Int(info)],
            );
        }

        // movie_keyword: 0..6 rows, keyword popularity Zipf, theme follows
        // the title's genre block.
        let n_mk = rng.random_range(0..=6).min((config.keywords / 4).max(1));
        for _ in 0..n_mk {
            mk_id += 1;
            let kw = 1 + zipf(&mut rng, config.keywords) as i64;
            db.insert("movie_keyword", &[Datum::Int(mk_id), Datum::Int(id), Datum::Int(kw)]);
        }

        // cast_info: series have larger casts.
        let n_ci = if is_series { rng.random_range(3..=10) } else { rng.random_range(1..=6) };
        for _ in 0..n_ci {
            ci_id += 1;
            db.insert(
                "cast_info",
                &[
                    Datum::Int(ci_id),
                    Datum::Int(id),
                    Datum::Int(rng.random_range(1..=(config.movies as i64 / 2 + 10))),
                    Datum::Int(1 + zipf(&mut rng, 11) as i64),
                ],
            );
        }
    }
    db
}

/// The six tables JOB-light queries draw from: `title` plus the five fact
/// tables joined through `movie_id`.
pub const JOB_LIGHT_FACTS: [&str; 5] =
    ["movie_companies", "movie_info", "movie_info_idx", "movie_keyword", "cast_info"];

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_engine::execute;
    use preqr_sql::parser::parse;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(ImdbConfig::tiny());
        let b = generate(ImdbConfig::tiny());
        assert_eq!(a.row_count("movie_companies"), b.row_count("movie_companies"));
        assert_eq!(
            a.column("title", "production_year").unwrap().get(17),
            b.column("title", "production_year").unwrap().get(17)
        );
    }

    #[test]
    fn all_tables_are_populated() {
        let db = generate(ImdbConfig::tiny());
        for t in db.schema().tables() {
            assert!(db.row_count(&t.name) > 0, "table {} empty", t.name);
        }
        assert_eq!(db.row_count("title"), 400);
    }

    #[test]
    fn foreign_keys_are_valid() {
        let db = generate(ImdbConfig::tiny());
        for fk in db.schema().foreign_keys().to_vec() {
            let q = parse(&format!(
                "SELECT COUNT(*) FROM {} x, {} y WHERE x.{} = y.{}",
                fk.from_table, fk.to_table, fk.from_column, fk.to_column
            ))
            .unwrap();
            let joined = execute(&db, &q).unwrap().join_cardinality;
            assert_eq!(
                joined as usize,
                db.row_count(&fk.from_table),
                "dangling fk {}.{}",
                fk.from_table,
                fk.from_column
            );
        }
    }

    #[test]
    fn year_is_skewed_recent() {
        let db = generate(ImdbConfig::tiny());
        let q_new = parse("SELECT COUNT(*) FROM title WHERE title.production_year > 1990").unwrap();
        let q_old = parse("SELECT COUNT(*) FROM title WHERE title.production_year < 1960").unwrap();
        let new = execute(&db, &q_new).unwrap().join_cardinality;
        let old = execute(&db, &q_old).unwrap().join_cardinality;
        assert!(new > 2 * old, "expected recent skew: new={new} old={old}");
    }

    #[test]
    fn kind_correlates_with_year() {
        let db = generate(ImdbConfig::tiny());
        // Fraction of kind=1 among old movies should far exceed that among
        // recent ones.
        let count = |sql: &str| execute(&db, &parse(sql).unwrap()).unwrap().join_cardinality as f64;
        let old_k1 = count(
            "SELECT COUNT(*) FROM title WHERE title.production_year < 1990 AND title.kind_id = 1",
        );
        let old = count("SELECT COUNT(*) FROM title WHERE title.production_year < 1990").max(1.0);
        let new_k1 = count(
            "SELECT COUNT(*) FROM title WHERE title.production_year >= 1990 AND title.kind_id = 1",
        );
        let new = count("SELECT COUNT(*) FROM title WHERE title.production_year >= 1990").max(1.0);
        assert!(old_k1 / old > new_k1 / new + 0.1, "kind/year correlation missing");
    }

    #[test]
    fn company_count_grows_with_year() {
        let db = generate(ImdbConfig { movies: 2000, ..ImdbConfig::tiny() });
        let count = |sql: &str| execute(&db, &parse(sql).unwrap()).unwrap().join_cardinality as f64;
        let new_movies =
            count("SELECT COUNT(*) FROM title WHERE title.production_year > 2000").max(1.0);
        let old_movies =
            count("SELECT COUNT(*) FROM title WHERE title.production_year < 1970").max(1.0);
        let new_mc = count(
            "SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id \
             AND t.production_year > 2000",
        );
        let old_mc = count(
            "SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = mc.movie_id \
             AND t.production_year < 1970",
        );
        assert!(
            new_mc / new_movies > old_mc / old_movies + 0.5,
            "companies-per-movie should grow with year: new={} old={}",
            new_mc / new_movies,
            old_mc / old_movies
        );
    }
}
