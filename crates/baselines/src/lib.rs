//! `preqr-baselines` — faithful re-implementations of every baseline the
//! PreQR paper compares against (§4.3):
//!
//! * [`mscn`] — MSCN one-hot set-convolutional estimator (also the
//!   `One-hotDis` feature source);
//! * [`lstm_est`] — the LSTM sequence-encoder estimator of Sun & Li;
//! * [`neurocard`] — a NeuroCard-style data-driven progressive-sampling
//!   join estimator;
//! * [`seq2seq`] — Seq2Seq (+copy, +latent), Tree2Seq and Graph2Seq
//!   SQL-to-Text models sharing one attentional RNN decoder;
//! * [`cluster_sims`] — Aouiche / Aligon / Makiyama query-similarity
//!   metrics and cosine helpers.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index-heavy numeric kernels read clearer with explicit indices
pub mod cluster_sims;
pub mod lstm_est;
pub mod mscn;
pub mod neurocard;
pub mod seq2seq;
