//! Golden-snapshot test for the JSONL trace schema (v1).
//!
//! The blessed fixture at `tests/fixtures/trace_golden.jsonl` is the
//! compatibility contract for external trace consumers: any byte-level
//! change to the encoding must show up as a reviewed fixture diff. A
//! serde-free validator additionally checks every line — fixture and
//! live-captured alike — against the schema rules.

use std::sync::{Arc, Mutex};

use preqr_data::imdb::{generate, ImdbConfig};
use preqr_data::workloads;
use preqr_engine::execute;
use preqr_obs as obs;
use preqr_obs::{Event, EventKind, FieldValue};

/// Fixed events covering every kind, every field type, string escaping,
/// and the non-finite-number rule. Values are hardcoded (not measured) so
/// the encoding is byte-stable.
fn golden_events() -> Vec<Event> {
    let mut span = Event::new(EventKind::Span, "pretrain.epoch", 1234.5);
    span.fields.push(("epoch", FieldValue::U64(0)));
    span.fields.push(("loss", FieldValue::F64(5.25)));
    span.fields.push(("method", FieldValue::Str("mscn".into())));
    span.fields.push(("delta", FieldValue::I64(-3)));

    let counter = Event::new(EventKind::Counter, "engine.queries", 42.0);

    let mut hist = Event::new(EventKind::Hist, "nn.matmul_us", 3.0);
    hist.fields.push(("p50", FieldValue::F64(10.5)));
    hist.fields.push(("p95", FieldValue::F64(99.0)));
    hist.fields.push(("max", FieldValue::F64(120.25)));
    hist.fields.push(("sum", FieldValue::F64(130.0)));

    let mut warn = Event::new(EventKind::Warn, "obs.sink.degraded", 1.0);
    warn.fields.push(("error", FieldValue::Str("disk \"full\"\n".into())));

    let nonfinite = Event::new(EventKind::Counter, "obs.nonfinite", f64::INFINITY);

    // Serving-layer events (`preqr-serve`): the per-request span and one
    // of the `serve.*` registry counters.
    let mut serve_span = Event::new(EventKind::Span, "serve.request", 87.5);
    serve_span.fields.push(("outcome", FieldValue::Str("ok".into())));
    serve_span.fields.push(("cached", FieldValue::U64(1)));
    let serve_counter = Event::new(EventKind::Counter, "serve.cache.hits", 7.0);

    vec![span, counter, hist, warn, nonfinite, serve_span, serve_counter]
}

#[test]
fn jsonl_encoding_matches_blessed_fixture() {
    let got: String = golden_events().iter().map(|e| e.to_jsonl() + "\n").collect();
    let want = include_str!("fixtures/trace_golden.jsonl");
    assert_eq!(
        got, want,
        "JSONL schema drifted from tests/fixtures/trace_golden.jsonl — if the \
         change is intentional, re-bless the fixture and bump the schema notes \
         in DESIGN.md"
    );
}

// ---- serde-free schema validator ----------------------------------------

struct Cursor<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn eat(&mut self, lit: &str) -> Result<(), String> {
        if self.s[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at byte {} of `{}`", self.pos, self.s))
        }
    }

    /// Consumes a JSON string literal, returning its raw (escaped) body.
    fn string(&mut self) -> Result<&'a str, String> {
        self.eat("\"")?;
        let start = self.pos;
        let bytes = self.s.as_bytes();
        while self.pos < bytes.len() {
            match bytes[self.pos] {
                b'"' => {
                    let body = &self.s[start..self.pos];
                    self.pos += 1;
                    return Ok(body);
                }
                b'\\' => {
                    let esc = bytes.get(self.pos + 1).ok_or("dangling escape")?;
                    let valid = matches!(esc, b'"' | b'\\' | b'n' | b'r' | b't' | b'u');
                    if !valid {
                        return Err(format!("invalid escape \\{} in `{}`", *esc as char, self.s));
                    }
                    self.pos += if *esc == b'u' { 6 } else { 2 };
                }
                b if b < 0x20 => return Err("raw control character in string".into()),
                _ => self.pos += 1,
            }
        }
        Err("unterminated string".into())
    }

    /// Consumes a JSON number or `null`.
    fn number_or_null(&mut self) -> Result<(), String> {
        if self.s[self.pos..].starts_with("null") {
            self.pos += 4;
            return Ok(());
        }
        let start = self.pos;
        let bytes = self.s.as_bytes();
        while self.pos < bytes.len()
            && matches!(bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected number at byte {start} of `{}`", self.s));
        }
        self.s[start..self.pos]
            .parse::<f64>()
            .map(drop)
            .map_err(|e| format!("bad number `{}`: {e}", &self.s[start..self.pos]))
    }
}

/// Validates one trace line against schema v1; returns the event kind.
fn validate_line(line: &str) -> Result<&str, String> {
    let mut c = Cursor { s: line, pos: 0 };
    c.eat("{\"v\":1,\"ev\":")?;
    let ev = c.string()?;
    let value_key = match ev {
        "span" => "us",
        "hist" => "count",
        "counter" | "warn" => "value",
        other => return Err(format!("unknown event kind `{other}`")),
    };
    c.eat(",\"name\":")?;
    let name = c.string()?;
    if name.is_empty() {
        return Err("empty event name".into());
    }
    c.eat(&format!(",\"{value_key}\":"))?;
    c.number_or_null()?;
    if c.s[c.pos..].starts_with(",\"fields\":{") {
        c.eat(",\"fields\":{")?;
        loop {
            let key = c.string()?;
            if key.is_empty() {
                return Err("empty field key".into());
            }
            c.eat(":")?;
            if c.s[c.pos..].starts_with('"') {
                c.string()?;
            } else {
                c.number_or_null()?;
            }
            if c.s[c.pos..].starts_with(',') {
                c.eat(",")?;
            } else {
                break;
            }
        }
        c.eat("}")?;
    }
    c.eat("}")?;
    if c.pos != line.len() {
        return Err(format!("trailing bytes after event: `{}`", &line[c.pos..]));
    }
    Ok(ev)
}

#[test]
fn every_golden_line_passes_the_validator() {
    let text = include_str!("fixtures/trace_golden.jsonl");
    let kinds: Vec<&str> =
        text.lines().map(|l| validate_line(l).expect("golden line is schema-valid")).collect();
    assert_eq!(kinds, ["span", "counter", "hist", "warn", "counter", "span", "counter"]);
}

#[test]
fn validator_rejects_malformed_lines() {
    for bad in [
        "",
        "{}",
        "{\"v\":2,\"ev\":\"span\",\"name\":\"x\",\"us\":1}",
        "{\"v\":1,\"ev\":\"bogus\",\"name\":\"x\",\"value\":1}",
        "{\"v\":1,\"ev\":\"span\",\"name\":\"x\",\"value\":1}", // wrong value key
        "{\"v\":1,\"ev\":\"counter\",\"name\":\"\",\"value\":1}",
        "{\"v\":1,\"ev\":\"counter\",\"name\":\"x\",\"value\":nan}",
        "{\"v\":1,\"ev\":\"counter\",\"name\":\"x\",\"value\":1}trailing",
        "{\"v\":1,\"ev\":\"counter\",\"name\":\"x\",\"value\":1,\"fields\":{\"k\":}}",
    ] {
        assert!(validate_line(bad).is_err(), "accepted malformed line: `{bad}`");
    }
}

/// `Write` target that a test can read back after the sink takes it over.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn live_trace_output_is_schema_valid_jsonl() {
    let buf = SharedBuf::default();
    obs::reset_metrics();
    obs::install_sink(Arc::new(obs::JsonlSink::new(buf.clone())));

    // A real (tiny) traced workload: spans + engine counters + a flush.
    let db = generate(ImdbConfig::tiny());
    {
        let _span = obs::span("bench.ctx_build").field("movies", 100usize);
        for q in &workloads::synthetic(&db, 5, 5) {
            let _ = execute(&db, q);
        }
    }
    obs::flush_metrics();
    obs::clear_sink();
    obs::set_metrics_enabled(false);
    obs::reset_metrics();

    let bytes = buf.0.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let text = String::from_utf8(bytes).expect("trace is UTF-8");
    assert!(text.ends_with('\n'), "stream is newline-terminated");
    let mut kinds = Vec::new();
    for line in text.lines() {
        kinds.push(validate_line(line).unwrap_or_else(|e| panic!("invalid line: {e}")));
    }
    // One span + the full registry flush, in that order.
    assert_eq!(kinds[0], "span");
    assert_eq!(kinds.len(), 1 + obs::Metric::ALL.len() + obs::HistMetric::ALL.len());
}
