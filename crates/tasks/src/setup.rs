//! Convenience builders shared by the reproduction binaries and tests.

use preqr::{PreqrConfig, SqlBert, ValueBuckets};
use preqr_engine::Database;
use preqr_sql::ast::Query;

/// Builds per-column value bucketizers from the actual column data
/// (§3.3.2's equi-depth ranges).
pub fn value_buckets_from_db(db: &Database, k: usize) -> ValueBuckets {
    let mut buckets = ValueBuckets::new(k);
    for t in db.schema().tables() {
        for c in &t.columns {
            let Some(col) = db.column(&t.name, &c.name) else { continue };
            let samples: Vec<f64> = (0..col.len()).filter_map(|r| col.get_f64(r)).collect();
            if !samples.is_empty() {
                buckets.insert(&t.name, &c.name, samples);
            }
        }
    }
    buckets
}

/// Builds and MLM-pre-trains a PreQR model on a corpus over `db`'s
/// schema. Returns the model together with its per-epoch statistics.
pub fn build_pretrained(
    db: &Database,
    corpus: &[Query],
    config: PreqrConfig,
    epochs: usize,
    lr: f32,
) -> (SqlBert, Vec<preqr::EpochStats>) {
    let buckets = value_buckets_from_db(db, config.value_buckets);
    let mut model = SqlBert::new(corpus, db.schema(), buckets, config);
    let stats = model.pretrain(corpus, epochs, lr);
    (model, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use preqr_data::imdb::{generate, ImdbConfig};
    use preqr_data::workloads;

    #[test]
    fn buckets_cover_numeric_columns() {
        let db = generate(ImdbConfig::tiny());
        let b = value_buckets_from_db(&db, 5);
        let tok = b.token_for("title", "production_year", &preqr_sql::ast::Value::Int(2015));
        assert!(tok.starts_with("title.production_year#r"), "{tok}");
    }

    #[test]
    fn build_pretrained_reduces_loss() {
        let db = generate(ImdbConfig::tiny());
        let corpus = workloads::pretrain_corpus(&db, 24, 1);
        let (model, stats) = build_pretrained(&db, &corpus, PreqrConfig::test(), 3, 3e-3);
        assert!(stats.last().unwrap().loss < stats.first().unwrap().loss);
        assert!(model.num_parameters() > 10_000);
    }
}
