//! Table 10 — cardinality q-errors on the JOB workload with string
//! predicates (PG, LSTM, PreQR; MSCN and NeuroCard excluded per §4.5.2).
//!
//! Expected shape (paper): PreQR's margin over LSTM grows versus the
//! numeric-only workloads, because the automaton + BERT encoding
//! separates structure from string predicates.

use preqr::PreqrConfig;
use preqr_bench::runner::{run_estimation, RowSelection};
use preqr_bench::Ctx;
use preqr_tasks::estimation::Target;

fn main() {
    let ctx = Ctx::build();
    let model = ctx.pretrained("main", PreqrConfig::small());
    let (train, valid) = ctx.job_train();
    let tests = vec![("JOB (strings)", ctx.job_workload())];
    run_estimation(
        &ctx,
        &model,
        Target::Cardinality,
        &train,
        &valid,
        &tests,
        RowSelection { mscn: false, neurocard: false },
        "PreQRCard",
    );
    println!("\npaper means: PG 10416 / LSTM 53.0 / PreQR 45.3");
}
