//! LSTM cell and bidirectional LSTM (used by Schema2Graph to encode table
//! and column names, Eq. 1–2 of the paper, and by the LSTM baseline
//! estimator).

use rand::Rng;

use crate::init;
use crate::layers::{join, Module};
use crate::matrix::Matrix;
use crate::ops;
use crate::tensor::Tensor;

/// A single LSTM cell with combined gate weights.
///
/// Gate layout along the `4 × hidden` axis is `[i, f, g, o]`.
pub struct LstmCell {
    wx: Tensor,
    wh: Tensor,
    b: Tensor,
    hidden: usize,
}

impl LstmCell {
    /// Creates a cell mapping `input`-dim rows to `hidden`-dim states.
    /// The forget-gate bias is initialized to 1 (standard trick).
    pub fn new(input: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        let mut b = Matrix::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            b.set(0, c, 1.0);
        }
        Self {
            wx: Tensor::param(init::xavier_uniform(input, 4 * hidden, rng)),
            wh: Tensor::param(init::xavier_uniform(hidden, 4 * hidden, rng)),
            b: Tensor::param(b),
            hidden,
        }
    }

    /// One step: consumes a `1 × input` row and the previous `(h, c)` state,
    /// returns the next `(h, c)`.
    pub fn step(&self, x: &Tensor, h: &Tensor, c: &Tensor) -> (Tensor, Tensor) {
        let gates =
            ops::add_row(&ops::add(&ops::matmul(x, &self.wx), &ops::matmul(h, &self.wh)), &self.b);
        let d = self.hidden;
        let i = ops::sigmoid(&ops::slice_cols(&gates, 0, d));
        let f = ops::sigmoid(&ops::slice_cols(&gates, d, 2 * d));
        let g = ops::tanh(&ops::slice_cols(&gates, 2 * d, 3 * d));
        let o = ops::sigmoid(&ops::slice_cols(&gates, 3 * d, 4 * d));
        let c_next = ops::add(&ops::mul(&f, c), &ops::mul(&i, &g));
        let h_next = ops::mul(&o, &ops::tanh(&c_next));
        (h_next, c_next)
    }

    /// Runs the cell over an `n × input` sequence, returning all hidden
    /// states as an `n × hidden` tensor plus the final `(h, c)`.
    pub fn run(&self, seq: &Tensor) -> (Vec<Tensor>, Tensor, Tensor) {
        let n = seq.value().rows();
        let mut h = Tensor::constant(Matrix::zeros(1, self.hidden));
        let mut c = Tensor::constant(Matrix::zeros(1, self.hidden));
        let mut outputs = Vec::with_capacity(n);
        for t in 0..n {
            let x = ops::gather_rows(seq, &[t]);
            let (h2, c2) = self.step(&x, &h, &c);
            outputs.push(h2.clone());
            h = h2;
            c = c2;
        }
        (outputs, h, c)
    }

    /// Hidden state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

impl Module for LstmCell {
    fn collect_params(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        out.push((join(prefix, "wx"), self.wx.clone()));
        out.push((join(prefix, "wh"), self.wh.clone()));
        out.push((join(prefix, "b"), self.b.clone()));
    }
}

/// Bidirectional LSTM.
///
/// As in Eq. 2 of the paper, [`BiLstm::encode`] concatenates the *last*
/// forward hidden state with the *first-position* reverse hidden state
/// (i.e. the reverse state that has consumed the entire sequence),
/// producing a `1 × 2·hidden` summary of a name's token sequence.
pub struct BiLstm {
    fwd: LstmCell,
    rev: LstmCell,
}

impl BiLstm {
    /// Creates forward and reverse cells.
    pub fn new(input: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        Self { fwd: LstmCell::new(input, hidden, rng), rev: LstmCell::new(input, hidden, rng) }
    }

    /// Encodes an `n × input` sequence to a `1 × 2·hidden` vector.
    ///
    /// # Panics
    /// Panics on an empty sequence.
    pub fn encode(&self, seq: &Tensor) -> Tensor {
        let n = seq.value().rows();
        assert!(n > 0, "BiLstm::encode requires a non-empty sequence");
        let (_, h_fwd, _) = self.fwd.run(seq);
        let reversed_idx: Vec<usize> = (0..n).rev().collect();
        let rev_seq = ops::gather_rows(seq, &reversed_idx);
        let (_, h_rev, _) = self.rev.run(&rev_seq);
        ops::concat_cols(&h_fwd, &h_rev)
    }

    /// Per-position outputs `n × 2·hidden` (forward state at t concatenated
    /// with reverse state at t), used by sequence encoders.
    pub fn outputs(&self, seq: &Tensor) -> Tensor {
        let n = seq.value().rows();
        assert!(n > 0, "BiLstm::outputs requires a non-empty sequence");
        let (fwd_states, _, _) = self.fwd.run(seq);
        let reversed_idx: Vec<usize> = (0..n).rev().collect();
        let rev_seq = ops::gather_rows(seq, &reversed_idx);
        let (rev_states, _, _) = self.rev.run(&rev_seq);
        let mut rows: Option<Tensor> = None;
        for t in 0..n {
            let row = ops::concat_cols(&fwd_states[t], &rev_states[n - 1 - t]);
            rows = Some(match rows {
                Some(acc) => ops::concat_rows(&acc, &row),
                None => row,
            });
        }
        rows.expect("non-empty sequence")
    }

    /// Output width of [`BiLstm::encode`].
    pub fn out_dim(&self) -> usize {
        2 * self.fwd.hidden()
    }
}

impl Module for BiLstm {
    fn collect_params(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        self.fwd.collect_params(&join(prefix, "fwd"), out);
        self.rev.collect_params(&join(prefix, "rev"), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cell_step_shapes() {
        let mut rng = StdRng::seed_from_u64(31);
        let cell = LstmCell::new(3, 5, &mut rng);
        let x = Tensor::constant(Matrix::zeros(1, 3));
        let h = Tensor::constant(Matrix::zeros(1, 5));
        let c = Tensor::constant(Matrix::zeros(1, 5));
        let (h2, c2) = cell.step(&x, &h, &c);
        assert_eq!(h2.shape(), (1, 5));
        assert_eq!(c2.shape(), (1, 5));
    }

    #[test]
    fn bilstm_encode_shape() {
        let mut rng = StdRng::seed_from_u64(31);
        let bi = BiLstm::new(4, 3, &mut rng);
        let seq = Tensor::constant(Matrix::from_fn(6, 4, |r, c| (r + c) as f32 * 0.1));
        assert_eq!(bi.encode(&seq).shape(), (1, 6));
        assert_eq!(bi.out_dim(), 6);
    }

    #[test]
    fn bilstm_outputs_shape() {
        let mut rng = StdRng::seed_from_u64(31);
        let bi = BiLstm::new(4, 3, &mut rng);
        let seq = Tensor::constant(Matrix::from_fn(5, 4, |r, c| (r * c) as f32 * 0.1));
        assert_eq!(bi.outputs(&seq).shape(), (5, 6));
    }

    #[test]
    fn encode_is_order_sensitive() {
        let mut rng = StdRng::seed_from_u64(31);
        let bi = BiLstm::new(2, 4, &mut rng);
        let a = Tensor::constant(Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
        let b = Tensor::constant(Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]));
        let ea = bi.encode(&a).value_clone();
        let eb = bi.encode(&b).value_clone();
        assert_ne!(ea, eb, "BiLSTM should distinguish token order");
    }

    #[test]
    fn lstm_learns_sequence_sum_sign() {
        // Classify whether the sum of a ±1 sequence is positive: requires
        // integrating over time, a real recurrence test.
        let mut rng = StdRng::seed_from_u64(77);
        let cell = LstmCell::new(1, 8, &mut rng);
        let head = crate::layers::Linear::new(8, 2, &mut rng);
        let mut params = cell.params();
        params.extend(head.params());
        let mut opt = Adam::new(params, 0.02);
        let seqs: Vec<(Vec<f32>, usize)> = (0..24)
            .map(|i| {
                let vals: Vec<f32> =
                    (0..5).map(|j| if (i >> j) & 1 == 1 { 1.0 } else { -1.0 }).collect();
                let label = usize::from(vals.iter().sum::<f32>() > 0.0);
                (vals, label)
            })
            .collect();
        let mut correct = 0;
        for epoch in 0..60 {
            correct = 0;
            for (vals, label) in &seqs {
                let seq = Tensor::constant(Matrix::from_fn(vals.len(), 1, |r, _| vals[r]));
                let (_, h, _) = cell.run(&seq);
                let logits = head.forward(&h);
                let v = logits.value_clone();
                let pred = usize::from(v.get(0, 1) > v.get(0, 0));
                if pred == *label {
                    correct += 1;
                }
                if epoch < 59 {
                    let loss = ops::cross_entropy_logits(&logits, &[*label]);
                    loss.backward();
                    opt.step();
                }
            }
        }
        assert!(correct >= 22, "LSTM failed to learn sign-of-sum: {correct}/24");
    }
}
