//! String and clause-level similarity used for query-template clustering
//! (§3.3.1: "a hybrid distance metric is adopted to perform the query
//! clustering … compute the string similarities between the query clauses
//! and merge the similarities as cosine distance").

use std::collections::HashMap;

use crate::ast::{Query, SelectItem};
use crate::normalize::template_text;

/// Levenshtein edit distance between two strings (by bytes).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a = a.as_bytes();
    let b = b.as_bytes();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized edit similarity in `[0, 1]`.
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let max = a.len().max(b.len());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Cosine similarity of two token multisets (term-frequency vectors).
pub fn tf_cosine(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut fa: HashMap<&str, f64> = HashMap::new();
    let mut fb: HashMap<&str, f64> = HashMap::new();
    for t in a {
        *fa.entry(t).or_default() += 1.0;
    }
    for t in b {
        *fb.entry(t).or_default() += 1.0;
    }
    let dot: f64 = fa.iter().filter_map(|(k, va)| fb.get(k).map(|vb| va * vb)).sum();
    let na: f64 = fa.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = fb.values().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Jaccard similarity of two token sets.
pub fn jaccard(a: &[String], b: &[String]) -> f64 {
    use std::collections::HashSet;
    let sa: HashSet<&str> = a.iter().map(String::as_str).collect();
    let sb: HashSet<&str> = b.iter().map(String::as_str).collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Clause-wise feature view of a query used by the hybrid metric: names
/// are kept, literals abstracted (via [`template_text`]-style rendering of
/// each clause).
#[derive(Clone, Debug, Default)]
pub struct ClauseFeatures {
    /// Projection tokens.
    pub select: Vec<String>,
    /// Table names.
    pub from: Vec<String>,
    /// Predicate tokens (literals abstracted).
    pub where_: Vec<String>,
    /// Grouping columns.
    pub group_by: Vec<String>,
    /// Ordering columns.
    pub order_by: Vec<String>,
}

impl ClauseFeatures {
    /// Extracts clause features from a query (all member SELECTs pooled).
    pub fn of(q: &Query) -> Self {
        let mut f = Self::default();
        for s in q.selects() {
            for item in &s.projections {
                match item {
                    SelectItem::Star => f.select.push("*".into()),
                    SelectItem::Column(c) => f.select.push(c.column.clone()),
                    SelectItem::Aggregate { func, arg, .. } => {
                        f.select.push(func.as_str().to_string());
                        if let Some(c) = arg {
                            f.select.push(c.column.clone());
                        }
                    }
                }
            }
            for t in s.tables() {
                f.from.push(t.table.clone());
            }
            if let Some(w) = &s.where_clause {
                for c in w.columns() {
                    f.where_.push(c.column.clone());
                }
            }
            for c in &s.group_by {
                f.group_by.push(c.column.clone());
            }
            for (c, _) in &s.order_by {
                f.order_by.push(c.column.clone());
            }
        }
        f
    }
}

/// The paper's hybrid clause-merged similarity in `[0, 1]`.
///
/// Per-clause term-frequency cosine similarities are merged with fixed
/// weights (selection and join/from clauses dominate, following Aligon et
/// al.'s finding cited in the paper), plus an edit-similarity term over
/// the normalized template text to stay sensitive to structure.
pub fn hybrid_similarity(a: &Query, b: &Query) -> f64 {
    let fa = ClauseFeatures::of(a);
    let fb = ClauseFeatures::of(b);
    let clause = 0.30 * tf_cosine(&fa.select, &fb.select)
        + 0.30 * tf_cosine(&fa.from, &fb.from)
        + 0.25 * tf_cosine(&fa.where_, &fb.where_)
        + 0.10 * tf_cosine(&fa.group_by, &fb.group_by)
        + 0.05 * tf_cosine(&fa.order_by, &fb.order_by);
    let structural = edit_similarity(&template_text(a), &template_text(b));
    0.6 * clause + 0.4 * structural
}

/// Hybrid distance `1 − similarity`.
pub fn hybrid_distance(a: &Query, b: &Query) -> f64 {
    1.0 - hybrid_similarity(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn edit_similarity_range() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert_eq!(edit_similarity("abc", "abc"), 1.0);
        assert!(edit_similarity("abc", "xyz") < 0.01);
    }

    #[test]
    fn tf_cosine_identical_and_disjoint() {
        let a = vec!["x".to_string(), "y".to_string()];
        let b = vec!["x".to_string(), "y".to_string()];
        assert!((tf_cosine(&a, &b) - 1.0).abs() < 1e-12);
        let c = vec!["z".to_string()];
        assert_eq!(tf_cosine(&a, &c), 0.0);
        assert_eq!(tf_cosine(&[], &[]), 1.0);
    }

    #[test]
    fn jaccard_basics() {
        let a = vec!["x".to_string(), "y".to_string()];
        let b = vec!["y".to_string(), "z".to_string()];
        assert!((jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn same_template_queries_are_close() {
        let a = parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 2000").unwrap();
        let b = parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 2011").unwrap();
        assert!(hybrid_similarity(&a, &b) > 0.99);
    }

    #[test]
    fn unrelated_queries_are_far() {
        let a = parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 2000").unwrap();
        let b = parse("SELECT name FROM company_name ORDER BY name DESC LIMIT 3").unwrap();
        let rel = hybrid_similarity(&a, &a);
        let unrel = hybrid_similarity(&a, &b);
        assert!(rel - unrel > 0.4, "rel={rel} unrel={unrel}");
    }

    #[test]
    fn hybrid_distance_is_one_minus_similarity() {
        let a = parse("SELECT * FROM t").unwrap();
        let b = parse("SELECT * FROM u").unwrap();
        assert!((hybrid_distance(&a, &b) + hybrid_similarity(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clause_features_extracts_all_clauses() {
        let q = parse(
            "SELECT kind_id, COUNT(*) FROM title t, movie_companies mc \
             WHERE t.id = mc.movie_id GROUP BY kind_id ORDER BY kind_id",
        )
        .unwrap();
        let f = ClauseFeatures::of(&q);
        assert!(f.select.contains(&"COUNT".to_string()));
        assert_eq!(f.from, vec!["title".to_string(), "movie_companies".to_string()]);
        assert_eq!(f.group_by, vec!["kind_id".to_string()]);
        assert_eq!(f.order_by, vec!["kind_id".to_string()]);
        assert_eq!(f.where_.len(), 2);
    }
}
