//! One worker shard: a bounded queue, a logical clock, a micro-batcher,
//! and a slice of the template cache, all owned by a dedicated thread.
//!
//! The sharded service is N copies of the original single-worker
//! pipeline glued together by [`crate::router`]: admission parses and
//! normalizes the request, routes it by template hash, and the owning
//! shard runs the exact schedule → prefetch → FIFO-replay loop the
//! unsharded worker ran. Shards share nothing mutable — each has its own
//! queue mutex, condvar, clock, cache slice, and counters — so a panic,
//! a stall, or queue pressure on one shard never touches another.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use preqr::SqlBert;
use preqr_nn::Matrix;
use preqr_obs as obs;
use preqr_sql::ast::Query;

use crate::cache::LruCache;
use crate::clock::LogicalClock;
use crate::config::ServeConfig;
use crate::service::{resolve, Embedding, ServeError, TicketState};

/// What admission resolved for a request before routing it.
///
/// Parsing and template normalization happen once, on the submitting
/// thread — the router needs the template anyway, and shipping the
/// parsed payload means the shard never re-lexes the SQL.
pub(crate) enum Payload {
    /// Parsed fine; the shard serves it from its cache slice or encoder.
    Query { query: Query, template: String },
    /// Failed to parse. The shard still resolves it in FIFO position —
    /// parse diagnostics count as processed work, exactly as in
    /// unsharded serving.
    Malformed { position: usize, message: String },
}

pub(crate) struct Pending {
    pub(crate) payload: Payload,
    pub(crate) ticket: Arc<TicketState>,
    pub(crate) enqueued_at: u64,
}

#[derive(Default)]
pub(crate) struct QueueState {
    pub(crate) items: VecDeque<Pending>,
    pub(crate) draining: bool,
    pub(crate) poisoned: bool,
}

/// One shard's cross-thread state. Everything here is per-shard: two
/// shards never contend on a lock or share a clock.
pub(crate) struct ShardState {
    pub(crate) queue: Mutex<QueueState>,
    pub(crate) cv: Condvar,
    pub(crate) clock: LogicalClock,
}

impl ShardState {
    pub(crate) fn new() -> ShardState {
        ShardState {
            queue: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            clock: LogicalClock::new(),
        }
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Per-shard statistics, returned by
/// [`crate::Service::shutdown_detailed`]. Field meanings match the
/// aggregate [`crate::ServeStats`]; summing any counter over all shards
/// yields the aggregate value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// This shard's index in `0..config.shards`.
    pub shard: usize,
    /// Requests this shard resolved (ok or malformed).
    pub processed: u64,
    /// Requests that failed SQL parsing.
    pub parse_errors: u64,
    /// Micro-batches this shard drained.
    pub batches: u64,
    /// Encoder forward passes this shard ran.
    pub encoded: u64,
    /// Hits in this shard's cache slice.
    pub cache_hits: u64,
    /// Misses in this shard's cache slice.
    pub cache_misses: u64,
    /// Evictions from this shard's cache slice.
    pub cache_evictions: u64,
    /// True when this shard's worker panicked instead of draining; its
    /// other counters are then zero (lost with the thread).
    pub panicked: bool,
}

/// Resolves this shard's queued tickets with `WorkerFailed` if its
/// worker unwinds, and poisons only this shard — siblings keep serving.
struct PanicGuard<'a> {
    shard: &'a ShardState,
    armed: bool,
}

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        obs::counter_add(obs::Metric::ServeShardPanics, 1);
        let mut q = self.shard.lock();
        q.poisoned = true;
        for p in q.items.drain(..) {
            resolve(&p.ticket, Err(ServeError::WorkerFailed));
        }
    }
}

/// The shard worker loop: build a model replica, then drain micro-batches
/// until the service shuts down.
pub(crate) fn worker_main<F: Fn(usize) -> SqlBert>(
    shard: &ShardState,
    idx: usize,
    config: &ServeConfig,
    factory: &F,
) -> ShardStats {
    let mut guard = PanicGuard { shard, armed: true };
    let model = factory(idx);
    let mut cache: LruCache<Matrix> = LruCache::new(config.shard_cache_capacity());
    let mut stats = ShardStats { shard: idx, ..ShardStats::default() };
    while let Some(batch) = collect_batch(shard, config) {
        stats.batches += 1;
        obs::counter_add(obs::Metric::ServeBatches, 1);
        obs::record_hist(obs::HistMetric::ServeBatchSize, batch.len() as f64);
        process_batch(&model, &mut cache, batch, idx, config, &mut stats);
    }
    let c = cache.counters();
    stats.cache_hits = c.hits;
    stats.cache_misses = c.misses;
    stats.cache_evictions = c.evictions;
    guard.armed = false;
    stats
}

/// How long the collector sleeps per logical tick while a partial batch
/// waits for company. Pure liveness pacing: results never depend on it.
const TICK_WAIT: Duration = Duration::from_micros(200);

/// Blocks until a micro-batch is ready on this shard; `None` once the
/// service is draining and this shard's queue is empty (worker exit).
fn collect_batch(shard: &ShardState, config: &ServeConfig) -> Option<Vec<Pending>> {
    let mut q = shard.lock();
    loop {
        let full = q.items.len() >= config.max_batch;
        let timed_out = q.items.front().is_some_and(|oldest| {
            shard.clock.now().saturating_sub(oldest.enqueued_at) >= config.batch_timeout
        });
        if full || (q.draining && !q.items.is_empty()) || timed_out {
            break;
        }
        if q.draining && q.items.is_empty() {
            return None;
        }
        let (guard, _) = shard.cv.wait_timeout(q, TICK_WAIT).unwrap_or_else(|e| e.into_inner());
        q = guard;
        if !q.items.is_empty() {
            shard.clock.tick();
        }
    }
    obs::record_hist(obs::HistMetric::ServeQueueDepth, q.items.len() as f64);
    let n = q.items.len().min(config.max_batch);
    Some(q.items.drain(..n).collect())
}

/// Per-request plan produced by the scheduling pass.
enum Plan {
    /// Parsing failed at admission; resolve with the structured error.
    Malformed { position: usize, message: String },
    /// Cache-on: replay a counted lookup; `prefetch` indexes the batched
    /// forward when this request is the first occurrence of its template.
    Lookup { template: String, query: Query, prefetch: Option<usize> },
    /// Cache-off: take the batched forward's output directly.
    Direct { idx: usize },
}

/// Schedules, prefetches, and replays one micro-batch on one shard.
///
/// The replay pass executes the exact lookup → encode → insert sequence
/// a batch-of-one service would, in this shard's FIFO order; the batched
/// forward in the middle is only a prefetch of the misses the scheduler
/// predicted. When a prediction goes stale (a tiny cache slice can evict
/// a predicted hit mid-replay), the replay falls back to a solo forward —
/// behavior and counters stay identical to unbatched serving. Because
/// routing is by template, a template's entire counted-operation sequence
/// lives on one shard, in that shard's submission order.
fn process_batch(
    model: &SqlBert,
    cache: &mut LruCache<Matrix>,
    batch: Vec<Pending>,
    shard_idx: usize,
    config: &ServeConfig,
    stats: &mut ShardStats,
) {
    let cache_on = config.shard_cache_capacity() > 0;
    // Pass 1: schedule. Uncounted peeks only — the cache is not touched.
    let mut scheduled: HashMap<String, usize> = HashMap::new();
    let mut to_encode: Vec<Query> = Vec::new();
    let pairs: Vec<(Arc<TicketState>, Plan)> = batch
        .into_iter()
        .map(|p| {
            let plan = match p.payload {
                Payload::Malformed { position, message } => Plan::Malformed { position, message },
                Payload::Query { query, template } => {
                    if !cache_on {
                        to_encode.push(query);
                        Plan::Direct { idx: to_encode.len() - 1 }
                    } else {
                        let prefetch = if cache.peek(&template) || scheduled.contains_key(&template)
                        {
                            None
                        } else {
                            to_encode.push(query.clone());
                            scheduled.insert(template.clone(), to_encode.len() - 1);
                            Some(to_encode.len() - 1)
                        };
                        Plan::Lookup { template, query, prefetch }
                    }
                }
            };
            (p.ticket, plan)
        })
        .collect();

    // Pass 2: one batched, tape-free forward over the predicted misses.
    let mut encoded: Vec<Option<Matrix>> = {
        let _t = obs::timer(obs::HistMetric::ServeEncodeUs);
        model.encode_batch(&to_encode).into_iter().map(Some).collect()
    };
    stats.encoded += encoded.len() as u64;
    obs::counter_add(obs::Metric::ServeEncoded, encoded.len() as u64);

    // Pass 3: FIFO replay — the sequence of cache operations (and hence
    // hit/miss/eviction counters and recency order) matches unbatched
    // serving exactly.
    for (ticket, plan) in pairs {
        let mut span = obs::span("serve.request");
        span.add_field("shard", shard_idx as u64);
        stats.processed += 1;
        match plan {
            Plan::Malformed { position, message } => {
                span.add_field("outcome", "parse_error");
                stats.parse_errors += 1;
                obs::counter_add(obs::Metric::ServeParseErrors, 1);
                resolve(&ticket, Err(ServeError::Malformed { position, message }));
            }
            Plan::Direct { idx } => {
                span.add_field("outcome", "ok");
                span.add_field("cached", 0u64);
                let matrix = encoded[idx].take().expect("direct prefetch consumed once");
                resolve(&ticket, Ok(Embedding { matrix, cache_hit: false }));
            }
            Plan::Lookup { template, query, prefetch } => {
                span.add_field("outcome", "ok");
                if let Some(hit) = cache.get(&template) {
                    span.add_field("cached", 1u64);
                    obs::counter_add(obs::Metric::ServeCacheHits, 1);
                    let matrix = hit.clone();
                    resolve(&ticket, Ok(Embedding { matrix, cache_hit: true }));
                } else {
                    span.add_field("cached", 0u64);
                    obs::counter_add(obs::Metric::ServeCacheMisses, 1);
                    let matrix = match prefetch.and_then(|i| encoded[i].take()) {
                        Some(m) => m,
                        None => {
                            // Stale prediction: a mid-replay eviction (or a
                            // template shared with an earlier request in this
                            // batch that has since been evicted) — run the
                            // forward this request would have run unbatched.
                            let _t = obs::timer(obs::HistMetric::ServeEncodeUs);
                            stats.encoded += 1;
                            obs::counter_add(obs::Metric::ServeEncoded, 1);
                            model
                                .encode_batch(std::slice::from_ref(&query))
                                .pop()
                                .expect("batch of one yields one")
                        }
                    };
                    if cache.insert(template, matrix.clone()).is_some() {
                        obs::counter_add(obs::Metric::ServeCacheEvictions, 1);
                    }
                    resolve(&ticket, Ok(Embedding { matrix, cache_hit: false }));
                }
            }
        }
        span.end();
    }
}
