//! Optimizers: SGD and Adam with optional global-norm gradient clipping.

use crate::matrix::Matrix;
use crate::tensor::Tensor;

/// Plain stochastic gradient descent.
pub struct Sgd {
    params: Vec<Tensor>,
    lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer over the given parameters.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        Self { params, lr }
    }

    /// Applies one update, consuming and clearing accumulated gradients.
    pub fn step(&mut self) {
        for p in &self.params {
            if let Some(g) = p.take_grad() {
                let lr = self.lr;
                p.update_value(|v| v.add_scaled_assign(&g, -lr));
            }
        }
    }

    /// Clears all accumulated gradients without updating.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    params: Vec<Tensor>,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    t: u64,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// Maximum global gradient L2 norm; gradients are rescaled when the
    /// combined norm exceeds it. `None` disables clipping.
    pub clip_norm: Option<f32>,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas (0.9, 0.999) and a
    /// global clip norm of 5.0.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        let m = params.iter().map(|p| Matrix::zeros(p.shape().0, p.shape().1)).collect();
        let v = params.iter().map(|p| Matrix::zeros(p.shape().0, p.shape().1)).collect();
        Self { params, m, v, t: 0, lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, clip_norm: Some(5.0) }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (for warmup/decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Number of parameters managed.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Optimizer steps taken so far (the bias-correction timestep).
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// First and second moment estimates, parameter-aligned — for
    /// checkpointing optimizer state alongside the parameters.
    pub fn moments(&self) -> (&[Matrix], &[Matrix]) {
        (&self.m, &self.v)
    }

    /// Restores state captured via [`Adam::step_count`] /
    /// [`Adam::moments`], making a resumed run continue bit-identically.
    ///
    /// # Panics
    /// If the moment vectors don't match the managed parameters in count
    /// or shape.
    pub fn restore_state(&mut self, t: u64, m: Vec<Matrix>, v: Vec<Matrix>) {
        assert_eq!(m.len(), self.params.len(), "first-moment count mismatch");
        assert_eq!(v.len(), self.params.len(), "second-moment count mismatch");
        for ((p, mi), vi) in self.params.iter().zip(&m).zip(&v) {
            assert_eq!(mi.shape(), p.shape(), "first-moment shape mismatch");
            assert_eq!(vi.shape(), p.shape(), "second-moment shape mismatch");
        }
        self.t = t;
        self.m = m;
        self.v = v;
    }

    /// Applies one Adam update, consuming and clearing gradients. Skips
    /// parameters with no accumulated gradient (sparse updates are normal
    /// for embedding tables when a batch doesn't touch every module).
    pub fn step(&mut self) {
        self.t += 1;
        let grads: Vec<Option<Matrix>> = self.params.iter().map(Tensor::take_grad).collect();
        let clip_scale = match self.clip_norm {
            Some(max) => {
                let total: f32 = grads
                    .iter()
                    .flatten()
                    .map(|g| g.data().iter().map(|&x| x * x).sum::<f32>())
                    .sum();
                let norm = total.sqrt();
                if norm > max {
                    max / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, g), (m, v)) in
            self.params.iter().zip(grads).zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            let Some(mut g) = g else { continue };
            if !g.data().iter().all(|x| x.is_finite()) {
                // A non-finite gradient poisons the moments forever; drop it.
                continue;
            }
            if clip_scale != 1.0 {
                g.scale_assign(clip_scale);
            }
            for ((mi, vi), &gi) in
                m.data_mut().iter_mut().zip(v.data_mut().iter_mut()).zip(g.data().iter())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let lr = self.lr;
            let eps = self.eps;
            p.update_value(|val| {
                for ((x, &mi), &vi) in
                    val.data_mut().iter_mut().zip(m.data().iter()).zip(v.data().iter())
                {
                    let mhat = mi / bc1;
                    let vhat = vi / bc2;
                    *x -= lr * mhat / (vhat.sqrt() + eps);
                }
            });
        }
    }

    /// Clears all accumulated gradients without updating.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

/// Linear warmup followed by linear decay (the BERT schedule).
#[derive(Clone, Copy, Debug)]
pub struct WarmupLinearSchedule {
    base_lr: f32,
    warmup_steps: u64,
    total_steps: u64,
}

impl WarmupLinearSchedule {
    /// Creates a schedule peaking at `base_lr` after `warmup_steps` and
    /// decaying to zero at `total_steps`.
    pub fn new(base_lr: f32, warmup_steps: u64, total_steps: u64) -> Self {
        Self { base_lr, warmup_steps, total_steps: total_steps.max(1) }
    }

    /// Learning rate at `step`.
    pub fn lr_at(&self, step: u64) -> f32 {
        if self.warmup_steps > 0 && step < self.warmup_steps {
            self.base_lr * (step + 1) as f32 / self.warmup_steps as f32
        } else {
            let remaining = self.total_steps.saturating_sub(step) as f32;
            let span = self.total_steps.saturating_sub(self.warmup_steps).max(1) as f32;
            self.base_lr * (remaining / span).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn sgd_moves_against_gradient() {
        let p = Tensor::param(Matrix::full(1, 1, 1.0));
        let mut opt = Sgd::new(vec![p.clone()], 0.1);
        // loss = p^2, grad = 2p
        let loss = ops::mul(&p, &p);
        ops::sum_all(&loss).backward();
        opt.step();
        assert!((p.value_clone().get(0, 0) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let p = Tensor::param(Matrix::full(1, 1, 3.0));
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        for _ in 0..200 {
            let loss = ops::sum_all(&ops::mul(&p, &p));
            loss.backward();
            opt.step();
        }
        assert!(p.value_clone().get(0, 0).abs() < 0.05);
    }

    #[test]
    fn adam_skips_params_without_grads() {
        let used = Tensor::param(Matrix::full(1, 1, 1.0));
        let unused = Tensor::param(Matrix::full(1, 1, 7.0));
        let mut opt = Adam::new(vec![used.clone(), unused.clone()], 0.1);
        ops::sum_all(&ops::mul(&used, &used)).backward();
        opt.step();
        assert_eq!(unused.value_clone().get(0, 0), 7.0);
        assert!(used.value_clone().get(0, 0) < 1.0);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let p = Tensor::param(Matrix::full(1, 1, 0.0));
        let mut opt = Adam::new(vec![p.clone()], 0.5);
        opt.clip_norm = Some(1.0);
        p.accumulate_grad(&Matrix::full(1, 1, 1e6));
        opt.step();
        // With clipping the first Adam step is bounded by ~lr.
        assert!(p.value_clone().get(0, 0).abs() <= 0.51);
    }

    #[test]
    fn non_finite_gradients_are_dropped() {
        let p = Tensor::param(Matrix::full(1, 1, 2.0));
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        p.accumulate_grad(&Matrix::full(1, 1, f32::NAN));
        opt.step();
        assert_eq!(p.value_clone().get(0, 0), 2.0);
    }

    #[test]
    fn warmup_schedule_shape() {
        let s = WarmupLinearSchedule::new(1.0, 10, 100);
        assert!(s.lr_at(0) < s.lr_at(5));
        assert!((s.lr_at(9) - 1.0).abs() < 1e-6);
        assert!(s.lr_at(50) < 1.0);
        assert!(s.lr_at(99) > 0.0);
        assert_eq!(s.lr_at(100), 0.0);
    }
}
