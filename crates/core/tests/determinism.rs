//! End-to-end determinism smoke test: pre-training must produce the exact
//! same epoch-loss sequence regardless of `PREQR_THREADS`, because every
//! parallel kernel in `preqr-nn` is bit-identical to its serial reference
//! (work is partitioned by output rows, never by reduction order).

use preqr::{PreqrConfig, SqlBert, ValueBuckets};
use preqr_nn::parallel;
use preqr_schema::{Column, ColumnType, Schema, Table};
use preqr_sql::parser::parse;
use preqr_sql::Query;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_table(Table::new(
        "title",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("production_year", ColumnType::Int),
            Column::new("kind_id", ColumnType::Int),
        ],
    ));
    s
}

fn corpus() -> Vec<Query> {
    (0..8)
        .map(|i| {
            parse(&format!(
                "SELECT COUNT(*) FROM title t WHERE t.production_year > {} AND t.kind_id = {}",
                1960 + i * 5,
                1 + i % 4
            ))
            .unwrap()
        })
        .collect()
}

fn model() -> SqlBert {
    let mut b = ValueBuckets::new(8);
    b.insert("title", "production_year", (1930..2020).map(f64::from).collect());
    b.insert("title", "kind_id", (1..8).map(f64::from).collect());
    SqlBert::new(&corpus(), &schema(), b, PreqrConfig::test())
}

fn pretrain_losses(threads: usize) -> Vec<f64> {
    parallel::set_thread_override(Some(threads));
    let mut m = model();
    let stats = m.pretrain(&corpus(), 2, 1e-3);
    parallel::set_thread_override(None);
    stats.into_iter().map(|s| s.loss).collect()
}

#[test]
fn pretrain_loss_sequence_is_thread_count_invariant() {
    let single = pretrain_losses(1);
    let quad = pretrain_losses(4);
    assert!(single.iter().all(|l| l.is_finite()), "losses must be finite: {single:?}");
    // Exact f64 equality — not approximate. Thread count must not change
    // a single bit of the training trajectory.
    assert_eq!(single, quad, "epoch losses diverged between 1 and 4 threads");
}

#[test]
fn default_sizing_is_equivalent_to_override() {
    // With no override the pool sizes from `PREQR_THREADS` (read once at
    // first dispatch, then cached) or hardware parallelism. Whatever width
    // that resolves to, the loss trajectory must be bit-identical to a
    // pinned thread count.
    let from_default = {
        parallel::set_thread_override(None);
        let mut m = model();
        let stats = m.pretrain(&corpus(), 2, 1e-3);
        stats.into_iter().map(|s| s.loss).collect::<Vec<_>>()
    };
    let from_override = pretrain_losses(3);
    assert_eq!(from_default, from_override);
}
