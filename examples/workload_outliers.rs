//! Application sketched in the paper's §4.4 ("PreQR encoding can be
//! applied to support … query log analysis, recommendation and outlier
//! detection"): score each query in a log by its mean embedding distance
//! to its k nearest neighbours; planted alien queries should surface.
//!
//! ```sh
//! cargo run --release --example workload_outliers
//! ```

use preqr::{PreqrConfig, SqlBert};
use preqr_baselines::cluster_sims::cosine;
use preqr_data::chdb::{generate, ChConfig};
use preqr_data::clustering::iit_bombay;
use preqr_sql::parser::parse;
use preqr_tasks::setup::value_buckets_from_db;

fn main() {
    let db = generate(ChConfig { customers: 200, seed: 7 });
    // A "normal" log: the IIT Bombay profile queries.
    let mut log = iit_bombay().queries;
    let normal = log.len();
    // Plant three alien queries with shapes the log never uses.
    for sql in [
        "SELECT tax FROM district WHERE name LIKE '%7%' ORDER BY tax DESC LIMIT 1",
        "SELECT customer_id, COUNT(DISTINCT carrier_id) FROM orders \
         GROUP BY customer_id ORDER BY customer_id LIMIT 3",
        "SELECT i.category, AVG(i.price) FROM item i GROUP BY i.category \
         ORDER BY i.category",
    ] {
        log.push(parse(sql).unwrap());
    }

    let buckets = value_buckets_from_db(&db, 8);
    let mut model = SqlBert::new(&log, db.schema(), buckets, PreqrConfig::small());
    println!("pre-training on the query log ({} queries)…", log.len());
    model.pretrain(&log, 3, 1e-3);

    let nodes = model.cached_nodes();
    let embeddings: Vec<Vec<f32>> =
        log.iter().map(|q| model.cls_vector(q, nodes.as_ref())).collect();

    // Outlier score: mean cosine distance to the 5 nearest neighbours.
    let k = 5;
    let mut scored: Vec<(usize, f64)> = (0..log.len())
        .map(|i| {
            let mut dists: Vec<f64> = (0..log.len())
                .filter(|&j| j != i)
                .map(|j| 1.0 - cosine(&embeddings[i], &embeddings[j]))
                .collect();
            dists.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
            let score = dists.iter().take(k).sum::<f64>() / k as f64;
            (i, score)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));

    println!("\ntop-6 outlier scores (planted aliens are indices ≥ {normal}):");
    let mut aliens_in_top6 = 0;
    for (i, score) in scored.iter().take(6) {
        let tag = if *i >= normal { "ALIEN" } else { "     " };
        if *i >= normal {
            aliens_in_top6 += 1;
        }
        println!("  {tag} {score:.4}  {}", log[*i]);
    }
    println!("\n{aliens_in_top6}/3 planted aliens in the top 6 by embedding distance");
}
