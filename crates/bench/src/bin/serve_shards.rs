//! `serve_shards` — shard-scaling probe feeding
//! `results/BENCH_serve_shards.json`.
//!
//! Replays a cache-miss-heavy workload (every request a distinct
//! template, so each one costs an encoder forward) through `preqr-serve`
//! at shard counts {1, 2, 4, 8} and appends best-of-N wall-clock timings
//! plus serving counters to the trajectory file. The worker pool is
//! pinned to one thread so shard workers are the only parallelism axis:
//! on a multi-core host throughput should scale with shard count until
//! cores run out, while on a single core the sweep degenerates into an
//! overhead check (sharding must not make serving slower).

use std::path::Path;
use std::time::Instant;

use preqr::{PreqrConfig, SqlBert, ValueBuckets};
use preqr_bench::trajectory::{append, PipelineEntry};
use preqr_nn::parallel;
use preqr_schema::{Column, ColumnType, Schema, Table};
use preqr_serve::{route, ServeConfig, ServeStats, Service};
use preqr_sql::normalize::template_text;
use preqr_sql::parser::parse;

const REPS: usize = 2;
/// Requests per replay — all distinct templates (three aggregate shapes
/// crossed with IN-list arities), so the cache never amortizes a forward.
const REQUESTS: usize = 96;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_table(Table::new(
        "title",
        vec![
            Column::primary("id", ColumnType::Int),
            Column::new("production_year", ColumnType::Int),
            Column::new("kind_id", ColumnType::Int),
        ],
    ));
    s
}

/// `i`-th request: aggregate shape `i % 3` × IN-list arity `i / 3 + 1`,
/// every combination a distinct normalized template.
fn request(i: usize) -> String {
    let arity = i / 3 + 1;
    let vals: Vec<String> = (0..arity).map(|v| (1 + v % 7).to_string()).collect();
    let in_list = vals.join(", ");
    match i % 3 {
        0 => format!("SELECT COUNT(*) FROM title t WHERE t.kind_id IN ({in_list})"),
        1 => format!("SELECT MIN(t.id) FROM title t WHERE t.kind_id IN ({in_list})"),
        _ => format!("SELECT MAX(t.production_year) FROM title t WHERE t.kind_id IN ({in_list})"),
    }
}

/// A query routed to `shard`: `production_year` IN-lists of arity ≥ 100,
/// disjoint from every workload template, scanned until the router picks
/// the wanted shard. Used to force each shard's model replica to build
/// before the clock starts.
fn warmup_sql(shard: usize, shards: usize) -> String {
    for arity in 100..100 + 64 * shards {
        let vals: Vec<String> = (0..arity).map(|v| (1900 + v % 90).to_string()).collect();
        let sql = format!(
            "SELECT COUNT(*) FROM title t WHERE t.production_year IN ({})",
            vals.join(", ")
        );
        if route(&template_text(&parse(&sql).unwrap()), shards) == shard {
            return sql;
        }
    }
    unreachable!("xor-folded routing covers every shard within the scan budget")
}

fn model() -> SqlBert {
    let corpus: Vec<_> = (0..6).map(|i| parse(&request(i)).unwrap()).collect();
    let mut buckets = ValueBuckets::new(4);
    buckets.insert("title", "production_year", (1930..2020).map(f64::from).collect());
    buckets.insert("title", "kind_id", (1..12).map(f64::from).collect());
    SqlBert::new(&corpus, &schema(), buckets, PreqrConfig::test())
}

/// Replays the workload once; returns (serving seconds, final stats).
/// Warmup touches every shard so all model replicas exist before the
/// clock starts.
fn replay(config: ServeConfig) -> (f64, ServeStats) {
    let svc = Service::spawn(config, |_| model());
    let warmups: Vec<_> = (0..config.shards)
        .map(|s| svc.submit(&warmup_sql(s, config.shards)).expect("warmup admits"))
        .collect();
    for w in warmups {
        w.wait().expect("warmup");
    }
    let t0 = Instant::now();
    let tickets: Vec<_> =
        (0..REQUESTS).map(|i| svc.submit(&request(i)).expect("queue sized for script")).collect();
    for t in tickets {
        t.wait().expect("workload is all parseable");
    }
    let secs = t0.elapsed().as_secs_f64();
    (secs, svc.shutdown())
}

fn bench(shards: usize) -> (f64, ServeStats) {
    let config = ServeConfig {
        shards,
        max_batch: 8,
        batch_timeout: 2,
        queue_capacity: (REQUESTS + SHARD_COUNTS[SHARD_COUNTS.len() - 1]) * shards,
        cache_capacity: 2 * REQUESTS, // misses come from distinct templates, not evictions
        ..ServeConfig::default()
    };
    let mut best = f64::INFINITY;
    let mut stats = ServeStats::default();
    for _ in 0..REPS {
        let (secs, s) = replay(config);
        if secs < best {
            best = secs;
            stats = s;
        }
    }
    println!(
        "shards={shards}: {best:.4}s  ({:.0} req/s)  encoded={} misses={} batches={}",
        REQUESTS as f64 / best,
        stats.encoded,
        stats.cache_misses,
        stats.batches
    );
    (best, stats)
}

fn entry(shards: usize, secs: f64, stats: &ServeStats) -> PipelineEntry {
    PipelineEntry {
        label: "serve_shards".into(),
        phase: format!("shards{shards}"),
        threads: parallel::effective_threads(),
        trace: false,
        seconds: secs,
        counters: vec![
            ("serve.shards".into(), shards as u64),
            ("serve.requests".into(), stats.accepted),
            ("serve.encoded".into(), stats.encoded),
            ("serve.batches".into(), stats.batches),
            ("serve.cache.misses".into(), stats.cache_misses),
            ("serve.cache.evictions".into(), stats.cache_evictions),
        ],
    }
}

fn main() {
    // One nn thread per shard worker: shard count is the parallelism axis.
    parallel::set_thread_override(Some(1));
    println!(
        "serve_shards bench: {REQUESTS} distinct-template requests (cache-miss-heavy), \
         cores={}",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let mut rows = Vec::new();
    let mut baseline = f64::NAN;
    for shards in SHARD_COUNTS {
        let (secs, stats) = bench(shards);
        if shards == 1 {
            baseline = secs;
        } else {
            println!("  scaling vs shards=1: {:.2}x", baseline / secs);
        }
        rows.push(entry(shards, secs, &stats));
    }
    let path = Path::new("results/BENCH_serve_shards.json");
    append(path, &rows).expect("write trajectory");
    println!("appended {} entries -> {}", rows.len(), path.display());
}
