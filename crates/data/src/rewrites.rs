//! Semantics-preserving query rewrites.
//!
//! These produce the logically-equivalent variants of Figure 2: IN-list ↔
//! UNION, IN-subquery ↔ join, BETWEEN ↔ range conjunction, plus purely
//! syntactic shuffles (alias renaming, FROM-order and predicate-order
//! permutation). The clustering datasets use them to build ground-truth
//! equivalence groups.

use preqr_sql::ast::{CmpOp, ColumnRef, Expr, Query, Scalar, SelectStmt, Value};

/// Rewrites `col IN (v1, …, vk)` (in the top-level WHERE) into a UNION of
/// `k` single-equality queries (Figure 2, q1 → q3). Returns `None` when
/// the query has no top-level IN-list or already has UNIONs.
pub fn in_list_to_union(q: &Query) -> Option<Query> {
    if !q.unions.is_empty() {
        return None;
    }
    let w = q.body.where_clause.as_ref()?;
    let conjuncts: Vec<Expr> = w.conjuncts().into_iter().cloned().collect();
    let pos = conjuncts.iter().position(|c| matches!(c, Expr::InList { negated: false, .. }))?;
    let (col, values) = match &conjuncts[pos] {
        Expr::InList { col, values, .. } => (col.clone(), values.clone()),
        _ => unreachable!("position found above"),
    };
    if values.len() < 2 {
        return None;
    }
    let mut branches = Vec::with_capacity(values.len());
    for v in values {
        let mut c = conjuncts.clone();
        c[pos] =
            Expr::Cmp { left: Scalar::Column(col.clone()), op: CmpOp::Eq, right: Scalar::Value(v) };
        let mut stmt = q.body.clone();
        stmt.where_clause = Some(Expr::and_all(c));
        branches.push(stmt);
    }
    let body = branches.remove(0);
    Some(Query { body, unions: branches })
}

/// Rewrites `BETWEEN low AND high` into `col >= low AND col <= high`.
pub fn between_to_range(q: &Query) -> Option<Query> {
    let mut q = q.clone();
    let mut changed = false;
    for stmt in std::iter::once(&mut q.body).chain(q.unions.iter_mut()) {
        if let Some(w) = &stmt.where_clause {
            let conjuncts: Vec<Expr> = w.conjuncts().into_iter().cloned().collect();
            let mut out = Vec::with_capacity(conjuncts.len() + 1);
            for c in conjuncts {
                if let Expr::Between { col, low, high } = c {
                    out.push(Expr::Cmp {
                        left: Scalar::Column(col.clone()),
                        op: CmpOp::Ge,
                        right: Scalar::Value(low),
                    });
                    out.push(Expr::Cmp {
                        left: Scalar::Column(col),
                        op: CmpOp::Le,
                        right: Scalar::Value(high),
                    });
                    changed = true;
                } else {
                    out.push(c);
                }
            }
            stmt.where_clause = Some(Expr::and_all(out));
        }
    }
    changed.then_some(q)
}

/// Rewrites `outer.fk IN (SELECT dim.id FROM dim WHERE p)` into an
/// explicit join `FROM outer, dim WHERE outer.fk = dim.id AND p`
/// (Figure 2, q4 → q5). Only handles single-table subqueries.
pub fn subquery_to_join(q: &Query) -> Option<Query> {
    if !q.unions.is_empty() {
        return None;
    }
    let w = q.body.where_clause.as_ref()?;
    let conjuncts: Vec<Expr> = w.conjuncts().into_iter().cloned().collect();
    let pos =
        conjuncts.iter().position(|c| matches!(c, Expr::InSubquery { negated: false, .. }))?;
    let (outer_col, sub) = match &conjuncts[pos] {
        Expr::InSubquery { col, subquery, .. } => (col.clone(), subquery.clone()),
        _ => unreachable!("position found above"),
    };
    if !sub.unions.is_empty() || sub.body.from.len() != 1 || !sub.body.joins.is_empty() {
        return None;
    }
    let sub_table = sub.body.from[0].clone();
    let sub_col = match sub.body.projections.first()? {
        preqr_sql::ast::SelectItem::Column(c) => c.clone(),
        _ => return None,
    };
    let binding = sub_table.binding().to_string();
    let qualified_sub_col = ColumnRef::qualified(binding, sub_col.column);
    let mut stmt = q.body.clone();
    stmt.from.push(sub_table);
    let mut out = conjuncts;
    out[pos] = Expr::Cmp {
        left: Scalar::Column(outer_col),
        op: CmpOp::Eq,
        right: Scalar::Column(qualified_sub_col),
    };
    if let Some(sw) = &sub.body.where_clause {
        out.push(sw.clone());
    }
    stmt.where_clause = Some(Expr::and_all(out));
    Some(Query::single(stmt))
}

/// Renames every table alias `old → new` consistently (FROM list and all
/// column qualifiers), producing a syntactically different but identical
/// query.
pub fn rename_aliases(q: &Query, suffix: &str) -> Query {
    let mut q = q.clone();
    for stmt in std::iter::once(&mut q.body).chain(q.unions.iter_mut()) {
        let renames: Vec<(String, String)> = stmt
            .from
            .iter()
            .chain(stmt.joins.iter().map(|j| &j.table))
            .filter_map(|t| t.alias.as_ref().map(|a| (a.clone(), format!("{a}{suffix}"))))
            .collect();
        rename_in_stmt(stmt, &renames);
    }
    q
}

fn rename_in_stmt(stmt: &mut SelectStmt, renames: &[(String, String)]) {
    let map = |name: &mut Option<String>| {
        if let Some(n) = name {
            if let Some((_, new)) = renames.iter().find(|(old, _)| old == n) {
                *n = new.clone();
            }
        }
    };
    for t in stmt.from.iter_mut().chain(stmt.joins.iter_mut().map(|j| &mut j.table)) {
        map(&mut t.alias);
    }
    let fix_col = |c: &mut ColumnRef| {
        if let Some(t) = &mut c.table {
            if let Some((_, new)) = renames.iter().find(|(old, _)| old == t) {
                *t = new.clone();
            }
        }
    };
    fn fix_expr(e: &mut Expr, fix_col: &impl Fn(&mut ColumnRef)) {
        match e {
            Expr::And(a, b) | Expr::Or(a, b) => {
                fix_expr(a, fix_col);
                fix_expr(b, fix_col);
            }
            Expr::Not(a) => fix_expr(a, fix_col),
            Expr::Cmp { left, right, .. } => {
                if let Scalar::Column(c) = left {
                    fix_col(c);
                }
                if let Scalar::Column(c) = right {
                    fix_col(c);
                }
            }
            Expr::Between { col, .. }
            | Expr::InList { col, .. }
            | Expr::Like { col, .. }
            | Expr::IsNull { col, .. }
            | Expr::InSubquery { col, .. } => fix_col(col),
        }
    }
    for p in &mut stmt.projections {
        match p {
            preqr_sql::ast::SelectItem::Column(c) => fix_col(c),
            preqr_sql::ast::SelectItem::Aggregate { arg: Some(c), .. } => fix_col(c),
            _ => {}
        }
    }
    if let Some(w) = &mut stmt.where_clause {
        fix_expr(w, &fix_col);
    }
    for j in &mut stmt.joins {
        fix_expr(&mut j.on, &fix_col);
    }
    for c in stmt.group_by.iter_mut() {
        fix_col(c);
    }
    for (c, _) in stmt.order_by.iter_mut() {
        fix_col(c);
    }
    if let Some(h) = &mut stmt.having {
        fix_expr(h, &fix_col);
    }
}

/// Reverses the FROM list and predicate order (commutativity), keeping
/// semantics.
pub fn shuffle_structure(q: &Query) -> Query {
    let mut q = q.clone();
    for stmt in std::iter::once(&mut q.body).chain(q.unions.iter_mut()) {
        stmt.from.reverse();
        if let Some(w) = &stmt.where_clause {
            let mut conjuncts: Vec<Expr> = w.conjuncts().into_iter().cloned().collect();
            conjuncts.reverse();
            stmt.where_clause = Some(Expr::and_all(conjuncts));
        }
    }
    q
}

/// Adds a tautological duplicate of the first value predicate (`p AND p`),
/// a common student-query redundancy.
pub fn duplicate_predicate(q: &Query) -> Option<Query> {
    let mut q = q.clone();
    let w = q.body.where_clause.as_ref()?;
    let conjuncts: Vec<Expr> = w.conjuncts().into_iter().cloned().collect();
    let value_pred = conjuncts
        .iter()
        .find(|c| matches!(c, Expr::Cmp { right: Scalar::Value(_), .. } | Expr::Between { .. }))?;
    let mut out = conjuncts.clone();
    out.push(value_pred.clone());
    q.body.where_clause = Some(Expr::and_all(out));
    Some(q)
}

/// Gives every alias-less FROM table a fresh alias (`a0`, `a1`, …);
/// unqualified column references remain valid, so semantics are
/// unchanged while the text differs.
pub fn add_aliases(q: &Query) -> Option<Query> {
    let mut q = q.clone();
    let mut changed = false;
    for stmt in std::iter::once(&mut q.body).chain(q.unions.iter_mut()) {
        for (i, t) in stmt.from.iter_mut().enumerate() {
            if t.alias.is_none() {
                t.alias = Some(format!("a{i}"));
                changed = true;
            }
        }
    }
    changed.then_some(q)
}

/// Rewrites the first `col = v` predicate into the singleton
/// `col IN (v)` — identical semantics, different surface form.
pub fn eq_to_in_singleton(q: &Query) -> Option<Query> {
    let mut q = q.clone();
    let w = q.body.where_clause.as_ref()?;
    let conjuncts: Vec<Expr> = w.conjuncts().into_iter().cloned().collect();
    let pos = conjuncts.iter().position(|c| {
        matches!(c, Expr::Cmp { left: Scalar::Column(_), op: CmpOp::Eq, right: Scalar::Value(_) })
    })?;
    let mut out = conjuncts;
    if let Expr::Cmp { left: Scalar::Column(c), right: Scalar::Value(v), .. } = &out[pos] {
        out[pos] = Expr::InList { col: c.clone(), values: vec![v.clone()], negated: false };
    }
    q.body.where_clause = Some(Expr::and_all(out));
    Some(q)
}

/// Rewrites the first ordering comparison `col ⊕ v` into the equivalent
/// `NOT (col ⊖ v)` with the complementary operator.
pub fn negate_comparison(q: &Query) -> Option<Query> {
    let mut q = q.clone();
    let w = q.body.where_clause.as_ref()?;
    let conjuncts: Vec<Expr> = w.conjuncts().into_iter().cloned().collect();
    let pos = conjuncts.iter().position(|c| {
        matches!(
            c,
            Expr::Cmp {
                left: Scalar::Column(_),
                op: CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge,
                right: Scalar::Value(_),
            }
        )
    })?;
    let mut out = conjuncts;
    if let Expr::Cmp { left, op, right } = out[pos].clone() {
        let complement = match op {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            other => other,
        };
        out[pos] = Expr::Not(Box::new(Expr::Cmp { left, op: complement, right }));
    }
    q.body.where_clause = Some(Expr::and_all(out));
    Some(q)
}

/// Appends a tautological `col IS NOT NULL` for the first predicate
/// column (NOT NULL data ⇒ semantics unchanged), a common log artifact.
pub fn add_not_null(q: &Query) -> Option<Query> {
    let mut q = q.clone();
    let w = q.body.where_clause.as_ref()?;
    let first_col = w.columns().first().map(|c| (*c).clone())?;
    let conjuncts: Vec<Expr> = w.conjuncts().into_iter().cloned().collect();
    let mut out = conjuncts;
    out.push(Expr::IsNull { col: first_col, negated: true });
    q.body.where_clause = Some(Expr::and_all(out));
    Some(q)
}

/// Makes a same-template variant: shifts every numeric literal by `delta`
/// (NOT equivalent — same template, different constants).
pub fn shift_constants(q: &Query, delta: i64) -> Query {
    let mut q = q.clone();
    for stmt in std::iter::once(&mut q.body).chain(q.unions.iter_mut()) {
        if let Some(w) = &mut stmt.where_clause {
            shift_expr(w, delta);
        }
    }
    q
}

fn shift_expr(e: &mut Expr, delta: i64) {
    match e {
        Expr::And(a, b) | Expr::Or(a, b) => {
            shift_expr(a, delta);
            shift_expr(b, delta);
        }
        Expr::Not(a) => shift_expr(a, delta),
        Expr::Cmp { right: Scalar::Value(Value::Int(v)), .. } => *v += delta,
        Expr::Between { low, high, .. } => {
            if let Value::Int(v) = low {
                *v += delta;
            }
            if let Value::Int(v) = high {
                *v += delta;
            }
        }
        Expr::InList { values, .. } => {
            for v in values {
                if let Value::Int(x) = v {
                    *x += delta;
                }
            }
        }
        Expr::InSubquery { subquery, .. } => {
            for s in std::iter::once(&mut subquery.body).chain(subquery.unions.iter_mut()) {
                if let Some(w) = &mut s.where_clause {
                    shift_expr(w, delta);
                }
            }
        }
        _ => {}
    }
}

/// Replaces the FROM tables with different ones of the same arity —
/// a *template-equal but semantically different* variant (used to test
/// that metrics don't conflate template similarity with equivalence).
pub fn swap_table(q: &Query, from: &str, to: &str) -> Query {
    let mut q = q.clone();
    for stmt in std::iter::once(&mut q.body).chain(q.unions.iter_mut()) {
        for t in stmt.from.iter_mut().chain(stmt.joins.iter_mut().map(|j| &mut j.table)) {
            if t.table == from {
                t.table = to.to_string();
            }
        }
    }
    q
}

/// Convenience: `TableRef`-preserving deep equality of result semantics is
/// tested by executing; this helper just parses.
pub fn parse(sql: &str) -> Query {
    preqr_sql::parser::parse(sql).expect("valid rewrite test SQL")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_list_to_union_matches_figure2() {
        let q1 = parse("SELECT name FROM user WHERE rank IN ('adm', 'sup')");
        let q3 = in_list_to_union(&q1).unwrap();
        assert_eq!(
            q3.sql(),
            "SELECT name FROM user WHERE rank = 'adm' \
             UNION SELECT name FROM user WHERE rank = 'sup'"
        );
    }

    #[test]
    fn in_list_to_union_requires_multi_values() {
        let q = parse("SELECT name FROM user WHERE rank IN ('adm')");
        assert!(in_list_to_union(&q).is_none());
        let no_in = parse("SELECT name FROM user WHERE rank = 'adm'");
        assert!(in_list_to_union(&no_in).is_none());
    }

    #[test]
    fn between_to_range_round_trip_semantics() {
        let q = parse("SELECT COUNT(*) FROM t WHERE t.y BETWEEN 3 AND 9 AND t.k = 1");
        let r = between_to_range(&q).unwrap();
        assert_eq!(r.sql(), "SELECT COUNT(*) FROM t WHERE t.y >= 3 AND t.y <= 9 AND t.k = 1");
        assert!(between_to_range(&r).is_none(), "no BETWEEN left");
    }

    #[test]
    fn subquery_to_join_matches_figure2() {
        let q4 = parse(
            "SELECT SUM(balance) FROM accounts WHERE user_id IN \
             (SELECT id FROM user WHERE rank = 'adm')",
        );
        let q5 = subquery_to_join(&q4).unwrap();
        assert_eq!(
            q5.sql(),
            "SELECT SUM(balance) FROM accounts, user \
             WHERE user_id = user.id AND rank = 'adm'"
        );
    }

    #[test]
    fn rename_aliases_is_consistent() {
        let q = parse("SELECT t.id FROM title t, movie_companies mc WHERE t.id = mc.movie_id");
        let r = rename_aliases(&q, "2");
        assert_eq!(
            r.sql(),
            "SELECT t2.id FROM title t2, movie_companies mc2 WHERE t2.id = mc2.movie_id"
        );
    }

    #[test]
    fn shuffle_reverses_from_and_predicates() {
        let q = parse("SELECT COUNT(*) FROM a x, b y WHERE x.id = y.a_id AND x.v > 1");
        let r = shuffle_structure(&q);
        assert_eq!(r.sql(), "SELECT COUNT(*) FROM b y, a x WHERE x.v > 1 AND x.id = y.a_id");
    }

    #[test]
    fn shift_constants_changes_only_literals() {
        let q = parse("SELECT COUNT(*) FROM t WHERE t.y > 2000 AND t.k IN (1, 2)");
        let r = shift_constants(&q, 5);
        assert_eq!(r.sql(), "SELECT COUNT(*) FROM t WHERE t.y > 2005 AND t.k IN (6, 7)");
    }

    #[test]
    fn swap_table_changes_semantics_not_template() {
        let q = parse("SELECT COUNT(*) FROM movie_info mi WHERE mi.info_type_id = 1");
        let r = swap_table(&q, "movie_info", "movie_info_idx");
        assert!(r.sql().contains("movie_info_idx"));
        use preqr_sql::normalize::state_keys;
        assert_eq!(state_keys(&q), state_keys(&r), "template (state keys) unchanged");
    }

    #[test]
    fn duplicate_predicate_appends_tautology() {
        let q = parse("SELECT COUNT(*) FROM t WHERE t.y > 2000");
        let r = duplicate_predicate(&q).unwrap();
        assert_eq!(r.sql(), "SELECT COUNT(*) FROM t WHERE t.y > 2000 AND t.y > 2000");
    }
}
