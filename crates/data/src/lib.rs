//! `preqr-data` — synthetic datasets for the PreQR reproduction.
//!
//! Everything the paper's evaluation consumes, rebuilt synthetically per
//! the substitution table in `DESIGN.md`:
//!
//! * [`imdb`] — a deterministic, deliberately correlated mini-IMDB;
//! * [`chdb`] — a CH-benchmark-style database (plus Figure 2's
//!   `user`/`accounts` tables);
//! * [`workloads`] — Synthetic / Scale / JOB-light / JOB-full query
//!   generators with the join distributions of Table 6, plus the MLM
//!   pre-training corpus and ground-truth labelling via the engine;
//! * [`rewrites`] — semantics-preserving rewrites (Figure 2's
//!   equivalences) used to build clustering ground truth;
//! * [`clustering`] — labelled clustering profiles (IIT Bombay / UB Exam /
//!   PocketData stand-ins) and the CH result-overlap workload;
//! * [`text`] — SQL-to-Text corpora in WikiSQL and StackOverflow styles;
//! * [`splits`] — deterministic dataset splitting.

#![warn(missing_docs)]
pub mod chdb;
pub mod clustering;
pub mod imdb;
pub mod rewrites;
pub mod splits;
pub mod text;
pub mod workloads;

pub use workloads::LabeledQuery;
