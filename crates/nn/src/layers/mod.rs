//! Neural network layers built on the autograd [`crate::tensor::Tensor`].
//!
//! Every layer exposes its trainable parameters through the [`Module`]
//! trait so that optimizers and the checkpoint format can enumerate them by
//! stable, hierarchical names.

mod attention;
mod embedding;
mod linear;
mod lstm;
mod norm;
mod rgcn;
mod transformer;

pub use attention::MultiHeadAttention;
pub use embedding::Embedding;
pub use linear::{Linear, Mlp};
pub use lstm::{BiLstm, LstmCell};
pub use norm::LayerNorm;
pub use rgcn::{RelAdjacency, RgcnLayer};
pub use transformer::{FeedForward, TransformerLayer};

use crate::tensor::Tensor;

/// A container of trainable parameters.
pub trait Module {
    /// Appends `(name, tensor)` pairs for every trainable parameter,
    /// prefixing names with `prefix` (e.g. `"encoder.layer0.attn.wq"`).
    fn collect_params(&self, prefix: &str, out: &mut Vec<(String, Tensor)>);

    /// Convenience: all parameters with names.
    fn named_params(&self, prefix: &str) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        self.collect_params(prefix, &mut out);
        out
    }

    /// Convenience: just the parameter tensors.
    fn params(&self) -> Vec<Tensor> {
        self.named_params("").into_iter().map(|(_, t)| t).collect()
    }

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.value().len()).sum()
    }
}

/// Joins a parameter-name prefix with a component name (`"a.b"`).
pub fn join(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}
