//! Standalone kernel benchmark + bit-identity checker for `preqr-nn`.
//!
//! `scripts/bench_kernels.sh` normally runs the cargo binary
//! (`cargo run --release -p preqr-bench --bin bench_kernels`). In offline
//! environments where the crates.io registry is unreachable the script
//! falls back to this harness: it copies the *real* kernel sources
//! (`crates/nn/src/{parallel,matrix,rowops}.rs`) next to this file, rewrites
//! only their external imports (crossbeam/parking_lot → the std-based
//! `compat` shims below, serde derive dropped), and compiles the result with
//! plain `rustc -O`. The kernels under test are therefore byte-for-byte the
//! shipped ones; only the channel/lock plumbing differs.
//!
//! Output: `results/BENCH_kernels.json` (same schema as the cargo binary)
//! after a full bit-identity sweep of the parallel kernels against the
//! serial references.

#![allow(dead_code)]

#[path = "parallel.rs"]
mod parallel;

#[path = "matrix.rs"]
mod matrix;

#[path = "rowops.rs"]
mod rowops;

/// Std-based stand-ins for the crossbeam / parking_lot APIs `parallel.rs`
/// uses, so the harness builds with nothing but the Rust toolchain.
mod compat {
    pub mod channel {
        use std::sync::mpsc;
        use std::sync::{Arc, Mutex};

        pub struct Sender<T>(mpsc::Sender<T>);

        impl<T> Clone for Sender<T> {
            fn clone(&self) -> Self {
                Sender(self.0.clone())
            }
        }

        impl<T> Sender<T> {
            pub fn send(&self, t: T) -> Result<(), mpsc::SendError<T>> {
                self.0.send(t)
            }
        }

        pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

        impl<T> Clone for Receiver<T> {
            fn clone(&self) -> Self {
                Receiver(Arc::clone(&self.0))
            }
        }

        impl<T> Receiver<T> {
            pub fn recv(&self) -> Result<T, mpsc::RecvError> {
                let rx = self.0.lock().expect("compat receiver poisoned");
                rx.recv()
            }
        }

        pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
            let (tx, rx) = mpsc::channel();
            (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
        }
    }

    pub mod sync {
        use std::ops::{Deref, DerefMut};
        use std::sync;

        pub struct Mutex<T>(sync::Mutex<T>);

        pub struct MutexGuard<'a, T>(Option<sync::MutexGuard<'a, T>>);

        impl<T> Mutex<T> {
            pub fn new(t: T) -> Self {
                Mutex(sync::Mutex::new(t))
            }

            pub fn lock(&self) -> MutexGuard<'_, T> {
                MutexGuard(Some(self.0.lock().expect("compat mutex poisoned")))
            }

            pub fn into_inner(self) -> T {
                self.0.into_inner().expect("compat mutex poisoned")
            }
        }

        impl<T> Deref for MutexGuard<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                self.0.as_ref().expect("guard taken")
            }
        }

        impl<T> DerefMut for MutexGuard<'_, T> {
            fn deref_mut(&mut self) -> &mut T {
                self.0.as_mut().expect("guard taken")
            }
        }

        #[derive(Default)]
        pub struct Condvar(sync::Condvar);

        impl Condvar {
            pub fn new() -> Self {
                Condvar(sync::Condvar::new())
            }

            pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
                let inner = guard.0.take().expect("guard taken");
                guard.0 = Some(self.0.wait(inner).expect("compat condvar poisoned"));
            }

            pub fn notify_all(&self) {
                self.0.notify_all();
            }
        }
    }

    /// No-op stand-in for `preqr_obs`: the harness benchmarks kernels
    /// with the metrics layer compiled out (one probe-shaped call that
    /// the optimizer deletes), matching the disabled production path.
    #[allow(dead_code)]
    pub mod obs {
        #[derive(Clone, Copy)]
        pub enum Metric {
            NnDispatchInline,
            NnDispatchPool,
            NnJoinInline,
            NnJoinPool,
            NnMatmulCalls,
        }

        #[derive(Clone, Copy)]
        pub enum HistMetric {
            NnMatmulUs,
        }

        #[inline(always)]
        pub fn counter_add(_m: Metric, _n: u64) {}

        pub struct HistTimer;

        #[inline(always)]
        pub fn timer(_h: HistMetric) -> HistTimer {
            HistTimer
        }
    }
}

use std::time::Instant;

use matrix::Matrix;

/// Deterministic xorshift data generator (no `rand` dependency).
struct Xs(u64);

impl Xs {
    fn next_f32(&mut self) -> f32 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        ((self.0 >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
    }

    fn matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        let data = (0..rows * cols).map(|_| self.next_f32()).collect();
        Matrix::from_vec(rows, cols, data)
    }
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.data().iter().map(|x| x.to_bits()).collect()
}

fn assert_bit_identical(label: &str, got: &Matrix, want: &Matrix) {
    assert_eq!(got.shape(), want.shape(), "{label}: shape mismatch");
    assert_eq!(bits(got), bits(want), "{label}: outputs differ bitwise");
}

fn check_bit_identity() {
    let mut rng = Xs(0x9e3779b97f4a7c15);
    // Shapes straddle the PAR_MIN_FMAS = 2^16 threshold boundary
    // (32·32·64 = 65536 is exactly at it) and include awkward remainders
    // for the MR×NR edge paths.
    let shapes = [
        (1usize, 7usize, 5usize),
        (9, 16, 11),
        (31, 33, 63), // just below the threshold
        (32, 32, 64), // exactly at the threshold
        (33, 32, 64), // just above
        (48, 64, 64),
        (61, 67, 59),
        (128, 96, 80),
    ];
    for &(m, k, n) in &shapes {
        let a = rng.matrix(m, k);
        let b = rng.matrix(k, n);
        let bt = rng.matrix(n, k);
        let c = rng.matrix(m, n);
        for threads in [1usize, 2, 4, 8] {
            parallel::set_thread_override(Some(threads));
            assert_bit_identical(
                &format!("matmul {m}x{k}x{n} t{threads}"),
                &a.matmul(&b),
                &a.matmul_serial(&b),
            );
            assert_bit_identical(
                &format!("matmul_transpose_b {m}x{k}x{n} t{threads}"),
                &a.matmul_transpose_b(&bt),
                &a.matmul_transpose_b_serial(&bt),
            );
            assert_bit_identical(
                &format!("transpose_a_matmul {m}x{k}x{n} t{threads}"),
                &a.transpose_a_matmul(&c),
                &a.transpose_a_matmul_serial(&c),
            );
            let mut s_par = rng.matrix(m.max(2) * 4, n.max(2) * 4);
            let mut s_ser = s_par.clone();
            s_par.softmax_rows_inplace();
            s_ser.softmax_rows_inplace_serial();
            assert_bit_identical(&format!("softmax {m}x{n} t{threads}"), &s_par, &s_ser);
            parallel::set_thread_override(None);
        }
    }
    // Layer-norm helpers: parallel partition vs single-thread run.
    let rows = 96;
    let d = 384; // rows*d > PAR_MIN_ELEMS so the pool path runs
    let x = rng.matrix(rows, d);
    let gamma = rng.matrix(1, d);
    let beta = rng.matrix(1, d);
    let g = rng.matrix(rows, d);
    parallel::set_thread_override(Some(4));
    let (xhat_p, istd_p, out_p) =
        rowops::layer_norm_forward(x.data(), rows, d, gamma.row(0), beta.row(0), 1e-5);
    let dx_p = rowops::layer_norm_backward_dx(g.data(), rows, d, gamma.row(0), &xhat_p, &istd_p);
    parallel::set_thread_override(Some(1));
    let (xhat_s, istd_s, out_s) =
        rowops::layer_norm_forward(x.data(), rows, d, gamma.row(0), beta.row(0), 1e-5);
    let dx_s = rowops::layer_norm_backward_dx(g.data(), rows, d, gamma.row(0), &xhat_s, &istd_s);
    parallel::set_thread_override(None);
    assert_bit_identical("layer_norm xhat", &xhat_p, &xhat_s);
    assert_bit_identical("layer_norm out", &out_p, &out_s);
    assert_bit_identical("layer_norm dx", &dx_p, &dx_s);
    assert_eq!(
        istd_p.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        istd_s.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "layer_norm inv_std differs"
    );
    // Element-wise kernels: buffers past PAR_MIN_ELEMS so the pool runs.
    let ea = rng.matrix(128, 300);
    let eb = rng.matrix(128, 300);
    parallel::set_thread_override(Some(1));
    let mut want_add = ea.clone();
    want_add.add_assign(&eb);
    let mut want_axpy = ea.clone();
    want_axpy.add_scaled_assign(&eb, 0.37);
    let want_map = ea.map(|x| x * 1.5 - 0.25);
    let want_zip = ea.zip_map(&eb, |x, y| x * y + 0.5);
    for threads in [2usize, 4, 8] {
        parallel::set_thread_override(Some(threads));
        let mut got_add = ea.clone();
        got_add.add_assign(&eb);
        let mut got_axpy = ea.clone();
        got_axpy.add_scaled_assign(&eb, 0.37);
        assert_bit_identical(&format!("add_assign t{threads}"), &got_add, &want_add);
        assert_bit_identical(&format!("add_scaled t{threads}"), &got_axpy, &want_axpy);
        assert_bit_identical(&format!("map t{threads}"), &ea.map(|x| x * 1.5 - 0.25), &want_map);
        assert_bit_identical(
            &format!("zip_map t{threads}"),
            &ea.zip_map(&eb, |x, y| x * y + 0.5),
            &want_zip,
        );
    }
    parallel::set_thread_override(None);
    // IEEE semantics: the old `a_ik == 0.0` skip dropped 0·inf = NaN.
    let za = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
    let zb = Matrix::from_vec(2, 1, vec![f32::INFINITY, 1.0]);
    assert!(za.matmul(&zb).get(0, 0).is_nan(), "0*inf must produce NaN");
    println!("bit-identity sweep: OK");
}

/// Times `f` (ns/iter): two warmup calls, then batches until ≥250 ms total.
fn time_ns(mut f: impl FnMut()) -> f64 {
    f();
    f();
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        let elapsed = start.elapsed();
        if elapsed.as_secs_f64() >= 0.25 && iters >= 3 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        if iters >= 1_000_000 {
            return start.elapsed().as_nanos() as f64 / iters as f64;
        }
    }
}

struct Entry {
    method: &'static str,
    shape: String,
    variant: &'static str,
    threads: usize,
    ns_per_iter: f64,
    speedup: f64,
}

fn push_sweep(
    entries: &mut Vec<Entry>,
    method: &'static str,
    shape: String,
    serial: impl Fn(),
    parallel_run: impl Fn(),
) {
    let serial_ns = time_ns(|| serial());
    entries.push(Entry {
        method,
        shape: shape.clone(),
        variant: "serial",
        threads: 1,
        ns_per_iter: serial_ns,
        speedup: 1.0,
    });
    for threads in [1usize, 2, 4, 8] {
        parallel::set_thread_override(Some(threads));
        let ns = time_ns(|| parallel_run());
        parallel::set_thread_override(None);
        let speedup = serial_ns / ns;
        println!(
            "{method:>18} {shape:>14} threads={threads}: {:.0} ns/iter (serial {:.0}), speedup {speedup:.2}x",
            ns, serial_ns
        );
        entries.push(Entry {
            method,
            shape: shape.clone(),
            variant: "parallel",
            threads,
            ns_per_iter: ns,
            speedup,
        });
    }
}

fn main() {
    check_bit_identity();
    let mut rng = Xs(0xdeadbeefcafef00d);
    let mut entries = Vec::new();

    for &s in &[64usize, 128, 256, 384] {
        let a = rng.matrix(s, s);
        let b = rng.matrix(s, s);
        push_sweep(
            &mut entries,
            "matmul",
            format!("{s}x{s}x{s}"),
            || {
                std::hint::black_box(a.matmul_serial(&b));
            },
            || {
                std::hint::black_box(a.matmul(&b));
            },
        );
    }

    // Attention-scores shape: seq=128, head_dim=64 → q @ k^T.
    let q = rng.matrix(128, 64);
    let kmat = rng.matrix(128, 64);
    push_sweep(
        &mut entries,
        "matmul_transpose_b",
        "128x64x128".to_string(),
        || {
            std::hint::black_box(q.matmul_transpose_b_serial(&kmat));
        },
        || {
            std::hint::black_box(q.matmul_transpose_b(&kmat));
        },
    );

    for &(r, c) in &[(256usize, 256usize), (1024, 256)] {
        let base = rng.matrix(r, c);
        push_sweep(
            &mut entries,
            "softmax_rows",
            format!("{r}x{c}"),
            || {
                let mut m = base.clone();
                m.softmax_rows_inplace_serial();
                std::hint::black_box(&m);
            },
            || {
                let mut m = base.clone();
                m.softmax_rows_inplace();
                std::hint::black_box(&m);
            },
        );
    }

    // Single-head attention core: softmax(q k^T / sqrt(d)) @ v.
    let v = rng.matrix(128, 64);
    let scale = 1.0 / (64f32).sqrt();
    push_sweep(
        &mut entries,
        "attention_core",
        "seq128_d64".to_string(),
        || {
            let mut scores = q.matmul_transpose_b_serial(&kmat);
            scores.scale_assign(scale);
            scores.softmax_rows_inplace_serial();
            std::hint::black_box(scores.matmul_serial(&v));
        },
        || {
            let mut scores = q.matmul_transpose_b(&kmat);
            scores.scale_assign(scale);
            scores.softmax_rows_inplace();
            std::hint::black_box(scores.matmul(&v));
        },
    );

    let mut json = String::from("{\n  \"schema\": \"preqr-bench-kernels-v1\",\n");
    json.push_str("  \"generated_by\": \"scripts/standalone_bench_kernels.rs\",\n");
    json.push_str(&format!(
        "  \"host_available_parallelism\": {},\n  \"entries\": [\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"method\": \"{}\", \"shape\": \"{}\", \"variant\": \"{}\", \"threads\": {}, \"ns_per_iter\": {:.1}, \"speedup\": {:.3}}}{}\n",
            e.method,
            e.shape,
            e.variant,
            e.threads,
            e.ns_per_iter,
            e.speedup,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote results/BENCH_kernels.json ({} entries)", entries.len());
}
