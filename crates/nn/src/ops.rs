//! Differentiable operations over [`Tensor`]s.
//!
//! Each op computes its forward value eagerly and registers a backward
//! closure that scatters the upstream gradient into its parents. The ops
//! here are exactly the set needed by the PreQR model family: dense
//! algebra, activations, normalization, attention building blocks,
//! embedding lookup, graph neighbourhood aggregation (R-GCN), and losses.

use std::rc::Rc;

use rand::Rng;

use crate::matrix::Matrix;
use crate::rowops::{layer_norm_backward_dx, layer_norm_forward};
use crate::tensor::Tensor;

/// Elementwise addition of two same-shape tensors.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    let v = a.value().zip_map(&b.value(), |x, y| x + y);
    Tensor::from_op(
        v,
        vec![a.clone(), b.clone()],
        Box::new(|ctx| {
            ctx.parents[0].accumulate_grad(ctx.grad_out);
            ctx.parents[1].accumulate_grad(ctx.grad_out);
        }),
    )
}

/// Adds a `1 × d` row vector to every row of an `n × d` tensor.
pub fn add_row(a: &Tensor, row: &Tensor) -> Tensor {
    let av = a.value();
    let rv = row.value();
    assert_eq!(rv.rows(), 1, "add_row expects a 1xd row vector");
    assert_eq!(av.cols(), rv.cols(), "add_row width mismatch");
    let mut out = av.clone();
    for r in 0..out.rows() {
        let rr = rv.row(0);
        for (o, &b) in out.row_mut(r).iter_mut().zip(rr.iter()) {
            *o += b;
        }
    }
    drop(av);
    drop(rv);
    Tensor::from_op(
        out,
        vec![a.clone(), row.clone()],
        Box::new(|ctx| {
            ctx.parents[0].accumulate_grad(ctx.grad_out);
            if ctx.parents[1].requires_grad() {
                let g = ctx.grad_out;
                let mut sum = Matrix::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for (s, &x) in sum.row_mut(0).iter_mut().zip(g.row(r).iter()) {
                        *s += x;
                    }
                }
                ctx.parents[1].accumulate_grad(&sum);
            }
        }),
    )
}

/// Elementwise subtraction `a - b`.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    let v = a.value().zip_map(&b.value(), |x, y| x - y);
    Tensor::from_op(
        v,
        vec![a.clone(), b.clone()],
        Box::new(|ctx| {
            ctx.parents[0].accumulate_grad(ctx.grad_out);
            if ctx.parents[1].requires_grad() {
                ctx.parents[1].accumulate_grad(&ctx.grad_out.map(|x| -x));
            }
        }),
    )
}

/// Elementwise (Hadamard) product.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    let v = a.value().zip_map(&b.value(), |x, y| x * y);
    Tensor::from_op(
        v,
        vec![a.clone(), b.clone()],
        Box::new(|ctx| {
            if ctx.parents[0].requires_grad() {
                let g = ctx.grad_out.zip_map(&ctx.parents[1].value(), |g, y| g * y);
                ctx.parents[0].accumulate_grad(&g);
            }
            if ctx.parents[1].requires_grad() {
                let g = ctx.grad_out.zip_map(&ctx.parents[0].value(), |g, x| g * x);
                ctx.parents[1].accumulate_grad(&g);
            }
        }),
    )
}

/// Multiplies every element by a constant.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    let v = a.value().map(|x| x * s);
    Tensor::from_op(
        v,
        vec![a.clone()],
        Box::new(move |ctx| {
            ctx.parents[0].accumulate_grad(&ctx.grad_out.map(|g| g * s));
        }),
    )
}

/// Matrix product `a @ b`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let v = a.value().matmul(&b.value());
    Tensor::from_op(
        v,
        vec![a.clone(), b.clone()],
        Box::new(|ctx| {
            if ctx.parents[0].requires_grad() {
                let da = ctx.grad_out.matmul_transpose_b(&ctx.parents[1].value());
                ctx.parents[0].accumulate_grad(&da);
            }
            if ctx.parents[1].requires_grad() {
                let db = ctx.parents[0].value().transpose_a_matmul(ctx.grad_out);
                ctx.parents[1].accumulate_grad(&db);
            }
        }),
    )
}

/// `a @ b^T` (used for attention scores).
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Tensor {
    let v = a.value().matmul_transpose_b(&b.value());
    Tensor::from_op(
        v,
        vec![a.clone(), b.clone()],
        Box::new(|ctx| {
            // out = a @ b^T : da = g @ b, db = g^T @ a.
            if ctx.parents[0].requires_grad() {
                let da = ctx.grad_out.matmul(&ctx.parents[1].value());
                ctx.parents[0].accumulate_grad(&da);
            }
            if ctx.parents[1].requires_grad() {
                let db = ctx.grad_out.transpose_a_matmul(&ctx.parents[0].value());
                ctx.parents[1].accumulate_grad(&db);
            }
        }),
    )
}

/// Transposed copy.
pub fn transpose(a: &Tensor) -> Tensor {
    let v = a.value().transpose();
    Tensor::from_op(
        v,
        vec![a.clone()],
        Box::new(|ctx| {
            ctx.parents[0].accumulate_grad(&ctx.grad_out.transpose());
        }),
    )
}

/// Concatenates along the column axis (equal row counts).
pub fn concat_cols(a: &Tensor, b: &Tensor) -> Tensor {
    let v = a.value().concat_cols(&b.value());
    let split = a.value().cols();
    Tensor::from_op(
        v,
        vec![a.clone(), b.clone()],
        Box::new(move |ctx| {
            let g = ctx.grad_out;
            if ctx.parents[0].requires_grad() {
                ctx.parents[0].accumulate_grad(&g.slice_cols(0, split));
            }
            if ctx.parents[1].requires_grad() {
                ctx.parents[1].accumulate_grad(&g.slice_cols(split, g.cols()));
            }
        }),
    )
}

/// Concatenates along the row axis (equal column counts).
pub fn concat_rows(a: &Tensor, b: &Tensor) -> Tensor {
    let v = a.value().concat_rows(&b.value());
    let split = a.value().rows();
    Tensor::from_op(
        v,
        vec![a.clone(), b.clone()],
        Box::new(move |ctx| {
            let g = ctx.grad_out;
            if ctx.parents[0].requires_grad() {
                let mut ga = Matrix::zeros(split, g.cols());
                for r in 0..split {
                    ga.row_mut(r).copy_from_slice(g.row(r));
                }
                ctx.parents[0].accumulate_grad(&ga);
            }
            if ctx.parents[1].requires_grad() {
                let rows_b = g.rows() - split;
                let mut gb = Matrix::zeros(rows_b, g.cols());
                for r in 0..rows_b {
                    gb.row_mut(r).copy_from_slice(g.row(split + r));
                }
                ctx.parents[1].accumulate_grad(&gb);
            }
        }),
    )
}

/// Selects rows `indices` (embedding lookup; indices may repeat).
pub fn gather_rows(table: &Tensor, indices: &[usize]) -> Tensor {
    let v = table.value().gather_rows(indices);
    let idx: Rc<[usize]> = indices.into();
    Tensor::from_op(
        v,
        vec![table.clone()],
        Box::new(move |ctx| {
            if !ctx.parents[0].requires_grad() {
                return;
            }
            let (rows, cols) = ctx.parents[0].value().shape();
            let mut g = Matrix::zeros(rows, cols);
            for (i, &r) in idx.iter().enumerate() {
                let src = ctx.grad_out.row(i);
                for (o, &x) in g.row_mut(r).iter_mut().zip(src.iter()) {
                    *o += x;
                }
            }
            ctx.parents[0].accumulate_grad(&g);
        }),
    )
}

/// Copy of columns `c0..c1`.
pub fn slice_cols(a: &Tensor, c0: usize, c1: usize) -> Tensor {
    let v = a.value().slice_cols(c0, c1);
    Tensor::from_op(
        v,
        vec![a.clone()],
        Box::new(move |ctx| {
            if !ctx.parents[0].requires_grad() {
                return;
            }
            let (rows, cols) = ctx.parents[0].value().shape();
            let mut g = Matrix::zeros(rows, cols);
            for r in 0..rows {
                g.row_mut(r)[c0..c1].copy_from_slice(ctx.grad_out.row(r));
            }
            ctx.parents[0].accumulate_grad(&g);
        }),
    )
}

/// Mean over rows producing a `1 × d` tensor (average pooling, Eq. 4).
pub fn mean_rows(a: &Tensor) -> Tensor {
    let av = a.value();
    let n = av.rows().max(1);
    let mut out = Matrix::zeros(1, av.cols());
    for r in 0..av.rows() {
        for (o, &x) in out.row_mut(0).iter_mut().zip(av.row(r).iter()) {
            *o += x;
        }
    }
    out.scale_assign(1.0 / n as f32);
    drop(av);
    Tensor::from_op(
        out,
        vec![a.clone()],
        Box::new(move |ctx| {
            if !ctx.parents[0].requires_grad() {
                return;
            }
            let (rows, cols) = ctx.parents[0].value().shape();
            let mut g = Matrix::zeros(rows, cols);
            let inv = 1.0 / n as f32;
            for r in 0..rows {
                for (o, &x) in g.row_mut(r).iter_mut().zip(ctx.grad_out.row(0).iter()) {
                    *o = x * inv;
                }
            }
            ctx.parents[0].accumulate_grad(&g);
        }),
    )
}

/// Sum of all elements producing a `1 × 1` scalar.
pub fn sum_all(a: &Tensor) -> Tensor {
    let v = Matrix::full(1, 1, a.value().sum());
    Tensor::from_op(
        v,
        vec![a.clone()],
        Box::new(|ctx| {
            if !ctx.parents[0].requires_grad() {
                return;
            }
            let (rows, cols) = ctx.parents[0].value().shape();
            let g = Matrix::full(rows, cols, ctx.grad_out.get(0, 0));
            ctx.parents[0].accumulate_grad(&g);
        }),
    )
}

/// Rectified linear unit.
pub fn relu(a: &Tensor) -> Tensor {
    let v = a.value().map(|x| x.max(0.0));
    Tensor::from_op(
        v,
        vec![a.clone()],
        Box::new(|ctx| {
            let g = ctx.grad_out.zip_map(ctx.value_out, |g, y| if y > 0.0 { g } else { 0.0 });
            ctx.parents[0].accumulate_grad(&g);
        }),
    )
}

/// Gaussian error linear unit (tanh approximation, as in BERT).
pub fn gelu(a: &Tensor) -> Tensor {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    let gelu_f = |x: f32| 0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh());
    let v = a.value().map(gelu_f);
    Tensor::from_op(
        v,
        vec![a.clone()],
        Box::new(move |ctx| {
            if !ctx.parents[0].requires_grad() {
                return;
            }
            let x = ctx.parents[0].value();
            let g = ctx.grad_out.zip_map(&x, |g, x| {
                let inner = C * (x + 0.044_715 * x * x * x);
                let t = inner.tanh();
                let dinner = C * (1.0 + 3.0 * 0.044_715 * x * x);
                let d = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner;
                g * d
            });
            drop(x);
            ctx.parents[0].accumulate_grad(&g);
        }),
    )
}

/// Hyperbolic tangent.
pub fn tanh(a: &Tensor) -> Tensor {
    let v = a.value().map(f32::tanh);
    Tensor::from_op(
        v,
        vec![a.clone()],
        Box::new(|ctx| {
            let g = ctx.grad_out.zip_map(ctx.value_out, |g, y| g * (1.0 - y * y));
            ctx.parents[0].accumulate_grad(&g);
        }),
    )
}

/// Logistic sigmoid.
pub fn sigmoid(a: &Tensor) -> Tensor {
    let v = a.value().map(|x| 1.0 / (1.0 + (-x).exp()));
    Tensor::from_op(
        v,
        vec![a.clone()],
        Box::new(|ctx| {
            let g = ctx.grad_out.zip_map(ctx.value_out, |g, y| g * y * (1.0 - y));
            ctx.parents[0].accumulate_grad(&g);
        }),
    )
}

/// Elementwise natural logarithm with an epsilon clamp (inputs are
/// expected to be probabilities; values below `1e-12` are clamped so the
/// gradient stays finite).
pub fn ln(a: &Tensor) -> Tensor {
    let v = a.value().map(|x| x.max(1e-12).ln());
    Tensor::from_op(
        v,
        vec![a.clone()],
        Box::new(|ctx| {
            if !ctx.parents[0].requires_grad() {
                return;
            }
            let x = ctx.parents[0].value();
            let g = ctx.grad_out.zip_map(&x, |g, x| g / x.max(1e-12));
            drop(x);
            ctx.parents[0].accumulate_grad(&g);
        }),
    )
}

/// Row-wise softmax.
pub fn softmax_rows(a: &Tensor) -> Tensor {
    let mut v = a.value_clone();
    v.softmax_rows_inplace();
    Tensor::from_op(
        v,
        vec![a.clone()],
        Box::new(|ctx| {
            if !ctx.parents[0].requires_grad() {
                return;
            }
            let y = ctx.value_out;
            let g = ctx.grad_out;
            let mut out = Matrix::zeros(y.rows(), y.cols());
            for r in 0..y.rows() {
                let yr = y.row(r);
                let gr = g.row(r);
                let dot: f32 = yr.iter().zip(gr.iter()).map(|(&a, &b)| a * b).sum();
                for ((o, &yv), &gv) in out.row_mut(r).iter_mut().zip(yr.iter()).zip(gr.iter()) {
                    *o = yv * (gv - dot);
                }
            }
            ctx.parents[0].accumulate_grad(&out);
        }),
    )
}

/// Layer normalization over each row with learned scale and shift
/// (`gamma`, `beta` are `1 × d`).
pub fn layer_norm(x: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> Tensor {
    let xv = x.value();
    let d = xv.cols();
    assert_eq!(gamma.value().shape(), (1, d), "layer_norm gamma shape");
    assert_eq!(beta.value().shape(), (1, d), "layer_norm beta shape");
    let gv = gamma.value();
    let bv = beta.value();
    let (xhat, inv_std, out) =
        layer_norm_forward(xv.data(), xv.rows(), d, gv.row(0), bv.row(0), eps);
    drop(xv);
    drop(gv);
    drop(bv);
    let xhat = Rc::new(xhat);
    let inv_std = Rc::new(inv_std);
    Tensor::from_op(
        out,
        vec![x.clone(), gamma.clone(), beta.clone()],
        Box::new(move |ctx| {
            let g = ctx.grad_out;
            let (rows, d) = g.shape();
            if ctx.parents[1].requires_grad() {
                let mut dgamma = Matrix::zeros(1, d);
                for r in 0..rows {
                    for c in 0..d {
                        dgamma.row_mut(0)[c] += g.get(r, c) * xhat.get(r, c);
                    }
                }
                ctx.parents[1].accumulate_grad(&dgamma);
            }
            if ctx.parents[2].requires_grad() {
                let mut dbeta = Matrix::zeros(1, d);
                for r in 0..rows {
                    for c in 0..d {
                        dbeta.row_mut(0)[c] += g.get(r, c);
                    }
                }
                ctx.parents[2].accumulate_grad(&dbeta);
            }
            if ctx.parents[0].requires_grad() {
                let gv = ctx.parents[1].value();
                let dx = layer_norm_backward_dx(g.data(), rows, d, gv.row(0), &xhat, &inv_std);
                drop(gv);
                ctx.parents[0].accumulate_grad(&dx);
            }
        }),
    )
}

/// Inverted dropout. When `training` is false this is the identity.
pub fn dropout(a: &Tensor, p: f32, training: bool, rng: &mut impl Rng) -> Tensor {
    if !training || p <= 0.0 {
        return identity(a);
    }
    assert!(p < 1.0, "dropout probability must be < 1");
    let keep = 1.0 - p;
    let av = a.value();
    let mask = Matrix::from_fn(av.rows(), av.cols(), |_, _| {
        if rng.random::<f32>() < keep {
            1.0 / keep
        } else {
            0.0
        }
    });
    let v = av.zip_map(&mask, |x, m| x * m);
    drop(av);
    let mask = Rc::new(mask);
    Tensor::from_op(
        v,
        vec![a.clone()],
        Box::new(move |ctx| {
            let g = ctx.grad_out.zip_map(&mask, |g, m| g * m);
            ctx.parents[0].accumulate_grad(&g);
        }),
    )
}

/// Identity op (pass-through node).
pub fn identity(a: &Tensor) -> Tensor {
    Tensor::from_op(
        a.value_clone(),
        vec![a.clone()],
        Box::new(|ctx| {
            ctx.parents[0].accumulate_grad(ctx.grad_out);
        }),
    )
}

/// Graph neighbourhood aggregation: `out[i] = Σ_{(j,w) ∈ adj[i]} w · h[j]`.
///
/// This is the sparse primitive underlying the R-GCN propagation rule
/// (Eq. 3); `adj` holds, for each output row, the weighted in-neighbours.
pub fn neighbor_agg(h: &Tensor, adj: Rc<Vec<Vec<(usize, f32)>>>) -> Tensor {
    let hv = h.value();
    let cols = hv.cols();
    let mut out = Matrix::zeros(adj.len(), cols);
    for (i, nbrs) in adj.iter().enumerate() {
        for &(j, w) in nbrs {
            debug_assert!(j < hv.rows(), "neighbor index out of range");
            let src = hv.row(j);
            for (o, &x) in out.row_mut(i).iter_mut().zip(src.iter()) {
                *o += w * x;
            }
        }
    }
    drop(hv);
    let adj_b = Rc::clone(&adj);
    Tensor::from_op(
        out,
        vec![h.clone()],
        Box::new(move |ctx| {
            if !ctx.parents[0].requires_grad() {
                return;
            }
            let (rows, cols) = ctx.parents[0].value().shape();
            let mut g = Matrix::zeros(rows, cols);
            for (i, nbrs) in adj_b.iter().enumerate() {
                let src = ctx.grad_out.row(i);
                for &(j, w) in nbrs {
                    for (o, &x) in g.row_mut(j).iter_mut().zip(src.iter()) {
                        *o += w * x;
                    }
                }
            }
            ctx.parents[0].accumulate_grad(&g);
        }),
    )
}

/// Mean cross-entropy between row logits and integer targets.
///
/// Rows whose target is `usize::MAX` are ignored (used for unmasked MLM
/// positions).
pub fn cross_entropy_logits(logits: &Tensor, targets: &[usize]) -> Tensor {
    let lv = logits.value();
    assert_eq!(lv.rows(), targets.len(), "cross_entropy target count mismatch");
    let mut probs = lv.clone();
    probs.softmax_rows_inplace();
    let mut loss = 0.0f32;
    let mut count = 0usize;
    for (r, &t) in targets.iter().enumerate() {
        if t == usize::MAX {
            continue;
        }
        assert!(t < lv.cols(), "cross_entropy target {t} out of range");
        loss -= probs.get(r, t).max(1e-12).ln();
        count += 1;
    }
    let count = count.max(1);
    loss /= count as f32;
    drop(lv);
    let probs = Rc::new(probs);
    let targets: Rc<[usize]> = targets.into();
    Tensor::from_op(
        Matrix::full(1, 1, loss),
        vec![logits.clone()],
        Box::new(move |ctx| {
            if !ctx.parents[0].requires_grad() {
                return;
            }
            let scale = ctx.grad_out.get(0, 0) / count as f32;
            let mut g = Matrix::zeros(probs.rows(), probs.cols());
            for (r, &t) in targets.iter().enumerate() {
                if t == usize::MAX {
                    continue;
                }
                for (c, o) in g.row_mut(r).iter_mut().enumerate() {
                    let p = probs.get(r, c);
                    *o = scale * (p - if c == t { 1.0 } else { 0.0 });
                }
            }
            ctx.parents[0].accumulate_grad(&g);
        }),
    )
}

/// Mean squared error against a constant target.
pub fn mse_loss(pred: &Tensor, target: &Matrix) -> Tensor {
    let pv = pred.value();
    assert_eq!(pv.shape(), target.shape(), "mse shape mismatch");
    let n = pv.len().max(1) as f32;
    let loss =
        pv.data().iter().zip(target.data().iter()).map(|(&p, &t)| (p - t) * (p - t)).sum::<f32>()
            / n;
    drop(pv);
    let target = target.clone();
    Tensor::from_op(
        Matrix::full(1, 1, loss),
        vec![pred.clone()],
        Box::new(move |ctx| {
            if !ctx.parents[0].requires_grad() {
                return;
            }
            let scale = 2.0 * ctx.grad_out.get(0, 0) / target.len().max(1) as f32;
            let g = ctx.parents[0].value().zip_map(&target, |p, t| scale * (p - t));
            ctx.parents[0].accumulate_grad(&g);
        }),
    )
}

/// Huber (smooth-L1) loss against a constant target; more robust than MSE
/// for heavy-tailed regression targets such as log-cardinalities.
pub fn huber_loss(pred: &Tensor, target: &Matrix, delta: f32) -> Tensor {
    let pv = pred.value();
    assert_eq!(pv.shape(), target.shape(), "huber shape mismatch");
    let n = pv.len().max(1) as f32;
    let mut loss = 0.0f32;
    for (&p, &t) in pv.data().iter().zip(target.data().iter()) {
        let e = p - t;
        loss += if e.abs() <= delta { 0.5 * e * e } else { delta * (e.abs() - 0.5 * delta) };
    }
    loss /= n;
    drop(pv);
    let target = target.clone();
    Tensor::from_op(
        Matrix::full(1, 1, loss),
        vec![pred.clone()],
        Box::new(move |ctx| {
            if !ctx.parents[0].requires_grad() {
                return;
            }
            let scale = ctx.grad_out.get(0, 0) / target.len().max(1) as f32;
            let g = ctx.parents[0].value().zip_map(&target, |p, t| {
                let e = p - t;
                scale * if e.abs() <= delta { e } else { delta * e.signum() }
            });
            ctx.parents[0].accumulate_grad(&g);
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Central-difference gradient check for a scalar-valued function of a
    /// single parameter tensor.
    fn grad_check(
        shape: (usize, usize),
        init: impl Fn(usize, usize) -> f32,
        f: impl Fn(&Tensor) -> Tensor,
    ) {
        let x = Tensor::param(Matrix::from_fn(shape.0, shape.1, &init));
        let loss = f(&x);
        assert_eq!(loss.shape(), (1, 1), "grad_check needs scalar loss");
        loss.backward();
        let analytic = x.grad().expect("no gradient accumulated");
        let eps = 2e-2f32;
        for r in 0..shape.0 {
            for c in 0..shape.1 {
                let make = |delta: f32| {
                    let mut m = Matrix::from_fn(shape.0, shape.1, &init);
                    m.set(r, c, m.get(r, c) + delta);
                    f(&Tensor::param(m)).value_clone().get(0, 0)
                };
                let numeric = (make(eps) - make(-eps)) / (2.0 * eps);
                let a = analytic.get(r, c);
                let denom = a.abs().max(numeric.abs()).max(1.0);
                assert!(
                    (a - numeric).abs() / denom < 5e-2,
                    "grad mismatch at ({r},{c}): analytic={a} numeric={numeric}"
                );
            }
        }
    }

    fn seeded(r: usize, c: usize) -> f32 {
        ((r * 31 + c * 17 + 7) % 13) as f32 * 0.17 - 0.8
    }

    #[test]
    fn grad_add_and_scale() {
        grad_check((2, 3), seeded, |x| {
            let y = add(x, x);
            sum_all(&scale(&y, 0.5))
        });
    }

    #[test]
    fn grad_mul() {
        grad_check((2, 2), seeded, |x| {
            let c = Tensor::constant(Matrix::from_fn(2, 2, |r, c| (r + c) as f32 + 0.5));
            sum_all(&mul(x, &c))
        });
    }

    #[test]
    fn grad_matmul_both_sides() {
        grad_check((2, 3), seeded, |x| {
            let w = Tensor::constant(Matrix::from_fn(3, 2, |r, c| seeded(c, r)));
            sum_all(&matmul(x, &w))
        });
        grad_check((3, 2), seeded, |x| {
            let a = Tensor::constant(Matrix::from_fn(2, 3, |r, c| seeded(r, c + 1)));
            sum_all(&matmul(&a, x))
        });
    }

    #[test]
    fn grad_matmul_transpose_b() {
        grad_check((2, 3), seeded, |x| {
            let b = Tensor::constant(Matrix::from_fn(4, 3, |r, c| seeded(r + 2, c)));
            sum_all(&matmul_transpose_b(x, &b))
        });
    }

    #[test]
    fn grad_activations() {
        grad_check((2, 3), seeded, |x| sum_all(&relu(x)));
        grad_check((2, 3), seeded, |x| sum_all(&tanh(x)));
        grad_check((2, 3), seeded, |x| sum_all(&sigmoid(x)));
        grad_check((2, 3), seeded, |x| sum_all(&gelu(x)));
    }

    #[test]
    fn grad_ln() {
        grad_check((2, 3), |r, c| 0.2 + 0.1 * (r * 3 + c) as f32, |x| sum_all(&ln(x)));
    }

    #[test]
    fn ln_clamps_small_values() {
        let x = Tensor::constant(Matrix::from_vec(1, 2, vec![0.0, 1.0]));
        let y = ln(&x).value_clone();
        assert!(y.get(0, 0).is_finite());
        assert_eq!(y.get(0, 1), 0.0);
    }

    #[test]
    fn grad_softmax_weighted() {
        grad_check((2, 4), seeded, |x| {
            let y = softmax_rows(x);
            let w = Tensor::constant(Matrix::from_fn(2, 4, |r, c| seeded(r + 1, c + 1)));
            sum_all(&mul(&y, &w))
        });
    }

    #[test]
    fn grad_layer_norm_input() {
        grad_check((2, 4), seeded, |x| {
            let gamma = Tensor::constant(Matrix::from_fn(1, 4, |_, c| 1.0 + 0.1 * c as f32));
            let beta = Tensor::constant(Matrix::zeros(1, 4));
            let y = layer_norm(x, &gamma, &beta, 1e-5);
            let w = Tensor::constant(Matrix::from_fn(2, 4, |r, c| seeded(r, c + 3)));
            sum_all(&mul(&y, &w))
        });
    }

    #[test]
    fn grad_layer_norm_gamma_beta() {
        grad_check(
            (1, 4),
            |_, c| 0.5 + 0.3 * c as f32,
            |gamma| {
                let x = Tensor::constant(Matrix::from_fn(3, 4, seeded));
                let beta = Tensor::constant(Matrix::zeros(1, 4));
                let y = layer_norm(&x, gamma, &beta, 1e-5);
                sum_all(&y)
            },
        );
    }

    #[test]
    fn grad_gather_and_slice() {
        grad_check((4, 3), seeded, |x| {
            let g = gather_rows(x, &[1, 1, 3]);
            sum_all(&slice_cols(&g, 1, 3))
        });
    }

    #[test]
    fn grad_concat() {
        grad_check((2, 2), seeded, |x| {
            let other = Tensor::constant(Matrix::from_fn(2, 3, |r, c| seeded(r, c + 9)));
            let y = concat_cols(x, &other);
            let z = concat_rows(&y, &Tensor::constant(Matrix::zeros(1, 5)));
            sum_all(&z)
        });
    }

    #[test]
    fn grad_mean_rows_and_add_row() {
        grad_check((3, 2), seeded, |x| {
            let pooled = mean_rows(x);
            let y = add_row(x, &pooled);
            sum_all(&y)
        });
        // gradient w.r.t. the broadcast row itself
        grad_check((1, 3), seeded, |row| {
            let base = Tensor::constant(Matrix::from_fn(4, 3, seeded));
            sum_all(&add_row(&base, row))
        });
    }

    #[test]
    fn grad_neighbor_agg() {
        let adj = Rc::new(vec![vec![(0, 0.5), (1, 0.5)], vec![(2, 1.0)], vec![(0, 0.25)]]);
        grad_check((3, 2), seeded, move |x| sum_all(&neighbor_agg(x, Rc::clone(&adj))));
    }

    #[test]
    fn grad_cross_entropy() {
        grad_check((3, 4), seeded, |x| cross_entropy_logits(x, &[1, usize::MAX, 3]));
    }

    #[test]
    fn grad_mse_and_huber() {
        let target = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
        grad_check((2, 2), seeded, {
            let t = target.clone();
            move |x| mse_loss(x, &t)
        });
        grad_check((2, 2), seeded, move |x| huber_loss(x, &target, 0.4));
    }

    #[test]
    fn cross_entropy_ignores_masked_rows() {
        let logits =
            Tensor::param(Matrix::from_fn(2, 3, |r, c| if r == 0 && c == 0 { 5.0 } else { 0.0 }));
        let all = cross_entropy_logits(&logits, &[0, usize::MAX]);
        // Row 1 is ignored, so loss is only row 0's (confident, near zero).
        assert!(all.value_clone().get(0, 0) < 0.1);
    }

    #[test]
    fn dropout_eval_mode_is_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::param(Matrix::from_fn(2, 2, seeded));
        let y = dropout(&x, 0.5, false, &mut rng);
        assert_eq!(y.value_clone(), x.value_clone());
    }

    #[test]
    fn dropout_training_preserves_expectation_roughly() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::constant(Matrix::full(1, 4000, 1.0));
        let y = dropout(&x, 0.3, true, &mut rng);
        let mean = y.value_clone().mean();
        assert!((mean - 1.0).abs() < 0.1, "inverted dropout should keep the mean, got {mean}");
    }

    #[test]
    fn softmax_rows_values() {
        let x = Tensor::constant(Matrix::from_vec(1, 2, vec![0.0, 0.0]));
        let y = softmax_rows(&x);
        assert!((y.value_clone().get(0, 0) - 0.5).abs() < 1e-6);
    }
}
