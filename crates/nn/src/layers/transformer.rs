//! Standard transformer encoder building blocks (the `Trm` part of the
//! paper's `Trm_g`; the query-aware sub-graph part lives in the `preqr`
//! crate because it needs the schema graph).

use rand::Rng;

use crate::layers::{join, LayerNorm, Linear, Module, MultiHeadAttention};
use crate::ops;
use crate::tensor::Tensor;

/// Position-wise feed-forward network with GELU activation.
pub struct FeedForward {
    l1: Linear,
    l2: Linear,
}

impl FeedForward {
    /// Creates a two-layer FFN `dim → hidden → dim`.
    pub fn new(dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        Self { l1: Linear::new(dim, hidden, rng), l2: Linear::new(hidden, dim, rng) }
    }

    /// Applies the FFN to each row independently.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.l2.forward(&ops::gelu(&self.l1.forward(x)))
    }
}

impl Module for FeedForward {
    fn collect_params(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        self.l1.collect_params(&join(prefix, "l1"), out);
        self.l2.collect_params(&join(prefix, "l2"), out);
    }
}

/// A post-norm transformer encoder layer:
/// `x = LN(x + SelfAttn(x)); x = LN(x + FFN(x))` — Eq. 6 of the paper.
pub struct TransformerLayer {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ffn: FeedForward,
    ln2: LayerNorm,
}

impl TransformerLayer {
    /// Creates an encoder layer with `heads`-head attention and a
    /// `4 × dim` FFN hidden size (the standard ratio).
    pub fn new(dim: usize, heads: usize, rng: &mut impl Rng) -> Self {
        Self {
            attn: MultiHeadAttention::new(dim, heads, rng),
            ln1: LayerNorm::new(dim),
            ffn: FeedForward::new(dim, dim * 4, rng),
            ln2: LayerNorm::new(dim),
        }
    }

    /// Encodes an `n × dim` sequence.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let attended = self.attn.forward_self(x);
        let x = self.ln1.forward(&ops::add(x, &attended));
        let ff = self.ffn.forward(&x);
        self.ln2.forward(&ops::add(&x, &ff))
    }

    /// The self-attention sub-layer (exposed for `Trm_g` composition).
    pub fn attention(&self) -> &MultiHeadAttention {
        &self.attn
    }
}

impl Module for TransformerLayer {
    fn collect_params(&self, prefix: &str, out: &mut Vec<(String, Tensor)>) {
        self.attn.collect_params(&join(prefix, "attn"), out);
        self.ln1.collect_params(&join(prefix, "ln1"), out);
        self.ffn.collect_params(&join(prefix, "ffn"), out);
        self.ln2.collect_params(&join(prefix, "ln2"), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn layer_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(21);
        let layer = TransformerLayer::new(8, 2, &mut rng);
        let x = Tensor::constant(Matrix::from_fn(6, 8, |r, c| ((r * c) % 5) as f32 * 0.1));
        assert_eq!(layer.forward(&x).shape(), (6, 8));
    }

    #[test]
    fn output_is_row_normalized() {
        let mut rng = StdRng::seed_from_u64(21);
        let layer = TransformerLayer::new(8, 2, &mut rng);
        let x = Tensor::constant(Matrix::from_fn(3, 8, |r, c| (r + c) as f32));
        let y = layer.forward(&x).value_clone();
        for r in 0..3 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-3, "row {r} mean {mean}");
        }
    }

    #[test]
    fn all_params_receive_gradients() {
        let mut rng = StdRng::seed_from_u64(21);
        let layer = TransformerLayer::new(4, 2, &mut rng);
        let x = Tensor::constant(Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.07));
        ops::sum_all(&layer.forward(&x)).backward();
        for (name, p) in layer.named_params("t") {
            assert!(p.grad().is_some(), "missing grad for {name}");
        }
    }

    #[test]
    fn param_count_matches_formula() {
        let mut rng = StdRng::seed_from_u64(21);
        let dim = 8;
        let layer = TransformerLayer::new(dim, 2, &mut rng);
        // attn: 4 linear layers (dim*dim + dim); ffn: dim*4dim+4dim + 4dim*dim+dim;
        // two layer norms: 2*2*dim.
        let expected =
            4 * (dim * dim + dim) + (dim * 4 * dim + 4 * dim) + (4 * dim * dim + dim) + 2 * 2 * dim;
        assert_eq!(layer.param_count(), expected);
    }
}
