//! Interrupt/resume property test: a Trainer run halted at a random
//! step boundary and resumed from its latest checkpoint must finish
//! with final parameters **bit-identical** to an uninterrupted run with
//! the same checkpoint cadence.
//!
//! The reseed trick makes this hold exactly: at every checkpoint
//! boundary the trainer persists one freshly drawn `u64` and reseeds
//! its live RNG from it, so both runs replay the same RNG stream
//! regardless of where the interruption lands (as long as at least one
//! checkpoint was written before the halt — steps after the last
//! checkpoint are rolled back by the resume load).

use std::path::Path;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

use preqr_nn::layers::{Mlp, Module};
use preqr_nn::{ops, Matrix, Tensor};
use preqr_train::{CheckpointConfig, EpochStats, FnTask, Plan, StepOutput, Trainer, TrainerConfig};

fn examples(n: usize) -> Vec<(Tensor, f32)> {
    (0..n)
        .map(|i| {
            let x: Vec<f32> = (0..4).map(|j| ((i * 7 + j * 3) % 11) as f32 / 11.0).collect();
            let y = x.iter().sum::<f32>() / 4.0;
            (Tensor::constant(Matrix::from_vec(1, 4, x)), y)
        })
        .collect()
}

/// Builds a fresh model and runs one `fit` per entry of `halts` against
/// the same checkpoint path (`None` = run to completion). Returns the
/// last report's stats, whether any phase halted, and the final params.
fn run_phases(
    n: usize,
    epochs: usize,
    chunk: usize,
    every: u64,
    path: &Path,
    halts: &[Option<u64>],
) -> (Vec<EpochStats>, bool, Vec<Matrix>) {
    let mut init = StdRng::seed_from_u64(42);
    let mlp = Mlp::new(&[4, 6, 1], &mut init);
    let data = examples(n);
    let mut stats = Vec::new();
    let mut halted = false;
    for &halt in halts {
        let mut task = FnTask::new("prop.resume", n, mlp.params(), |idx, rng| {
            // The per-step draw makes the test sensitive to RNG-stream
            // replay, not just parameter restore.
            let jitter: f32 = rng.random();
            let (x, y) = &data[idx];
            let pred = mlp.forward(x);
            let target = Matrix::full(1, 1, *y * (1.0 + 0.01 * jitter));
            let loss = ops::mse_loss(&pred, &target);
            let scalar = f64::from(loss.value_clone().get(0, 0));
            loss.backward();
            StepOutput { loss: scalar, ..StepOutput::default() }
        });
        let mut config = TrainerConfig::new(Plan::Epochs { epochs, chunk, shuffle: true }, 1e-2)
            .with_checkpoint(CheckpointConfig::new(path.to_path_buf(), every));
        config.halt_after_steps = halt;
        let mut rng = StdRng::seed_from_u64(7);
        let report = Trainer::new(config).fit(&mut task, &mut rng);
        halted |= report.halted;
        stats = report.stats;
    }
    (stats, halted, mlp.params().iter().map(Tensor::value_clone).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn interrupted_resume_is_bit_identical_to_uninterrupted(
        n in 4usize..12,
        epochs in 1usize..4,
        chunk in 1usize..5,
        every in 1u64..4,
        halt_off in 0u64..64,
    ) {
        let total = epochs as u64 * (n as u64).div_ceil(chunk as u64);
        // At least one checkpoint must land before the halt, and the
        // halt must interrupt the run (strictly before the last step).
        prop_assume!(total > every);
        let halt = every + halt_off % (total - every);

        let dir = std::env::temp_dir();
        let tag = format!("{}_{n}_{epochs}_{chunk}_{every}_{halt}", std::process::id());
        let base_path = dir.join(format!("preqr_resume_base_{tag}.ckpt"));
        let int_path = dir.join(format!("preqr_resume_int_{tag}.ckpt"));
        let _ = std::fs::remove_file(&base_path);
        let _ = std::fs::remove_file(&int_path);

        let (base_stats, base_halted, base_params) =
            run_phases(n, epochs, chunk, every, &base_path, &[None]);
        let (res_stats, res_halted, res_params) =
            run_phases(n, epochs, chunk, every, &int_path, &[Some(halt), None]);

        let _ = std::fs::remove_file(&base_path);
        let _ = std::fs::remove_file(&int_path);

        prop_assert!(!base_halted, "uninterrupted run must not halt");
        prop_assert!(res_halted, "first phase must actually halt (halt={halt}, total={total})");
        prop_assert_eq!(&base_stats, &res_stats);
        prop_assert_eq!(base_params.len(), res_params.len());
        for (i, (a, b)) in base_params.iter().zip(&res_params).enumerate() {
            prop_assert_eq!(a.shape(), b.shape());
            let same = a.data().iter().zip(b.data()).all(|(p, q)| p.to_bits() == q.to_bits());
            prop_assert!(same, "param {} diverged after resume", i);
        }
    }
}
